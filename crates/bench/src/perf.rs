//! Host-time measurement of the E18 hot paths and the perf-regression
//! gate CI runs over it.
//!
//! The simulated clock in [`crate::scale`] answers "does mediation cost
//! grow with the population?" in model cycles; this module answers the
//! operational question — how many host nanoseconds each hot path
//! costs, and whether a change regressed them. The `bench_e18` binary
//! measures, writes a machine-readable report, and (when a committed
//! baseline exists at `results/BENCH_E18.json`) fails if any path got
//! more than [`tolerance_from_env`] slower.
//!
//! Timings take the **minimum over rounds**: the minimum is the run
//! least disturbed by the host, which is the right estimator when the
//! quantity measured is deterministic work. Rounds are **interleaved**
//! across the paths (round-robin, not path-by-path), so one path's
//! rounds span the whole measurement window instead of a single burst
//! — host noise tends to arrive in multi-second phases, and a burst of
//! consecutive rounds can sit entirely inside one.
//!
//! The gate fails a path only when it regressed **every** way: in raw
//! nanoseconds *and* relative to two calibration workloads — a
//! dependent pointer-chase (a memory-latency yardstick) and a
//! register-only integer scramble (a core-clock yardstick). The two
//! noise modes a shared host exhibits move different yardsticks: cache
//! and memory-bus contention moves the pointer-chase, frequency
//! scaling and CPU steal move the scramble; either way the affected
//! paths and the matching yardstick shift together and the gate stays
//! quiet. A real regression — the only case where the gate should
//! fire — moves the paths and *neither* yardstick.
//!
//! # The parallel section (E19)
//!
//! Two additions guard the multiprocessor work. First, two extra hot
//! paths time the work-stealing traffic controller itself — a balanced
//! tick where every simulated CPU pops locally, and a starved tick
//! where idle CPUs must steal — so the steal fast path sits under the
//! same noise-hardened gate as the E18 paths. Second, a `parallel`
//! report section measures **real host speedup**: the same fleet of
//! independent E18-scale kernel lanes is run on one thread and on
//! `par_threads` threads (each lane world built *inside* its worker —
//! the simulated machine is single-threaded by construction), and the
//! median wall-clock ratio is the speedup. A `calibration_speedup`
//! yardstick — the same lanes filled with pure ALU work — records how
//! much parallelism the host actually has, so a 1-core runner gates
//! against its own honest ceiling instead of an impossible 4x. Speedup
//! is bigger-is-better: the gate fires only when it falls below both
//! the baseline band and the paper bar of 1.5x.

use std::time::Instant;

use mks_hw::{CpuModel, Machine, SegNo};
use mks_kernel::par::run_lanes;
use mks_kernel::world::KProcId;
use mks_kernel::{Commit, CommitLog, Monitor};
use mks_procs::{Effects, FnJob, SchedMode, Step, TcConfig, TrafficController};

use crate::scale::{build_world, run_traffic, PopulationModel};

/// One timed hot path.
#[derive(Clone, Debug)]
pub struct PathTiming {
    /// Stable path name (the JSON key CI compares across commits).
    pub name: &'static str,
    /// Host nanoseconds per operation (minimum over rounds).
    pub ns_per_op: f64,
}

/// The E19 host-parallelism measurement: one fleet of independent
/// kernel lanes, timed sequentially and sharded over threads.
#[derive(Clone, Debug)]
pub struct ParallelTiming {
    /// Independent lane worlds in the fleet.
    pub lanes: usize,
    /// Host threads the parallel arm shards them over.
    pub threads: usize,
    /// Principal population of each lane world (the E18 rung).
    pub population: u64,
    /// Median over rounds of sequential wall / parallel wall.
    pub speedup: f64,
    /// The same ratio for pure ALU lanes — the host's real parallelism
    /// ceiling, which the gate's bar is scaled by.
    pub calibration_speedup: f64,
}

/// A full perf report: per-path timings plus the scaling slope.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Population of the world the paths were timed on.
    pub population: u64,
    /// The timed hot paths.
    pub paths: Vec<PathTiming>,
    /// Low rung of the slope measurement.
    pub pop_lo: u64,
    /// High rung of the slope measurement.
    pub pop_hi: u64,
    /// ns per mediated op at the low rung (minimum over rounds).
    pub ns_per_op_lo: f64,
    /// ns per mediated op at the high rung (minimum over rounds).
    pub ns_per_op_hi: f64,
    /// The scaling slope: median over rounds of the *same-round*
    /// `hi / lo` ratio. Pairing within a round cancels host-noise
    /// phases (they slow both rungs of the pair together) and the
    /// median discards rounds where noise split a pair unevenly; flat
    /// mediation cost means a slope near 1.0.
    pub slope_over_rounds: f64,
    /// ns per iteration of the memory-latency calibration workload
    /// (dependent pointer-chase) — one of the two machine-speed
    /// yardsticks the gate divides by.
    pub calibration_ns: f64,
    /// ns per iteration of the core-clock calibration workload
    /// (register-only integer scramble) — the other yardstick.
    pub calibration_cpu_ns: f64,
    /// The E19 host-parallel lane measurement.
    pub par: ParallelTiming,
}

impl PerfReport {
    /// The scaling slope (see [`PerfReport::slope_over_rounds`]).
    pub fn slope(&self) -> f64 {
        self.slope_over_rounds
    }
}

/// Measurement scale, so tests can run a miniature of the real thing.
#[derive(Clone, Copy, Debug)]
pub struct PerfConfig {
    /// Population of the hot-path world.
    pub population: u64,
    /// Traffic ops used to warm the world before timing.
    pub warm_ops: u64,
    /// Baseline iteration count for a cheap path (expensive paths
    /// divide this down).
    pub iters: u64,
    /// Timing rounds per path (the minimum is kept).
    pub rounds: u32,
    /// The two populations the slope compares.
    pub slope_pops: (u64, u64),
    /// Mediated ops driven at each slope rung.
    pub slope_ops: u64,
    /// Lane worlds in the E19 parallel fleet.
    pub par_lanes: usize,
    /// Host threads the parallel arm uses.
    pub par_threads: usize,
    /// Principal population of each lane world.
    pub par_population: u64,
    /// Traffic ops each lane drives.
    pub par_ops: u64,
    /// Sequential/parallel timing rounds (the median ratio is kept).
    pub par_rounds: u32,
}

impl PerfConfig {
    /// The configuration CI measures with.
    pub fn standard() -> PerfConfig {
        PerfConfig {
            population: 100_000,
            warm_ops: 20_000,
            iters: 100_000,
            rounds: 9,
            slope_pops: (1_000, 100_000),
            slope_ops: 20_000,
            par_lanes: 4,
            par_threads: 4,
            par_population: 100_000,
            par_ops: 20_000,
            par_rounds: 3,
        }
    }

    /// A miniature for unit tests: same shape, trivial cost.
    pub fn miniature() -> PerfConfig {
        PerfConfig {
            population: 1_000,
            warm_ops: 500,
            iters: 200,
            rounds: 2,
            slope_pops: (200, 1_000),
            slope_ops: 500,
            par_lanes: 2,
            par_threads: 2,
            par_population: 400,
            par_ops: 200,
            par_rounds: 1,
        }
    }
}

/// Times `f` over `iters` iterations, `rounds` times, returning the
/// minimum ns-per-iteration observed.
fn time_path<F: FnMut()>(iters: u64, rounds: u32, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds.max(1) {
        let t0 = Instant::now();
        for _ in 0..iters.max(1) {
            f();
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters.max(1) as f64;
        best = best.min(ns);
    }
    best
}

/// One splitmix-style scramble step for the calibration workload.
fn calibration_step(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The memory-latency calibration workload: a dependent pointer-chase
/// over an 8 MB table (each load's address comes from the previous
/// load). The hot paths are hash probes and scans — memory work — so
/// when cache or bus contention from a noisy neighbour slows them,
/// this yardstick slows with them. Its blind spot (core-clock shifts,
/// which barely move DRAM latency) is covered by
/// [`cpu_calibration_op`].
struct Calibration {
    table: Vec<u64>,
    cursor: u64,
}

impl Calibration {
    fn new() -> Calibration {
        let table: Vec<u64> = (0..1u64 << 20).map(calibration_step).collect();
        Calibration { table, cursor: 0 }
    }

    /// 32 dependent table loads — one calibration "op".
    fn op(&mut self) {
        let mask = self.table.len() as u64 - 1;
        let mut idx = self.cursor;
        for _ in 0..32 {
            idx = calibration_step(idx ^ self.table[(idx & mask) as usize]);
        }
        self.cursor = std::hint::black_box(idx);
    }
}

/// The core-clock calibration workload: 32 dependent register-only
/// scramble steps. Pure ALU work tracks frequency scaling and CPU
/// steal — the noise mode the pointer-chase cannot see.
fn cpu_calibration_op(cursor: &mut u64) {
    let mut x = *cursor;
    for _ in 0..32 {
        x = calibration_step(x);
    }
    *cursor = std::hint::black_box(x);
}

/// Builds a work-stealing traffic controller over 4 simulated CPUs
/// carrying `jobs` immortal jobs; `yielding` jobs relinquish after
/// every step (the steal-heavy shape), non-yielding ones run out their
/// quantum (the balanced local-pop shape).
fn ws_tc(jobs: usize, yielding: bool) -> (TrafficController<Machine>, Machine) {
    let mut tc: TrafficController<Machine> = TrafficController::new(TcConfig {
        nr_cpus: 4,
        nr_vprocs: jobs + 2,
        quantum: 4,
        sched: SchedMode::WorkStealing { seed: 0xE19 },
    });
    for _ in 0..jobs {
        tc.spawn(Box::new(FnJob::new(
            "hot",
            move |_e: &mut Effects<'_, Machine>| {
                if yielding {
                    Step::Yield
                } else {
                    Step::Continue
                }
            },
        )));
    }
    (tc, Machine::new(CpuModel::H6180, 2))
}

/// Wall nanoseconds of one fleet run: `lanes` E18-scale kernel lanes,
/// each built and driven inside its worker, sharded over `threads`.
fn time_parallel_round(cfg: &PerfConfig, threads: usize, round: u32) -> f64 {
    let t0 = Instant::now();
    let ops = run_lanes(cfg.par_lanes, threads, |lane| {
        let model = PopulationModel::new(cfg.par_population, 0xE19 ^ lane as u64);
        let mut sw = build_world(&model);
        run_traffic(
            &mut sw,
            cfg.par_ops,
            0xE19 ^ (u64::from(round) << 32) ^ lane as u64,
        )
        .ops
    });
    std::hint::black_box(ops);
    t0.elapsed().as_nanos() as f64
}

/// Wall nanoseconds of the calibration fleet: the same lane/thread
/// shape filled with pure ALU work — the host-parallelism yardstick.
fn time_calibration_lanes(lanes: usize, threads: usize, iters: u64) -> f64 {
    let t0 = Instant::now();
    let cursors = run_lanes(lanes, threads, |lane| {
        let mut cursor = 0xE19 ^ lane as u64;
        for _ in 0..iters.max(1) {
            cpu_calibration_op(&mut cursor);
        }
        cursor
    });
    std::hint::black_box(cursors);
    t0.elapsed().as_nanos() as f64
}

/// Median of `ratios` (sorted copy, middle element).
fn median(mut ratios: Vec<f64>) -> f64 {
    ratios.sort_by(f64::total_cmp);
    ratios[ratios.len() / 2]
}

/// Measures the E19 parallel section at `cfg`'s scale.
fn measure_parallel(cfg: &PerfConfig) -> ParallelTiming {
    let threads = cfg.par_threads.max(2);
    let cal_iters = 200_000;
    let mut speedups = Vec::new();
    let mut cal_speedups = Vec::new();
    for round in 0..cfg.par_rounds.max(1) {
        let seq = time_parallel_round(cfg, 1, round);
        let par = time_parallel_round(cfg, threads, round);
        speedups.push(seq / par.max(f64::MIN_POSITIVE));
        let cal_seq = time_calibration_lanes(cfg.par_lanes, 1, cal_iters);
        let cal_par = time_calibration_lanes(cfg.par_lanes, threads, cal_iters);
        cal_speedups.push(cal_seq / cal_par.max(f64::MIN_POSITIVE));
    }
    ParallelTiming {
        lanes: cfg.par_lanes,
        threads,
        population: cfg.par_population,
        speedup: median(speedups),
        calibration_speedup: median(cal_speedups),
    }
}

/// Measures every hot path and the scaling slope at `cfg`'s scale.
///
/// Every round times the calibration and all five paths back to back,
/// and the per-path minimum is kept across rounds — see the module doc
/// for why the interleaving matters.
pub fn measure(cfg: PerfConfig) -> PerfReport {
    let model = PopulationModel::new(cfg.population, 0xE18);
    let mut sw = build_world(&model);
    run_traffic(&mut sw, cfg.warm_ops, 0xE18);

    let mut cal = Calibration::new();
    let hit = model.principal(0);
    let lookup_name = format!("P{}", model.nr_projects() - 1);
    let udd = sw.udd_uid;
    let (pid, registry) = {
        let s = &sw.sessions[0];
        (s.pid, s.registry)
    };
    // The linear ACL spec scans every exact entry; keep its iteration
    // count proportionate. Gate calls are ~an order costlier than the
    // other paths; halve theirs.
    let cal_iters = (cfg.iters / 10).max(10);
    let linear_iters = (cfg.iters / 100).max(10);
    let gate_iters = (cfg.iters / 2).max(10);
    let tick_iters = (cfg.iters / 20).max(10);

    // The two E19 scheduler shapes: a balanced fleet (two immortal jobs
    // per CPU — ticks pop locally) and a starved one (two yielding jobs
    // on four CPUs — most ticks must steal).
    let (mut tc_balanced, mut m_balanced) = ws_tc(8, false);
    let (mut tc_starved, mut m_starved) = ws_tc(2, true);

    let mut calibration_ns = f64::INFINITY;
    let mut calibration_cpu_ns = f64::INFINITY;
    let mut cpu_cursor = 0xE18u64;
    let mut best = [f64::INFINITY; 8];
    for _ in 0..cfg.rounds.max(1) {
        calibration_ns = calibration_ns.min(time_path(cal_iters, 1, || cal.op()));
        calibration_cpu_ns = calibration_cpu_ns.min(time_path(cfg.iters, 1, || {
            cpu_calibration_op(&mut cpu_cursor)
        }));
        {
            let acl = sw.registry_acl();
            best[0] = best[0].min(time_path(cfg.iters, 1, || {
                std::hint::black_box(acl.effective_counted(std::hint::black_box(&hit)));
            }));
            best[1] = best[1].min(time_path(linear_iters, 1, || {
                std::hint::black_box(acl.effective_linear(std::hint::black_box(&hit)));
            }));
        }
        {
            let fs = &sw.sys.world.fs;
            best[2] = best[2].min(time_path(cfg.iters, 1, || {
                std::hint::black_box(fs.peek_branch(udd, std::hint::black_box(&lookup_name)));
            }));
        }
        best[3] = best[3].min(time_path(cfg.iters, 1, || {
            Monitor::read(&mut sw.sys.world, pid, registry, 3).expect("warm read");
        }));
        best[4] = best[4].min(time_path(gate_iters, 1, || {
            Monitor::call_gate(&mut sw.sys.world, pid, "hcs_", "metering_get")
                .expect("user-available gate");
        }));
        best[5] = best[5].min(time_path(tick_iters, 1, || {
            tc_balanced.tick(&mut m_balanced);
        }));
        best[6] = best[6].min(time_path(tick_iters, 1, || {
            tc_starved.tick(&mut m_starved);
        }));
        {
            // The E20 hot path: every mediated operation in a replayable
            // run seals one commit — encode, chain, append. A fresh log
            // per round keeps the arena bounded without ever exercising
            // anything but the append itself.
            let mut log = CommitLog::new();
            log.seed(0xE20);
            let mut value = 0u64;
            best[7] = best[7].min(time_path(cfg.iters, 1, || {
                value = value.wrapping_add(1);
                log.append(Commit::Write {
                    pid: KProcId(1),
                    seg: SegNo(65),
                    offset: value & 63,
                    value,
                });
                std::hint::black_box(log.head());
            }));
        }
    }
    debug_assert!(
        tc_starved.stats().steals > 0,
        "the starved shape must actually exercise the steal path"
    );
    let names = [
        "acl_check_indexed",
        "acl_check_linear_spec",
        "dir_lookup_indexed",
        "monitor_read_warm",
        "gate_call_metering",
        "tc_worksteal_dispatch",
        "tc_worksteal_steal",
        "commit_log_append",
    ];
    let paths = names
        .into_iter()
        .zip(best)
        .map(|(name, ns_per_op)| PathTiming { name, ns_per_op })
        .collect();

    // The slope rungs interleave the same way, and the slope itself is
    // the median over *same-round* hi/lo pairs: a noise phase covering
    // one round slows both rungs of the pair and cancels in the ratio,
    // and the median drops rounds where noise split a pair unevenly.
    let (pop_lo, pop_hi) = cfg.slope_pops;
    let mut ns_per_op_lo = f64::INFINITY;
    let mut ns_per_op_hi = f64::INFINITY;
    let mut ratios = Vec::new();
    for round in 0..cfg.rounds.max(1) {
        let lo = time_slope_round(pop_lo, cfg.slope_ops, round);
        let hi = time_slope_round(pop_hi, cfg.slope_ops, round);
        ns_per_op_lo = ns_per_op_lo.min(lo);
        ns_per_op_hi = ns_per_op_hi.min(hi);
        ratios.push(hi / lo.max(f64::MIN_POSITIVE));
    }
    let slope_over_rounds = median(ratios);

    let par = measure_parallel(&cfg);

    PerfReport {
        population: cfg.population,
        paths,
        pop_lo,
        pop_hi,
        ns_per_op_lo,
        ns_per_op_hi,
        slope_over_rounds,
        calibration_ns,
        calibration_cpu_ns,
        par,
    }
}

/// Host ns per mediated op of one round of production-shaped traffic
/// at one population rung (world build excluded).
fn time_slope_round(population: u64, ops: u64, round: u32) -> f64 {
    let model = PopulationModel::new(population, 0xE18);
    let mut sw = build_world(&model);
    let t0 = Instant::now();
    let stats = run_traffic(&mut sw, ops, 0xE18 ^ u64::from(round));
    t0.elapsed().as_nanos() as f64 / stats.ops.max(1) as f64
}

/// Renders the report as the `BENCH_E18.json` document.
pub fn to_json(r: &PerfReport) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"mks-bench-e18/1\",\n");
    s.push_str(&format!("  \"population\": {},\n", r.population));
    s.push_str(&format!(
        "  \"calibration_ns_per_op\": {:.2},\n",
        r.calibration_ns
    ));
    s.push_str(&format!(
        "  \"calibration_cpu_ns_per_op\": {:.2},\n",
        r.calibration_cpu_ns
    ));
    s.push_str("  \"paths\": [\n");
    for (i, p) in r.paths.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_op\": {:.2}}}{}\n",
            p.name,
            p.ns_per_op,
            if i + 1 < r.paths.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"parallel\": {{\"lanes\": {}, \"threads\": {}, \"population\": {}, \
         \"speedup\": {:.4}, \"calibration_speedup\": {:.4}}},\n",
        r.par.lanes, r.par.threads, r.par.population, r.par.speedup, r.par.calibration_speedup
    ));
    s.push_str(&format!(
        "  \"scaling\": {{\"pop_lo\": {}, \"pop_hi\": {}, \"ns_per_op_lo\": {:.2}, \
         \"ns_per_op_hi\": {:.2}, \"slope\": {:.4}}}\n",
        r.pop_lo,
        r.pop_hi,
        r.ns_per_op_lo,
        r.ns_per_op_hi,
        r.slope()
    ));
    s.push_str("}\n");
    s
}

/// The baseline's committed parallel section.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BaselineParallel {
    /// The committed host speedup at `threads`.
    pub speedup: f64,
    /// The committed host-parallelism ceiling.
    pub calibration_speedup: f64,
}

/// A parsed baseline: per-path ns, the calibration yardstick, the
/// scaling slope, and (since E19) the host-parallel speedup section.
#[derive(Clone, Debug, PartialEq)]
pub struct Baseline {
    /// `(path name, ns_per_op)` pairs in document order.
    pub paths: Vec<(String, f64)>,
    /// The baseline machine's memory-latency calibration ns-per-op.
    pub calibration_ns: f64,
    /// The baseline machine's core-clock calibration ns-per-op.
    pub calibration_cpu_ns: f64,
    /// The committed scaling slope.
    pub slope: f64,
    /// The committed parallel section (absent in pre-E19 baselines).
    pub parallel: Option<BaselineParallel>,
}

/// Parses a `BENCH_E18.json` document (the subset [`to_json`] emits).
pub fn parse_baseline(json: &str) -> Result<Baseline, String> {
    if !json.contains("\"schema\": \"mks-bench-e18/1\"") {
        return Err("not a mks-bench-e18/1 document".into());
    }
    let mut paths = Vec::new();
    let mut rest = json;
    while let Some(i) = rest.find("{\"name\": \"") {
        let after = &rest[i + 10..];
        let name_end = after.find('"').ok_or("unterminated path name")?;
        let name = after[..name_end].to_string();
        let after_name = &after[name_end..];
        let ns = field_after(after_name, "\"ns_per_op\": ")?;
        paths.push((name, ns));
        rest = after_name;
    }
    if paths.is_empty() {
        return Err("no timed paths in baseline".into());
    }
    let calibration_ns = field_after(json, "\"calibration_ns_per_op\": ")?;
    let calibration_cpu_ns = field_after(json, "\"calibration_cpu_ns_per_op\": ")?;
    let scaling = json
        .find("\"scaling\"")
        .map(|i| &json[i..])
        .ok_or("no scaling object")?;
    let slope = field_after(scaling, "\"slope\": ")?;
    let parallel = json.find("\"parallel\"").map(|i| &json[i..]).and_then(|p| {
        Some(BaselineParallel {
            speedup: field_after(p, "\"speedup\": ").ok()?,
            calibration_speedup: field_after(p, "\"calibration_speedup\": ").ok()?,
        })
    });
    Ok(Baseline {
        paths,
        calibration_ns,
        calibration_cpu_ns,
        slope,
        parallel,
    })
}

/// Reads the `f64` immediately following `key` in `s`.
fn field_after(s: &str, key: &str) -> Result<f64, String> {
    let i = s.find(key).ok_or_else(|| format!("missing {key}"))?;
    let v = &s[i + key.len()..];
    let end = v
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(v.len());
    v[..end]
        .parse::<f64>()
        .map_err(|e| format!("bad number after {key}: {e}"))
}

/// Compares a fresh report against the committed baseline. Returns one
/// human-readable violation per path (or slope) that regressed past
/// `tolerance` (0.25 = fail if more than 25% slower).
///
/// A path fails only when it is slower than baseline **every** way: in
/// raw nanoseconds and after dividing each side by each of its two
/// calibration runs. A real regression inflates all three ratios; host
/// noise — a machine-speed shift, memory contention, frequency scaling
/// — moves at least one yardstick with the paths and leaves at least
/// one ratio flat. The gate scores a path by the *smallest* ratio.
pub fn gate(current: &PerfReport, baseline: &Baseline, tolerance: f64) -> Vec<String> {
    let mut violations = Vec::new();
    let mem_shift = current.calibration_ns.max(f64::MIN_POSITIVE)
        / baseline.calibration_ns.max(f64::MIN_POSITIVE);
    let cpu_shift = current.calibration_cpu_ns.max(f64::MIN_POSITIVE)
        / baseline.calibration_cpu_ns.max(f64::MIN_POSITIVE);
    for (name, base_ns) in &baseline.paths {
        if *base_ns <= 0.0 {
            continue;
        }
        let Some(cur) = current.paths.iter().find(|p| p.name == name) else {
            violations.push(format!("{name}: timed in baseline but not measured now"));
            continue;
        };
        let raw = cur.ns_per_op / base_ns;
        let ratio = raw.min(raw / mem_shift).min(raw / cpu_shift);
        if ratio > 1.0 + tolerance {
            violations.push(format!(
                "{name}: {:.1} ns/op vs baseline {:.1} ns/op — {:+.0}% raw, {:+.0}% vs the \
                 memory yardstick, {:+.0}% vs the cpu yardstick; all > +{:.0}% tolerance",
                cur.ns_per_op,
                base_ns,
                (raw - 1.0) * 100.0,
                (raw / mem_shift - 1.0) * 100.0,
                (raw / cpu_shift - 1.0) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    // Flatness (slope ~1.0) is the gated property; a baseline that
    // happened to dip below flat must not tighten the bar, so the
    // comparison floor is 1.0.
    let slope_ratio = current.slope() / baseline.slope.max(1.0);
    if slope_ratio > 1.0 + tolerance {
        violations.push(format!(
            "scaling slope: {:.3} vs baseline {:.3} — per-op cost is no longer flat in the \
             population",
            current.slope(),
            baseline.slope
        ));
    }
    // Host speedup is bigger-is-better, and it saturates at the host's
    // real core count: once at or past the paper bar of 1.5x, drift is
    // host topology, not a regression. Below the bar, falling out of
    // the baseline band (scaled by how much parallelism the host lost
    // relative to the baseline host) is a lost-parallelism regression.
    if let Some(bp) = baseline.parallel {
        let host_shift =
            (current.par.calibration_speedup / bp.calibration_speedup.max(0.01)).clamp(0.25, 4.0);
        let floor = bp.speedup * host_shift / (1.0 + tolerance);
        if current.par.speedup < floor && current.par.speedup < 1.5 {
            violations.push(format!(
                "parallel speedup: {:.2}x vs baseline {:.2}x (host-parallelism shift {:.2}) — \
                 the lane fleet lost its host-side speedup",
                current.par.speedup, bp.speedup, host_shift
            ));
        }
    }
    violations
}

/// Folds a re-measurement into `report`, keeping the best (minimum)
/// observation of every quantity — paths, calibrations, slope rungs,
/// and slope. The `bench_e18` binary re-measures when the gate fails
/// and gates the merged report: a host-noise phase deep enough to fool
/// every yardstick ends by the next attempt and the merged minima
/// recover, while a real regression is in the code and regresses every
/// attempt alike.
pub fn merge_min(report: &mut PerfReport, next: &PerfReport) {
    for (p, n) in report.paths.iter_mut().zip(&next.paths) {
        debug_assert_eq!(p.name, n.name);
        p.ns_per_op = p.ns_per_op.min(n.ns_per_op);
    }
    report.calibration_ns = report.calibration_ns.min(next.calibration_ns);
    report.calibration_cpu_ns = report.calibration_cpu_ns.min(next.calibration_cpu_ns);
    report.ns_per_op_lo = report.ns_per_op_lo.min(next.ns_per_op_lo);
    report.ns_per_op_hi = report.ns_per_op_hi.min(next.ns_per_op_hi);
    report.slope_over_rounds = report.slope_over_rounds.min(next.slope_over_rounds);
    // Speedups are bigger-is-better: the best observation is the max.
    report.par.speedup = report.par.speedup.max(next.par.speedup);
    report.par.calibration_speedup = report
        .par
        .calibration_speedup
        .max(next.par.calibration_speedup);
}

/// The gate's tolerance: `MKS_BENCH_E18_TOLERANCE` (a fraction, e.g.
/// `0.25`) or the default 25%.
pub fn tolerance_from_env() -> f64 {
    std::env::var("MKS_BENCH_E18_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t >= 0.0)
        .unwrap_or(0.25)
}

/// How many measurement attempts the gate may take before believing a
/// violation: `MKS_BENCH_E18_ATTEMPTS` or the default 3. Minimum 1.
pub fn attempts_from_env() -> u32 {
    std::env::var("MKS_BENCH_E18_ATTEMPTS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(3)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> PerfReport {
        PerfReport {
            population: 1_000,
            paths: vec![
                PathTiming {
                    name: "acl_check_indexed",
                    ns_per_op: 50.0,
                },
                PathTiming {
                    name: "monitor_read_warm",
                    ns_per_op: 120.0,
                },
            ],
            pop_lo: 200,
            pop_hi: 1_000,
            ns_per_op_lo: 100.0,
            ns_per_op_hi: 104.0,
            slope_over_rounds: 1.04,
            calibration_ns: 20.0,
            calibration_cpu_ns: 10.0,
            par: ParallelTiming {
                lanes: 4,
                threads: 4,
                population: 1_000,
                speedup: 2.0,
                calibration_speedup: 3.0,
            },
        }
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let r = sample_report();
        let b = parse_baseline(&to_json(&r)).expect("own output parses");
        assert_eq!(b.paths.len(), r.paths.len());
        for (p, (name, ns)) in r.paths.iter().zip(&b.paths) {
            assert_eq!(p.name, name);
            assert!((p.ns_per_op - ns).abs() < 0.01);
        }
        assert!((b.slope - 1.04).abs() < 0.001);
        let bp = b.parallel.expect("parallel section parses");
        assert!((bp.speedup - 2.0).abs() < 0.001);
        assert!((bp.calibration_speedup - 3.0).abs() < 0.001);
    }

    #[test]
    fn pre_e19_baselines_still_parse() {
        let r = sample_report();
        let json = to_json(&r);
        let start = json.find("  \"parallel\"").unwrap();
        let end = start + json[start..].find('\n').unwrap() + 1;
        let stripped = format!("{}{}", &json[..start], &json[end..]);
        let b = parse_baseline(&stripped).expect("old-schema baseline parses");
        assert!(b.parallel.is_none());
        assert!(
            gate(&r, &b, 0.25).is_empty(),
            "no parallel gate without one"
        );
    }

    #[test]
    fn gate_passes_itself_and_catches_regressions() {
        let r = sample_report();
        let base = parse_baseline(&to_json(&r)).unwrap();
        assert!(gate(&r, &base, 0.25).is_empty(), "a report meets itself");

        let mut slow = r.clone();
        slow.paths[0].ns_per_op *= 1.5;
        let v = gate(&slow, &base, 0.25);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("acl_check_indexed"), "{v:?}");
        assert!(gate(&slow, &base, 0.6).is_empty(), "tolerance widens");

        // A uniformly slower host moves the calibrations too — no alarm.
        let mut throttled = r.clone();
        throttled.calibration_ns *= 2.0;
        throttled.calibration_cpu_ns *= 2.0;
        for p in &mut throttled.paths {
            p.ns_per_op *= 2.0;
        }
        assert!(
            gate(&throttled, &base, 0.25).is_empty(),
            "a machine-speed shift is not a regression"
        );

        // Memory contention moves the memory yardstick but not the cpu
        // one; the paths slow with the yardstick that moved — no alarm.
        let mut contended = r.clone();
        contended.calibration_ns *= 1.6;
        for p in &mut contended.paths {
            p.ns_per_op *= 1.5;
        }
        assert!(
            gate(&contended, &base, 0.25).is_empty(),
            "contention tracked by a yardstick is not a regression"
        );

        // Frequency scaling: the cpu yardstick moves, the memory one
        // does not — still no alarm.
        let mut downclocked = r.clone();
        downclocked.calibration_cpu_ns *= 1.6;
        for p in &mut downclocked.paths {
            p.ns_per_op *= 1.5;
        }
        assert!(
            gate(&downclocked, &base, 0.25).is_empty(),
            "a clock shift tracked by a yardstick is not a regression"
        );

        // A noise phase that spares the paths but hits a calibration
        // only shrinks that yardstick's ratio — also no alarm.
        let mut noisy_cal = r.clone();
        noisy_cal.calibration_ns /= 2.0;
        assert!(
            gate(&noisy_cal, &base, 0.25).is_empty(),
            "a calibration-only shift is not a regression"
        );

        let mut steep = r.clone();
        steep.slope_over_rounds = 2.0;
        let v = gate(&steep, &base, 0.25);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("slope"), "{v:?}");

        // Losing the host-side speedup on the same host is a regression…
        let mut serial = r.clone();
        serial.par.speedup = 1.0;
        let v = gate(&serial, &base, 0.25);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("parallel speedup"), "{v:?}");

        // …but the same drop on a host that lost its cores is not.
        let mut small_host = r.clone();
        small_host.par.speedup = 1.0;
        small_host.par.calibration_speedup = 1.0;
        assert!(
            gate(&small_host, &base, 0.25).is_empty(),
            "a 1-core runner gates against its own ceiling"
        );

        // And past the 1.5x paper bar, topology drift never fires.
        let mut saturated = r;
        saturated.par.speedup = 1.6;
        assert!(gate(&saturated, &base, 0.25).is_empty());
    }

    #[test]
    fn a_miniature_measurement_is_complete() {
        let r = measure(PerfConfig::miniature());
        assert_eq!(r.paths.len(), 8);
        for p in &r.paths {
            assert!(p.ns_per_op > 0.0, "{} timed", p.name);
        }
        assert!(r.slope() > 0.0);
        assert!(r.par.speedup > 0.0 && r.par.calibration_speedup > 0.0);
        let b = parse_baseline(&to_json(&r)).unwrap();
        assert!(gate(&r, &b, 0.25).is_empty());
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("{\"schema\": \"mks-bench-e18/1\"}").is_err());
    }
}
