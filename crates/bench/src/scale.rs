//! "Multics as a service": the E18 population generator and sustained
//! traffic driver.
//!
//! The paper's kernel is sized for a computer utility — thousands of
//! simultaneous users drawn from a much larger registered population.
//! This module builds that population *deterministically* and drives the
//! kernel with production-shaped traffic so the scale experiment can
//! check that mediation cost is a property of the *operation*, not of
//! the population.
//!
//! Three design rules keep a million principals affordable inside one
//! simulated world:
//!
//! * **Identity space, not identity records.** Principals are a pure
//!   function of their index: `principal(i)`, `password(i)`,
//!   `clearance(i)`. Memory is O(projects), never O(population); the
//!   only per-principal state the kernel holds is for principals that
//!   have actually shown up (lazy [`AuthDb`] enrollment at first login —
//!   exactly how a real site's answering service meets its users).
//!
//! * **Skew by construction.** Project sizes follow a Zipf law (project
//!   `k` has weight `1/(k+1)`), so drawing a principal uniformly from
//!   the population yields realistically skewed project traffic for
//!   free. The registry segment's ACL carries up to 10^5 exact entries;
//!   directory fan-out and ACL size both grow with the rung, so a linear
//!   scan *would* degrade while the indexed paths stay flat.
//!
//! * **Bounded live state.** At most [`MAX_SESSIONS`] processes exist at
//!   once; login churn recycles them through
//!   [`KernelWorld::destroy_process`], so the driver can push tens of
//!   millions of operations without the world outgrowing memory.
//!
//! [`AuthDb`]: mks_kernel::AuthDb
//! [`KernelWorld::destroy_process`]: mks_kernel::KernelWorld::destroy_process

use std::collections::HashSet;

use mks_fs::{Acl, AclMode, BranchKind, DirMode, FileSystem, UserId};
use mks_hw::{RingBrackets, SegNo, SegUid, SplitMix64, Word};
use mks_kernel::subsystem::login;
use mks_kernel::world::{admin_user, System, SystemSize};
use mks_kernel::{AuditEvent, KProcId, KernelConfig, Monitor};
use mks_mls::{Compartments, Label, Level};

/// The population rungs the scale experiment climbs: 10^3 → 10^6.
pub const RUNGS: &[u64] = &[1_000, 10_000, 100_000, 1_000_000];

/// Live sessions the traffic driver keeps at once.
pub const MAX_SESSIONS: usize = 32;

/// The deterministic population model: projects with Zipf-skewed sizes,
/// principals as pure functions of their index.
#[derive(Clone, Debug)]
pub struct PopulationModel {
    /// Registered principals.
    pub population: u64,
    /// Generator seed (principals' passwords depend on it).
    pub seed: u64,
    /// `starts[k]..starts[k+1]` is project `k`'s member range.
    starts: Vec<u64>,
}

impl PopulationModel {
    /// Builds the model. Project count scales with the population
    /// (roughly one project per 500 principals, clamped to 4..=2048) and
    /// sizes follow `1/(k+1)` — at 10^6 the largest project has ~10^5
    /// members and the smallest a few dozen.
    pub fn new(population: u64, seed: u64) -> PopulationModel {
        assert!(population >= 4, "population too small to shape");
        let nr = usize::try_from((population / 500).clamp(4, 2048)).unwrap();
        let weights: Vec<f64> = (0..nr).map(|k| 1.0 / (k as f64 + 1.0)).collect();
        let total: f64 = weights.iter().sum();
        let mut starts = Vec::with_capacity(nr + 1);
        starts.push(0u64);
        let mut acc = 0.0;
        for (k, w) in weights.iter().enumerate() {
            acc += w;
            let s = if k == nr - 1 {
                population
            } else {
                ((population as f64 * acc / total).round() as u64).clamp(starts[k], population)
            };
            starts.push(s);
        }
        PopulationModel {
            population,
            seed,
            starts,
        }
    }

    /// Number of projects.
    pub fn nr_projects(&self) -> usize {
        self.starts.len() - 1
    }

    /// Members of project `k`.
    pub fn project_size(&self, k: usize) -> u64 {
        self.starts[k + 1] - self.starts[k]
    }

    /// Members of the largest project.
    pub fn largest_project(&self) -> u64 {
        (0..self.nr_projects())
            .map(|k| self.project_size(k))
            .max()
            .unwrap_or(0)
    }

    /// The project principal `i` belongs to.
    pub fn project_of(&self, i: u64) -> usize {
        debug_assert!(i < self.population);
        // Last start at or below `i`; empty projects cannot win because
        // their start equals the next one's.
        self.starts.partition_point(|&s| s <= i) - 1
    }

    /// Principal `i` as a kernel [`UserId`].
    pub fn principal(&self, i: u64) -> UserId {
        UserId::new(&format!("U{i}"), &format!("P{}", self.project_of(i)), "a")
    }

    /// Principal `i`'s password (deterministic in the seed).
    pub fn password(&self, i: u64) -> String {
        format!("pw-{:x}-{i}", self.seed)
    }

    /// Principal `i`'s clearance: most of the population is uncleared,
    /// every fourth principal is CONFIDENTIAL, every sixteenth SECRET —
    /// the skew a real site shows.
    pub fn clearance(&self, i: u64) -> Label {
        match i % 16 {
            0 => Label::new(Level::SECRET, Compartments::NONE),
            4 | 8 | 12 => Label::new(Level::CONFIDENTIAL, Compartments::NONE),
            _ => Label::BOTTOM,
        }
    }

    /// Exact entries on the registry segment's ACL (grows with the
    /// population, capped at 10^5 — the counterfactual a linear scan
    /// would pay on every access check).
    pub fn registry_entries(&self) -> u64 {
        (self.population / 10).clamp(16, 100_000)
    }

    /// The principal the `e`-th registry ACL entry names.
    pub fn registry_principal(&self, e: u64) -> u64 {
        let step = (self.population / self.registry_entries()).max(1);
        (e * step) % self.population
    }
}

/// One logged-in session the driver is cycling.
pub struct Session {
    /// Principal index in the population.
    pub idx: u64,
    /// The session's process.
    pub pid: KProcId,
    /// The project directory, bound in this process's KST.
    pub proj: SegNo,
    /// The project roster segment.
    pub roster: SegNo,
    /// The shared registry segment (the hot-ACL object).
    pub registry: SegNo,
}

/// A built scale world: the system plus the handles the driver needs.
pub struct ScaleWorld {
    /// The kernel-configuration system under load.
    pub sys: System,
    /// The population the world was built from.
    pub model: PopulationModel,
    /// The administrator process.
    pub admin: KProcId,
    /// `>udd`'s uid (project directories live under it).
    pub udd_uid: SegUid,
    /// `>udd` bound in the admin's KST.
    pub udd_segno: SegNo,
    enrolled: HashSet<u64>,
    /// Live sessions, oldest first (benches reach in for warm handles).
    pub sessions: Vec<Session>,
}

/// What the sustained-traffic driver did.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrafficStats {
    /// Monitor-mediated operations issued.
    pub ops: u64,
    /// Of which succeeded.
    pub completed: u64,
    /// Of which were denied (audited refusals).
    pub denied: u64,
    /// Sessions opened (logins).
    pub logins: u64,
    /// Principals enrolled into the [`mks_kernel::AuthDb`] on first login.
    pub enrollments: u64,
    /// Sessions closed (audited with one batched emission each).
    pub logouts: u64,
    /// Op-mix tallies.
    pub reads: u64,
    /// Writes to project rosters.
    pub writes: u64,
    /// Gate calls.
    pub gate_calls: u64,
    /// Segment initiations (including session setup).
    pub initiations: u64,
    /// Terminations.
    pub terminations: u64,
    /// Directory listings.
    pub listings: u64,
    /// Status queries.
    pub statuses: u64,
}

/// Builds the world: `>udd`, one directory per project (member-writable,
/// world-statusable) holding its roster segment, a deep archive subtree
/// under the largest project, and the registry segment whose ACL carries
/// the population's exact entries.
pub fn build_world(model: &PopulationModel) -> ScaleWorld {
    // Primary memory stays fixed — mediation must not need more core as
    // the site grows — but the drum is provisioned for the site, like any
    // computing utility's secondary store: enough records that the
    // population's segments page against the bulk store, not the disk.
    // (Undersize it and the big rungs measure 60k-cycle disk transfers
    // instead of the monitor.)
    let bulk_records = (model.nr_projects() * 4).max(512);
    let mut sys = System::with_size(
        KernelConfig::kernel(),
        SystemSize {
            frames: 128,
            bulk_records,
            cpu: mks_hw::CpuModel::H6180,
            ..SystemSize::default()
        },
    );
    let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
    let aroot = sys.world.bind_root(admin);
    Monitor::create_directory(&mut sys.world, admin, aroot, "udd", Label::BOTTOM)
        .expect("udd creates on a fresh system");
    sys.world
        .fs
        .set_dir_acl_entry(FileSystem::ROOT, "udd", &admin_user(), "*.*.*", DirMode::S)
        .expect("udd world-status grant");
    let udd_segno = Monitor::initiate_dir(&mut sys.world, admin, aroot, "udd");
    let udd_uid = sys
        .world
        .fs
        .peek_branch(FileSystem::ROOT, "udd")
        .expect("udd exists")
        .uid;

    // The registry: one hot segment whose ACL names a slice of the whole
    // population exactly, with a world-readable fallback. This is the
    // object whose access check a linear scan would pay ~10^5 entries
    // for; the exact-principal index answers in one probe.
    let mut racl: Acl<AclMode> = Acl::of("*.*.*", AclMode::R);
    for e in 0..model.registry_entries() {
        racl.add(
            &model.principal(model.registry_principal(e)).to_acl_string(),
            AclMode::REW,
        );
    }
    Monitor::create_segment(
        &mut sys.world,
        admin,
        udd_segno,
        "registry",
        racl,
        RingBrackets::new(4, 4, 4),
        Label::BOTTOM,
    )
    .expect("registry creates");

    // Project directories and rosters.
    for k in 0..model.nr_projects() {
        let name = format!("P{k}");
        Monitor::create_directory(&mut sys.world, admin, udd_segno, &name, Label::BOTTOM)
            .expect("project directory creates");
        let member = format!("*.P{k}.*");
        sys.world
            .fs
            .set_dir_acl_entry(udd_uid, &name, &admin_user(), &member, DirMode::SMA)
            .expect("member grant");
        sys.world
            .fs
            .set_dir_acl_entry(udd_uid, &name, &admin_user(), "*.*.*", DirMode::S)
            .expect("world-status grant");
        let pseg = Monitor::initiate_dir(&mut sys.world, admin, udd_segno, &name);
        let mut roster: Acl<AclMode> = Acl::of(&member, AclMode::RW);
        roster.add("*.*.*", AclMode::R);
        Monitor::create_segment(
            &mut sys.world,
            admin,
            pseg,
            "roster",
            roster,
            RingBrackets::new(4, 4, 4),
            Label::BOTTOM,
        )
        .expect("roster creates");
    }

    // The largest project's archive subtree — hierarchy depth scales
    // with project weight, not uniformly.
    let mut dir = Monitor::initiate_dir(&mut sys.world, admin, udd_segno, "P0");
    for level in 0..3 {
        let name = format!("archive{level}");
        Monitor::create_directory(&mut sys.world, admin, dir, &name, Label::BOTTOM)
            .expect("archive level creates");
        dir = Monitor::initiate_dir(&mut sys.world, admin, dir, &name);
        let mut log_acl: Acl<AclMode> = Acl::of("*.P0.*", AclMode::RW);
        log_acl.add(&admin_user().to_acl_string(), AclMode::RW);
        Monitor::create_segment(
            &mut sys.world,
            admin,
            dir,
            "log",
            log_acl,
            RingBrackets::new(4, 4, 4),
            Label::BOTTOM,
        )
        .expect("archive log creates");
    }

    ScaleWorld {
        sys,
        model: model.clone(),
        admin,
        udd_uid,
        udd_segno,
        enrolled: HashSet::new(),
        sessions: Vec::new(),
    }
}

impl ScaleWorld {
    /// The registry segment's ACL (the hot object under test).
    pub fn registry_acl(&self) -> &Acl<AclMode> {
        let b = self
            .sys
            .world
            .fs
            .peek_branch(self.udd_uid, "registry")
            .expect("registry exists");
        match &b.kind {
            BranchKind::Segment { acl, .. } => acl,
            BranchKind::Directory { .. } => unreachable!("registry is a segment"),
        }
    }

    /// Logs principal `i` in (enrolling it on first sight), binds its
    /// project and the registry, and returns the monitor ops spent.
    fn open_session(&mut self, i: u64, stats: &mut TrafficStats) -> bool {
        let user = self.model.principal(i);
        if self.enrolled.insert(i) {
            self.sys
                .world
                .auth
                .register(&user, &self.model.password(i), self.model.clearance(i));
            stats.enrollments += 1;
        }
        let Ok(out) = login(
            &mut self.sys.world,
            &user,
            &self.model.password(i),
            Label::BOTTOM,
            4,
        ) else {
            return false;
        };
        stats.logins += 1;
        let pid = out.pid;
        let root = self.sys.world.bind_root(pid);
        let udd = Monitor::initiate_dir(&mut self.sys.world, pid, root, "udd");
        let proj = Monitor::initiate_dir(
            &mut self.sys.world,
            pid,
            udd,
            &format!("P{}", self.model.project_of(i)),
        );
        stats.ops += 2;
        stats.completed += 2;
        let roster = Monitor::initiate(&mut self.sys.world, pid, proj, "roster");
        let registry = Monitor::initiate(&mut self.sys.world, pid, udd, "registry");
        stats.ops += 2;
        stats.initiations += 2;
        let (Ok(roster), Ok(registry)) = (roster, registry) else {
            self.sys.world.destroy_process(pid);
            return false;
        };
        stats.completed += 2;
        self.sessions.push(Session {
            idx: i,
            pid,
            proj,
            roster,
            registry,
        });
        true
    }

    /// Closes the oldest session: one *batched* audit emission for the
    /// logout records, then the process record is destroyed.
    fn close_oldest(&mut self, stats: &mut TrafficStats) {
        if self.sessions.is_empty() {
            return;
        }
        let s = self.sessions.remove(0);
        let user = self.model.principal(s.idx);
        self.sys.world.audit_batch(vec![
            (
                Some(user.clone()),
                AuditEvent::Lifecycle {
                    what: format!("logout U{}", s.idx),
                },
            ),
            (
                Some(user),
                AuditEvent::Lifecycle {
                    what: "process destroyed".into(),
                },
            ),
        ]);
        self.sys.world.destroy_process(s.pid);
        stats.logouts += 1;
    }

    /// Live sessions.
    pub fn nr_sessions(&self) -> usize {
        self.sessions.len()
    }
}

/// Drives `target_ops` monitor-mediated operations of production-shaped
/// traffic: read-dominated segment access, gate calls, initiation churn,
/// directory queries, a trickle of denied probes, and login churn paced
/// so thousands of sessions cycle over a big run regardless of rung.
pub fn run_traffic(sw: &mut ScaleWorld, target_ops: u64, seed: u64) -> TrafficStats {
    let mut stats = TrafficStats::default();
    let mut rng = SplitMix64::new(0xe18 ^ seed);
    // Sessions cycle at a fixed per-op rate so the op mix — including
    // the page faults a fresh session's roster takes — is identical at
    // every rung; that makes cycles-per-op comparable across
    // populations. The rate is low because login deliberately burns a
    // slow password hash.
    let churn_every = 2_048;
    // Warm pool.
    while sw.sessions.len() < MAX_SESSIONS.min(8) && stats.ops < target_ops {
        let i = rng.below(sw.model.population);
        sw.open_session(i, &mut stats);
    }
    let mut since_churn = 0u64;
    while stats.ops < target_ops {
        if sw.sessions.is_empty() {
            let i = rng.below(sw.model.population);
            if !sw.open_session(i, &mut stats) {
                // Deterministic model: a failed open means a kernel bug,
                // not bad luck. Keep going; the completion claim counts.
                continue;
            }
        }
        since_churn += 1;
        if since_churn >= churn_every {
            since_churn = 0;
            if sw.sessions.len() >= MAX_SESSIONS {
                sw.close_oldest(&mut stats);
            }
            let i = rng.below(sw.model.population);
            sw.open_session(i, &mut stats);
            continue;
        }
        let s = rng.below(sw.sessions.len() as u64) as usize;
        let (pid, proj, roster, registry) = {
            let s = &sw.sessions[s];
            (s.pid, s.proj, s.roster, s.registry)
        };
        let world = &mut sw.sys.world;
        match rng.below(100) {
            // 62%: reads — registry (the hot-ACL object) and the roster.
            r @ 0..=61 => {
                let seg = if r % 2 == 0 { registry } else { roster };
                let ok = Monitor::read(world, pid, seg, rng.below(64) as usize).is_ok();
                stats.ops += 1;
                stats.reads += 1;
                if ok {
                    stats.completed += 1;
                } else {
                    stats.denied += 1;
                }
            }
            // 12%: writes to the member-writable roster.
            62..=73 => {
                let ok = Monitor::write(
                    world,
                    pid,
                    roster,
                    rng.below(64) as usize,
                    Word::new(stats.ops),
                )
                .is_ok();
                stats.ops += 1;
                stats.writes += 1;
                if ok {
                    stats.completed += 1;
                } else {
                    stats.denied += 1;
                }
            }
            // 15%: gate calls (the metering export gate — user-available).
            74..=88 => {
                let ok = Monitor::call_gate(world, pid, "hcs_", "metering_get").is_ok();
                stats.ops += 1;
                stats.gate_calls += 1;
                if ok {
                    stats.completed += 1;
                } else {
                    stats.denied += 1;
                }
            }
            // 6%: initiation churn — terminate the roster, re-initiate it.
            89..=94 => {
                let t = Monitor::terminate(world, pid, roster).is_ok();
                let r2 = Monitor::initiate(world, pid, proj, "roster");
                stats.ops += 2;
                stats.terminations += 1;
                stats.initiations += 1;
                stats.completed += u64::from(t);
                match r2 {
                    Ok(new_roster) => {
                        stats.completed += 1;
                        sw.sessions[s].roster = new_roster;
                    }
                    Err(_) => stats.denied += 1,
                }
            }
            // 2%: directory listings.
            95..=96 => {
                let ok = Monitor::list_dir(world, pid, proj).is_ok();
                stats.ops += 1;
                stats.listings += 1;
                if ok {
                    stats.completed += 1;
                } else {
                    stats.denied += 1;
                }
            }
            // 1%: status queries.
            97 => {
                let ok = Monitor::status(world, pid, proj, "roster").is_ok();
                stats.ops += 1;
                stats.statuses += 1;
                if ok {
                    stats.completed += 1;
                } else {
                    stats.denied += 1;
                }
            }
            // 2%: mostly another read; rarely a probe at a privileged
            // gate — denied, audited, and kept rare enough that the
            // audit log stays bounded over 10^7 ops.
            _ => {
                if rng.below(64) == 0 {
                    let ok = Monitor::call_gate(world, pid, "hphcs_", "shutdown").is_ok();
                    stats.ops += 1;
                    stats.gate_calls += 1;
                    if ok {
                        stats.completed += 1;
                    } else {
                        stats.denied += 1;
                    }
                } else {
                    let ok = Monitor::read(world, pid, registry, rng.below(64) as usize).is_ok();
                    stats.ops += 1;
                    stats.reads += 1;
                    if ok {
                        stats.completed += 1;
                    } else {
                        stats.denied += 1;
                    }
                }
            }
        }
    }
    stats
}

/// Samples the registry ACL: indexed verdicts vs the linear spec, plus
/// the indexed work-units spent. Returns
/// `(mismatches, evals, work_units, linear_equivalent_per_eval)`.
pub fn acl_differential(sw: &ScaleWorld, samples: u64) -> (u64, u64, u64, u64) {
    let acl = sw.registry_acl();
    let model = &sw.model;
    let step = (model.population / samples.max(1)).max(1);
    let mut mismatches = 0u64;
    let mut work = 0u64;
    let mut evals = 0u64;
    for j in 0..samples {
        let user = model.principal((j * step) % model.population);
        let (indexed, w) = acl.effective_counted(&user);
        if indexed != acl.effective_linear(&user) {
            mismatches += 1;
        }
        work += u64::from(w);
        evals += 1;
    }
    // Principals outside the population miss the exact index and pay the
    // (short, constant) wildcard list.
    for j in 0..samples / 4 {
        let ghost = UserId::new(&format!("Ghost{j}"), "P0", "a");
        let (indexed, w) = acl.effective_counted(&ghost);
        if indexed != acl.effective_linear(&ghost) {
            mismatches += 1;
        }
        work += u64::from(w);
        evals += 1;
    }
    (mismatches, evals, work, acl.entries().len() as u64)
}

/// Samples hierarchy lookups: indexed name and uid resolution vs the
/// retained linear scans. Returns the mismatch count.
pub fn lookup_differential(sw: &ScaleWorld, samples: u64) -> u64 {
    let fs = &sw.sys.world.fs;
    let model = &sw.model;
    let mut mismatches = 0u64;
    let uid_of = |b: Option<&mks_fs::Branch>| b.map(|b| b.uid);
    for j in 0..samples {
        let k = (j as usize * 7) % model.nr_projects();
        let name = format!("P{k}");
        let fast = uid_of(fs.peek_branch(sw.udd_uid, &name));
        let slow = uid_of(fs.peek_branch_linear(sw.udd_uid, &name));
        if fast != slow {
            mismatches += 1;
        }
        if let Some(uid) = fast {
            let fast_dir = fs.find_by_uid(uid).map(|(d, b)| (d, b.uid));
            let slow_dir = fs.find_by_uid_linear(uid).map(|(d, b)| (d, b.uid));
            if fast_dir != slow_dir {
                mismatches += 1;
            }
        }
        let ghost = format!("nosuch{j}");
        if uid_of(fs.peek_branch(sw.udd_uid, &ghost))
            != uid_of(fs.peek_branch_linear(sw.udd_uid, &ghost))
        {
            mismatches += 1;
        }
    }
    mismatches
}

/// Checks that one [`mks_kernel::KernelWorld::audit_batch`] call leaves
/// the log and the observatory byte-identical to the same records
/// emitted one `audit` call at a time on an identical (uninjected)
/// world. Returns `true` on exact parity.
pub fn audit_batch_parity() -> bool {
    let who = |i: u64| Some(UserId::new(&format!("W{i}"), "Parity", "a"));
    let events = |tag: &str| -> Vec<(Option<UserId>, AuditEvent)> {
        (0..8)
            .map(|i| {
                let ev = match i % 4 {
                    0 => AuditEvent::AccessDenied {
                        what: format!("{tag} probe {i}"),
                    },
                    1 => AuditEvent::Login {
                        success: i % 2 == 0,
                    },
                    2 => AuditEvent::GateRefused {
                        target: format!("{tag}${i}"),
                    },
                    _ => AuditEvent::Lifecycle {
                        what: format!("{tag} life {i}"),
                    },
                };
                (who(i), ev)
            })
            .collect()
    };
    let mut singles = System::new(KernelConfig::kernel());
    for (w, ev) in events("x") {
        singles.world.audit(w, ev);
    }
    let mut batched = System::new(KernelConfig::kernel());
    batched.world.audit_batch(events("x"));
    let log_equal = singles.world.log.records() == batched.world.log.records()
        && singles.world.log.clock_skews() == batched.world.log.clock_skews();
    let obs_equal = singles
        .world
        .vm
        .machine
        .trace
        .read_observatory(|o| o.totals().denials)
        == batched
            .world
            .vm
            .machine
            .trace
            .read_observatory(|o| o.totals().denials);
    log_equal && obs_equal
}

/// A deterministic digest of the observable world state — used by the
/// byte-identical-generation test. FNV-1a over the clock, the hierarchy
/// shape under `>udd`, the registry ACL, and the audit log.
pub fn world_digest(sw: &ScaleWorld) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    let world = &sw.sys.world;
    eat(&world.vm.machine.clock.now().to_le_bytes());
    eat(&(world.fs.nr_directories() as u64).to_le_bytes());
    for name in world.fs.child_names(sw.udd_uid) {
        eat(name.as_bytes());
        if let Some(b) = world.fs.peek_branch(sw.udd_uid, &name) {
            eat(&b.uid.0.to_le_bytes());
        }
    }
    for e in sw.registry_acl().entries() {
        eat(e.person.as_bytes());
        eat(e.project.as_bytes());
        eat(e.tag.as_bytes());
    }
    for r in world.log.records() {
        eat(&r.seq.to_le_bytes());
        eat(&r.at.to_le_bytes());
        if let Some(w) = &r.who {
            eat(w.person.as_bytes());
        }
    }
    eat(&world.log.clock_skews().to_le_bytes());
    h
}

/// Everything E18 measures at one population rung.
#[derive(Clone, Debug)]
pub struct RungMeasurement {
    /// Registered principals at this rung.
    pub population: u64,
    /// Projects in the model.
    pub nr_projects: u64,
    /// Members of the largest project.
    pub largest_project: u64,
    /// Exact entries on the registry ACL.
    pub registry_entries: u64,
    /// Monitor-mediated ops driven.
    pub ops: u64,
    /// Simulated cycles the traffic consumed.
    pub sim_cycles: u64,
    /// Simulated cycles per op.
    pub cycles_per_op: f64,
    /// Hierarchy lookups during traffic.
    pub lookups: u64,
    /// Branch-slot probes those lookups spent.
    pub probes: u64,
    /// Probes per lookup (healthy hierarchy: ~1, any rung).
    pub probes_per_lookup: f64,
    /// ACL work-units per evaluation on the indexed path.
    pub acl_work_per_eval: f64,
    /// What a full linear scan would examine per evaluation.
    pub acl_linear_equiv: u64,
    /// Indexed-vs-linear ACL verdict mismatches (sampled).
    pub acl_mismatches: u64,
    /// Indexed-vs-linear hierarchy lookup mismatches (sampled).
    pub lookup_mismatches: u64,
    /// User-available gate entries after the run.
    pub gate_census: u64,
    /// Traffic tallies.
    pub stats: TrafficStats,
}

/// Runs one rung: build the population's world, drive `target_ops` of
/// traffic, then measure work-units and run the sampled differentials.
pub fn run_rung(population: u64, seed: u64, target_ops: u64) -> RungMeasurement {
    let model = PopulationModel::new(population, seed);
    let mut sw = build_world(&model);
    sw.sys.world.fs.reset_lookup_work();
    let start = sw.sys.world.vm.machine.clock.now();
    let stats = run_traffic(&mut sw, target_ops, seed);
    let sim_cycles = sw.sys.world.vm.machine.clock.now() - start;
    let (lookups, probes) = sw.sys.world.fs.lookup_work();
    let (acl_mismatches, acl_evals, acl_work, acl_linear_equiv) = acl_differential(&sw, 1_000);
    let lookup_mismatches = lookup_differential(&sw, 200);
    RungMeasurement {
        population,
        nr_projects: model.nr_projects() as u64,
        largest_project: model.largest_project(),
        registry_entries: model.registry_entries(),
        ops: stats.ops,
        sim_cycles,
        cycles_per_op: sim_cycles as f64 / stats.ops.max(1) as f64,
        lookups,
        probes,
        probes_per_lookup: probes as f64 / lookups.max(1) as f64,
        acl_work_per_eval: acl_work as f64 / acl_evals.max(1) as f64,
        acl_linear_equiv,
        acl_mismatches,
        lookup_mismatches,
        gate_census: sw.sys.world.gates.user_available_entries() as u64,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_partitions_exactly() {
        for pop in [1_000u64, 10_000, 123_457] {
            let m = PopulationModel::new(pop, 7);
            let total: u64 = (0..m.nr_projects()).map(|k| m.project_size(k)).sum();
            assert_eq!(total, pop);
            // Zipf skew: the largest project dwarfs the smallest.
            assert!(m.largest_project() > m.project_size(m.nr_projects() - 1));
            // Membership is consistent with the ranges.
            for i in [0, pop / 3, pop - 1] {
                let k = m.project_of(i);
                assert!(m.project_size(k) > 0);
                let u = m.principal(i);
                assert_eq!(u.project, format!("P{k}"));
            }
        }
    }

    #[test]
    fn small_world_traffic_is_deterministic() {
        let run = || {
            let model = PopulationModel::new(2_000, 42);
            let mut sw = build_world(&model);
            let stats = run_traffic(&mut sw, 5_000, 42);
            (world_digest(&sw), stats.ops, stats.completed, stats.logins)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn differentials_are_clean_on_a_small_world() {
        let model = PopulationModel::new(2_000, 3);
        let mut sw = build_world(&model);
        run_traffic(&mut sw, 5_000, 3);
        let (acl_mm, evals, work, linear) = acl_differential(&sw, 500);
        assert_eq!(acl_mm, 0);
        assert!(evals > 0 && work >= evals);
        assert!(linear >= 16);
        assert_eq!(lookup_differential(&sw, 100), 0);
    }

    #[test]
    fn audit_batching_is_byte_identical() {
        assert!(audit_batch_parity());
    }

    #[test]
    fn traffic_completes_and_churns() {
        let model = PopulationModel::new(1_000, 9);
        let mut sw = build_world(&model);
        let stats = run_traffic(&mut sw, 20_000, 9);
        assert!(stats.ops >= 20_000);
        assert!(
            stats.completed as f64 >= stats.ops as f64 * 0.9,
            "{stats:?}"
        );
        assert!(stats.logins > 8, "{stats:?}");
        assert!(sw.nr_sessions() <= MAX_SESSIONS);
    }
}
