//! # mks-bench — the experiment harness
//!
//! One binary per claim in the paper (experiments E1–E18 and the A1–A4
//! ablations, see `DESIGN.md` §4 and `EXPERIMENTS.md`), plus shared
//! workload drivers and report formatting. Run any experiment with
//!
//! ```text
//! cargo run -p mks-bench --bin exp_e1_linker_gates
//! ```
//!
//! run the whole suite (and regenerate `results/`) with
//!
//! ```text
//! cargo run -p mks-bench --bin exp_all
//! ```
//!
//! and the Criterion benches with `cargo bench -p mks-bench`.
//!
//! The measurement logic lives in [`experiments`] — each binary is a thin
//! printing wrapper — and every paper claim is encoded as a machine-checked
//! shape in [`claims`], asserted by `tests/claims.rs` and the `exp_all`
//! runner (which CI gates on).

pub mod claims;
pub mod drivers;
pub mod experiments;
pub mod perf;
pub mod report;
pub mod scale;

pub use report::Table;
