//! # mks-bench — the experiment harness
//!
//! One binary per claim in the paper (experiments E1–E14, see
//! `DESIGN.md` §4 and `EXPERIMENTS.md`), plus shared workload drivers and
//! report formatting. Run any experiment with
//!
//! ```text
//! cargo run -p mks-bench --bin exp_e1_linker_gates
//! ```
//!
//! and the Criterion benches with `cargo bench -p mks-bench`.

pub mod drivers;
pub mod report;

pub use report::Table;
