//! E20 — the replayable kernel: every state mutation flows through a
//! sealed commit log, and folding the log back rebuilds the live
//! kernel bit-exactly at every commit boundary.
//!
//! The paper's certification argument is about *checkable history*:
//! only the kernel need be considered to certify the system, and E15
//! pins the first instant of that history (boot determinism). This
//! experiment extends the pin to the whole run. A recorded workload —
//! the E15 fault mix under seeded injection plans, and the E16 overload
//! ladder under admission control — leaves a sealed [`CommitLog`] plus
//! a [`StateDigest`] at every boundary; replaying the log on a fresh
//! machine must reproduce every digest field (audit log, metrics,
//! census, clock, labels, boot hash, chain head) with zero mismatches.
//! Tampered logs are either rejected with typed errors (raw tampering
//! breaks the seal chain) or caught by the differential (covert
//! re-sealing moves the boundary digests); three deliberate
//! [`ReplayMutation`] arms prove the harness has teeth, mirroring E15's
//! `SalvageMutation`. The commit-log position rides the existing
//! read-only `hcs_$metering_get` export, so the gate census stays at
//! the kernel's 54.

use std::fmt::Write;

use mks_kernel::statemachine::workload::{
    record_fault_run, record_overload_ladder, RecordedRun, WorkloadSpec,
};
use mks_kernel::statemachine::{
    reduce, replay_differential, restore, snapshot_at, Commit, CommitLog, Genesis, ReplayError,
    ReplayMutation, TimeTravel,
};
use mks_kernel::syslog::AuditEvent;
use mks_kernel::world::admin_user;
use mks_kernel::Monitor;
use mks_trace::Snapshot;

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::{banner, Table};

const QUOTE: &str =
    "only this kernel need be considered in order to certify the security properties of the system";

/// Seeded fault plans in the pinned sweep (the wide randomized sweep
/// lives in `tests/replay.rs`; this one regenerates `results/`
/// byte-identically).
const FAULT_SEEDS: u64 = 16;
/// Seeded overload-plan fault runs (admission armed under the plan).
const OVERLOAD_SEEDS: u64 = 8;
/// Recorded overload ladders.
const LADDER_SEEDS: u64 = 3;
/// Seeds given to each covert mutation arm.
const MUTATION_SEEDS: u64 = 6;

/// One recorded run's replay verdicts.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload family: `fault`, `overload`, `ladder`.
    pub family: &'static str,
    /// The workload seed.
    pub seed: u64,
    /// Commits sealed.
    pub commits: u64,
    /// Whether the `Crash` site stopped the workload mid-stream.
    pub crashed: bool,
    /// `Overload` audit records (admission sheds) the run produced.
    pub sheds: u64,
    /// Boundary mismatches between the live run and its replay.
    pub mismatches: u64,
    /// Whether the boot-check commit saw divergence.
    pub boot_divergence: bool,
    /// Denials whose time-travel join found no provenance commit.
    pub orphan_denials: u64,
    /// Boundaries whose gate census left the kernel's 54.
    pub census_drift: u64,
}

/// The campaign's observations.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Per-run replay verdicts across all three workload families.
    pub runs: Vec<RunResult>,
    /// Snapshot/restore round-trip divergences across sampled prefixes.
    pub snapshot_divergences: u64,
    /// Prefixes the snapshot round-trip sampled.
    pub snapshot_prefixes: u64,
    /// Raw-tamper categories rejected with the right typed error (of 4:
    /// truncation, splice, payload rewrite, foreign genesis).
    pub typed_rejections: u64,
    /// Covert mutation arms detected on *every* seed given to them
    /// (of 3: skip-commit, reorder-pair, stale-snapshot).
    pub arms_detected: u64,
    /// Per-arm detection counts over [`MUTATION_SEEDS`] seeds.
    pub arm_hits: [(&'static str, u64); 3],
    /// Whether the metering gate's JSON carries the commit-log position
    /// and chain head (the read-only export).
    pub gate_exports_log: bool,
    /// The boundary CSV artifact (one sampled run per family).
    pub boundary_csv: String,
}

fn sheds_in(run: &RecordedRun) -> u64 {
    run.sm
        .world()
        .log
        .records()
        .iter()
        .filter(|r| matches!(r.event, AuditEvent::Overload { .. }))
        .count() as u64
}

fn examine(genesis: &Genesis, family: &'static str, seed: u64, run: &RecordedRun) -> RunResult {
    let log = &run.sm.world().commits;
    let mismatches = match replay_differential(genesis, log, &run.boundaries) {
        Ok(m) => m.len() as u64,
        // A typed rejection of an honest log counts as total divergence.
        Err(_) => u64::MAX,
    };
    let tt = TimeTravel::new(log, &run.boundaries).expect("recorded artifacts match");
    let orphan_denials = tt
        .blame_denials(&run.sm.world().log)
        .iter()
        .filter(|(_, commit)| commit.is_none())
        .count() as u64;
    let census_drift = run.boundaries.iter().filter(|b| b.census != 54).count() as u64;
    RunResult {
        family,
        seed,
        commits: log.len(),
        crashed: run.crashed,
        sheds: sheds_in(run),
        mismatches,
        boot_divergence: run.boot_divergence,
        orphan_denials,
        census_drift,
    }
}

/// Appends one run's boundary digests to the CSV artifact.
fn boundary_rows(csv: &mut String, family: &str, seed: u64, run: &RecordedRun) {
    for b in &run.boundaries {
        writeln!(
            csv,
            "{family},{seed},{},{},{},{:016x},{:016x},{},{},{:016x},{:016x}",
            b.seq,
            b.clock,
            b.audit_records,
            b.audit_digest,
            b.metrics_digest,
            b.census,
            b.processes,
            b.label_digest,
            b.log_digest,
        )
        .unwrap();
    }
}

/// Snapshot/restore at a spread of prefixes of one recorded log.
fn snapshot_sweep(genesis: &Genesis, run: &RecordedRun) -> (u64, u64) {
    let log = &run.sm.world().commits;
    let mut prefixes = 0u64;
    let mut divergences = 0u64;
    let mut cuts = vec![0, 1, log.len()];
    for k in 1..6 {
        cuts.push(k * log.len() / 6);
    }
    cuts.dedup();
    for upto in cuts {
        prefixes += 1;
        let ok = snapshot_at(genesis, log, upto)
            .and_then(|snap| restore(&snap).map(|sm| (snap, sm)))
            .map(|(snap, sm)| {
                sm.digest() == snap.digest && snap.digest == run.boundaries[upto as usize]
            })
            .unwrap_or(false);
        if !ok {
            divergences += 1;
        }
    }
    (prefixes, divergences)
}

/// The four raw-tampering categories, each of which must draw the
/// *right* typed error out of verification.
fn typed_rejections(genesis: &Genesis, run: &RecordedRun) -> u64 {
    let log = &run.sm.world().commits;
    let mut hits = 0u64;

    let cut = log.prefix(log.len() - 2);
    if cut.verify().is_ok()
        && matches!(
            cut.verify_head(log.len(), log.head()),
            Err(ReplayError::Truncated { .. })
        )
    {
        hits += 1;
    }

    let mut entries = log.entries().to_vec();
    entries.remove(2);
    if matches!(
        CommitLog::from_parts(log.base(), entries).verify(),
        Err(ReplayError::NonMonotonic { .. })
    ) {
        hits += 1;
    }

    let mut entries = log.entries().to_vec();
    entries[4].commit = Commit::Tick { times: 99 };
    if matches!(
        CommitLog::from_parts(log.base(), entries).verify(),
        Err(ReplayError::ChainMismatch { .. })
    ) {
        hits += 1;
    }

    let foreign = CommitLog::from_parts(log.base() ^ 0xdead, log.entries().to_vec());
    if matches!(
        reduce(genesis, &foreign),
        Err(ReplayError::BaseMismatch { .. })
    ) {
        hits += 1;
    }
    hits
}

/// Runs every covert arm over the mutation seeds; an arm counts as
/// detected only if it is caught on *every* seed.
fn mutation_arms(genesis: &Genesis) -> [(&'static str, u64); 3] {
    let mut skip = 0u64;
    let mut reorder = 0u64;
    let mut stale = 0u64;
    for seed in 0..MUTATION_SEEDS {
        let run = record_fault_run(genesis, &WorkloadSpec::faults(seed));
        let log = &run.sm.world().commits;

        let (mutated, applied) = ReplayMutation::SkipCommit { nth: log.len() / 2 }.mutate_log(log);
        let caught = applied
            && mutated.verify().is_ok()
            && match replay_differential(genesis, &mutated, &run.boundaries) {
                Err(ReplayError::Truncated { .. }) => true,
                Ok(m) => !m.is_empty(),
                Err(_) => false,
            };
        skip += u64::from(caught);

        let caught = (0..log.len() - 1)
            .find(|&i| ReplayMutation::ReorderPair { first: i }.mutate_log(log).1)
            .map(|first| {
                let (mutated, _) = ReplayMutation::ReorderPair { first }.mutate_log(log);
                mutated.verify().is_ok()
                    && replay_differential(genesis, &mutated, &run.boundaries)
                        .map(|m| !m.is_empty())
                        .unwrap_or(false)
            })
            .unwrap_or(false);
        reorder += u64::from(caught);

        let caught = ReplayMutation::StaleSnapshot {
            upto: log.len() / 2,
        }
        .forge_snapshot(genesis, log)
        .ok()
        .flatten()
        .map(|forged| matches!(restore(&forged), Err(ReplayError::SnapshotStale { .. })))
        .unwrap_or(false);
        stale += u64::from(caught);
    }
    [
        ("skip-commit", skip),
        ("reorder-pair", reorder),
        ("stale-snapshot", stale),
    ]
}

/// The read-only export: a world whose commit log sealed history
/// answers `hcs_$metering_get` with the log position and chain head
/// attached to the ordinary metering snapshot. Observation through the
/// state machine is digest-only, so the JSON is read back through the
/// monitor the way a user process would: a recorded run's sealed log
/// grafted onto a live system, then one gate call.
fn gate_exports_log(genesis: &Genesis) -> bool {
    let run = record_fault_run(genesis, &WorkloadSpec::faults(1));
    let mut sys = mks_kernel::world::System::new(mks_kernel::KernelConfig::kernel());
    sys.world.commits = run.sm.world().commits.clone();
    let pid = sys
        .world
        .create_process(admin_user(), mks_mls::Label::BOTTOM, 4);
    let Ok(json) = Monitor::metering_snapshot(&mut sys.world, pid) else {
        return false;
    };
    let Ok(snap) = Snapshot::from_json(&json) else {
        return false;
    };
    snap.replay
        .map(|r| r.commits == sys.world.commits.len() && r.log_digest == sys.world.commits.head())
        .unwrap_or(false)
}

/// Runs the campaign: the recorded sweeps, the snapshot round-trips,
/// the typed rejections, the mutation arms, and the gate export.
pub fn measure() -> Measurement {
    let genesis = Genesis::kernel_small();
    let mut runs = Vec::new();
    let mut boundary_csv = String::from(
        "family,seed,boundary,clock,audit_records,audit_digest,metrics_digest,census,processes,label_digest,log_digest\n",
    );

    let mut snapshot_prefixes = 0u64;
    let mut snapshot_divergences = 0u64;
    let mut rejections = 0u64;

    for seed in 0..FAULT_SEEDS {
        let run = record_fault_run(&genesis, &WorkloadSpec::faults(seed));
        if seed == 0 {
            boundary_rows(&mut boundary_csv, "fault", seed, &run);
            let (p, d) = snapshot_sweep(&genesis, &run);
            snapshot_prefixes += p;
            snapshot_divergences += d;
            rejections = typed_rejections(&genesis, &run);
        }
        runs.push(examine(&genesis, "fault", seed, &run));
    }
    for seed in 0..OVERLOAD_SEEDS {
        let run = record_fault_run(&genesis, &WorkloadSpec::overload(seed));
        if seed == 0 {
            boundary_rows(&mut boundary_csv, "overload", seed, &run);
        }
        runs.push(examine(&genesis, "overload", seed, &run));
    }
    for seed in 0..LADDER_SEEDS {
        let run = record_overload_ladder(&genesis, seed);
        if seed == 0 {
            boundary_rows(&mut boundary_csv, "ladder", seed, &run);
            let (p, d) = snapshot_sweep(&genesis, &run);
            snapshot_prefixes += p;
            snapshot_divergences += d;
        }
        runs.push(examine(&genesis, "ladder", seed, &run));
    }

    let arm_hits = mutation_arms(&genesis);
    let arms_detected = arm_hits
        .iter()
        .filter(|(_, hits)| *hits == MUTATION_SEEDS)
        .count() as u64;

    Measurement {
        runs,
        snapshot_divergences,
        snapshot_prefixes,
        typed_rejections: rejections,
        arms_detected,
        arm_hits,
        gate_exports_log: gate_exports_log(&genesis),
        boundary_csv,
    }
}

fn total_mismatches(m: &Measurement) -> u64 {
    m.runs.iter().map(|r| r.mismatches).sum()
}

fn total<F: Fn(&RunResult) -> u64>(m: &Measurement, f: F) -> u64 {
    m.runs.iter().map(f).sum()
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner("E20: the replayable kernel", &format!("\"{QUOTE}\""));
    let mut t = Table::new(&[
        "workload",
        "seed",
        "commits",
        "crashed",
        "sheds",
        "mismatches",
        "orphan denials",
    ]);
    for r in &m.runs {
        t.row(&[
            r.family.to_string(),
            format!("{:#x}", r.seed),
            r.commits.to_string(),
            if r.crashed { "yes".into() } else { "no".into() },
            r.sheds.to_string(),
            r.mismatches.to_string(),
            r.orphan_denials.to_string(),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "sweep: {} recorded runs, {} commits sealed, {} mid-workload crashes,",
        m.runs.len(),
        total(m, |r| r.commits),
        m.runs.iter().filter(|r| r.crashed).count(),
    )
    .unwrap();
    writeln!(
        out,
        "{} admission sheds, {} boundary mismatches live-vs-replayed.",
        total(m, |r| r.sheds),
        total_mismatches(m),
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "snapshot/restore: {} prefixes round-tripped, {} divergence(s).",
        m.snapshot_prefixes, m.snapshot_divergences
    )
    .unwrap();
    writeln!(
        out,
        "raw tampering: {}/4 categories rejected with typed errors.",
        m.typed_rejections
    )
    .unwrap();
    writeln!(
        out,
        "metering gate exports the commit-log digest: {}.",
        if m.gate_exports_log { "yes" } else { "NO" }
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "mutation check — the differential must catch a covert re-seal:"
    )
    .unwrap();
    for (arm, hits) in &m.arm_hits {
        writeln!(out, "  {arm:<15} caught on {hits}/{MUTATION_SEEDS} seeds").unwrap();
    }
    writeln!(out).unwrap();
    writeln!(
        out,
        "Consequence: the kernel's whole history is checkable, not trusted —"
    )
    .unwrap();
    writeln!(
        out,
        "any state the kernel reaches is the fold of a sealed public log,"
    )
    .unwrap();
    writeln!(
        out,
        "and a reviewer can rebuild and audit any instant of it bit-exactly."
    )
    .unwrap();
    out
}

/// The expectations over the campaign.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    vec![
        ClaimResult::new(
            "E20.differential-clean",
            "E20",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            total_mismatches(m) as f64,
            "boundary mismatches between live runs and their replays",
        ),
        ClaimResult::new(
            "E20.crash-coverage",
            "E20",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            m.runs.iter().filter(|r| r.crashed).count() as f64,
            "runs the Crash site stopped mid-workload (the differential covers crashed histories)",
        ),
        ClaimResult::new(
            "E20.shed-coverage",
            "E20",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            total(m, |r| r.sheds) as f64,
            "admission sheds inside replayed histories (the differential covers degraded mode)",
        ),
        ClaimResult::new(
            "E20.boot-pinned",
            "E20",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.runs.iter().filter(|r| r.boot_divergence).count() as f64,
            "recorded runs whose boot-check commit saw image divergence",
        ),
        ClaimResult::new(
            "E20.snapshot-roundtrip",
            "E20",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.snapshot_divergences as f64,
            "snapshot/restore round-trip divergences across sampled prefixes",
        ),
        ClaimResult::new(
            "E20.typed-rejection",
            "E20",
            QUOTE,
            ClaimShape::ExactCount { expect: 4 },
            m.typed_rejections as f64,
            "raw-tamper categories rejected with the right typed error",
        ),
        ClaimResult::new(
            "E20.mutation-arms",
            "E20",
            QUOTE,
            ClaimShape::ExactCount { expect: 3 },
            m.arms_detected as f64,
            "covert mutation arms caught on every seed",
        ),
        ClaimResult::new(
            "E20.census-pinned",
            "E20",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            total(m, |r| r.census_drift) as f64,
            "commit boundaries where the gate census left 54",
        ),
        ClaimResult::new(
            "E20.gate-exports-log",
            "E20",
            QUOTE,
            ClaimShape::ExactCount { expect: 1 },
            f64::from(u8::from(m.gate_exports_log)),
            "metering gate JSON carries the commit-log position and chain head",
        ),
        ClaimResult::new(
            "E20.denials-attributable",
            "E20",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            total(m, |r| r.orphan_denials) as f64,
            "audited denials the time-travel join could not blame on a commit",
        ),
    ]
}

/// The full experiment.
pub fn run() -> ExperimentOutput {
    let m = measure();
    let mut out = ExperimentOutput::new(report(&m), claims(&m));
    out.artifacts
        .push(("e20_replay_boundaries.csv".into(), m.boundary_csv.clone()));
    out
}
