//! E13 — footnote 6: certify the compiler per program, not in general.
//!
//! "the compiler need compile correctly only the specific programs of the
//! kernel ... the compiler's effect on the kernel can be certified by
//! comparing the source code 'model' for each kernel module with the
//! compiler-produced object code 'implementation'."

use std::fmt::Write;

use mks_cert::kernel_modules::KERNEL_SOURCES;
use mks_cert::{compile, parse_program, validate, Op, Verdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::{banner, Table};

const QUOTE: &str =
    "footnote 6: the compiler need compile correctly only the specific programs of the kernel";

/// One kernel module's validation line.
#[derive(Debug, Clone)]
pub struct ModuleRow {
    /// Module name.
    pub name: &'static str,
    /// Procedures in the module.
    pub procedures: usize,
    /// Procedures certified.
    pub certified: usize,
    /// Differential vectors checked across them.
    pub vectors: usize,
}

/// Validation of every kernel procedure plus the mutation campaign.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Per-module validation results.
    pub modules: Vec<ModuleRow>,
    /// Procedures whose validation was rejected (must be 0).
    pub rejected: usize,
    /// Non-identity mutants generated.
    pub mutants: usize,
    /// Mutants killed in total.
    pub killed: usize,
    /// Of those, killed by the static (CFI/stack) checks.
    pub killed_by_static: usize,
    /// Mutants that survived (semantically equivalent rewrites).
    pub survived: usize,
}

impl Measurement {
    /// Total kernel procedures validated.
    pub fn procedures(&self) -> usize {
        self.modules.iter().map(|m| m.procedures).sum()
    }

    /// Mutation-campaign kill fraction.
    pub fn kill_rate(&self) -> f64 {
        self.killed as f64 / (self.killed + self.survived) as f64
    }
}

/// Applies one random mutation to the object code (a compiler-bug model).
fn mutate(code: &mut [Op], rng: &mut StdRng) {
    let i = rng.gen_range(0..code.len());
    code[i] = match rng.gen_range(0..6) {
        0 => Op::Push(rng.gen_range(-9..9)),
        1 => Op::Load(rng.gen_range(0..4)),
        2 => Op::Store(rng.gen_range(0..4)),
        3 => Op::Jmp(rng.gen_range(0..(code.len() as u32 + 8))),
        4 => match code[i] {
            Op::Add => Op::Sub,
            Op::Sub => Op::Add,
            Op::Lt => Op::Gt,
            Op::Gt => Op::Lt,
            other => other,
        },
        _ => Op::Ret,
    };
}

/// Validates every kernel procedure and runs the mutation campaign.
pub fn measure() -> Measurement {
    let mut modules = Vec::new();
    let mut rejected = 0;
    let mut all_procs = Vec::new();
    for (name, src) in KERNEL_SOURCES {
        let procs = parse_program(src).expect("kernel sources parse");
        let mut ok = 0;
        let mut vectors = 0;
        for p in &procs {
            let obj = compile(p).expect("kernel sources compile");
            match validate(p, &obj) {
                Verdict::Certified { vectors_checked } => {
                    ok += 1;
                    vectors += vectors_checked;
                }
                Verdict::Rejected { .. } => rejected += 1,
            }
            all_procs.push((p.clone(), obj));
        }
        modules.push(ModuleRow {
            name,
            procedures: procs.len(),
            certified: ok,
            vectors,
        });
    }

    // Mutation campaign: a buggy "compiler" whose output differs by one
    // operation must be caught.
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let mut killed = 0;
    let mut survived = 0;
    let mut killed_by_static = 0;
    const MUTANTS: usize = 1_000;
    for _ in 0..MUTANTS {
        let (src, obj) = &all_procs[rng.gen_range(0..all_procs.len())];
        let mut bad = obj.clone();
        mutate(&mut bad.code, &mut rng);
        if bad.code == obj.code {
            continue; // identity mutation: not a bug
        }
        match validate(src, &bad) {
            Verdict::Rejected { reason } => {
                killed += 1;
                if reason.contains("static") {
                    killed_by_static += 1;
                }
            }
            Verdict::Certified { .. } => survived += 1,
        }
    }
    Measurement {
        modules,
        rejected,
        mutants: killed + survived,
        killed,
        killed_by_static,
        survived,
    }
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "E13: per-program translation validation of the kernel's compiler",
        "footnote 6: compare each module's source 'model' with its object-code 'implementation'",
    );
    let mut t = Table::new(&["kernel module", "procedures", "verdicts", "vectors checked"]);
    for row in &m.modules {
        t.row(&[
            row.name.into(),
            row.procedures.to_string(),
            format!("{} certified", row.certified),
            row.vectors.to_string(),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "mutation campaign: {} mutants, {} killed ({} by static checks, {} by differential execution), {} survived",
        m.mutants,
        m.killed,
        m.killed_by_static,
        m.killed - m.killed_by_static,
        m.survived
    )
    .unwrap();
    writeln!(
        out,
        "kill rate: {:.1}% (survivors are semantically equivalent mutants, e.g. a",
        100.0 * m.kill_rate()
    )
    .unwrap();
    writeln!(
        out,
        "jump retargeted to an equivalent instruction — not miscompilations)."
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "The certified base never includes the compiler: each (source, object)"
    )
    .unwrap();
    writeln!(
        out,
        "pair is checked mechanically, which is footnote 6's entire point."
    )
    .unwrap();
    out
}

/// The paper's expectations over the validation.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    vec![
        ClaimResult::new(
            "E13.all-procedures-certified",
            "E13",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.rejected as f64,
            "kernel procedures whose translation validation was rejected",
        ),
        ClaimResult::new(
            "E13.nine-procedures",
            "E13",
            QUOTE,
            ClaimShape::ExactCount { expect: 9 },
            m.procedures() as f64,
            "KPL kernel procedures under validation",
        ),
        ClaimResult::new(
            "E13.mutants-caught",
            "E13",
            QUOTE,
            ClaimShape::AtLeast { min: 0.80 },
            m.kill_rate(),
            "fraction of single-op object-code mutants killed",
        ),
        ClaimResult::new(
            "E13.static-checks-contribute",
            "E13",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            m.killed_by_static as f64,
            "mutants killed by the static CFI/stack-balance checks alone",
        ),
    ]
}

/// Measurement + report + claims.
pub fn run() -> ExperimentOutput {
    let m = measure();
    ExperimentOutput::new(report(&m), claims(&m))
}
