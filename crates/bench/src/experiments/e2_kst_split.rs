//! E2 — "a reduction by a factor of ten in the size of the protected code
//! needed to manage the address space" (Bratt's reference-name/KST split).

use std::fmt::Write;

use mks_hw::module::Category;
use mks_kernel::{KernelConfig, SystemInventory};

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::{banner, Table};

const QUOTE: &str = "a reduction by a factor of ten in the size of the protected code needed to manage the address space";

/// Honest-gap note shared by the report and the claim record.
pub const GAP_NOTE: &str = "our legacy KST is a compact Rust reimplementation of Bratt's PL/I \
original, which carried far more error-handling and bookkeeping text per function; the measured \
shrink is severalfold, not 10x, while the direction, the 23->4 entry-point collapse, and the \
function's move to the user ring all reproduce";

/// Address-space code weights and entry points, per configuration.
#[derive(Debug, Clone, Copy)]
pub struct ConfigRow {
    /// Protected (ring-0/1) address-space statement weight.
    pub protected: u32,
    /// User-ring address-space statement weight.
    pub unprotected: u32,
    /// Protected naming entry points.
    pub gates: usize,
}

/// The KST split, measured.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Legacy configuration (naming in ring 0).
    pub legacy: ConfigRow,
    /// Kernel configuration (naming in the user ring).
    pub kernel: ConfigRow,
}

impl Measurement {
    /// Protected-code shrink factor (legacy / kernel).
    pub fn shrink_factor(&self) -> f64 {
        self.legacy.protected as f64 / self.kernel.protected as f64
    }

    /// Entry-point shrink factor (legacy / kernel naming gates).
    pub fn gate_factor(&self) -> f64 {
        self.legacy.gates as f64 / self.kernel.gates as f64
    }
}

fn row_of(inv: &SystemInventory, gates: usize) -> ConfigRow {
    let unprotected: u32 = inv
        .modules
        .iter()
        .filter(|m| !m.is_protected() && m.category == Category::AddressSpace)
        .map(|m| m.weight)
        .sum();
    ConfigRow {
        protected: inv.protected_weight_of(Category::AddressSpace),
        unprotected,
        gates,
    }
}

/// Audits the two configurations' address-space modules.
pub fn measure() -> Measurement {
    let legacy = SystemInventory::build(KernelConfig::legacy());
    let kernel = SystemInventory::build(KernelConfig::kernel());
    Measurement {
        legacy: row_of(&legacy, mks_kernel::gatetable::NAMING_GATES_LEGACY.len()),
        kernel: row_of(&kernel, mks_kernel::gatetable::NAMING_GATES_KERNEL.len()),
    }
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "E2: protected address-space-management code, before/after the KST split",
        &format!("\"{QUOTE}\""),
    );
    let mut t = Table::new(&[
        "configuration",
        "protected weight",
        "user-ring weight",
        "naming gates",
    ]);
    for (name, r) in [
        ("legacy supervisor", m.legacy),
        ("security kernel", m.kernel),
    ] {
        t.row(&[
            name.into(),
            r.protected.to_string(),
            r.unprotected.to_string(),
            r.gates.to_string(),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "protected-code reduction: {:.1}x (paper: ~10x)",
        m.shrink_factor()
    )
    .unwrap();
    writeln!(
        out,
        "protected naming gate reduction: {} -> {} ({:.1}x)",
        m.legacy.gates,
        m.kernel.gates,
        m.gate_factor()
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "note: the weights are measured statement counts of this repository's"
    )
    .unwrap();
    writeln!(
        out,
        "implementations (fs/src/kst_legacy.rs vs fs/src/kst.rs). Our compact"
    )
    .unwrap();
    writeln!(
        out,
        "reimplementation of the legacy KST understates the 1974 original, so"
    )
    .unwrap();
    writeln!(
        out,
        "the measured factor is smaller than the paper's; the direction and"
    )
    .unwrap();
    writeln!(
        out,
        "order (severalfold, plus 23->4 protected entry points) reproduce."
    )
    .unwrap();
    out
}

/// The paper's expectations over the split.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    vec![
        ClaimResult::new(
            "E2.protected-shrink",
            "E2",
            QUOTE,
            ClaimShape::FactorAtLeast {
                paper: 10.0,
                accept: 2.5,
            },
            m.shrink_factor(),
            "legacy / kernel protected address-space statement weight",
        )
        .with_gap(GAP_NOTE),
        ClaimResult::new(
            "E2.naming-gates-legacy",
            "E2",
            QUOTE,
            ClaimShape::ExactCount { expect: 23 },
            m.legacy.gates as f64,
            "protected naming entry points, legacy",
        ),
        ClaimResult::new(
            "E2.naming-gates-kernel",
            "E2",
            QUOTE,
            ClaimShape::ExactCount { expect: 4 },
            m.kernel.gates as f64,
            "protected naming entry points, kernel (segno interface)",
        ),
        ClaimResult::new(
            "E2.function-moved",
            "E2",
            QUOTE,
            ClaimShape::AtLeast { min: 100.0 },
            m.kernel.unprotected as f64,
            "user-ring naming statement weight (the function moved, it did not vanish)",
        ),
    ]
}

/// Measurement + report + claims.
pub fn run() -> ExperimentOutput {
    let m = measure();
    ExperimentOutput::new(report(&m), claims(&m))
}
