//! E15 — crash recovery under injected faults: the kernel comes back
//! securely, and the harness can prove it would notice if it did not.
//!
//! The paper's engineering chapters lean on two recovery mechanisms: the
//! salvager ("repairs the hierarchy", always restrictively) and
//! initialization from a pre-built memory image (the same protected state
//! on every boot). This experiment drives the deterministic
//! fault-injection layer (`mks-hw::inject`) through the crash-recovery
//! harness (`mks-kernel::recovery`): seeded plans drop wakeups, slow and
//! fail disk transfers, tear directory branches mid-write, corrupt
//! labels, warp audit timestamps, and kill the workload mid-operation;
//! recovery then re-boots and salvages, and the harness checks the
//! integrity invariants (labels only raised, no residual damage, gate
//! census unchanged, reference monitor still consulted, boot
//! determinism). Two deliberately-broken recovery paths — salvage
//! skipped, label lowered after repair — prove the invariant checks have
//! teeth.

use std::collections::BTreeSet;
use std::fmt::Write;

use mks_hw::{FaultEvent, FaultPlan, InjectKind};
use mks_kernel::recovery::{run_plan, run_seed, RecoveryOpts, RecoveryOutcome, SalvageMutation};

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::{banner, Table};

const QUOTE: &str = "the salvager repairs the hierarchy ... initialization from a pre-initialized memory image produces the same protected state";

/// Seeded plans in the main sweep. Pinned so `results/` regenerates
/// byte-identically; the big randomized sweep lives in
/// `tests/fault_injection.rs`.
const SWEEP_SEEDS: u64 = 24;

/// The campaign's observations.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Per-seed honest recovery outcomes.
    pub per_seed: Vec<RecoveryOutcome>,
    /// Crafted-plan outcomes guaranteeing every repair arm is exercised
    /// (`(detail, outcome)` for the tear-mode sweep).
    pub crafted: Vec<(u64, RecoveryOutcome)>,
    /// Distinct salvager repair arms reached across the whole campaign.
    pub kinds: Vec<&'static str>,
    /// Replay mismatches: seeds whose second run differed from the first.
    pub replay_mismatches: u64,
    /// Violations raised by the skip-salvage mutation run.
    pub skip_violations: usize,
    /// Violations raised by the lower-after-repair mutation run.
    pub lower_violations: usize,
}

/// A plan guaranteed to damage the tree: tear the first branch creations
/// with tear mode `detail`, at both a directory-shaped and a
/// segment-shaped hit.
fn crafted_plan(detail: u64) -> FaultPlan {
    FaultPlan::from_events(vec![
        FaultEvent {
            kind: InjectKind::TearBranch,
            nth: 0,
            detail,
        },
        FaultEvent {
            kind: InjectKind::TearBranch,
            nth: 3,
            detail,
        },
    ])
}

/// Runs the sweep, the crafted arm coverage, the replay check, and the
/// broken-salvager mutations.
pub fn measure() -> Measurement {
    let opts = RecoveryOpts::default();
    let mut kinds: BTreeSet<&'static str> = BTreeSet::new();

    let mut per_seed = Vec::new();
    let mut replay_mismatches = 0u64;
    for seed in 1..=SWEEP_SEEDS {
        let out = run_seed(seed, opts);
        if seed <= 4 && run_seed(seed, opts) != out {
            replay_mismatches += 1;
        }
        kinds.extend(out.problem_kinds.iter().copied());
        per_seed.push(out);
    }

    let mut crafted = Vec::new();
    for detail in 0..8 {
        let out = run_plan(&crafted_plan(detail), opts);
        kinds.extend(out.problem_kinds.iter().copied());
        crafted.push((detail, out));
    }

    // The mutation check: a deliberately-broken recovery path must be
    // caught. Reuse a crafted damaging plan so the skip has something to
    // miss; the lowering needs only a surviving non-BOTTOM label.
    let skip = run_plan(
        &crafted_plan(1),
        RecoveryOpts {
            mutation: SalvageMutation::SkipSalvage,
            ..opts
        },
    );
    let lower = run_plan(
        &FaultPlan::from_events(vec![]),
        RecoveryOpts {
            mutation: SalvageMutation::LowerAfterRepair,
            ..opts
        },
    );

    Measurement {
        per_seed,
        crafted,
        kinds: kinds.into_iter().collect(),
        replay_mismatches,
        skip_violations: skip.violations.len(),
        lower_violations: lower.violations.len(),
    }
}

fn total_violations(m: &Measurement) -> usize {
    m.per_seed
        .iter()
        .chain(m.crafted.iter().map(|(_, o)| o))
        .map(|o| o.violations.len())
        .sum()
}

fn total_problems(m: &Measurement) -> usize {
    m.per_seed
        .iter()
        .chain(m.crafted.iter().map(|(_, o)| o))
        .map(|o| o.problems_found)
        .sum()
}

fn crashes(m: &Measurement) -> usize {
    m.per_seed.iter().filter(|o| o.crashed).count()
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "E15: crash recovery under injected faults",
        &format!("\"{QUOTE}\""),
    );
    let mut t = Table::new(&[
        "seed",
        "ops",
        "crashed",
        "faults fired",
        "problems",
        "repaired",
        "violations",
    ]);
    for o in &m.per_seed {
        t.row(&[
            format!("{:#x}", o.seed),
            o.ops_run.to_string(),
            if o.crashed { "yes".into() } else { "no".into() },
            o.fired.len().to_string(),
            o.problems_found.to_string(),
            o.repaired.to_string(),
            o.violations.len().to_string(),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "sweep: {} seeded plans, {} mid-workload crashes, {} faults delivered,",
        m.per_seed.len(),
        crashes(m),
        m.per_seed.iter().map(|o| o.fired.len()).sum::<usize>()
    )
    .unwrap();
    writeln!(
        out,
        "{} hierarchy problems found and repaired, {} invariant violations.",
        total_problems(m),
        total_violations(m)
    )
    .unwrap();
    writeln!(out).unwrap();
    let mut t = Table::new(&["tear mode (detail)", "problems", "repair arms reached"]);
    for (detail, o) in &m.crafted {
        t.row(&[
            detail.to_string(),
            o.problems_found.to_string(),
            o.problem_kinds.join(", "),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "repair arms exercised across the campaign ({}): {}",
        m.kinds.len(),
        m.kinds.join(", ")
    )
    .unwrap();
    writeln!(
        out,
        "replay check: {} mismatch(es) re-running the first seeds.",
        m.replay_mismatches
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "mutation check — the harness must catch a broken recovery path:"
    )
    .unwrap();
    writeln!(
        out,
        "  salvage skipped entirely:   {} violation(s) raised",
        m.skip_violations
    )
    .unwrap();
    writeln!(
        out,
        "  label lowered after repair: {} violation(s) raised",
        m.lower_violations
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "Consequence: recovery is part of the kernel's security argument —"
    )
    .unwrap();
    writeln!(
        out,
        "the system returns from an induced crash to the same protected"
    )
    .unwrap();
    writeln!(
        out,
        "state, with every repair in the restrictive direction."
    )
    .unwrap();
    out
}

/// The paper's expectations over the campaign.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    vec![
        ClaimResult::new(
            "E15.invariants-hold",
            "E15",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            total_violations(m) as f64,
            "integrity-invariant violations across every honest recovery run",
        ),
        ClaimResult::new(
            "E15.damage-produced",
            "E15",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            total_problems(m) as f64,
            "hierarchy problems the injected faults produced (the sweep is not vacuous)",
        ),
        ClaimResult::new(
            "E15.crashes-exercised",
            "E15",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            crashes(m) as f64,
            "seeded runs killed mid-operation by a planned crash event",
        ),
        ClaimResult::new(
            "E15.all-repair-arms-reached",
            "E15",
            QUOTE,
            ClaimShape::ExactCount { expect: 8 },
            m.kinds.len() as f64,
            "distinct salvager repair arms exercised via injection",
        ),
        ClaimResult::new(
            "E15.recovery-deterministic",
            "E15",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.replay_mismatches as f64,
            "replay mismatches between identical seeded recovery runs",
        ),
        ClaimResult::new(
            "E15.broken-salvager-caught",
            "E15",
            QUOTE,
            ClaimShape::ExactCount { expect: 2 },
            [m.skip_violations, m.lower_violations]
                .iter()
                .filter(|&&v| v > 0)
                .count() as f64,
            "deliberately-broken recovery paths the invariant checks caught",
        ),
    ]
}

/// Measurement + report + claims (+ the per-seed recovery artifact).
pub fn run() -> ExperimentOutput {
    let m = measure();
    let mut out = ExperimentOutput::new(report(&m), claims(&m));
    let mut lines = String::from("seed,ops_run,crashed,fired,problems,repaired,violations\n");
    for o in &m.per_seed {
        writeln!(
            lines,
            "{:#x},{},{},{},{},{},{}",
            o.seed,
            o.ops_run,
            o.crashed,
            o.fired.len(),
            o.problems_found,
            o.repaired,
            o.violations.len()
        )
        .unwrap();
    }
    out.artifacts
        .push(("e15_recovery_runs.csv".to_string(), lines));
    out
}
