//! E16 — graceful degradation under overload: the kernel sheds load by
//! priority instead of stalling, and comes back securely from a crash
//! that lands mid-overload.
//!
//! Schroeder's argument needs the kernel's invariants to survive *hostile
//! or pathological load*, not just hostile references: a supervisor that
//! wedges on a quota storm or page-frame famine has lost auditability as
//! surely as one that leaks a segment. This experiment drives a mixed
//! many-principal workload up a load ladder against the admission-control
//! layer (`mks-kernel::pressure`) and machine-checks the degradation
//! posture:
//!
//! * throughput degrades **sub-linearly** — per-operation cost inflation
//!   stays strictly below the offered-load multiplier;
//! * shed work is **lowest-priority-first** — zero priority inversions in
//!   the recorded admission decisions;
//! * **no starvation** — System-class principals are never shed and still
//!   complete work at the heaviest rung;
//! * the **reference monitor is consulted** on every admission decision;
//! * every shed is **audited** as a typed `Overload` record;
//! * and all five E15 recovery invariants hold when a seeded exhaustion
//!   plan (frame famine, AST exhaustion, quota storms, audit floods)
//!   crashes the system *while it is shedding*.

use std::fmt::Write;

use mks_fs::{Acl, AclMode, DirMode, FileSystem, QuotaCell, UserId};
use mks_hw::{FaultPlan, RingBrackets, SplitMix64, Word};
use mks_kernel::pressure::{PressureConfig, Priority, NR_PRIORITIES};
use mks_kernel::recovery::{run_plan, RecoveryOpts};
use mks_kernel::world::{admin_user, System, SystemSize};
use mks_kernel::{KernelConfig, Monitor};
use mks_mls::Label;

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::{banner, Table};

const QUOTE: &str = "the correct operation of the kernel is necessary and sufficient to guarantee enforcement ... under all conditions";

/// Principal counts per ladder rung (offered load rises 8x bottom to top).
const RUNGS: [usize; 4] = [2, 4, 8, 16];

/// Operations each principal attempts per rung.
const OPS_PER_PRINCIPAL: u64 = 24;

/// Priority assignment by principal index: every rung gets a System
/// principal, heavier rungs add the lower classes in shed order.
const PRIOS: [Priority; NR_PRIORITIES] = [
    Priority::System,
    Priority::Interactive,
    Priority::Normal,
    Priority::Background,
];

/// Recovery-under-overload sweep size.
const RECOVERY_SEEDS: u64 = 10;

/// What one ladder rung observed.
#[derive(Debug, Clone)]
pub struct Rung {
    /// Principals driving this rung.
    pub principals: usize,
    /// Operations offered.
    pub offered: u64,
    /// Operations that completed successfully.
    pub completed: u64,
    /// Completions per priority class (shed-order index).
    pub completed_by_class: [u64; NR_PRIORITIES],
    /// Admission sheds per priority class.
    pub shed_by_class: [u64; NR_PRIORITIES],
    /// Admission decisions recorded.
    pub decisions: u64,
    /// Priority inversions in the decision log (must be zero).
    pub inversions: u64,
    /// `Overload` records in the audit log.
    pub audited_overloads: u64,
    /// Reference-monitor verdicts recorded during the rung.
    pub verdicts: u64,
    /// Simulated cycles the rung consumed.
    pub cycles: u64,
    /// Peak pressure observed (permille).
    pub peak_pressure: u32,
}

/// One recovery-under-overload run, summarized.
#[derive(Debug, Clone)]
pub struct OverloadRecovery {
    /// The plan seed.
    pub seed: u64,
    /// Whether the plan's crash event landed mid-workload.
    pub crashed: bool,
    /// Faults the injector delivered.
    pub fired: usize,
    /// E15 invariant violations (must be zero).
    pub violations: usize,
}

/// The campaign's observations.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The load ladder, lightest rung first.
    pub rungs: Vec<Rung>,
    /// The recovery-under-overload sweep.
    pub recovery: Vec<OverloadRecovery>,
    /// Exhaustion faults delivered across the recovery sweep.
    pub exhaustion_fired: u64,
}

fn load_user(i: usize) -> UserId {
    UserId::new(&format!("Load{i}"), "Traffic", "a")
}

/// Drives one rung: a fresh system, admission armed, `principals` mixed
/// principals interleaved op by op.
fn run_rung(principals: usize) -> Rung {
    let mut sys = System::with_size(
        KernelConfig::kernel(),
        SystemSize {
            frames: 32,
            bulk_records: 64,
            cpu: mks_hw::CpuModel::H6180,
            ..SystemSize::default()
        },
    );
    // Setup runs before admission is enabled (the administrator provisions
    // homes unimpeded): one home directory per principal, with the load
    // user granted full control — the root itself stays admin-only.
    let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
    let aroot = sys.world.bind_root(admin);
    let mut pids = Vec::new();
    let mut probes: Vec<Option<mks_hw::SegNo>> = vec![None; principals];
    let mut homes = Vec::new();
    for i in 0..principals {
        let name = format!("h{i}");
        Monitor::create_directory(&mut sys.world, admin, aroot, &name, Label::BOTTOM)
            .expect("home directory creates on a fresh system");
        sys.world
            .fs
            .set_dir_acl_entry(
                FileSystem::ROOT,
                &name,
                &admin_user(),
                &load_user(i).to_acl_string(),
                DirMode::SMA,
            )
            .expect("home ACL grant");
        let pid = sys.world.create_process(load_user(i), Label::BOTTOM, 4);
        sys.world
            .admission
            .set_priority(pid, PRIOS[i % NR_PRIORITIES]);
        let root = sys.world.bind_root(pid);
        homes.push(Monitor::initiate_dir(&mut sys.world, pid, root, &name));
        pids.push(pid);
    }

    // A tight root quota makes storage headroom a real, monotone pressure
    // signal: every creation below charges a page against it.
    *sys.world
        .fs
        .quota_cell_mut(FileSystem::ROOT)
        .expect("root exists") = Some(QuotaCell::with_limit(96));
    sys.world.admission.enable(PressureConfig {
        audit_cap: 2048,
        deadline_budget: Some(10_000),
        ..PressureConfig::default()
    });

    let trace = sys.world.vm.machine.trace.clone();
    let verdicts_before = trace.counter("monitor.granted") + trace.counter("monitor.denied");
    let cycles_before = sys.world.vm.machine.clock.now();
    let mut rng = SplitMix64::new(0xe16 ^ principals as u64);
    let mut completed = 0u64;
    let mut completed_by_class = [0u64; NR_PRIORITIES];
    let mut offered = 0u64;
    let mut peak_pressure = 0u32;

    for op in 0..OPS_PER_PRINCIPAL {
        // Feed the scheduler's run-slot census into the gauge layer (the
        // observability satellite: the gauge is externally fed).
        let (dedicated, bound, free) = sys.tc.binding_census();
        sys.world
            .admission
            .set_run_slots(dedicated + bound, dedicated + bound + free);
        for (i, &pid) in pids.iter().enumerate() {
            offered += 1;
            let class = PRIOS[i % NR_PRIORITIES].index();
            let ok = match rng.below(6) {
                0 | 1 => match probes[i] {
                    // Paging traffic against the principal's own probe:
                    // frames/bulk saturation rises with the rung.
                    Some(seg) => {
                        let off =
                            (rng.below(4) * mks_hw::PAGE_WORDS as u64 + rng.below(64)) as usize;
                        Monitor::write(&mut sys.world, pid, seg, off, Word::new(op + 1)).is_ok()
                    }
                    None => {
                        let r = Monitor::create_segment(
                            &mut sys.world,
                            pid,
                            homes[i],
                            &format!("probe{i}"),
                            Acl::of("*.*.*", AclMode::RW),
                            RingBrackets::new(4, 4, 4),
                            Label::BOTTOM,
                        );
                        probes[i] = r.as_ref().ok().copied();
                        r.is_ok()
                    }
                },
                2 => Monitor::create_segment(
                    &mut sys.world,
                    pid,
                    homes[i],
                    &format!("s{i}x{op}"),
                    Acl::of("*.*.*", AclMode::RW),
                    RingBrackets::new(4, 4, 4),
                    Label::BOTTOM,
                )
                .is_ok(),
                3 => match probes[i] {
                    Some(seg) => {
                        Monitor::read(&mut sys.world, pid, seg, rng.below(64) as usize).is_ok()
                    }
                    None => Monitor::initiate(&mut sys.world, pid, homes[i], "nonexistent").is_ok(),
                },
                4 => Monitor::list_dir(&mut sys.world, pid, homes[i]).is_ok(),
                _ => Monitor::call_gate(&mut sys.world, pid, "hcs_", "metering_get").is_ok(),
            };
            if ok {
                completed += 1;
                completed_by_class[class] += 1;
            }
            let p = mks_kernel::pressure::read_pressure(&sys.world).peak();
            peak_pressure = peak_pressure.max(p);
        }
    }

    let audited_overloads = sys
        .world
        .log
        .matching(|e| matches!(e, mks_kernel::AuditEvent::Overload { .. }))
        .count() as u64;
    Rung {
        principals,
        offered,
        completed,
        completed_by_class,
        shed_by_class: sys.world.admission.shed_by_class(),
        decisions: sys.world.admission.decisions().len() as u64,
        inversions: sys.world.admission.priority_inversions(),
        audited_overloads,
        verdicts: trace.counter("monitor.granted") + trace.counter("monitor.denied")
            - verdicts_before,
        cycles: sys.world.vm.machine.clock.now() - cycles_before,
        peak_pressure,
    }
}

/// Runs the load ladder and the recovery-under-overload sweep.
pub fn measure() -> Measurement {
    let rungs: Vec<Rung> = RUNGS.iter().map(|&p| run_rung(p)).collect();

    let mut recovery = Vec::new();
    let mut exhaustion_fired = 0u64;
    for seed in 1..=RECOVERY_SEEDS {
        let plan = FaultPlan::generate_overload(seed);
        let out = run_plan(
            &plan,
            RecoveryOpts {
                overload: true,
                ..RecoveryOpts::default()
            },
        );
        exhaustion_fired += out
            .fired
            .iter()
            .filter(|f| {
                matches!(
                    f.kind,
                    mks_hw::InjectKind::FrameFamine
                        | mks_hw::InjectKind::AstExhaust
                        | mks_hw::InjectKind::QuotaStorm
                        | mks_hw::InjectKind::AuditFlood
                )
            })
            .count() as u64;
        recovery.push(OverloadRecovery {
            seed,
            crashed: out.crashed,
            fired: out.fired.len(),
            violations: out.violations.len(),
        });
    }

    Measurement {
        rungs,
        recovery,
        exhaustion_fired,
    }
}

fn cycles_per_op(r: &Rung) -> f64 {
    r.cycles as f64 / r.completed.max(1) as f64
}

fn shed_total(m: &Measurement) -> u64 {
    m.rungs
        .iter()
        .map(|r| r.shed_by_class.iter().sum::<u64>())
        .sum()
}

fn audit_shortfall(m: &Measurement) -> u64 {
    m.rungs
        .iter()
        .map(|r| {
            r.shed_by_class
                .iter()
                .sum::<u64>()
                .saturating_sub(r.audited_overloads)
        })
        .sum()
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "E16: graceful degradation under overload",
        &format!("\"{QUOTE}\""),
    );
    let mut t = Table::new(&[
        "principals",
        "offered",
        "completed",
        "shed (bg/no/in/sy)",
        "inversions",
        "peak permille",
        "cycles/op",
    ]);
    for r in &m.rungs {
        t.row(&[
            r.principals.to_string(),
            r.offered.to_string(),
            r.completed.to_string(),
            format!(
                "{}/{}/{}/{}",
                r.shed_by_class[0], r.shed_by_class[1], r.shed_by_class[2], r.shed_by_class[3]
            ),
            r.inversions.to_string(),
            r.peak_pressure.to_string(),
            format!("{:.0}", cycles_per_op(r)),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    let first = m.rungs.first().expect("ladder non-empty");
    let last = m.rungs.last().expect("ladder non-empty");
    let load_factor = last.offered as f64 / first.offered as f64;
    writeln!(
        out,
        "ladder: offered load rose {load_factor:.0}x; per-op cost rose {:.2}x \
         (sub-linear iff < {load_factor:.0}x); goodput {} -> {}.",
        cycles_per_op(last) / cycles_per_op(first),
        first.completed,
        last.completed,
    )
    .unwrap();
    writeln!(
        out,
        "shedding: {} total sheds, {} audited overload records, {} priority inversions,",
        shed_total(m),
        m.rungs.iter().map(|r| r.audited_overloads).sum::<u64>(),
        m.rungs.iter().map(|r| r.inversions).sum::<u64>(),
    )
    .unwrap();
    writeln!(
        out,
        "{} System-class sheds; System completed {} ops at the heaviest rung.",
        m.rungs
            .iter()
            .map(|r| r.shed_by_class[Priority::System.index()])
            .sum::<u64>(),
        last.completed_by_class[Priority::System.index()],
    )
    .unwrap();
    writeln!(out).unwrap();
    let mut t = Table::new(&["seed", "crashed", "faults fired", "violations"]);
    for r in &m.recovery {
        t.row(&[
            format!("{:#x}", r.seed),
            if r.crashed { "yes".into() } else { "no".into() },
            r.fired.to_string(),
            r.violations.to_string(),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "recovery under overload: {} exhaustion plans, {} mid-shedding crashes,",
        m.recovery.len(),
        m.recovery.iter().filter(|r| r.crashed).count(),
    )
    .unwrap();
    writeln!(
        out,
        "{} exhaustion faults delivered, {} E15 invariant violations.",
        m.exhaustion_fired,
        m.recovery.iter().map(|r| r.violations).sum::<usize>(),
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "Consequence: overload is a scenario the kernel degrades through,"
    )
    .unwrap();
    writeln!(
        out,
        "not a state it fails in — load is shed lowest-priority-first with"
    )
    .unwrap();
    writeln!(
        out,
        "an audited, typed refusal, and a crash mid-overload still recovers"
    )
    .unwrap();
    writeln!(out, "to the same protected state.").unwrap();
    out
}

/// The graceful-degradation expectations over the measurement.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    let first = m.rungs.first().expect("ladder non-empty");
    let last = m.rungs.last().expect("ladder non-empty");
    let load_factor = last.offered as f64 / first.offered as f64;
    let cost_inflation = cycles_per_op(last) / cycles_per_op(first);
    let total_decisions: u64 = m.rungs.iter().map(|r| r.decisions).sum();
    let total_verdicts: u64 = m.rungs.iter().map(|r| r.verdicts).sum();
    vec![
        ClaimResult::new(
            "E16.degradation-sublinear",
            "E16",
            QUOTE,
            ClaimShape::AtMost { max: 1.0 },
            cost_inflation / load_factor,
            "per-op cost inflation divided by the offered-load multiplier (sub-linear iff < 1)",
        ),
        ClaimResult::new(
            "E16.goodput-holds",
            "E16",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            last.completed as f64 / first.completed.max(1) as f64,
            "completed work at the heaviest rung relative to the lightest (no collapse)",
        ),
        ClaimResult::new(
            "E16.shed-lowest-priority-first",
            "E16",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.rungs.iter().map(|r| r.inversions).sum::<u64>() as f64,
            "priority inversions in the recorded admission decisions",
        ),
        ClaimResult::new(
            "E16.sheds-exercised",
            "E16",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            shed_total(m) as f64,
            "admission sheds across the ladder (the overload scenario is not vacuous)",
        ),
        ClaimResult::new(
            "E16.no-starvation",
            "E16",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.rungs
                .iter()
                .map(|r| r.shed_by_class[Priority::System.index()])
                .sum::<u64>() as f64,
            "System-class requests shed anywhere on the ladder",
        ),
        ClaimResult::new(
            "E16.top-priority-progress",
            "E16",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            last.completed_by_class[Priority::System.index()] as f64,
            "operations System-class principals completed at the heaviest rung",
        ),
        ClaimResult::new(
            "E16.monitor-mediates-admission",
            "E16",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            total_verdicts as f64 / total_decisions.max(1) as f64,
            "reference-monitor verdicts per admission decision (every decision is mediated)",
        ),
        ClaimResult::new(
            "E16.overload-audited",
            "E16",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            audit_shortfall(m) as f64,
            "sheds missing a typed Overload record in the audit log",
        ),
        ClaimResult::new(
            "E16.recovery-under-overload",
            "E16",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.recovery.iter().map(|r| r.violations).sum::<usize>() as f64,
            "E15 integrity-invariant violations across the exhaustion-plan recovery sweep",
        ),
        ClaimResult::new(
            "E16.exhaustion-exercised",
            "E16",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            m.exhaustion_fired
                .min(m.recovery.iter().filter(|r| r.crashed).count() as u64) as f64,
            "exhaustion faults delivered AND mid-shedding crashes exercised (both nonzero)",
        ),
    ]
}

/// Measurement + report + claims (+ the ladder CSV artifact).
pub fn run() -> ExperimentOutput {
    let m = measure();
    let mut out = ExperimentOutput::new(report(&m), claims(&m));
    let mut lines = String::from(
        "principals,offered,completed,shed_bg,shed_no,shed_in,shed_sy,decisions,inversions,audited_overloads,verdicts,cycles,peak_permille\n",
    );
    for r in &m.rungs {
        writeln!(
            lines,
            "{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.principals,
            r.offered,
            r.completed,
            r.shed_by_class[0],
            r.shed_by_class[1],
            r.shed_by_class[2],
            r.shed_by_class[3],
            r.decisions,
            r.inversions,
            r.audited_overloads,
            r.verdicts,
            r.cycles,
            r.peak_pressure,
        )
        .unwrap();
    }
    out.artifacts
        .push(("e16_degradation_ladder.csv".to_string(), lines));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_rungs_are_deterministic() {
        let a = run_rung(4);
        let b = run_rung(4);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.shed_by_class, b.shed_by_class);
    }

    #[test]
    fn heavy_rung_sheds_and_never_inverts() {
        let r = run_rung(16);
        assert!(r.shed_by_class.iter().sum::<u64>() > 0, "{r:?}");
        assert_eq!(r.inversions, 0, "{r:?}");
        assert_eq!(r.shed_by_class[Priority::System.index()], 0, "{r:?}");
    }
}
