//! E19 — the parallel kernel: a multi-CPU traffic controller with
//! deterministic work-stealing, an explicit lock-ordering model, and
//! host-side sharding that actually buys wall-clock time.
//!
//! The paper's page-control critique is a parallelism argument: the
//! baseline runs its whole cascade "sequentially with page control
//! executing in the process which took the page fault", while the kernel
//! design moves the work into dedicated processes that run alongside
//! user processes. E19 takes that argument to its conclusion and
//! machine-checks the multi-CPU posture on four fronts:
//!
//! * **simulated scaling** — an E16-shaped load ladder run at 1, 2, 4
//!   and 8 simulated CPUs under the work-stealing scheduler shows
//!   near-linear throughput in `steps / wall_cycles` (wall time advances
//!   by the busiest CPU of each round);
//! * **determinism** — the whole-kernel sequential==parallel
//!   differential (`mks_kernel::par`): every lane's boot hash, audit
//!   log, metrics snapshot, gate census and clock must be byte-identical
//!   whatever the host thread count, at every simulated CPU count
//!   1..=8, across an `MKS_SWEEP_SEEDS` seed sweep;
//! * **the lock model** — the global-lock baseline arm and the
//!   work-stealing run-queue locks feed one acquisition-order audit,
//!   which must come out acyclic with zero rank violations;
//! * **host speedup** — the committed `results/BENCH_E18.json` parallel
//!   section (seeded by the perf gate's own measurement) must show the
//!   lane executor beating the sequential arm, judged against the
//!   machine's measured parallelism ceiling so a 1-core CI runner
//!   cannot fake — or flake — the claim.
//!
//! Scheduler-integrity invariants ride along: zero lost wakeups, zero
//! dedicated-slot migrations, zero priority inversions in an
//! admission-control slice run under the parallel scheduler, and exact
//! work conservation (every offered step dispatched exactly once).

use std::fmt::Write;

use mks_hw::{CpuModel, Machine, SegUid};
use mks_kernel::pressure::{PressureConfig, Priority};
use mks_kernel::world::{System, SystemSize};
use mks_kernel::{differential_mismatches, lane_reports, KernelConfig, LaneConfig};
use mks_procs::{Effects, FnJob, Job, SchedMode, Step, TcConfig, TrafficController};
use mks_vm::policy::FifoPolicy;
use mks_vm::{SequentialPageControl, VmWorld};

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::perf::parse_baseline;
use crate::report::{banner, Table};

const QUOTE: &str = "this complex series of steps occurs sequentially with page control executing in the process which took the page fault";

/// Simulated CPU counts on the scaling ladder.
const CPUS: [usize; 4] = [1, 2, 4, 8];

/// Shared load processes per simulated CPU (offered load rises with the
/// rung, the E16 ladder shape).
const JOBS_PER_CPU: usize = 8;

/// Steps each load process runs (E16's per-principal op count).
const STEPS_PER_JOB: u32 = 24;

/// Dedicated (pinned) kernel jobs on every rung.
const DEDICATED: usize = 2;

/// Steps each dedicated job runs before retiring.
const DEDICATED_STEPS: u32 = 16;

/// Host thread counts the whole-kernel differential sweeps.
const DIFF_MAX_THREADS: usize = 4;

/// Simulated CPU counts the differential sweeps (the full 1..=8 span).
const DIFF_CPUS: std::ops::RangeInclusive<usize> = 1..=8;

/// Default seeds in the differential sweep; `MKS_SWEEP_SEEDS` overrides.
const SWEEP_SEEDS_DEFAULT: u64 = 8;

/// Required parallel efficiency at 4 CPUs (3.2/4 = 80%).
const SCALE_4WAY_MIN: f64 = 3.2;

/// Required parallel efficiency at 8 CPUs (6.0/8 = 75%).
const SCALE_8WAY_MIN: f64 = 6.0;

/// The host-speedup bar: `min(1.5, HOST_BAR_FRACTION * ceiling)` where
/// the ceiling is the committed calibration speedup (pure-CPU lanes on
/// the same thread count). A 4-core runner must clear 1.5x; a 1-core
/// container, whose ceiling is ~1.0, must still clear 75% of whatever
/// parallelism its host really has — the claim can neither be faked on
/// small hosts nor dodged on big ones.
const HOST_BAR_FRACTION: f64 = 0.75;
const HOST_BAR_CAP: f64 = 1.5;

/// One rung of the simulated scaling ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LadderPoint {
    /// Simulated CPUs in the traffic controller.
    pub nr_cpus: usize,
    /// Shared load processes spawned.
    pub jobs: usize,
    /// Steps offered (shared jobs plus the dedicated pair).
    pub offered_steps: u64,
    /// Steps the scheduler dispatched.
    pub steps: u64,
    /// Processes that ran to completion.
    pub finished: u64,
    /// Simulated wall cycles (per round, the busiest CPU).
    pub wall_cycles: u64,
    /// Total busy cycles across all CPUs.
    pub busy_cycles: u64,
    /// Successful steals.
    pub steals: u64,
    /// Victim queues probed.
    pub steal_attempts: u64,
    /// Wakeups lost (must be 0).
    pub wakeups_dropped: u64,
    /// Dedicated slots dispatched off their home CPU (must be 0).
    pub dedicated_migrations: u64,
}

impl LadderPoint {
    /// Simulated throughput: dispatched steps per wall kilocycle.
    pub fn throughput(&self) -> f64 {
        self.steps as f64 * 1_000.0 / self.wall_cycles.max(1) as f64
    }
}

/// The campaign's observations.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The scaling ladder, 1 CPU first.
    pub ladder: Vec<LadderPoint>,
    /// Field divergences between two full ladder runs (must be 0).
    pub rerun_divergences: u64,
    /// Seeds swept in the whole-kernel differential.
    pub sweep_seeds: u64,
    /// Simulated CPU counts swept per seed.
    pub sweep_cpu_counts: u64,
    /// Lane reports that differed from the single-thread baseline in any
    /// field, across the whole sweep (must be 0).
    pub sweep_mismatches: u64,
    /// Gate census of every lane at the representative rung (-1 if the
    /// lanes disagreed among themselves).
    pub lane_census: i64,
    /// Lock-order violations inside the lanes (must be 0).
    pub lane_lock_violations: u64,
    /// Steals inside the representative lanes (work-stealing exercised).
    pub lane_steals: u64,
    /// Distinct lock-order edges the combined probe observed.
    pub lock_edges: u64,
    /// Rank violations in the combined probe (must be 0).
    pub lock_violations: u64,
    /// 1 if the acquisition graph had a cycle, else 0.
    pub lock_cycles: u64,
    /// Contended acquisitions the probe recorded (steals contend).
    pub lock_contended: u64,
    /// Priority inversions in the admission slice run under the parallel
    /// scheduler (must be 0).
    pub inversions: u64,
    /// Admission sheds in that slice (the slice is not vacuous).
    pub sheds: u64,
    /// Host-side lane-executor speedup from the committed perf baseline.
    pub host_speedup: f64,
    /// The committed host-parallelism ceiling (calibration lanes).
    pub host_ceiling: f64,
    /// Whether the committed baseline carried a parallel section.
    pub host_baseline_found: bool,
}

fn counted_job(n: u32) -> Box<dyn Job<Machine>> {
    let mut left = n;
    Box::new(FnJob::new("load", move |_e: &mut Effects<'_, Machine>| {
        left -= 1;
        if left == 0 {
            Step::Done
        } else {
            Step::Continue
        }
    }))
}

/// Runs one ladder rung: `JOBS_PER_CPU * nr_cpus` equal shared jobs plus
/// two pinned dedicated jobs, under the seeded work-stealing scheduler.
fn run_ladder_point(nr_cpus: usize) -> LadderPoint {
    let jobs = JOBS_PER_CPU * nr_cpus;
    let mut m = Machine::new(CpuModel::H6180, 8);
    let mut tc: TrafficController<Machine> = TrafficController::new(TcConfig {
        nr_cpus,
        nr_vprocs: 4 * nr_cpus + DEDICATED,
        quantum: 4,
        sched: SchedMode::WorkStealing {
            seed: 0xE19 ^ nr_cpus as u64,
        },
    });
    for _ in 0..DEDICATED {
        tc.add_dedicated(counted_job(DEDICATED_STEPS));
    }
    for _ in 0..jobs {
        tc.spawn(counted_job(STEPS_PER_JOB));
    }
    let out = tc.run_until_quiet(&mut m, 1_000_000);
    assert!(out.quiescent, "ladder rung at {nr_cpus} CPUs wedged");
    let s = tc.stats();
    LadderPoint {
        nr_cpus,
        jobs,
        offered_steps: jobs as u64 * u64::from(STEPS_PER_JOB)
            + DEDICATED as u64 * u64::from(DEDICATED_STEPS),
        steps: s.steps,
        finished: s.processes_finished,
        wall_cycles: s.wall_cycles,
        busy_cycles: s.busy_cycles,
        steals: s.steals,
        steal_attempts: s.steal_attempts,
        wakeups_dropped: s.wakeups_dropped,
        dedicated_migrations: s.dedicated_migrations,
    }
}

fn run_ladder() -> Vec<LadderPoint> {
    CPUS.iter().map(|&n| run_ladder_point(n)).collect()
}

/// Sweep-seed count: `MKS_SWEEP_SEEDS` bounds wall time in CI.
fn sweep_seed_count() -> u64 {
    std::env::var("MKS_SWEEP_SEEDS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(SWEEP_SEEDS_DEFAULT)
        .max(1)
}

fn sweep_cfg(seed: u64, nr_cpus: usize) -> LaneConfig {
    LaneConfig {
        lanes: 3,
        threads: 1,
        nr_cpus,
        seed: 0xE19_0000 + seed * 0x1_0001,
        procs: 2,
        refs_per_proc: 24,
    }
}

/// The combined lock-order probe: the sequential global-lock paging
/// cascade (Kernel -> PageControl -> Ast/BulkMap) and a steal-heavy
/// work-stealing schedule (the TcRunQueue pair order), acquired against
/// one machine's lock model, then audited as a single graph.
fn lock_probe() -> (u64, u64, u64, u64) {
    let mut w = VmWorld::new(Machine::new(CpuModel::H6180, 1), 1);
    let mut pc = SequentialPageControl::new(Box::new(FifoPolicy));
    let uid = SegUid(0xE19);
    w.machine.ast.activate(uid, 3 * mks_hw::PAGE_WORDS);
    for page in 0..3 {
        pc.handle_fault(&mut w, uid, page)
            .expect("probe fault services");
    }
    // Same machine, now under the parallel scheduler: uneven job lengths
    // starve some CPUs into stealing, which contends the victim queues.
    let mut m = w.machine;
    let mut tc: TrafficController<Machine> = TrafficController::new(TcConfig {
        nr_cpus: 4,
        nr_vprocs: 8,
        quantum: 1,
        sched: SchedMode::WorkStealing { seed: 0xE19 },
    });
    for len in [40, 1, 1, 40, 1, 40] {
        tc.spawn(counted_job(len));
    }
    let out = tc.run_until_quiet(&mut m, 100_000);
    assert!(out.quiescent, "lock probe wedged");
    assert!(tc.stats().steals > 0, "probe must exercise the steal path");
    let audit = m.locks.audit();
    (
        audit.edges.len() as u64,
        audit.violations,
        u64::from(audit.cycle.is_some()),
        audit.contended_total(),
    )
}

/// An E16-shaped admission slice decided while the parallel scheduler
/// owns the machine: sheds must stay lowest-priority-first (zero
/// inversions) exactly as they do under the global queue.
fn ws_admission_probe() -> (u64, u64) {
    let mut sys = System::with_size(
        KernelConfig::kernel(),
        SystemSize {
            frames: 16,
            bulk_records: 32,
            ..SystemSize::default()
        },
    );
    sys.world.admission.enable(PressureConfig::default());
    let mut tc: TrafficController<Machine> = TrafficController::new(TcConfig {
        nr_cpus: 4,
        nr_vprocs: 8,
        quantum: 2,
        sched: SchedMode::WorkStealing { seed: 0xE19 },
    });
    for _ in 0..6 {
        tc.spawn(counted_job(12));
    }
    let mut machine = Machine::new(CpuModel::H6180, 4);
    // Interleave scheduler rounds with admission decisions across the
    // full pressure range and every priority class.
    for i in 0..48u32 {
        tc.tick(&mut machine);
        let pressure = (i * 211) % 1_000;
        let prio = Priority::ALL[(i as usize) % Priority::ALL.len()];
        sys.world.admission.decide(prio, pressure);
    }
    (
        sys.world.admission.priority_inversions(),
        sys.world.admission.shed_by_class().iter().sum(),
    )
}

/// Reads the committed perf baseline's parallel section.
fn committed_host_speedup() -> (f64, f64, bool) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_E18.json");
    let parallel = std::fs::read_to_string(path)
        .ok()
        .and_then(|json| parse_baseline(&json).ok())
        .and_then(|b| b.parallel);
    match parallel {
        Some(p) => (p.speedup, p.calibration_speedup, true),
        None => (0.0, 0.0, false),
    }
}

/// The bar the committed host speedup must clear, given the committed
/// host-parallelism ceiling.
fn host_bar(ceiling: f64) -> f64 {
    (HOST_BAR_FRACTION * ceiling).min(HOST_BAR_CAP)
}

/// Runs the ladder (twice, for the determinism count), the whole-kernel
/// differential sweep, both probes, and the baseline read.
pub fn measure() -> Measurement {
    let ladder = run_ladder();
    let rerun = run_ladder();
    let rerun_divergences = ladder.iter().zip(&rerun).filter(|(a, b)| a != b).count() as u64;

    let seeds = sweep_seed_count();
    let mut sweep_mismatches = 0u64;
    let mut sweep_cpu_counts = 0u64;
    for seed in 0..seeds {
        for nr_cpus in DIFF_CPUS {
            if seed == 0 {
                sweep_cpu_counts += 1;
            }
            sweep_mismatches +=
                differential_mismatches(&sweep_cfg(seed, nr_cpus), DIFF_MAX_THREADS);
        }
    }

    // Representative rung for the in-lane invariants: 4 simulated CPUs.
    let lanes = lane_reports(&sweep_cfg(0, 4));
    let lane_census = if lanes.iter().all(|l| l.census == lanes[0].census) {
        lanes[0].census as i64
    } else {
        -1
    };

    let (lock_edges, lock_violations, lock_cycles, lock_contended) = lock_probe();
    let (inversions, sheds) = ws_admission_probe();
    let (host_speedup, host_ceiling, host_baseline_found) = committed_host_speedup();

    Measurement {
        ladder,
        rerun_divergences,
        sweep_seeds: seeds,
        sweep_cpu_counts,
        sweep_mismatches,
        lane_census,
        lane_lock_violations: lanes.iter().map(|l| l.lock_violations).sum(),
        lane_steals: lanes.iter().map(|l| l.steals).sum(),
        lock_edges,
        lock_violations,
        lock_cycles,
        lock_contended,
        inversions,
        sheds,
        host_speedup,
        host_ceiling,
        host_baseline_found,
    }
}

fn scaling_factor(m: &Measurement, nr_cpus: usize) -> f64 {
    let base = m
        .ladder
        .iter()
        .find(|p| p.nr_cpus == 1)
        .expect("1-CPU rung");
    let point = m
        .ladder
        .iter()
        .find(|p| p.nr_cpus == nr_cpus)
        .expect("requested rung");
    point.throughput() / base.throughput()
}

fn conservation_misses(m: &Measurement) -> u64 {
    m.ladder
        .iter()
        .map(|p| p.steps.abs_diff(p.offered_steps))
        .sum()
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "E19: the parallel kernel — multi-CPU scheduling, deterministic",
        &format!("\"{QUOTE}\""),
    );
    let mut t = Table::new(&[
        "cpus",
        "jobs",
        "steps",
        "wall cycles",
        "busy cycles",
        "steals",
        "throughput",
        "scaling",
    ]);
    for p in &m.ladder {
        t.row(&[
            p.nr_cpus.to_string(),
            p.jobs.to_string(),
            p.steps.to_string(),
            p.wall_cycles.to_string(),
            p.busy_cycles.to_string(),
            p.steals.to_string(),
            format!("{:.1}", p.throughput()),
            format!("{:.2}x", scaling_factor(m, p.nr_cpus)),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "scaling: {:.2}x at 4 CPUs (need >= {SCALE_4WAY_MIN}), {:.2}x at 8 \
         (need >= {SCALE_8WAY_MIN}); ladder re-run diverged in {} field(s).",
        scaling_factor(m, 4),
        scaling_factor(m, 8),
        m.rerun_divergences,
    )
    .unwrap();
    writeln!(
        out,
        "differential: {} seeds x {} simulated CPU counts x host threads \
         2..={DIFF_MAX_THREADS} vs 1 -> {} lane mismatches.",
        m.sweep_seeds, m.sweep_cpu_counts, m.sweep_mismatches,
    )
    .unwrap();
    writeln!(
        out,
        "lanes: census {} everywhere, {} steals, {} lock violations.",
        m.lane_census, m.lane_steals, m.lane_lock_violations,
    )
    .unwrap();
    writeln!(
        out,
        "lock model: {} order edges, {} violations, {} cycles, {} contended \
         acquisitions in the combined cascade+steal probe.",
        m.lock_edges, m.lock_violations, m.lock_cycles, m.lock_contended,
    )
    .unwrap();
    writeln!(
        out,
        "admission under the parallel scheduler: {} sheds, {} priority inversions.",
        m.sheds, m.inversions,
    )
    .unwrap();
    if m.host_baseline_found {
        writeln!(
            out,
            "host: committed lane-executor speedup {:.2}x against a measured \
             parallelism ceiling of {:.2}x (bar: {:.2}x).",
            m.host_speedup,
            m.host_ceiling,
            host_bar(m.host_ceiling),
        )
        .unwrap();
    } else {
        writeln!(
            out,
            "host: no parallel section in the committed perf baseline \
             (re-seed results/BENCH_E18.json)."
        )
        .unwrap();
    }
    writeln!(out).unwrap();
    writeln!(
        out,
        "Consequence: the traffic controller multiplexes real CPUs without"
    )
    .unwrap();
    writeln!(
        out,
        "surrendering the certification story — the schedule is seeded and"
    )
    .unwrap();
    writeln!(
        out,
        "reproducible, the lock order is audited acyclic, and the parallel"
    )
    .unwrap();
    writeln!(
        out,
        "kernel's audit trail is the sequential kernel's, byte for byte."
    )
    .unwrap();
    out
}

/// The parallel-kernel expectations over the measurement.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    let host_bar = host_bar(m.host_ceiling);
    vec![
        ClaimResult::new(
            "E19.sim-scaling-4way",
            "E19",
            QUOTE,
            ClaimShape::AtLeast {
                min: SCALE_4WAY_MIN,
            },
            scaling_factor(m, 4),
            "simulated throughput at 4 CPUs over 1 CPU (near-linear: >= 80% efficiency)",
        ),
        ClaimResult::new(
            "E19.sim-scaling-8way",
            "E19",
            QUOTE,
            ClaimShape::AtLeast {
                min: SCALE_8WAY_MIN,
            },
            scaling_factor(m, 8),
            "simulated throughput at 8 CPUs over 1 CPU (near-linear: >= 75% efficiency)",
        ),
        ClaimResult::new(
            "E19.host-speedup",
            "E19",
            QUOTE,
            ClaimShape::AtLeast { min: host_bar },
            m.host_speedup,
            "committed lane-executor wall-clock speedup vs min(1.5, 75% of the committed host-parallelism ceiling)",
        ),
        ClaimResult::new(
            "E19.differential-clean",
            "E19",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.sweep_mismatches as f64,
            "whole-kernel lane reports that changed with the host thread count",
        ),
        ClaimResult::new(
            "E19.differential-covers-cpus",
            "E19",
            QUOTE,
            ClaimShape::ExactCount { expect: 8 },
            m.sweep_cpu_counts as f64,
            "simulated CPU counts the differential swept (1 through 8)",
        ),
        ClaimResult::new(
            "E19.sweep-covered",
            "E19",
            QUOTE,
            ClaimShape::AtLeast { min: 4.0 },
            m.sweep_seeds as f64,
            "seeds swept in the differential (MKS_SWEEP_SEEDS can raise, default 8)",
        ),
        ClaimResult::new(
            "E19.deterministic",
            "E19",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.rerun_divergences as f64,
            "field divergences between two complete scaling-ladder runs",
        ),
        ClaimResult::new(
            "E19.steals-exercised",
            "E19",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            (m.ladder.iter().map(|p| p.steals).sum::<u64>() + m.lane_steals) as f64,
            "successful steals across the ladder and the lanes (work-stealing is not vacuous)",
        ),
        ClaimResult::new(
            "E19.dedicated-pinned",
            "E19",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.ladder
                .iter()
                .map(|p| p.dedicated_migrations)
                .sum::<u64>() as f64,
            "dedicated virtual processors dispatched off their home CPU",
        ),
        ClaimResult::new(
            "E19.no-lost-wakeups",
            "E19",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.ladder.iter().map(|p| p.wakeups_dropped).sum::<u64>() as f64,
            "wakeups lost anywhere on the scaling ladder",
        ),
        ClaimResult::new(
            "E19.work-conserved",
            "E19",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            conservation_misses(m) as f64,
            "offered steps minus dispatched steps, summed over the ladder (no duplication, no loss)",
        ),
        ClaimResult::new(
            "E19.no-priority-inversions",
            "E19",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.inversions as f64,
            "priority inversions in the admission slice decided under the parallel scheduler",
        ),
        ClaimResult::new(
            "E19.admission-exercised",
            "E19",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            m.sheds as f64,
            "admission sheds in that slice (the inversion check is not vacuous)",
        ),
        ClaimResult::new(
            "E19.lock-order-acyclic",
            "E19",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            (m.lock_violations + m.lock_cycles + m.lane_lock_violations) as f64,
            "rank violations plus cycles in the combined lock-order audit (probe and lanes)",
        ),
        ClaimResult::new(
            "E19.lock-model-exercised",
            "E19",
            QUOTE,
            ClaimShape::AtLeast { min: 4.0 },
            m.lock_edges as f64,
            "distinct acquisition-order edges the probe drove through the lock model",
        ),
        ClaimResult::new(
            "E19.census-stable",
            "E19",
            QUOTE,
            ClaimShape::ExactCount { expect: 54 },
            m.lane_census as f64,
            "user-available gate census inside every parallel lane (the kernel surface is unchanged)",
        ),
    ]
}

/// Measurement + report + claims (+ the scaling-curve CSV artifact).
pub fn run() -> ExperimentOutput {
    let m = measure();
    let mut out = ExperimentOutput::new(report(&m), claims(&m));
    let mut lines = String::from(
        "nr_cpus,jobs,offered_steps,steps,finished,wall_cycles,busy_cycles,steals,steal_attempts,throughput,scaling\n",
    );
    for p in &m.ladder {
        writeln!(
            lines,
            "{},{},{},{},{},{},{},{},{},{:.3},{:.4}",
            p.nr_cpus,
            p.jobs,
            p.offered_steps,
            p.steps,
            p.finished,
            p.wall_cycles,
            p.busy_cycles,
            p.steals,
            p.steal_attempts,
            p.throughput(),
            scaling_factor(&m, p.nr_cpus),
        )
        .unwrap();
    }
    out.artifacts
        .push(("e19_parallel_scaling.csv".to_string(), lines));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_scales_and_conserves_work() {
        let ladder = run_ladder();
        let m = Measurement {
            ladder,
            rerun_divergences: 0,
            sweep_seeds: 1,
            sweep_cpu_counts: 8,
            sweep_mismatches: 0,
            lane_census: 54,
            lane_lock_violations: 0,
            lane_steals: 1,
            lock_edges: 4,
            lock_violations: 0,
            lock_cycles: 0,
            lock_contended: 1,
            inversions: 0,
            sheds: 1,
            host_speedup: 1.0,
            host_ceiling: 1.0,
            host_baseline_found: true,
        };
        assert!(
            scaling_factor(&m, 4) >= SCALE_4WAY_MIN,
            "4-way scaling {:.2}",
            scaling_factor(&m, 4)
        );
        assert!(
            scaling_factor(&m, 8) >= SCALE_8WAY_MIN,
            "8-way scaling {:.2}",
            scaling_factor(&m, 8)
        );
        assert_eq!(conservation_misses(&m), 0);
        for p in &m.ladder {
            assert_eq!(p.wakeups_dropped, 0, "{p:?}");
            assert_eq!(p.dedicated_migrations, 0, "{p:?}");
        }
    }

    #[test]
    fn ladder_is_deterministic() {
        assert_eq!(run_ladder(), run_ladder());
    }

    #[test]
    fn lock_probe_is_clean_and_non_vacuous() {
        let (edges, violations, cycles, contended) = lock_probe();
        assert!(edges >= 4, "want a real graph, got {edges} edges");
        assert_eq!(violations, 0);
        assert_eq!(cycles, 0);
        assert!(contended >= 1, "steals must contend the victim queue");
    }

    #[test]
    fn admission_probe_sheds_without_inverting() {
        let (inversions, sheds) = ws_admission_probe();
        assert_eq!(inversions, 0);
        assert!(sheds >= 1, "the pressure ramp must shed something");
    }

    #[test]
    fn host_bar_tracks_the_ceiling_but_caps() {
        assert!((host_bar(1.0) - 0.75).abs() < 1e-9);
        assert!((host_bar(4.0) - 1.5).abs() < 1e-9);
    }
}
