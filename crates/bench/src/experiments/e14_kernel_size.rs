//! E14 — the overall audit: "one wave of simplification applied to the
//! central core of the system will produce a badly needed example of a
//! structure that is significantly easier to understand."

use std::fmt::Write;

use mks_hw::module::Category;
use mks_kernel::audit::AuditReport;

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::{banner, Table};

const QUOTE: &str = "the isolation of the smallest, simplest security kernel that is capable of supporting the full functionality of the system";

const CATEGORIES: [Category; 12] = [
    Category::FileSystem,
    Category::AddressSpace,
    Category::Linker,
    Category::PageControl,
    Category::Processes,
    Category::Ipc,
    Category::Io,
    Category::Interrupts,
    Category::Mls,
    Category::Auth,
    Category::Init,
    Category::Gates,
];

/// One configuration's audit line.
#[derive(Debug, Clone)]
pub struct ConfigRow {
    /// Configuration display name.
    pub name: &'static str,
    /// Protected (ring-0/1) statement weight.
    pub protected: u32,
    /// User-ring statement weight.
    pub unprotected: u32,
    /// User-available gate entries.
    pub user_gates: usize,
    /// All gate entries (incl. privileged).
    pub total_gates: usize,
}

/// One category's legacy-vs-kernel weights.
#[derive(Debug, Clone)]
pub struct CategoryRow {
    /// Category display label.
    pub label: &'static str,
    /// Protected weight in the legacy configuration.
    pub legacy: u32,
    /// Protected weight in the kernel configuration.
    pub kernel: u32,
}

/// The whole-kernel audit, measured.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The four-configuration ladder, legacy first, kernel last.
    pub ladder: Vec<ConfigRow>,
    /// Per-category protected weights, legacy vs kernel.
    pub categories: Vec<CategoryRow>,
    /// Full inventory rendering of the kernel configuration.
    pub kernel_inventory: String,
}

impl Measurement {
    /// Legacy (first) rung.
    pub fn legacy(&self) -> &ConfigRow {
        &self.ladder[0]
    }

    /// Kernel (last) rung.
    pub fn kernel(&self) -> &ConfigRow {
        self.ladder.last().expect("ladder is non-empty")
    }

    /// Protected-weight shrink factor, legacy / kernel.
    pub fn protected_shrink(&self) -> f64 {
        self.legacy().protected as f64 / self.kernel().protected as f64
    }

    /// Fraction of the user-callable surface the kernel config cut.
    pub fn surface_cut(&self) -> f64 {
        (self.legacy().user_gates - self.kernel().user_gates) as f64
            / self.legacy().user_gates as f64
    }

    /// Moved function / net protected shrink (≥ 1 because the kernel also
    /// *adds* protected code the legacy system never had, e.g. MLS).
    pub fn conservation_ratio(&self) -> f64 {
        self.kernel().unprotected as f64
            / (self.legacy().protected - self.kernel().protected) as f64
    }

    /// The MLS layer's protected weight (a new bottom layer).
    pub fn mls_weight(&self) -> u32 {
        self.categories
            .iter()
            .find(|c| c.label == Category::Mls.label())
            .map(|c| c.kernel)
            .unwrap_or(0)
    }
}

/// Audits all four configurations.
pub fn measure() -> Measurement {
    let report = AuditReport::standard();
    let ladder = report
        .rows
        .iter()
        .map(|inv| ConfigRow {
            name: inv.cfg.name(),
            protected: inv.protected_weight(),
            unprotected: inv.unprotected_weight(),
            user_gates: inv.gates.user_available_entries(),
            total_gates: inv.gates.total_entries(),
        })
        .collect();
    let legacy = &report.rows[0];
    let kernel = &report.rows[3];
    let categories = CATEGORIES
        .into_iter()
        .map(|cat| CategoryRow {
            label: cat.label(),
            legacy: legacy.protected_weight_of(cat),
            kernel: kernel.protected_weight_of(cat),
        })
        .collect();
    Measurement {
        ladder,
        categories,
        kernel_inventory: kernel.render(),
    }
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "E14: whole-kernel audit across the configuration ladder",
        &format!("\"{QUOTE}\""),
    );
    let mut t = Table::new(&[
        "configuration",
        "protected weight",
        "user-ring weight",
        "user gates",
        "total gates",
    ]);
    for r in &m.ladder {
        t.row(&[
            r.name.into(),
            r.protected.to_string(),
            r.unprotected.to_string(),
            r.user_gates.to_string(),
            r.total_gates.to_string(),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(out, "protected weight by category (legacy -> kernel):").unwrap();
    let mut t2 = Table::new(&["category", "legacy", "kernel", "change"]);
    for c in &m.categories {
        let change = if c.legacy == 0 && c.kernel > 0 {
            "new layer".to_string()
        } else if c.kernel == 0 && c.legacy > 0 {
            "removed".to_string()
        } else if c.legacy == 0 {
            "-".to_string()
        } else {
            format!(
                "{:+.0}%",
                100.0 * (c.kernel as f64 - c.legacy as f64) / c.legacy as f64
            )
        };
        t2.row(&[
            c.label.into(),
            c.legacy.to_string(),
            c.kernel.to_string(),
            change,
        ]);
    }
    out.push_str(&t2.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "full inventory of the security-kernel configuration:\n"
    )
    .unwrap();
    out.push_str(&m.kernel_inventory);
    writeln!(out).unwrap();
    writeln!(
        out,
        "Weights are measured statement counts of the Rust implementations in"
    )
    .unwrap();
    writeln!(
        out,
        "this repository (see mks-kernel::audit). Function moved out of the"
    )
    .unwrap();
    writeln!(
        out,
        "boundary, it did not disappear: the user-ring weight grows by what"
    )
    .unwrap();
    writeln!(
        out,
        "the protected weight sheds, which is precisely the design intent."
    )
    .unwrap();
    out
}

/// The paper's expectations over the audit.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    vec![
        ClaimResult::new(
            "E14.protected-weight-falls",
            "E14",
            QUOTE,
            ClaimShape::FactorAtLeast {
                paper: 1.15,
                accept: 1.15,
            },
            m.protected_shrink(),
            "legacy / kernel protected statement weight (one wave of simplification)",
        ),
        ClaimResult::new(
            "E14.surface-cut",
            "E14",
            QUOTE,
            ClaimShape::FractionNear {
                paper: 0.47,
                tol: 0.03,
                accept_tol: 0.03,
            },
            m.surface_cut(),
            "fraction of user-callable gate entries the kernel configuration cut",
        ),
        ClaimResult::new(
            "E14.gate-census-kernel",
            "E14",
            QUOTE,
            ClaimShape::ExactCount { expect: 54 },
            m.kernel().user_gates as f64,
            "user-available gate entries, security kernel",
        ),
        ClaimResult::new(
            "E14.function-conserved",
            "E14",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            m.conservation_ratio(),
            "moved user-ring weight / net protected shrink (moves exceed the net)",
        ),
        ClaimResult::new(
            "E14.mls-new-layer",
            "E14",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            m.mls_weight() as f64,
            "protected MLS weight the kernel adds that the legacy system never had",
        ),
    ]
}

/// Measurement + report + claims.
pub fn run() -> ExperimentOutput {
    let m = measure();
    ExperimentOutput::new(report(&m), claims(&m))
}
