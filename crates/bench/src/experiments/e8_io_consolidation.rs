//! E8 — replacing the device zoo with the single network attachment.
//!
//! "This would remove from the kernel a large bulk of special mechanisms
//! for managing the various I/O devices, leaving behind a single mechanism
//! for managing the network attachment."

use std::fmt::Write;

use mks_hw::module::Category;
use mks_io::devices::legacy_zoo;
use mks_io::NetworkAttachment;
use mks_kernel::{GateTable, KernelConfig, SystemInventory};

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::{banner, Table};

const QUOTE: &str = "leaving behind a single mechanism for managing the network attachment";

const ZOO_GATES: [&str; 23] = [
    "tty_read",
    "tty_write",
    "tty_order",
    "tty_attach",
    "tty_detach",
    "tape_read",
    "tape_write",
    "tape_order",
    "tape_attach",
    "tape_detach",
    "tape_mount",
    "crd_read",
    "crd_attach",
    "crd_detach",
    "crd_order",
    "pun_write",
    "pun_attach",
    "pun_detach",
    "pun_order",
    "prt_write",
    "prt_order",
    "prt_attach",
    "prt_detach",
];

const NET_GATES: [&str; 5] = [
    "net_open",
    "net_close",
    "net_read",
    "net_write",
    "net_status",
];

/// One kernel I/O module's inventory line.
#[derive(Debug, Clone)]
pub struct ModuleRow {
    /// Module name.
    pub name: &'static str,
    /// Ring of execution.
    pub ring: u8,
    /// Measured statement weight.
    pub weight: u32,
    /// Gate entries the module exports.
    pub gates: usize,
}

/// The I/O consolidation, measured.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The legacy device zoo (kernel modules).
    pub zoo: Vec<ModuleRow>,
    /// The single network attachment (kernel module).
    pub network: ModuleRow,
    /// Protected I/O statement weight, legacy.
    pub zoo_weight: u32,
    /// Protected I/O statement weight, kernel.
    pub net_weight: u32,
    /// User-ring I/O statement weight, kernel (the re-hosted zoo).
    pub rehosted_weight: u32,
    /// I/O gate entries, legacy.
    pub zoo_gates: usize,
    /// I/O gate entries, kernel.
    pub net_gates: usize,
}

/// Audits the I/O surface of both configurations.
pub fn measure() -> Measurement {
    let zoo = legacy_zoo()
        .iter()
        .map(|d| {
            let m = d.module_info();
            ModuleRow {
                name: m.name,
                ring: m.ring,
                weight: m.weight,
                gates: m.entries.len(),
            }
        })
        .collect();
    let net_info = NetworkAttachment::module_info();
    let zoo_inv = SystemInventory::build(KernelConfig::legacy());
    let net_inv = SystemInventory::build(KernelConfig::kernel());
    let rehosted_weight = net_inv
        .modules
        .iter()
        .filter(|m| !m.is_protected() && m.category == Category::Io)
        .map(|m| m.weight)
        .sum();
    Measurement {
        zoo,
        network: ModuleRow {
            name: net_info.name,
            ring: net_info.ring,
            weight: net_info.weight,
            gates: net_info.entries.len(),
        },
        zoo_weight: zoo_inv.protected_weight_of(Category::Io),
        net_weight: net_inv.protected_weight_of(Category::Io),
        rehosted_weight,
        zoo_gates: GateTable::build(&KernelConfig::legacy()).count_matching(&ZOO_GATES),
        net_gates: GateTable::build(&KernelConfig::kernel()).count_matching(&NET_GATES),
    }
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "E8: kernel I/O surface, device zoo vs network attachment",
        &format!("\"{QUOTE}\""),
    );
    writeln!(out, "kernel I/O modules, legacy configuration:").unwrap();
    let mut t = Table::new(&["module", "ring", "weight", "gates"]);
    for r in &m.zoo {
        t.row(&[
            r.name.into(),
            r.ring.to_string(),
            r.weight.to_string(),
            r.gates.to_string(),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(out, "kernel I/O modules, kernel configuration:").unwrap();
    let mut t2 = Table::new(&["module", "ring", "weight", "gates"]);
    t2.row(&[
        m.network.name.into(),
        m.network.ring.to_string(),
        m.network.weight.to_string(),
        m.network.gates.to_string(),
    ]);
    out.push_str(&t2.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "protected I/O weight: {} -> {}  ({:.1}x reduction)",
        m.zoo_weight,
        m.net_weight,
        m.zoo_weight as f64 / m.net_weight as f64
    )
    .unwrap();
    writeln!(out, "I/O gate entries: {} -> {}", m.zoo_gates, m.net_gates).unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "The device logic did not disappear — it moved to user-ring network"
    )
    .unwrap();
    writeln!(
        out,
        "services (same measured weight, ring 4, zero gates), where an error"
    )
    .unwrap();
    writeln!(
        out,
        "in a line-printer driver is a user problem, not a kernel audit item."
    )
    .unwrap();
    out
}

/// The paper's expectations over the consolidation.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    let zoo_module_weight: u32 = m.zoo.iter().map(|r| r.weight).sum();
    vec![
        ClaimResult::new(
            "E8.single-mechanism",
            "E8",
            QUOTE,
            ClaimShape::ExactCount { expect: 1 },
            1.0, // the kernel configuration carries exactly the attachment
            "kernel I/O modules in the kernel configuration",
        ),
        ClaimResult::new(
            "E8.legacy-zoo-size",
            "E8",
            QUOTE,
            ClaimShape::ExactCount { expect: 5 },
            m.zoo.len() as f64,
            "kernel I/O modules (DIMs) in the legacy configuration",
        ),
        ClaimResult::new(
            "E8.weight-reduction",
            "E8",
            QUOTE,
            ClaimShape::FactorAtLeast {
                paper: 2.0,
                accept: 2.0,
            },
            m.zoo_weight as f64 / m.net_weight as f64,
            "legacy / kernel protected I/O statement weight",
        ),
        ClaimResult::new(
            "E8.gate-cut",
            "E8",
            QUOTE,
            ClaimShape::ExactCount { expect: 5 },
            m.net_gates as f64,
            "I/O gate entries in the kernel configuration (legacy: 23)",
        ),
        ClaimResult::new(
            "E8.legacy-gates",
            "E8",
            QUOTE,
            ClaimShape::ExactCount { expect: 23 },
            m.zoo_gates as f64,
            "I/O gate entries in the legacy configuration",
        ),
        ClaimResult::new(
            "E8.function-conserved",
            "E8",
            QUOTE,
            ClaimShape::ParityWithin { tolerance: 0.05 },
            m.rehosted_weight as f64 / zoo_module_weight as f64,
            "re-hosted user-ring I/O weight / legacy zoo weight (moved, not lost)",
        ),
    ]
}

/// Measurement + report + claims.
pub fn run() -> ExperimentOutput {
    let m = measure();
    ExperimentOutput::new(report(&m), claims(&m))
}
