//! E21 — the replicated kernel: primary/backup failover over the
//! commit log, machine-checked under a hostile link.
//!
//! E20 proved the kernel's whole history is a pure fold of a sealed
//! commit log; this experiment spends that determinism on
//! availability. A primary replica seals commits and streams the seals
//! over a link that drops, duplicates, reorders, delays and partitions
//! frames under seeded injection plans; backups apply them through
//! `reduce`'s apply path and acknowledge by chain head. When the
//! primary crashes, a seeded election promotes an up-to-date backup,
//! and at *every* promotion the harness machine-checks the paper's
//! certification argument end to end: the promoted backup's live world
//! digest must equal `reduce(genesis, log)`, no majority-acknowledged
//! commit may be lost, no epoch may ever have two sealers, and a
//! deposed primary's appends are refused *and audited into the
//! replicated history itself*. The E15 invariants (salvager-clean
//! hierarchy, boot-hash determinism, gate census pinned at 54) must
//! hold on every surviving replica under every fault kind.

use std::fmt::Write;

use mks_hw::{FaultEvent, FaultPlan, InjectKind};
use mks_kernel::replicate::{drive_mixed_workload, Cluster, ReplConfig, ReplError, Role};
use mks_kernel::statemachine::{Commit, Genesis};
use mks_kernel::world::admin_user;
use mks_kernel::Monitor;
use mks_trace::Snapshot;

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::{banner, Table};

const QUOTE: &str =
    "only this kernel need be considered in order to certify the security properties of the system";

/// Seeded hostile-link plans in the pinned sweep (the wide randomized
/// sweep lives in `tests/replication.rs`; this one regenerates
/// `results/` byte-identically).
const MIXED_SEEDS: u64 = 6;
/// Operations each mixed run drives through the cluster.
const MIXED_OPS: u64 = 60;
/// Operations each single-kind coverage run drives.
const COVERAGE_OPS: u64 = 40;

/// One replicated run's verdicts.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Which fault schedule ran: a single kind's name, or `mixed`.
    pub schedule: String,
    /// The plan seed.
    pub seed: u64,
    /// Commits sealed on the final primary.
    pub commits: u64,
    /// Commits the driver submitted successfully.
    pub submitted: u64,
    /// Client retries forced by crashes and elections.
    pub retries: u64,
    /// Elections won during the run.
    pub promotions: u64,
    /// Fence events (a deposed sealer refused and audited).
    pub fences: u64,
    /// Snapshot catch-up migrations.
    pub catchups: u64,
    /// Paced retransmissions sent by primaries.
    pub resends: u64,
    /// Frames the link dropped, duplicated, reordered, delayed or ate
    /// in a partition window.
    pub link_damage: u64,
    /// Epochs with more than one sealer (split brain; must be 0).
    pub sealer_violations: u64,
    /// Promotions whose digest or durability check failed (must be 0).
    pub failover_failures: u64,
    /// Whether the cluster converged after the faults were disarmed.
    pub converged: bool,
    /// Replicas whose final digest disagreed with the primary's.
    pub digest_disagreements: u64,
    /// Salvager findings on the final primary (must be 0).
    pub salvage_problems: u64,
    /// Whether the boot-check saw image divergence (must be false).
    pub boot_divergence: bool,
    /// Whether the final primary's gate census left the kernel's 54.
    pub census_drift: bool,
}

/// The campaign's observations.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Per-run verdicts: one per fault kind, plus the mixed sweep.
    pub runs: Vec<RunResult>,
    /// Replication fault kinds observed firing at least once (of 7).
    pub kinds_covered: u64,
    /// Deposed-sealer submissions refused with `ReplError::Deposed`
    /// in the staged failover scenario.
    pub deposed_refusals: u64,
    /// Fence audit records found sealed in the replicated history of
    /// the staged scenario's final log.
    pub fence_audits_sealed: u64,
    /// Snapshot migrations in the staged divergence scenario (an
    /// orphaned tail healed by migration, not append replay).
    pub staged_catchups: u64,
    /// Whether the staged divergence scenario reconverged.
    pub divergence_healed: bool,
    /// Whether the metering gate's JSON carries the `repl.*` gauges.
    pub gate_exports_repl: bool,
    /// The per-run CSV artifact.
    pub sweep_csv: String,
}

fn fresh_cluster(seed: u64) -> Cluster {
    Cluster::new(
        Genesis::kernel_small(),
        ReplConfig {
            seed,
            ..ReplConfig::default()
        },
    )
}

/// Runs one schedule and distills the verdicts.
fn run_schedule(schedule: String, seed: u64, plan: &FaultPlan, ops: u64) -> RunResult {
    let mut cluster = fresh_cluster(seed);
    cluster.arm(plan);
    let report = drive_mixed_workload(&mut cluster, seed, ops);
    cluster.disarm();
    let converged = cluster.run_quiet(4000);
    let primary = cluster.primary().unwrap_or(0);
    let pdigest = cluster.digest_of(primary);
    let digest_disagreements = (0..cluster.replica_count() as u32)
        .filter(|&id| cluster.digest_of(id) != pdigest)
        .count() as u64;
    let fences = cluster
        .events()
        .iter()
        .filter(|e| matches!(e, mks_kernel::ReplEvent::Fenced { .. }))
        .count() as u64;
    let catchups: u64 = (0..cluster.replica_count() as u32)
        .map(|id| cluster.stats_of(id).catchups)
        .sum();
    let resends: u64 = (0..cluster.replica_count() as u32)
        .map(|id| cluster.stats_of(id).resends)
        .sum();
    let ls = cluster.link_stats();
    RunResult {
        schedule,
        seed,
        commits: cluster.log_of(primary).len(),
        submitted: report.submitted,
        retries: report.retries,
        promotions: cluster.promotions(),
        fences,
        catchups,
        resends,
        link_damage: ls.dropped + ls.duplicated + ls.reordered + ls.delayed + ls.partition_drops,
        sealer_violations: cluster.sealer_violations().len() as u64,
        failover_failures: cluster
            .failover_checks()
            .iter()
            .filter(|c| !c.digest_equal || !c.acked_covered)
            .count() as u64,
        converged,
        digest_disagreements,
        salvage_problems: report.salvage_problems,
        boot_divergence: report.boot_divergence,
        census_drift: pdigest.census != 54,
    }
}

/// A plan that exercises exactly one fault kind, several times.
fn single_kind_plan(kind: InjectKind, seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        events: [3u64, 11, 23, 41]
            .iter()
            .enumerate()
            .map(|(i, &nth)| FaultEvent {
                kind,
                nth,
                detail: seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(i as u64 * 0x0101),
            })
            .collect(),
    }
}

/// The staged failover scenario: a primary crash mid-stream, the
/// election, and the deposed sealer's fenced (and audited) refusal.
fn staged_failover() -> (u64, u64, u64) {
    let mut cluster = fresh_cluster(0x1517);
    drive_mixed_workload(&mut cluster, 0x1517, 20);
    // Crash the primary on the next submission; restart without
    // amnesia 17 ticks later, so it comes back *believing* epoch 1.
    cluster.arm(&FaultPlan {
        seed: 0x1517,
        events: vec![FaultEvent {
            kind: InjectKind::ReplPrimaryCrash,
            nth: 0,
            // Restart at +19 ticks — after the election has fully
            // resolved — with the durable log intact, so the replica
            // returns holding its stale epoch through the reboot haze.
            detail: 16,
        }],
    });
    let crashed = cluster.submit(&Commit::Tick { times: 1 });
    cluster.disarm();
    assert!(
        matches!(crashed, Err(ReplError::Down { .. })),
        "the armed crash takes the primary down"
    );
    // Let the election run, then poke the deposed replica every tick:
    // the moment it restarts with its stale epoch, sealing through it
    // must be refused with `Deposed` and audited.
    let mut deposed_refusals = 0u64;
    for _ in 0..120 {
        cluster.tick();
        if cluster.primary().is_some()
            && cluster.role_of(0) == Role::Backup
            && cluster.epoch_of(0) < cluster.max_epoch()
        {
            if let Err(ReplError::Deposed { .. }) = cluster.seal_as(0, &Commit::Tick { times: 1 }) {
                deposed_refusals += 1;
            }
        }
        if cluster.promotions() > 0 && deposed_refusals > 0 {
            break;
        }
    }
    cluster.run_quiet(4000);
    let primary = cluster.primary().expect("cluster heals with a primary");
    let fence_audits_sealed = cluster
        .log_of(primary)
        .entries()
        .iter()
        .filter(|s| match &s.commit {
            Commit::Audit { event, .. } => format!("{event:?}").contains("repl fence"),
            _ => false,
        })
        .count() as u64;
    (cluster.promotions(), deposed_refusals, fence_audits_sealed)
}

/// The staged divergence scenario: a seal whose append broadcast the
/// link eats, then a primary crash — the orphaned tail diverges from
/// the new primary's history and must be healed by snapshot
/// migration, with the unacked orphan truncated, not resurrected.
fn staged_divergence() -> (u64, bool) {
    let mut cluster = fresh_cluster(0x2718);
    drive_mixed_workload(&mut cluster, 0x2718, 20);
    cluster.run_quiet(600);
    cluster.arm(&FaultPlan {
        seed: 0x2718,
        events: vec![
            // Eat both append frames of the next seal's broadcast...
            FaultEvent {
                kind: InjectKind::ReplDrop,
                nth: 0,
                detail: 0,
            },
            FaultEvent {
                kind: InjectKind::ReplDrop,
                nth: 1,
                detail: 0,
            },
            // ...then crash the primary on its *second* submission
            // (the first consult is the orphan seal itself), restarting
            // it after the election with its divergent log intact.
            FaultEvent {
                kind: InjectKind::ReplPrimaryCrash,
                nth: 1,
                detail: 16,
            },
        ],
    });
    let orphaned = cluster.submit(&Commit::Tick { times: 3 });
    assert!(orphaned.is_ok(), "the orphan seal lands on the primary");
    let crashed = cluster.submit(&Commit::Tick { times: 1 });
    assert!(
        matches!(crashed, Err(ReplError::Down { .. })),
        "the armed crash takes the primary down with the orphan sealed"
    );
    cluster.disarm();
    // Keep the cluster busy so the new primary's history grows past
    // the orphan's sequence number before the deposed replica returns.
    for _ in 0..80 {
        let _ = cluster.submit(&Commit::Tick { times: 1 });
        cluster.tick();
    }
    let converged = cluster.run_quiet(4000);
    let catchups = (0..cluster.replica_count() as u32)
        .map(|id| cluster.stats_of(id).catchups)
        .sum();
    (catchups, converged)
}

/// The read-only export: a cluster's published replication status,
/// grafted onto a live system the way E20 grafts the commit log, must
/// come back out of `hcs_$metering_get` as the `repl.*` gauges.
fn gate_exports_repl() -> bool {
    let mut cluster = fresh_cluster(7);
    drive_mixed_workload(&mut cluster, 7, 12);
    cluster.run_quiet(600);
    let primary = cluster.primary().unwrap_or(0);
    let Some(status) = cluster.status_of(primary) else {
        return false;
    };
    let mut sys = mks_kernel::world::System::new(mks_kernel::KernelConfig::kernel());
    sys.world.repl_status = Some(status.clone());
    let pid = sys
        .world
        .create_process(admin_user(), mks_mls::Label::BOTTOM, 4);
    let Ok(json) = Monitor::metering_snapshot(&mut sys.world, pid) else {
        return false;
    };
    let Ok(snap) = Snapshot::from_json(&json) else {
        return false;
    };
    snap.repl
        .map(|r| r == status && r.role == "primary")
        .unwrap_or(false)
}

/// Runs the campaign: per-kind coverage runs, the mixed hostile-link
/// sweep, the staged failover, and the gate export.
pub fn measure() -> Measurement {
    let mut runs = Vec::new();

    // Coverage: each replication fault kind, alone, must actually fire
    // and must not break any invariant.
    let mut kinds_covered = 0u64;
    for (i, &kind) in InjectKind::REPLICATION.iter().enumerate() {
        let seed = 100 + i as u64;
        let plan = single_kind_plan(kind, seed);
        let mut cluster = fresh_cluster(seed);
        cluster.arm(&plan);
        let fired_kind = {
            let report = drive_mixed_workload(&mut cluster, seed, COVERAGE_OPS);
            cluster.disarm();
            let fired = cluster.fired().iter().any(|f| f.kind == kind);
            let converged = cluster.run_quiet(4000);
            let primary = cluster.primary().unwrap_or(0);
            let pdigest = cluster.digest_of(primary);
            runs.push(RunResult {
                schedule: kind.name().to_string(),
                seed,
                commits: cluster.log_of(primary).len(),
                submitted: report.submitted,
                retries: report.retries,
                promotions: cluster.promotions(),
                fences: cluster
                    .events()
                    .iter()
                    .filter(|e| matches!(e, mks_kernel::ReplEvent::Fenced { .. }))
                    .count() as u64,
                catchups: (0..cluster.replica_count() as u32)
                    .map(|id| cluster.stats_of(id).catchups)
                    .sum(),
                resends: (0..cluster.replica_count() as u32)
                    .map(|id| cluster.stats_of(id).resends)
                    .sum(),
                link_damage: {
                    let ls = cluster.link_stats();
                    ls.dropped + ls.duplicated + ls.reordered + ls.delayed + ls.partition_drops
                },
                sealer_violations: cluster.sealer_violations().len() as u64,
                failover_failures: cluster
                    .failover_checks()
                    .iter()
                    .filter(|c| !c.digest_equal || !c.acked_covered)
                    .count() as u64,
                converged,
                digest_disagreements: (0..cluster.replica_count() as u32)
                    .filter(|&id| cluster.digest_of(id) != pdigest)
                    .count() as u64,
                salvage_problems: report.salvage_problems,
                boot_divergence: report.boot_divergence,
                census_drift: pdigest.census != 54,
            });
            fired
        };
        kinds_covered += u64::from(fired_kind);
    }

    // The mixed sweep: seeded plans drawing from every link kind.
    for seed in 0..MIXED_SEEDS {
        let plan = FaultPlan::generate_replication(seed);
        runs.push(run_schedule("mixed".into(), seed, &plan, MIXED_OPS));
    }

    let (_, deposed_refusals, fence_audits_sealed) = staged_failover();
    let (staged_catchups, divergence_healed) = staged_divergence();

    let mut sweep_csv = String::from(
        "schedule,seed,commits,submitted,retries,promotions,fences,catchups,resends,link_damage,sealer_violations,failover_failures,converged,digest_disagreements,salvage_problems,boot_divergence,census_drift\n",
    );
    for r in &runs {
        writeln!(
            sweep_csv,
            "{},{:#x},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.schedule,
            r.seed,
            r.commits,
            r.submitted,
            r.retries,
            r.promotions,
            r.fences,
            r.catchups,
            r.resends,
            r.link_damage,
            r.sealer_violations,
            r.failover_failures,
            r.converged,
            r.digest_disagreements,
            r.salvage_problems,
            r.boot_divergence,
            r.census_drift,
        )
        .unwrap();
    }

    Measurement {
        runs,
        kinds_covered,
        deposed_refusals,
        fence_audits_sealed,
        staged_catchups,
        divergence_healed,
        gate_exports_repl: gate_exports_repl(),
        sweep_csv,
    }
}

fn total<F: Fn(&RunResult) -> u64>(m: &Measurement, f: F) -> u64 {
    m.runs.iter().map(f).sum()
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner("E21: the replicated kernel", &format!("\"{QUOTE}\""));
    let mut t = Table::new(&[
        "schedule",
        "commits",
        "retries",
        "promoted",
        "fences",
        "catchups",
        "damage",
        "converged",
    ]);
    for r in &m.runs {
        t.row(&[
            format!("{} {:#x}", r.schedule, r.seed),
            r.commits.to_string(),
            r.retries.to_string(),
            r.promotions.to_string(),
            r.fences.to_string(),
            r.catchups.to_string(),
            r.link_damage.to_string(),
            if r.converged {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "sweep: {} runs, {} commits replicated, {} frames damaged by the link,",
        m.runs.len(),
        total(m, |r| r.commits),
        total(m, |r| r.link_damage),
    )
    .unwrap();
    writeln!(
        out,
        "{} elections won, {} snapshot migrations, {} paced resends.",
        total(m, |r| r.promotions),
        total(m, |r| r.catchups),
        total(m, |r| r.resends),
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "failover checks: {} digest/durability failures; split-brain epochs: {}.",
        total(m, |r| r.failover_failures),
        total(m, |r| r.sealer_violations),
    )
    .unwrap();
    writeln!(
        out,
        "fencing: {} deposed refusals, {} fence audits sealed into the history.",
        m.deposed_refusals, m.fence_audits_sealed,
    )
    .unwrap();
    writeln!(
        out,
        "staged divergence: {} snapshot migrations, healed: {}.",
        m.staged_catchups,
        if m.divergence_healed { "yes" } else { "NO" },
    )
    .unwrap();
    writeln!(
        out,
        "fault coverage: {}/7 replication kinds fired; metering exports repl.*: {}.",
        m.kinds_covered,
        if m.gate_exports_repl { "yes" } else { "NO" },
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "Consequence: the certified kernel survives the failure of the"
    )
    .unwrap();
    writeln!(
        out,
        "machine it runs on — the sealed log makes every backup a checkable"
    )
    .unwrap();
    writeln!(
        out,
        "twin, and failover is an audited, machine-verified event, not a leap of faith."
    )
    .unwrap();
    out
}

/// The expectations over the campaign.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    vec![
        ClaimResult::new(
            "E21.failover-digest",
            "E21",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            total(m, |r| r.failover_failures) as f64,
            "promotions whose live digest diverged from reduce() or lost an acked prefix",
        ),
        ClaimResult::new(
            "E21.split-brain",
            "E21",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            total(m, |r| r.sealer_violations) as f64,
            "epochs in which more than one replica sealed",
        ),
        ClaimResult::new(
            "E21.failover-coverage",
            "E21",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            total(m, |r| r.promotions) as f64,
            "elections actually won across the sweep (failover is exercised, not idle)",
        ),
        ClaimResult::new(
            "E21.deposed-refused",
            "E21",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            m.deposed_refusals as f64,
            "staged deposed-sealer submissions refused with the Deposed error",
        ),
        ClaimResult::new(
            "E21.fence-audited",
            "E21",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            m.fence_audits_sealed as f64,
            "fence audit records sealed into the replicated history itself",
        ),
        ClaimResult::new(
            "E21.sweep-clean",
            "E21",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            total(m, |r| {
                r.salvage_problems
                    + u64::from(r.boot_divergence)
                    + u64::from(r.census_drift)
                    + u64::from(!r.converged)
                    + r.digest_disagreements
            }) as f64,
            "E15 invariant violations (salvage, boot hash, census) plus unconverged or divergent replicas, across every fault kind",
        ),
        ClaimResult::new(
            "E21.sweep-coverage",
            "E21",
            QUOTE,
            ClaimShape::ExactCount { expect: 7 },
            m.kinds_covered as f64,
            "replication fault kinds observed firing in their dedicated runs",
        ),
        ClaimResult::new(
            "E21.catchup-migration",
            "E21",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            if m.divergence_healed {
                (total(m, |r| r.catchups) + m.staged_catchups) as f64
            } else {
                0.0
            },
            "divergent or amnesiac replicas caught up by snapshot migration (and the staged divergence healed)",
        ),
        ClaimResult::new(
            "E21.resends-paced",
            "E21",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            total(m, |r| r.resends) as f64,
            "retransmissions paced by the seeded backoff schedules",
        ),
        ClaimResult::new(
            "E21.link-hostility",
            "E21",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            total(m, |r| r.link_damage) as f64,
            "frames actually damaged by the link (the sweep is hostile, not a formality)",
        ),
        ClaimResult::new(
            "E21.gate-exports-repl",
            "E21",
            QUOTE,
            ClaimShape::ExactCount { expect: 1 },
            f64::from(u8::from(m.gate_exports_repl)),
            "metering gate JSON carries the repl.* gauges (census stays at 54)",
        ),
    ]
}

/// The full experiment.
pub fn run() -> ExperimentOutput {
    let m = measure();
    let mut out = ExperimentOutput::new(report(&m), claims(&m));
    out.artifacts
        .push(("e21_replication_sweep.csv".into(), m.sweep_csv.clone()));
    out
}
