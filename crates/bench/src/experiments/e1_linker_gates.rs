//! E1 — "the linker's removal eliminated 10% of the gate entry points
//! into the supervisor."

use std::fmt::Write;

use mks_kernel::{GateTable, KernelConfig};

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::banner;

const QUOTE: &str =
    "the linker's removal eliminated 10% of the gate entry points into the supervisor";

/// The gate census before and after the linker removal.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// User-available entries, legacy configuration.
    pub legacy_entries: usize,
    /// User-available entries after the linker removal.
    pub removed_entries: usize,
    /// The names of the removed linker gates.
    pub removed_names: &'static [&'static str],
}

impl Measurement {
    /// Entries the removal eliminated.
    pub fn cut(&self) -> usize {
        self.legacy_entries - self.removed_entries
    }

    /// The cut as a fraction of the legacy surface.
    pub fn cut_fraction(&self) -> f64 {
        self.cut() as f64 / self.legacy_entries as f64
    }
}

/// Builds both gate tables and counts the cut.
pub fn measure() -> Measurement {
    let legacy = GateTable::build(&KernelConfig::legacy());
    let removed = GateTable::build(&KernelConfig::legacy_linker_removed());
    Measurement {
        legacy_entries: legacy.user_available_entries(),
        removed_entries: removed.user_available_entries(),
        removed_names: mks_linker::kernel_cfg::LEGACY_LINKER_GATES,
    }
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "E1: gate entry points before/after the linker removal",
        &format!("\"{QUOTE}\""),
    );
    let mut t = crate::report::Table::new(&["configuration", "user-available gate entries"]);
    t.row(&["legacy supervisor".into(), m.legacy_entries.to_string()]);
    t.row(&[
        "legacy + linker removal".into(),
        m.removed_entries.to_string(),
    ]);
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "linker entries removed: {} ({:.1}% of the legacy surface)",
        m.cut(),
        100.0 * m.cut_fraction()
    )
    .unwrap();
    writeln!(out, "paper's figure: 10%").unwrap();
    writeln!(out, "removed entries: {:?}", m.removed_names).unwrap();
    out
}

/// The paper's expectations over this census.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    vec![
        ClaimResult::new(
            "E1.gate-census-legacy",
            "E1",
            QUOTE,
            ClaimShape::ExactCount { expect: 101 },
            m.legacy_entries as f64,
            "user-available gate entries, legacy supervisor",
        ),
        ClaimResult::new(
            "E1.gate-census-after-linker",
            "E1",
            QUOTE,
            ClaimShape::ExactCount { expect: 91 },
            m.removed_entries as f64,
            "user-available gate entries after the linker removal",
        ),
        ClaimResult::new(
            "E1.linker-entries-removed",
            "E1",
            QUOTE,
            ClaimShape::ExactCount { expect: 10 },
            m.cut() as f64,
            "gate entries the linker removal eliminated",
        ),
        ClaimResult::new(
            "E1.removed-fraction",
            "E1",
            QUOTE,
            ClaimShape::FractionNear {
                paper: 0.10,
                tol: 0.015,
                accept_tol: 0.015,
            },
            m.cut_fraction(),
            "removed entries / legacy user-available entries",
        ),
    ]
}

/// Measurement + report + claims.
pub fn run() -> ExperimentOutput {
    let m = measure();
    ExperimentOutput::new(report(&m), claims(&m))
}
