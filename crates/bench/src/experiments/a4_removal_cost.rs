//! A4 — footnote 7: "There may still exist other performance penalties
//! associated with removing functions from the supervisor ... One goal of
//! the research is to understand better the performance cost of security."
//!
//! The cleanest such penalty: pathname initiation. The legacy supervisor
//! resolves `>a>b>c` behind **one** gate crossing; the kernel
//! configuration's user-ring loop crosses a gate **per component**. On the
//! 645 that multiplication is ruinous; on the 6180 it costs almost
//! nothing — which is exactly why the removal program waited for the 6180.

use std::fmt::Write;

use mks_fs::{Acl, AclMode, DirMode, UserId};
use mks_hw::{CpuModel, RingBrackets};
use mks_kernel::monitor::Monitor;
use mks_kernel::world::{admin_user, System, SystemSize};
use mks_kernel::KernelConfig;
use mks_mls::Label;

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::{banner, Table};

const QUOTE: &str = "footnote 7: understand better the performance cost of security";

/// One (depth, machine) cell of the comparison.
#[derive(Debug, Clone)]
pub struct CostRow {
    /// Directory components in the path.
    pub depth: usize,
    /// Machine display name.
    pub machine: &'static str,
    /// Legacy gate crossings per initiation.
    pub legacy_crossings: u64,
    /// Legacy cycles per initiation.
    pub legacy_cycles: u64,
    /// Kernel gate crossings per initiation.
    pub kernel_crossings: u64,
    /// Kernel cycles per initiation.
    pub kernel_cycles: u64,
}

impl CostRow {
    /// Extra cycles per initiation the removal costs on this machine.
    pub fn overhead_cycles(&self) -> u64 {
        self.kernel_cycles.saturating_sub(self.legacy_cycles)
    }
}

/// The depth × machine sweep, measured.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Rows in (depth, machine) order: depths [1, 3, 6] × [645, 6180].
    pub rows: Vec<CostRow>,
}

impl Measurement {
    fn at(&self, depth: usize, cpu: CpuModel) -> &CostRow {
        self.rows
            .iter()
            .find(|r| r.depth == depth && r.machine == cpu.name())
            .expect("sweep covers the cell")
    }

    /// Deepest-path row on the 645.
    pub fn deep_645(&self) -> &CostRow {
        self.at(6, CpuModel::H645)
    }

    /// Deepest-path row on the 6180.
    pub fn deep_6180(&self) -> &CostRow {
        self.at(6, CpuModel::H6180)
    }
}

fn build(cfg: KernelConfig, cpu: CpuModel, depth: usize) -> (System, mks_kernel::KProcId, String) {
    let mut sys = System::with_size(
        cfg,
        SystemSize {
            frames: 64,
            bulk_records: 256,
            cpu,
            ..SystemSize::default()
        },
    );
    let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
    let mut dir = sys.world.bind_root(admin);
    let mut path = String::new();
    for i in 0..depth {
        let name = format!("d{i}");
        dir = Monitor::create_directory(&mut sys.world, admin, dir, &name, Label::BOTTOM).unwrap();
        path.push('>');
        path.push_str(&name);
    }
    Monitor::create_segment(
        &mut sys.world,
        admin,
        dir,
        "leaf",
        Acl::of("*.*.*", AclMode::RE),
        RingBrackets::new(4, 4, 4),
        Label::BOTTOM,
    )
    .unwrap();
    // Let everyone traverse.
    let _ = DirMode::S;
    let user = sys
        .world
        .create_process(UserId::new("U", "P", "a"), Label::BOTTOM, 4);
    path.push_str(">leaf");
    (sys, user, path)
}

fn time_initiations(cfg: KernelConfig, cpu: CpuModel, depth: usize) -> (u64, u64) {
    let (mut sys, user, path) = build(cfg, cpu, depth);
    let t0 = sys.world.vm.machine.clock.now();
    let x0 = sys.world.vm.machine.ring_crossings();
    const N: u64 = 200;
    for _ in 0..N {
        let seg = Monitor::initiate_path(&mut sys.world, user, &path).unwrap();
        Monitor::terminate(&mut sys.world, user, seg).unwrap();
    }
    (
        (sys.world.vm.machine.clock.now() - t0) / N,
        (sys.world.vm.machine.ring_crossings() - x0) / N,
    )
}

/// Times pathname initiation across depths, machines, and configurations.
pub fn measure() -> Measurement {
    let mut rows = Vec::new();
    for depth in [1usize, 3, 6] {
        for cpu in [CpuModel::H645, CpuModel::H6180] {
            let (lc, lx) = time_initiations(KernelConfig::legacy(), cpu, depth);
            let (kc, kx) = time_initiations(KernelConfig::kernel(), cpu, depth);
            rows.push(CostRow {
                depth,
                machine: cpu.name(),
                legacy_crossings: lx,
                legacy_cycles: lc,
                kernel_crossings: kx,
                kernel_cycles: kc,
            });
        }
    }
    Measurement { rows }
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "A4: the performance cost of removal — pathname initiation",
        "footnote 7: \"understand better the performance cost of security\"",
    );
    let mut t = Table::new(&[
        "path depth",
        "machine",
        "legacy: crossings/initiate",
        "cycles",
        "kernel: crossings/initiate",
        "cycles",
        "removal overhead",
    ]);
    for r in &m.rows {
        t.row(&[
            r.depth.to_string(),
            r.machine.into(),
            r.legacy_crossings.to_string(),
            r.legacy_cycles.to_string(),
            r.kernel_crossings.to_string(),
            r.kernel_cycles.to_string(),
            format!(
                "{:+.0}%",
                100.0 * (r.kernel_cycles as f64 - r.legacy_cycles as f64) / r.legacy_cycles as f64
            ),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "The kernel configuration crosses a gate per path component (the"
    )
    .unwrap();
    writeln!(
        out,
        "user-ring resolution loop) where the legacy supervisor crossed once."
    )
    .unwrap();
    writeln!(
        out,
        "On the 645, each extra crossing costs thousands of cycles — the"
    )
    .unwrap();
    writeln!(
        out,
        "pressure that had pushed everything into the supervisor. On the"
    )
    .unwrap();
    writeln!(
        out,
        "6180 the same crossings are ~32 cycles, and the removal is close to"
    )
    .unwrap();
    writeln!(
        out,
        "free: \"the performance penalty associated with supervisor calls has"
    )
    .unwrap();
    writeln!(out, "been removed.\"").unwrap();
    out
}

/// The paper's expectations over the sweep.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    let d645 = m.deep_645();
    let d6180 = m.deep_6180();
    vec![
        ClaimResult::new(
            "A4.legacy-one-crossing",
            "A4",
            QUOTE,
            ClaimShape::ExactCount { expect: 2 },
            d645.legacy_crossings as f64,
            "legacy crossings per initiation at depth 6 (one call = in + out)",
        ),
        ClaimResult::new(
            "A4.kernel-crossing-per-component",
            "A4",
            QUOTE,
            ClaimShape::ExactCount { expect: 8 },
            d645.kernel_crossings as f64,
            "kernel crossings per initiation at depth 6 (per component + leaf)",
        ),
        ClaimResult::new(
            "A4.645-ruinous",
            "A4",
            QUOTE,
            ClaimShape::AtLeast { min: 10_000.0 },
            d645.overhead_cycles() as f64,
            "extra cycles per initiation the removal costs on the 645, depth 6",
        ),
        ClaimResult::new(
            "A4.6180-affordable",
            "A4",
            QUOTE,
            ClaimShape::AtMost { max: 500.0 },
            d6180.overhead_cycles() as f64,
            "extra cycles per initiation the removal costs on the 6180, depth 6",
        ),
        ClaimResult::new(
            "A4.hardware-closes-gap",
            "A4",
            QUOTE,
            ClaimShape::FactorAtLeast {
                paper: 50.0,
                accept: 50.0,
            },
            d645.overhead_cycles() as f64 / d6180.overhead_cycles() as f64,
            "645 / 6180 removal overhead at depth 6 (gate hardware closes the gap)",
        ),
    ]
}

/// Measurement + report + claims.
pub fn run() -> ExperimentOutput {
    let m = measure();
    ExperimentOutput::new(report(&m), claims(&m))
}
