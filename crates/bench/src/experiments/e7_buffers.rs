//! E7 — the circular input buffer vs the infinite (VM-backed) buffer.
//!
//! "The infinite buffer scheme is much simpler than the old circular
//! buffer which had to be used over and over again, with attendant
//! problems of old messages not being removed before a complete circuit of
//! the buffer was made."

use std::fmt::Write;

use mks_io::{CircularBuffer, InfiniteBuffer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::{banner, Table};

const QUOTE: &str =
    "problems of old messages not being removed before a complete circuit of the buffer";

/// One burst-size row of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct BurstRow {
    /// Max burst size of this row.
    pub burst: usize,
    /// Messages offered to the circular(32) ring.
    pub offered: u64,
    /// Messages the circular(32) ring overwrote.
    pub lost_small: u64,
    /// Messages the circular(256) ring overwrote.
    pub lost_large: u64,
    /// Messages the infinite buffer lost.
    pub lost_infinite: u64,
    /// Peak backlog the infinite buffer absorbed.
    pub peak_backlog: usize,
}

/// The burstiness sweep.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// One row per max-burst size, matched long-run rates.
    pub rows: Vec<BurstRow>,
}

impl Measurement {
    /// Total messages the infinite buffer lost, any burst size.
    pub fn infinite_lost_total(&self) -> u64 {
        self.rows.iter().map(|r| r.lost_infinite).sum()
    }

    /// The worst (largest-burst) row.
    pub fn worst(&self) -> &BurstRow {
        self.rows.last().expect("sweep is non-empty")
    }
}

/// One round = a burst of arrivals (the network interrupt side), then the
/// consumer drains at the same *average* rate. Long-run rates are matched;
/// only burstiness varies — the historical failure was exactly this case,
/// a burst lapping the ring before the consumer's next quantum.
fn drive_circular(capacity: usize, burst: usize, bursts: usize, seed: u64) -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf: CircularBuffer<u64> = CircularBuffer::new(capacity);
    let mut n = 0u64;
    for _ in 0..bursts {
        let size = rng.gen_range(1..=burst);
        for _ in 0..size {
            buf.push(n);
            n += 1;
        }
        // The consumer's quantum arrives after the burst has landed.
        for _ in 0..size {
            let _ = buf.pop();
        }
    }
    (buf.total_offered(), buf.overwrites())
}

fn drive_infinite(burst: usize, bursts: usize, seed: u64) -> (u64, u64, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf: InfiniteBuffer<u64> = InfiniteBuffer::new();
    let mut n = 0u64;
    let mut peak = 0usize;
    for _ in 0..bursts {
        let size = rng.gen_range(1..=burst);
        for _ in 0..size {
            buf.push(n, 4);
            n += 1;
        }
        peak = peak.max(buf.peak_backlog());
        for _ in 0..size {
            let _ = buf.pop();
        }
    }
    (buf.total_produced(), buf.overwrites(), peak)
}

/// Sweeps burst sizes over both buffer designs.
pub fn measure() -> Measurement {
    let rows = [8, 32, 128, 512, 2048]
        .into_iter()
        .map(|burst| {
            let (offered, lost_small) = drive_circular(32, burst, 500, 9);
            let (_, lost_large) = drive_circular(256, burst, 500, 9);
            let (_, lost_infinite, peak_backlog) = drive_infinite(burst, 500, 9);
            BurstRow {
                burst,
                offered,
                lost_small,
                lost_large,
                lost_infinite,
                peak_backlog,
            }
        })
        .collect();
    Measurement { rows }
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "E7: network input buffering, circular vs infinite",
        &format!("\"{QUOTE}\""),
    );
    let mut t = Table::new(&[
        "max burst",
        "circular(32): lost",
        "loss %",
        "circular(256): lost",
        "loss %",
        "infinite: lost",
        "peak backlog (msgs)",
    ]);
    for r in &m.rows {
        t.row(&[
            r.burst.to_string(),
            r.lost_small.to_string(),
            format!("{:.1}%", 100.0 * r.lost_small as f64 / r.offered as f64),
            r.lost_large.to_string(),
            format!("{:.1}%", 100.0 * r.lost_large as f64 / r.offered as f64),
            r.lost_infinite.to_string(),
            r.peak_backlog.to_string(),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "Any fixed ring loses messages once a burst laps the consumer, and"
    )
    .unwrap();
    writeln!(
        out,
        "sizing it is a losing game; the VM-backed buffer loses none, because"
    )
    .unwrap();
    writeln!(
        out,
        "it is not a special-purpose storage manager at all — it reuses \"the"
    )
    .unwrap();
    writeln!(
        out,
        "standard storage management facility of the system — the virtual"
    )
    .unwrap();
    writeln!(
        out,
        "memory\", and consumed pages are reclaimed by ordinary replacement."
    )
    .unwrap();
    out
}

/// The paper's expectations over the sweep.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    let worst = m.worst();
    vec![
        ClaimResult::new(
            "E7.infinite-lossless",
            "E7",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.infinite_lost_total() as f64,
            "messages the infinite buffer lost, all burst sizes",
        ),
        ClaimResult::new(
            "E7.small-ring-lapped",
            "E7",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            worst.lost_small as f64,
            "messages the circular(32) ring overwrote at the largest burst",
        ),
        ClaimResult::new(
            "E7.large-ring-lapped-too",
            "E7",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            worst.lost_large as f64,
            "messages the circular(256) ring overwrote at the largest burst (sizing is a losing game)",
        ),
    ]
}

/// Measurement + report + claims.
pub fn run() -> ExperimentOutput {
    let m = measure();
    ExperimentOutput::new(report(&m), claims(&m))
}
