//! E11 — initialization: re-bootstrap vs pre-initialized memory image.
//!
//! "One pattern of operation may be much simpler to certify than the
//! other."

use std::fmt::Write;

use mks_hw::Clock;
use mks_kernel::init::bootstrap::bootstrap;
use mks_kernel::init::image::{build_image, load_hash, load_image};
use mks_kernel::init::state_hash;
use mks_kernel::KernelConfig;

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::{banner, Table};

const QUOTE: &str = "produce on a system tape a bit pattern which, when loaded into memory, manifests a fully initialized system";

/// One start pattern's trace, per configuration.
#[derive(Debug, Clone)]
pub struct StartRow {
    /// Configuration display name.
    pub config: &'static str,
    /// `bootstrap` or `memory image`.
    pub pattern: &'static str,
    /// Ordered start-time steps.
    pub steps: usize,
    /// Privileged operations among them.
    pub privileged_ops: u32,
    /// Simulated cycles to a running system.
    pub cycles: u64,
    /// Hash of the resulting system state.
    pub state_hash: u64,
}

/// Both start patterns across both configurations, plus determinism and
/// tamper probes of the image path.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Four rows: (legacy, kernel) × (bootstrap, image).
    pub rows: Vec<StartRow>,
    /// Configurations whose two patterns produced different states.
    pub state_mismatches: usize,
    /// Distinct hashes over 10 repeated image loads (must be 1).
    pub distinct_load_hashes: usize,
    /// Debug rendering of the tampered-image load error.
    pub tamper_result: String,
    /// Whether the tampered image was rejected.
    pub tamper_rejected: bool,
}

/// Runs both start patterns and the image probes.
pub fn measure() -> Measurement {
    let mut rows = Vec::new();
    let mut state_mismatches = 0;
    for cfg in [KernelConfig::legacy(), KernelConfig::kernel()] {
        let clock = Clock::new();
        let (bstate, btrace) = bootstrap(&cfg, &clock);
        rows.push(StartRow {
            config: cfg.name(),
            pattern: "bootstrap",
            steps: btrace.steps.len(),
            privileged_ops: btrace.privileged_ops,
            cycles: btrace.cycles,
            state_hash: state_hash(&bstate),
        });
        let img = build_image(&cfg);
        let clock = Clock::new();
        let (istate, itrace) = load_image(&img, &clock).expect("image loads");
        rows.push(StartRow {
            config: cfg.name(),
            pattern: "memory image",
            steps: itrace.steps.len(),
            privileged_ops: itrace.privileged_ops,
            cycles: itrace.cycles,
            state_hash: state_hash(&istate),
        });
        if bstate != istate {
            state_mismatches += 1;
        }
    }
    // Determinism: ten loads, one hash.
    let img = build_image(&KernelConfig::kernel());
    let mut hashes: Vec<u64> = (0..10).map(|_| load_hash(&img).unwrap()).collect();
    hashes.sort_unstable();
    hashes.dedup();
    let distinct_load_hashes = hashes.len();
    // Tamper evidence.
    let mut bad = build_image(&KernelConfig::kernel());
    bad.words[1] = mks_hw::Word::new(bad.words[1].raw() ^ 0o40);
    let (tamper_rejected, tamper_result) = match load_hash(&bad) {
        Err(e) => (true, format!("{e:?}")),
        Ok(_) => (false, "ACCEPTED (tampering not detected)".to_string()),
    };
    Measurement {
        rows,
        state_mismatches,
        distinct_load_hashes,
        tamper_result,
        tamper_rejected,
    }
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "E11: system start, incremental bootstrap vs memory image",
        &format!("\"{QUOTE}\""),
    );
    let mut t = Table::new(&[
        "configuration",
        "pattern",
        "start-time steps",
        "privileged ops",
        "cycles",
        "state hash",
    ]);
    for r in &m.rows {
        t.row(&[
            r.config.into(),
            r.pattern.into(),
            r.steps.to_string(),
            r.privileged_ops.to_string(),
            r.cycles.to_string(),
            format!("{:016x}", r.state_hash),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "10 repeated image loads produced identical states: {}",
        m.distinct_load_hashes == 1
    )
    .unwrap();
    writeln!(out, "tampered image load result: {}", m.tamper_result).unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "Certification surface at start time: ~22 ordered privileged steps"
    )
    .unwrap();
    writeln!(
        out,
        "versus a loader and a checksum. Every load is bit-identical, so one"
    )
    .unwrap();
    writeln!(out, "audit of one image covers every future start.").unwrap();
    out
}

/// The paper's expectations over the two patterns.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    let image_rows: Vec<&StartRow> = m
        .rows
        .iter()
        .filter(|r| r.pattern == "memory image")
        .collect();
    let max_image_steps = image_rows.iter().map(|r| r.steps).max().unwrap_or(0);
    let max_image_priv = image_rows
        .iter()
        .map(|r| r.privileged_ops)
        .max()
        .unwrap_or(0);
    vec![
        ClaimResult::new(
            "E11.patterns-agree",
            "E11",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.state_mismatches as f64,
            "configurations where bootstrap and image loads produce different states",
        ),
        ClaimResult::new(
            "E11.image-two-steps",
            "E11",
            QUOTE,
            ClaimShape::ExactCount { expect: 2 },
            max_image_steps as f64,
            "start-time steps under the memory-image pattern (load, verify)",
        ),
        ClaimResult::new(
            "E11.image-two-privileged-ops",
            "E11",
            QUOTE,
            ClaimShape::ExactCount { expect: 2 },
            max_image_priv as f64,
            "privileged operations under the memory-image pattern",
        ),
        ClaimResult::new(
            "E11.loads-deterministic",
            "E11",
            QUOTE,
            ClaimShape::ExactCount { expect: 1 },
            m.distinct_load_hashes as f64,
            "distinct state hashes over 10 repeated image loads",
        ),
        ClaimResult::new(
            "E11.tamper-detected",
            "E11",
            QUOTE,
            ClaimShape::ExactCount { expect: 1 },
            m.tamper_rejected as i64 as f64,
            "tampered image load rejected (BadChecksum)",
        ),
    ]
}

/// Measurement + report + claims.
pub fn run() -> ExperimentOutput {
    let m = measure();
    ExperimentOutput::new(report(&m), claims(&m))
}
