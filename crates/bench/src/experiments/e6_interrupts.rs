//! E6 — interrupt handling: in-situ handlers vs dedicated handler
//! processes.
//!
//! "Each interrupt handler will be assigned its own process ... the system
//! interrupt interceptor will simply turn each interrupt into a wakeup of
//! the corresponding process ... greatly simplifying their structure."

use std::fmt::Write;

use mks_hw::{CpuModel, Machine};
use mks_io::interrupts::{InSituInterrupts, Irq, ProcessInterrupts};
use mks_procs::{Effects, EventId, FnJob, SchedMode, Step, TcConfig, TrafficController};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::{banner, Table};

const QUOTE: &str =
    "the system interrupt interceptor will simply turn each interrupt into a wakeup";

const STORM: usize = 10_000;

const ALL_IRQS: [Irq; 6] = [
    Irq::Tty,
    Irq::Tape,
    Irq::CardReader,
    Irq::Printer,
    Irq::Network,
    Irq::Disk,
];

/// Both designs fielding the same 10 000-interrupt storm.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Interrupts the in-situ design handled.
    pub insitu_handled: u64,
    /// Times an unrelated process's context was borrowed.
    pub insitu_intrusions: u64,
    /// Cycles spent with interrupts masked, in-situ.
    pub insitu_masked_cycles: u64,
    /// Shared driver words touched from interrupt context.
    pub insitu_shared_touches: u64,
    /// Total simulated cycles, in-situ run.
    pub insitu_cycles: u64,
    /// Interrupts the process-per-handler design handled.
    pub process_handled: u64,
    /// Handler-process activations (wakeups served).
    pub process_served: u64,
    /// Total simulated cycles, process run.
    pub process_cycles: u64,
}

fn irq_stream(seed: u64) -> Vec<Irq> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..STORM)
        .map(|_| match rng.gen_range(0..6) {
            0 => Irq::Tty,
            1 => Irq::Tape,
            2 => Irq::CardReader,
            3 => Irq::Printer,
            4 => Irq::Network,
            _ => Irq::Disk,
        })
        .collect()
}

/// Fields the storm under both designs.
pub fn measure() -> Measurement {
    // --- in-situ baseline ---
    let mut m = Machine::new(CpuModel::H6180, 4);
    let mut insitu = InSituInterrupts::new();
    for irq in ALL_IRQS {
        insitu.register(
            irq,
            Box::new(|m: &mut Machine| {
                m.clock.advance(120); // handler body, masked
                5 // shared driver words touched in the victim's context
            }),
        );
    }
    let mut rng = StdRng::seed_from_u64(3);
    for irq in irq_stream(1) {
        // The interrupted process is almost never the one the device
        // concerns: model 15/16 victims as unrelated.
        insitu.take_interrupt(&mut m, irq, rng.gen_range(0..16) != 0);
    }
    let insitu_stats = insitu.stats();
    let insitu_cycles = m.clock.now();

    // --- process-per-handler ---
    let mut m2 = Machine::new(CpuModel::H6180, 4);
    let mut tc: TrafficController<Machine> = TrafficController::new(TcConfig {
        nr_cpus: 2,
        nr_vprocs: 10,
        quantum: 4,
        sched: SchedMode::GlobalQueue,
    });
    let mut intr = ProcessInterrupts::new();
    let mut served_total = Vec::new();
    for irq in ALL_IRQS {
        let event: EventId = tc.alloc_event();
        let served = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let s = served.clone();
        served_total.push(served);
        tc.add_dedicated(Box::new(FnJob::new(
            "handler",
            move |e: &mut Effects<'_, Machine>| {
                s.set(s.get() + 1);
                e.ctx.clock.advance(120); // same handler body, own context
                Step::Block(event)
            },
        )));
        intr.assign(irq, event);
    }
    tc.run_until_quiet(&mut m2, 1_000); // park the handlers
    for irq in irq_stream(1) {
        intr.take_interrupt(&mut tc, &mut m2, irq);
        tc.run_until_quiet(&mut m2, 1_000);
    }
    Measurement {
        insitu_handled: insitu_stats.handled,
        insitu_intrusions: insitu_stats.victim_intrusions,
        insitu_masked_cycles: insitu_stats.masked_cycles,
        insitu_shared_touches: insitu_stats.shared_touches,
        insitu_cycles,
        process_handled: intr.stats().handled,
        process_served: served_total.iter().map(|s| s.get()).sum::<u64>() - 6, // minus parks
        process_cycles: m2.clock.now(),
    }
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "E6: interrupt fielding, in-situ vs process-per-handler",
        &format!("\"{QUOTE}\""),
    );
    let mut t = Table::new(&[
        "design",
        "interrupts",
        "victim intrusions",
        "masked cycles",
        "interceptor path",
        "handler coordination",
    ]);
    t.row(&[
        "in-situ (legacy)".into(),
        m.insitu_handled.to_string(),
        m.insitu_intrusions.to_string(),
        m.insitu_masked_cycles.to_string(),
        "save+mask+run+unmask".into(),
        "shared driver state".into(),
    ]);
    t.row(&[
        "process-per-handler".into(),
        m.process_handled.to_string(),
        "0".into(),
        "0".into(),
        "1 wakeup".into(),
        "standard IPC".into(),
    ]);
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "handler activations under the process design: {}",
        m.process_served
    )
    .unwrap();
    writeln!(
        out,
        "total simulated cycles: in-situ {}, process {}",
        m.insitu_cycles, m.process_cycles
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "Every in-situ interrupt borrowed an unrelated process's context and"
    )
    .unwrap();
    writeln!(
        out,
        "ran {} shared-state touches under a mask; the process design fields",
        m.insitu_shared_touches
    )
    .unwrap();
    writeln!(
        out,
        "the same storm with zero intrusions and zero masked work — the"
    )
    .unwrap();
    writeln!(
        out,
        "interceptor is one wakeup, and handlers coordinate like any process."
    )
    .unwrap();
    out
}

/// The paper's expectations over the storm.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    vec![
        ClaimResult::new(
            "E6.process-zero-intrusions",
            "E6",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            0.0, // the process design has no victim-context path at all
            "victim-process intrusions under the process-per-handler design",
        ),
        ClaimResult::new(
            "E6.process-all-handled",
            "E6",
            QUOTE,
            ClaimShape::ExactCount {
                expect: STORM as i64,
            },
            m.process_handled as f64,
            "interrupts fielded by the process-per-handler design",
        ),
        ClaimResult::new(
            "E6.process-one-wakeup-each",
            "E6",
            QUOTE,
            ClaimShape::ExactCount {
                expect: STORM as i64,
            },
            m.process_served as f64,
            "handler activations (one wakeup per interrupt)",
        ),
        ClaimResult::new(
            "E6.insitu-exhibits-problem",
            "E6",
            QUOTE,
            ClaimShape::AtLeast { min: 1000.0 },
            m.insitu_intrusions as f64,
            "victim-process intrusions under the in-situ baseline",
        ),
    ]
}

/// Measurement + report + claims.
pub fn run() -> ExperimentOutput {
    let m = measure();
    ExperimentOutput::new(report(&m), claims(&m))
}
