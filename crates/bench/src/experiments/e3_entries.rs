//! E3 — "The linker and reference name removal projects together reduce
//! the number of user-available supervisor entries by approximately one
//! third."

use std::fmt::Write;

use mks_kernel::{GateTable, KernelConfig};

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::{banner, Table};

const QUOTE: &str = "the linker and reference name removal projects together reduce the number of user-available supervisor entries by approximately one third";

/// Honest-gap note shared by the report and the claim record.
pub const GAP_NOTE: &str = "the two removals cut 29% of the user-available surface against the \
paper's ~33%; the census is entry-exact, so the shortfall is a property of the reproduced gate \
population (our legacy census carries proportionally more file-system entries), not of drift";

/// One rung of the removal ladder.
#[derive(Debug, Clone, Copy)]
pub struct Rung {
    /// Configuration display name.
    pub name: &'static str,
    /// User-available supervisor entries.
    pub entries: usize,
}

/// The removal ladder, measured.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// legacy → +linker removal → +naming removal → full kernel.
    pub ladder: Vec<Rung>,
}

impl Measurement {
    /// The fraction of the legacy surface the two removals cut.
    pub fn both_removals_fraction(&self) -> f64 {
        let base = self.ladder[0].entries as f64;
        (base - self.ladder[2].entries as f64) / base
    }
}

/// Builds the census for every rung of the ladder.
pub fn measure() -> Measurement {
    let ladder = [
        KernelConfig::legacy(),
        KernelConfig::legacy_linker_removed(),
        KernelConfig::legacy_both_removals(),
        KernelConfig::kernel(),
    ]
    .into_iter()
    .map(|cfg| Rung {
        name: cfg.name(),
        entries: GateTable::build(&cfg).user_available_entries(),
    })
    .collect();
    Measurement { ladder }
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "E3: user-available supervisor entries across the removal ladder",
        &format!("\"{QUOTE}\""),
    );
    let base = m.ladder[0].entries;
    let mut t = Table::new(&["configuration", "user entries", "vs legacy"]);
    for rung in &m.ladder {
        t.row(&[
            rung.name.into(),
            rung.entries.to_string(),
            format!(
                "-{:.0}%",
                100.0 * (base - rung.entries) as f64 / base as f64
            ),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "linker + naming removals cut {:.1}% of user-available entries (paper: ~33%)",
        100.0 * m.both_removals_fraction()
    )
    .unwrap();
    out
}

/// The paper's expectations over the ladder. The four census counts are
/// asserted exactly: a gate-table edit cannot silently change the E1/E3
/// story.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    let expect = [101i64, 91, 72, 54];
    let slug = ["legacy", "linker-removed", "both-removals", "kernel"];
    let mut out: Vec<ClaimResult> = m
        .ladder
        .iter()
        .zip(expect)
        .zip(slug)
        .map(|((rung, expect), slug)| {
            ClaimResult::new(
                &format!("E3.ladder-{slug}"),
                "E3",
                QUOTE,
                ClaimShape::ExactCount { expect },
                rung.entries as f64,
                format!("user-available entries, {}", rung.name),
            )
        })
        .collect();
    out.push(
        ClaimResult::new(
            "E3.one-third-cut",
            "E3",
            QUOTE,
            ClaimShape::FractionNear {
                paper: 0.33,
                tol: 0.03,
                accept_tol: 0.06,
            },
            m.both_removals_fraction(),
            "fraction of the legacy user-available surface cut by both removals",
        )
        .with_gap(GAP_NOTE),
    );
    out
}

/// Measurement + report + claims.
pub fn run() -> ExperimentOutput {
    let m = measure();
    ExperimentOutput::new(report(&m), claims(&m))
}
