//! E10 — the Mitre model at the bottom layer: compartmentalized flow.
//!
//! "mechanisms to provide absolute compartmentalization of users and
//! stored information be implemented at the bottom layer ..., and
//! mechanisms to allow controlled sharing within the compartments be
//! implemented at the next layer ... The second layer mechanisms would be
//! common only within each compartment."

use std::fmt::Write;

use mks_mls::{mls_check, AccessKind, Compartments, Label, Level};

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::{banner, Table};

const QUOTE: &str =
    "access constraints that restrict information flow in a hierarchy of compartments";

const NAMES: [&str; 6] = ["U", "C", "S", "S/crypto", "S/nato", "TS/crypto"];

fn lab(name: &str) -> Label {
    match name {
        "U" => Label::new(Level::UNCLASSIFIED, Compartments::NONE),
        "C" => Label::new(Level::CONFIDENTIAL, Compartments::NONE),
        "S" => Label::new(Level::SECRET, Compartments::NONE),
        "S/crypto" => Label::new(Level::SECRET, Compartments::of(&[1])),
        "S/nato" => Label::new(Level::SECRET, Compartments::of(&[2])),
        "TS/crypto" => Label::new(Level::TOP_SECRET, Compartments::of(&[1])),
        _ => unreachable!(),
    }
}

/// The 6×6 flow matrix, measured.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `matrix[s][o]` = (read allowed, write allowed).
    pub matrix: Vec<Vec<(bool, bool)>>,
    /// Cells where full (rw) sharing is permitted.
    pub rw_cells: usize,
    /// Downward or off-diagonal-rw flows found (must be 0).
    pub violations: usize,
    /// Flows between the incomparable S/crypto and S/nato (must be 0).
    pub incomparable_flows: usize,
}

/// Checks every subject/object label pair.
pub fn measure() -> Measurement {
    let mut matrix = Vec::new();
    let mut rw_cells = 0;
    let mut violations = 0;
    for s in NAMES {
        let mut row = Vec::new();
        for o in NAMES {
            let subj = lab(s);
            let obj = lab(o);
            let r = mls_check(&subj, &obj, AccessKind::Read).is_ok();
            let w = mls_check(&subj, &obj, AccessKind::Write).is_ok();
            row.push((r, w));
            if mls_check(&subj, &obj, AccessKind::ReadWrite).is_ok() {
                rw_cells += 1;
                if subj != obj {
                    violations += 1;
                }
            }
            // No flow may run downward: if reading is allowed the subject
            // dominates; if writing is allowed the object dominates.
            if r && !subj.dominates(&obj) {
                violations += 1;
            }
            if w && !obj.dominates(&subj) {
                violations += 1;
            }
        }
        matrix.push(row);
    }
    let mut incomparable_flows = 0;
    for (a, b) in [("S/crypto", "S/nato"), ("S/nato", "S/crypto")] {
        for kind in [AccessKind::Read, AccessKind::Write] {
            if mls_check(&lab(a), &lab(b), kind).is_ok() {
                incomparable_flows += 1;
            }
        }
    }
    Measurement {
        matrix,
        rw_cells,
        violations,
        incomparable_flows,
    }
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "E10: information-flow matrix over the compartment lattice",
        &format!("\"{QUOTE}\""),
    );
    writeln!(
        out,
        "cell = what a SUBJECT (row) may do to an OBJECT (column):"
    )
    .unwrap();
    writeln!(
        out,
        "r = read (flow object->subject), w = write (flow subject->object),"
    )
    .unwrap();
    writeln!(
        out,
        "rw = full sharing (labels equal), - = no flow permitted\n"
    )
    .unwrap();
    let mut header = vec!["subject \\ object"];
    header.extend(NAMES);
    let mut t = Table::new(&header);
    for (s, row) in NAMES.iter().zip(&m.matrix) {
        let mut cells = vec![s.to_string()];
        for (r, w) in row {
            cells.push(match (r, w) {
                (true, true) => "rw".into(),
                (true, false) => "r".into(),
                (false, true) => "w".into(),
                (false, false) => "-".into(),
            });
        }
        t.row(&cells);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "full-sharing (rw) cells: {} — exactly the diagonal: sharing",
        m.rw_cells
    )
    .unwrap();
    writeln!(
        out,
        "mechanisms are \"common only within each compartment\"."
    )
    .unwrap();
    writeln!(out, "downward flows found: {} (must be 0)", m.violations).unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "S/crypto and S/nato are incomparable: no flow in either direction —"
    )
    .unwrap();
    writeln!(
        out,
        "the \"absolute compartmentalization\" of the bottom layer."
    )
    .unwrap();
    out
}

/// The paper's expectations over the matrix.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    vec![
        ClaimResult::new(
            "E10.no-downward-flow",
            "E10",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.violations as f64,
            "downward or off-diagonal-rw flows in the 6x6 matrix",
        ),
        ClaimResult::new(
            "E10.sharing-on-diagonal",
            "E10",
            QUOTE,
            ClaimShape::ExactCount {
                expect: NAMES.len() as i64,
            },
            m.rw_cells as f64,
            "full-sharing (rw) cells — exactly the diagonal",
        ),
        ClaimResult::new(
            "E10.compartments-incomparable",
            "E10",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.incomparable_flows as f64,
            "flows between S/crypto and S/nato in either direction",
        ),
    ]
}

/// Measurement + report + claims.
pub fn run() -> ExperimentOutput {
    let m = measure();
    ExperimentOutput::new(report(&m), claims(&m))
}
