//! E5 — page control: the sequential cascade vs dedicated freeing
//! processes.
//!
//! "The path taken by a user process on a page fault is greatly
//! simplified. ... The overall structure looks as though it will be much
//! simpler than that currently employed."

use std::fmt::Write;

use mks_vm::{RefTrace, TraceConfig, VmStats};

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::drivers::{run_parallel_metered, run_sequential_metered};
use crate::report::{banner, layer_breakdown, Table};

const QUOTE: &str = "the path taken by a user process on a page fault is greatly simplified";

/// One pressure point of the sweep: both designs on the same trace.
#[derive(Debug, Clone)]
pub struct PressurePoint {
    /// Primary-memory frames available.
    pub frames: usize,
    /// Sequential-design stats.
    pub sequential: VmStats,
    /// Parallel-design stats.
    pub parallel: VmStats,
}

/// The pressure sweep plus the highest-pressure metering snapshots.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// One row per frame count, decreasing (rising pressure).
    pub sweep: Vec<PressurePoint>,
    /// Flight-recorder snapshots at the highest pressure:
    /// `(frames, sequential, parallel)`.
    pub metering: (usize, mks_trace::Snapshot, mks_trace::Snapshot),
}

impl Measurement {
    /// The deepest-pressure point (last of the sweep).
    pub fn worst(&self) -> &PressurePoint {
        self.sweep.last().expect("sweep is non-empty")
    }

    /// Max fault-path steps the parallel design ever took, any pressure.
    pub fn parallel_max_steps(&self) -> u32 {
        self.sweep
            .iter()
            .map(|p| p.parallel.fault_path_steps_max)
            .max()
            .unwrap_or(0)
    }
}

/// Sweeps memory pressure over the 2 000-reference Zipf trace.
pub fn measure() -> Measurement {
    let mut sweep = Vec::new();
    let mut metering = None;
    for frames in [48, 24, 12, 6] {
        let trace = RefTrace::generate(&TraceConfig {
            seed: 11,
            nr_segments: 4,
            pages_per_segment: 12,
            length: 2_000,
            theta: 0.8,
            phase_len: 500,
        });
        let (seq, _, seq_snap) = run_sequential_metered(frames, 16, &trace, 3);
        let (par, _, par_snap) = run_parallel_metered(frames, 16, &trace, 3, 3);
        metering = Some((frames, seq_snap, par_snap));
        sweep.push(PressurePoint {
            frames,
            sequential: seq,
            parallel: par,
        });
    }
    Measurement {
        sweep,
        metering: metering.expect("sweep ran"),
    }
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "E5: page-fault path, sequential cascade vs dedicated processes",
        &format!("\"{QUOTE}\""),
    );
    let mut t = Table::new(&[
        "primary frames",
        "design",
        "faults",
        "mean steps/fault",
        "max steps",
        "mean latency (cyc)",
        "waits",
        "bulk evictions",
    ]);
    for p in &m.sweep {
        for (name, s) in [("sequential", &p.sequential), ("parallel", &p.parallel)] {
            t.row(&[
                p.frames.to_string(),
                name.into(),
                s.faults.to_string(),
                format!("{:.2}", s.mean_fault_steps()),
                s.fault_path_steps_max.to_string(),
                format!("{:.0}", s.mean_fault_latency()),
                s.fault_waits.to_string(),
                s.evictions_bulk.to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    let (frames, seq_snap, par_snap) = &m.metering;
    writeln!(
        out,
        "where the cycles go at {frames} frames (flight-recorder spans):"
    )
    .unwrap();
    for (name, snap) in [("sequential", seq_snap), ("parallel", par_snap)] {
        writeln!(out, "  {name}:").unwrap();
        for line in layer_breakdown(snap).render().lines() {
            writeln!(out, "    {line}").unwrap();
        }
        writeln!(
            out,
            "    snapshot written to results/e5_page_control_{name}_metering.json"
        )
        .unwrap();
    }
    writeln!(out).unwrap();
    writeln!(
        out,
        "The parallel design's fault path is a constant 2 steps (check for a"
    )
    .unwrap();
    writeln!(
        out,
        "free frame; initiate the transfer) regardless of pressure; the"
    )
    .unwrap();
    writeln!(
        out,
        "sequential design's path grows with pressure as the in-fault cascade"
    )
    .unwrap();
    writeln!(
        out,
        "(sample usage, evict, and — when the bulk store is full — stage a"
    )
    .unwrap();
    writeln!(
        out,
        "page to disk via primary memory) runs inside the faulting process."
    )
    .unwrap();
    out
}

/// The paper's expectations over the sweep.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    let worst = m.worst();
    vec![
        ClaimResult::new(
            "E5.parallel-path-constant",
            "E5",
            QUOTE,
            ClaimShape::ExactCount { expect: 2 },
            m.parallel_max_steps() as f64,
            "max fault-path steps under the parallel design, any pressure",
        ),
        ClaimResult::new(
            "E5.parallel-mean-constant",
            "E5",
            QUOTE,
            ClaimShape::ParityWithin { tolerance: 0.01 },
            worst.parallel.mean_fault_steps() / 2.0,
            "parallel mean fault-path steps at highest pressure, / 2.0",
        ),
        ClaimResult::new(
            "E5.sequential-cascades",
            "E5",
            QUOTE,
            ClaimShape::FactorAtLeast {
                paper: 2.0,
                accept: 2.0,
            },
            worst.sequential.mean_fault_steps() / worst.parallel.mean_fault_steps(),
            "sequential / parallel mean fault-path steps at highest pressure",
        ),
    ]
}

/// Measurement + report + claims (+ the metering snapshot artifacts).
pub fn run() -> ExperimentOutput {
    let m = measure();
    let mut out = ExperimentOutput::new(report(&m), claims(&m));
    let (_, seq_snap, par_snap) = &m.metering;
    out.artifacts.push((
        "e5_page_control_sequential_metering.json".to_string(),
        seq_snap.to_json(),
    ));
    out.artifacts.push((
        "e5_page_control_parallel_metering.json".to_string(),
        par_snap.to_json(),
    ));
    out
}
