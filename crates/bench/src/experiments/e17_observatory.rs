//! E17 — the kernel observatory: streaming audit analytics, quantile
//! profiling, and anomaly surveillance at scale.
//!
//! Schroeder's *review* activity presumes somebody is watching: "a list
//! of all known Multics security flaws is maintained", and the kernel's
//! audit machinery exists so that misuse leaves a record someone can
//! act on. This experiment drives the observability stack added on top
//! of the flight recorder — per-(layer, op, class) quantile sketches
//! with exemplars, deterministic head sampling with an always-keep rule
//! for security-critical records, and the streaming observatory
//! (sliding per-principal denial windows, heavy-hitter sketches, typed
//! surveillance alerts) — and machine-checks its contract:
//!
//! * **overhead parity** — the observability machinery spends *zero
//!   simulated cycles*: a workload run with aggressive sampling and one
//!   that keeps every record burn identical clocks;
//! * **bounded-error profiling** — every quantile estimate sits at or
//!   below the exact order statistic, within the documented
//!   `1/SUBBUCKETS` relative bound, and tail exemplars carry the
//!   responsible principal;
//! * **surveillance** — a denial storm from a probing principal raises
//!   a `denial_burst` alert naming the prober; a scribbled label found
//!   by the salvager raises a `label_raise` alert; and a sweep of 100+
//!   quiet seeds raises *nothing*;
//! * **read-only export** — all of it reaches the user ring only as a
//!   serialized copy through the pre-existing `hcs_$metering_get` gate
//!   (the gate census does not move), and the export JSON round-trips
//!   losslessly.

use std::collections::BTreeMap;
use std::fmt::Write;

use mks_fs::{Acl, AclMode, DirMode, FileSystem, TearMode, UserId};
use mks_hw::{RingBrackets, SplitMix64, Word};
use mks_kernel::world::{admin_user, System, SystemSize};
use mks_kernel::{KernelConfig, Monitor};
use mks_mls::Label;
use mks_trace::quantile::SUBBUCKETS;
use mks_trace::{AlertKind, QuantileSketch, SamplePolicy, Snapshot, TopK};

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::{banner, Table};

const QUOTE: &str =
    "review: a list of all known Multics security flaws is maintained ... the audit machinery exists so misuse leaves a record";

/// Mixed-load principals in the surveillance workload.
const LOAD_PRINCIPALS: usize = 4;

/// Rounds of interleaved load (each principal one op per round, plus
/// one probe from the stranger).
const LOAD_ROUNDS: u64 = 24;

/// Back-to-back denied probes in the storm phase.
const STORM_PROBES: u64 = 32;

/// Routine-record sampling rate for the sampled run (keep 1 in 16).
const SAMPLE_RATE: u64 = 16;

/// Observations in each synthetic accuracy probe.
const PROBE_STREAM: u64 = 20_000;

/// Quiet-seed sweep default; `MKS_SWEEP_SEEDS` overrides.
const QUIET_SEEDS_DEFAULT: u64 = 120;

/// One surveillance workload run, observed.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Routine-record sampling rate the run used.
    pub keep_one_in: u64,
    /// Simulated cycles the workload consumed (before export).
    pub cycles: u64,
    /// Mixed-load operations that completed.
    pub completed: u64,
    /// Trace records actually appended to the ring (kept + forced).
    pub appended: u64,
    /// Security-critical records kept unconditionally.
    pub forced: u64,
    /// Denials the observatory tallied.
    pub denials: u64,
    /// `denial_burst` alerts in the registry.
    pub burst_alerts: u64,
    /// `label_raise` alerts in the registry.
    pub label_raise_alerts: u64,
    /// Whether the probing stranger tops the noisy-principal sketch
    /// *and* is the principal named by the first burst alert.
    pub storm_attributed: bool,
    /// Profiled monitor sketches in the snapshot.
    pub monitor_sketches: u64,
    /// Of which at least one exemplar names a principal.
    pub attributed_sketches: u64,
    /// Alerts seen through `hcs_$metering_get` equal the recorder's.
    pub alerts_via_gate: bool,
    /// The export JSON survives parse∘emit byte-identically.
    pub roundtrip_exact: bool,
    /// Quantiles, alerts, heavy hitters and exemplars all non-empty in
    /// the parsed export.
    pub sections_nonempty: bool,
    /// User-available gate entries (the census must not move).
    pub gate_census: u64,
}

/// The synthetic quantile-accuracy probe.
#[derive(Debug, Clone)]
pub struct QuantileProbe {
    /// `(permille, exact order statistic, sketch estimate)` rows.
    pub points: Vec<(u64, u64, u64)>,
    /// Largest relative error `(exact - est) / exact` over the rows.
    pub max_rel_err: f64,
    /// Estimates that exceeded the exact order statistic (must be 0).
    pub overestimates: u64,
}

/// The synthetic heavy-hitter probe.
#[derive(Debug, Clone)]
pub struct HeavyHitterProbe {
    /// Stream length.
    pub stream: u64,
    /// Sketch capacity (`k` in the `N/k` bound).
    pub capacity: u64,
    /// True heavy keys present in the sketch (of 4 planted).
    pub heavies_found: u64,
    /// Largest overestimate, scaled by `k / N` (theory bounds it ≤ 1).
    pub max_err_ratio: f64,
}

/// The campaign's observations.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The storm workload with every record kept.
    pub baseline: WorkloadRun,
    /// The identical workload keeping 1 in [`SAMPLE_RATE`] routine records.
    pub sampled: WorkloadRun,
    /// Quantile accuracy vs an exact sorted shadow.
    pub quantiles: QuantileProbe,
    /// Space-saving accuracy vs exact counts.
    pub heavy_hitters: HeavyHitterProbe,
    /// Quiet seeds swept.
    pub quiet_seeds: u64,
    /// Denial-burst alerts across the quiet sweep (must be 0).
    pub quiet_false_alarms: u64,
    /// Denials the quiet sweep did produce (the sweep is not vacuous).
    pub quiet_denials: u64,
}

fn load_user(i: usize) -> UserId {
    UserId::new(&format!("Load{i}"), "Traffic", "a")
}

fn stranger_user() -> UserId {
    UserId::new("Stranger", "Probe", "a")
}

/// Drives the surveillance workload: mixed permitted traffic from
/// [`LOAD_PRINCIPALS`] principals, a probing stranger denied at every
/// attempt, a storm of back-to-back probes, and a scribbled directory
/// label repaired by the salvager — then exports through the metering
/// gate and audits the export itself.
fn run_workload(keep_one_in: u64) -> WorkloadRun {
    let mut sys = System::with_size(
        KernelConfig::kernel(),
        SystemSize {
            frames: 32,
            bulk_records: 64,
            cpu: mks_hw::CpuModel::H6180,
            ..SystemSize::default()
        },
    );
    let trace = sys.world.vm.machine.trace.clone();
    trace.set_sampling(SamplePolicy {
        keep_one_in,
        seed: 0xe17,
    });

    // Provisioning: one home per load principal; a vault whose secret
    // only the administrator may touch.
    let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
    let aroot = sys.world.bind_root(admin);
    let mut pids = Vec::new();
    let mut homes = Vec::new();
    let mut probes: Vec<Option<mks_hw::SegNo>> = vec![None; LOAD_PRINCIPALS];
    for i in 0..LOAD_PRINCIPALS {
        let name = format!("h{i}");
        Monitor::create_directory(&mut sys.world, admin, aroot, &name, Label::BOTTOM)
            .expect("home directory creates on a fresh system");
        sys.world
            .fs
            .set_dir_acl_entry(
                FileSystem::ROOT,
                &name,
                &admin_user(),
                &load_user(i).to_acl_string(),
                DirMode::SMA,
            )
            .expect("home ACL grant");
        let pid = sys.world.create_process(load_user(i), Label::BOTTOM, 4);
        let root = sys.world.bind_root(pid);
        homes.push(Monitor::initiate_dir(&mut sys.world, pid, root, &name));
        pids.push(pid);
    }
    Monitor::create_directory(&mut sys.world, admin, aroot, "vault", Label::BOTTOM)
        .expect("vault creates");
    let avault = Monitor::initiate_dir(&mut sys.world, admin, aroot, "vault");
    Monitor::create_segment(
        &mut sys.world,
        admin,
        avault,
        "secret",
        Acl::of(&admin_user().to_acl_string(), AclMode::RW),
        RingBrackets::new(4, 4, 4),
        Label::BOTTOM,
    )
    .expect("secret creates");
    let stranger = sys.world.create_process(stranger_user(), Label::BOTTOM, 4);
    let sroot = sys.world.bind_root(stranger);
    let svault = Monitor::initiate_dir(&mut sys.world, stranger, sroot, "vault");

    // Mixed load with one stranger probe per round (sparse denials).
    let mut rng = SplitMix64::new(0xe17);
    let mut completed = 0u64;
    for op in 0..LOAD_ROUNDS {
        for (i, &pid) in pids.iter().enumerate() {
            let ok = match rng.below(5) {
                0 | 1 => match probes[i] {
                    Some(seg) => {
                        let off =
                            (rng.below(4) * mks_hw::PAGE_WORDS as u64 + rng.below(64)) as usize;
                        Monitor::write(&mut sys.world, pid, seg, off, Word::new(op + 1)).is_ok()
                    }
                    None => {
                        let r = Monitor::create_segment(
                            &mut sys.world,
                            pid,
                            homes[i],
                            &format!("probe{i}"),
                            Acl::of("*.*.*", AclMode::RW),
                            RingBrackets::new(4, 4, 4),
                            Label::BOTTOM,
                        );
                        probes[i] = r.as_ref().ok().copied();
                        r.is_ok()
                    }
                },
                2 => match probes[i] {
                    Some(seg) => {
                        Monitor::read(&mut sys.world, pid, seg, rng.below(64) as usize).is_ok()
                    }
                    None => false,
                },
                3 => Monitor::list_dir(&mut sys.world, pid, homes[i]).is_ok(),
                _ => Monitor::call_gate(&mut sys.world, pid, "hcs_", "metering_get").is_ok(),
            };
            if ok {
                completed += 1;
            }
        }
        // The stranger keeps probing the vault; every attempt is denied
        // and audited (sparse enough here not to trip the window).
        let _ = Monitor::initiate(&mut sys.world, stranger, svault, "secret");
    }

    // The storm: back-to-back denied probes, tight on the clock — the
    // signature the burst detector exists for.
    for _ in 0..STORM_PROBES {
        let _ = Monitor::initiate(&mut sys.world, stranger, svault, "secret");
    }

    // Damage one home's label and let the salvager repair it: every
    // upward label move must surface as a `label_raise` alert.
    let h0_uid = sys
        .world
        .fs
        .peek_branch(FileSystem::ROOT, "h0")
        .expect("h0 exists")
        .uid;
    sys.world
        .fs
        .apply_tear(h0_uid, h0_uid, TearMode::ScribbleDirLabel);
    sys.world.fs.salvage();

    // Measure the workload clock *before* export traffic.
    let cycles = sys.world.vm.machine.clock.now();
    let sampler = trace.sampler_stats();
    let (denials, burst_alerts, label_raise_alerts, storm_attributed) =
        trace.read_observatory(|o| {
            let alerts = o.alerts();
            let bursts: Vec<_> = alerts
                .iter()
                .filter(|a| a.kind == AlertKind::DenialBurst)
                .collect();
            let raises = alerts
                .iter()
                .filter(|a| a.kind == AlertKind::LabelRaise)
                .count() as u64;
            let noisiest = o.noisy_principals().ranked().first().map(|h| h.key.clone());
            let who = stranger_user().to_acl_string();
            let attributed = noisiest.as_deref() == Some(who.as_str())
                && bursts
                    .first()
                    .is_some_and(|a| a.principal.as_deref() == Some(who.as_str()));
            (o.totals().denials, bursts.len() as u64, raises, attributed)
        });

    // Export through the gate, from the *stranger's* user ring: the
    // surveillance state watching the stranger is readable, as a copy,
    // by anyone — and only as a copy.
    let json =
        Monitor::metering_snapshot(&mut sys.world, stranger).expect("metering gate is user-ring");
    let parsed = Snapshot::from_json(&json).expect("export parses");
    let roundtrip_exact = parsed.to_json() == json;
    let alerts_via_gate = parsed.observatory.alerts == trace.alerts();
    let monitor_sketches = parsed
        .quantiles
        .iter()
        .filter(|q| q.name.starts_with("q.monitor."))
        .count() as u64;
    let attributed_sketches = parsed
        .quantiles
        .iter()
        .filter(|q| {
            q.name.starts_with("q.monitor.") && q.exemplars.iter().any(|e| e.principal.is_some())
        })
        .count() as u64;
    let sections_nonempty = !parsed.quantiles.is_empty()
        && !parsed.observatory.alerts.is_empty()
        && !parsed.observatory.noisy_principals.entries.is_empty()
        && parsed.quantiles.iter().any(|q| !q.exemplars.is_empty());

    WorkloadRun {
        keep_one_in,
        cycles,
        completed,
        appended: sampler.kept + sampler.forced,
        forced: sampler.forced,
        denials,
        burst_alerts,
        label_raise_alerts,
        storm_attributed,
        monitor_sketches,
        attributed_sketches,
        alerts_via_gate,
        roundtrip_exact,
        sections_nonempty,
        gate_census: sys.world.gates.user_available_entries() as u64,
    }
}

/// Streams a mixed body-plus-tail distribution through a sketch and an
/// exact sorted shadow, and compares the estimated quantiles.
fn probe_quantiles() -> QuantileProbe {
    let mut sketch = QuantileSketch::new(0xe17);
    let mut exact: Vec<u64> = Vec::with_capacity(PROBE_STREAM as usize);
    let mut rng = SplitMix64::new(0x0b5e_41a7);
    for at in 0..PROBE_STREAM {
        // 90% short operations, 10% a long heavy tail — the shape that
        // makes factor-of-two buckets useless and sub-buckets earn rent.
        let v = if rng.below(10) < 9 {
            rng.below(50_000)
        } else {
            200_000 + rng.below(2_000_000)
        };
        sketch.observe(v, at, Some("Load0.Traffic.a"), "probe");
        exact.push(v);
    }
    exact.sort_unstable();
    let n = exact.len() as u64;
    let mut points = Vec::new();
    let mut max_rel_err = 0.0f64;
    let mut overestimates = 0u64;
    for permille in [500u64, 950, 990, 999] {
        let rank = ((permille * n).div_ceil(1000)).clamp(1, n) as usize - 1;
        let v = exact[rank];
        let est = sketch.quantile(permille);
        if est > v {
            overestimates += 1;
        } else if v > 0 {
            max_rel_err = max_rel_err.max((v - est) as f64 / v as f64);
        }
        points.push((permille, v, est));
    }
    QuantileProbe {
        points,
        max_rel_err,
        overestimates,
    }
}

/// Streams a skewed key distribution through a [`TopK`] and an exact
/// counter, and checks the space-saving guarantees.
fn probe_heavy_hitters() -> HeavyHitterProbe {
    let capacity = 16usize;
    let mut sketch = TopK::new(capacity);
    let mut truth: BTreeMap<String, u64> = BTreeMap::new();
    let mut rng = SplitMix64::new(0x7074);
    for _ in 0..PROBE_STREAM {
        // 60% of traffic concentrates on 4 heavy keys; the rest spreads
        // over 400 noise keys that must not displace them.
        let key = if rng.below(10) < 6 {
            format!("heavy{}", rng.below(4))
        } else {
            format!("noise{}", rng.below(400))
        };
        sketch.record(&key, 1);
        *truth.entry(key).or_default() += 1;
    }
    let ranked = sketch.ranked();
    let heavies_found = (0..4)
        .filter(|i| ranked.iter().any(|h| h.key == format!("heavy{i}")))
        .count() as u64;
    let max_err_ratio = ranked
        .iter()
        .map(|h| {
            let over = h.count - truth.get(&h.key).copied().unwrap_or(0);
            over as f64 * capacity as f64 / PROBE_STREAM as f64
        })
        .fold(0.0f64, f64::max);
    HeavyHitterProbe {
        stream: PROBE_STREAM,
        capacity: capacity as u64,
        heavies_found,
        max_err_ratio,
    }
}

/// Quiet-seed count: `MKS_SWEEP_SEEDS` bounds wall time in CI.
fn quiet_seed_count() -> u64 {
    std::env::var("MKS_SWEEP_SEEDS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(QUIET_SEEDS_DEFAULT)
        .max(1)
}

/// One quiet run: benign mixed traffic with occasional, well-spaced
/// denials. Returns `(denial_burst alerts, denials produced)`.
fn run_quiet(seed: u64) -> (u64, u64) {
    let mut sys = System::with_size(
        KernelConfig::kernel(),
        SystemSize {
            frames: 16,
            bulk_records: 32,
            cpu: mks_hw::CpuModel::H6180,
            ..SystemSize::default()
        },
    );
    let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
    let aroot = sys.world.bind_root(admin);
    let mut pids = Vec::new();
    let mut homes = Vec::new();
    let mut segs: Vec<Option<mks_hw::SegNo>> = vec![None; 2];
    for i in 0..2usize {
        let name = format!("q{i}");
        Monitor::create_directory(&mut sys.world, admin, aroot, &name, Label::BOTTOM)
            .expect("quiet home creates");
        sys.world
            .fs
            .set_dir_acl_entry(
                FileSystem::ROOT,
                &name,
                &admin_user(),
                &load_user(i).to_acl_string(),
                DirMode::SMA,
            )
            .expect("quiet home ACL grant");
        let pid = sys.world.create_process(load_user(i), Label::BOTTOM, 4);
        let root = sys.world.bind_root(pid);
        homes.push(Monitor::initiate_dir(&mut sys.world, pid, root, &name));
        pids.push(pid);
    }
    let mut rng = SplitMix64::new(0x9_1e7 ^ seed);
    for op in 0..20u64 {
        for (i, &pid) in pids.iter().enumerate() {
            match rng.below(8) {
                0 => {
                    // The occasional fat-fingered access: a denial, but
                    // nowhere near burst density.
                    let _ = Monitor::initiate(&mut sys.world, pid, homes[i], "no_such_seg");
                }
                1 | 2 => match segs[i] {
                    Some(seg) => {
                        let _ = Monitor::read(&mut sys.world, pid, seg, rng.below(64) as usize);
                    }
                    None => {
                        segs[i] = Monitor::create_segment(
                            &mut sys.world,
                            pid,
                            homes[i],
                            &format!("s{i}"),
                            Acl::of("*.*.*", AclMode::RW),
                            RingBrackets::new(4, 4, 4),
                            Label::BOTTOM,
                        )
                        .ok();
                    }
                },
                3 | 4 => match segs[i] {
                    Some(seg) => {
                        let _ = Monitor::write(
                            &mut sys.world,
                            pid,
                            seg,
                            rng.below(64) as usize,
                            Word::new(op + 1),
                        );
                    }
                    None => {
                        let _ = Monitor::list_dir(&mut sys.world, pid, homes[i]);
                    }
                },
                _ => {
                    let _ = Monitor::list_dir(&mut sys.world, pid, homes[i]);
                }
            }
        }
    }
    let trace = &sys.world.vm.machine.trace;
    let bursts = trace
        .alerts()
        .iter()
        .filter(|a| a.kind == AlertKind::DenialBurst)
        .count() as u64;
    let denials = trace.read_observatory(|o| o.totals().denials);
    (bursts, denials)
}

/// Runs the workload pair, the accuracy probes, and the quiet sweep.
pub fn measure() -> Measurement {
    let baseline = run_workload(1);
    let sampled = run_workload(SAMPLE_RATE);
    let quantiles = probe_quantiles();
    let heavy_hitters = probe_heavy_hitters();
    let quiet_seeds = quiet_seed_count();
    let mut quiet_false_alarms = 0u64;
    let mut quiet_denials = 0u64;
    for seed in 1..=quiet_seeds {
        let (bursts, denials) = run_quiet(seed);
        quiet_false_alarms += bursts;
        quiet_denials += denials;
    }
    Measurement {
        baseline,
        sampled,
        quantiles,
        heavy_hitters,
        quiet_seeds,
        quiet_false_alarms,
        quiet_denials,
    }
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner("E17: the kernel observatory", &format!("\"{QUOTE}\""));
    let mut t = Table::new(&[
        "run",
        "keep 1/N",
        "cycles",
        "completed",
        "ring records",
        "forced",
        "denials",
        "burst alerts",
    ]);
    for r in [&m.baseline, &m.sampled] {
        t.row(&[
            if r.keep_one_in == 1 {
                "baseline".into()
            } else {
                "sampled".into()
            },
            r.keep_one_in.to_string(),
            r.cycles.to_string(),
            r.completed.to_string(),
            r.appended.to_string(),
            r.forced.to_string(),
            r.denials.to_string(),
            r.burst_alerts.to_string(),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "parity: sampling 1-in-{} thinned the ring {} -> {} records while the",
        SAMPLE_RATE, m.baseline.appended, m.sampled.appended,
    )
    .unwrap();
    writeln!(
        out,
        "clock moved identically ({} vs {} cycles) and the observatory's denial",
        m.baseline.cycles, m.sampled.cycles,
    )
    .unwrap();
    writeln!(
        out,
        "count held exactly ({} vs {}) — analytics run before the sampler.",
        m.baseline.denials, m.sampled.denials,
    )
    .unwrap();
    writeln!(out).unwrap();
    let mut t = Table::new(&["quantile", "exact", "estimate", "rel err"]);
    for &(permille, exact, est) in &m.quantiles.points {
        t.row(&[
            format!("p{permille}"),
            exact.to_string(),
            est.to_string(),
            if exact == 0 {
                "0".into()
            } else {
                format!("{:.4}", (exact.saturating_sub(est)) as f64 / exact as f64)
            },
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "profiling: max relative error {:.4} (bound 1/{SUBBUCKETS} = {:.4}), {} overestimates;",
        m.quantiles.max_rel_err,
        1.0 / SUBBUCKETS as f64,
        m.quantiles.overestimates,
    )
    .unwrap();
    writeln!(
        out,
        "{} of {} profiled monitor sketches carry principal-attributed exemplars.",
        m.baseline.attributed_sketches, m.baseline.monitor_sketches,
    )
    .unwrap();
    writeln!(
        out,
        "heavy hitters: {}/4 planted keys found in a k={} sketch over {} events,",
        m.heavy_hitters.heavies_found, m.heavy_hitters.capacity, m.heavy_hitters.stream,
    )
    .unwrap();
    writeln!(
        out,
        "worst overestimate {:.3} of the N/k bound.",
        m.heavy_hitters.max_err_ratio,
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "surveillance: the storm raised {} burst alert(s) naming the prober ({}),",
        m.baseline.burst_alerts,
        if m.baseline.storm_attributed {
            "attributed"
        } else {
            "UNATTRIBUTED"
        },
    )
    .unwrap();
    writeln!(
        out,
        "the scribbled label raised {} label_raise alert(s), and {} quiet seeds",
        m.baseline.label_raise_alerts, m.quiet_seeds,
    )
    .unwrap();
    writeln!(
        out,
        "({} sparse denials among them) raised {} false alarms.",
        m.quiet_denials, m.quiet_false_alarms,
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "export: hcs_$metering_get round-trip exact: {}; alerts visible via the",
        m.baseline.roundtrip_exact,
    )
    .unwrap();
    writeln!(
        out,
        "gate: {}; user-available gate census: {} (unchanged — surveillance",
        m.baseline.alerts_via_gate, m.baseline.gate_census,
    )
    .unwrap();
    writeln!(out, "added state, not attack surface).").unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "Consequence: the kernel can watch itself being probed — bounded"
    )
    .unwrap();
    writeln!(
        out,
        "sketches instead of unbounded logs, alerts instead of grep, and"
    )
    .unwrap();
    writeln!(
        out,
        "all of it behind the same read-only gate the metering always used."
    )
    .unwrap();
    out
}

/// The observatory's expectations over the measurement.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    vec![
        ClaimResult::new(
            "E17.overhead-parity",
            "E17",
            QUOTE,
            ClaimShape::ParityWithin { tolerance: 0.01 },
            m.sampled.cycles as f64 / m.baseline.cycles.max(1) as f64,
            "workload cycles with 1-in-16 sampling relative to keeping every record",
        ),
        ClaimResult::new(
            "E17.sampling-thins-routine",
            "E17",
            QUOTE,
            ClaimShape::AtMost { max: 0.5 },
            m.sampled.appended as f64 / m.baseline.appended.max(1) as f64,
            "ring records appended under sampling relative to the unsampled run",
        ),
        ClaimResult::new(
            "E17.criticals-always-kept",
            "E17",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            m.sampled.forced as f64,
            "security-critical records kept unconditionally in the sampled run",
        ),
        ClaimResult::new(
            "E17.analytics-precede-sampling",
            "E17",
            QUOTE,
            ClaimShape::ParityWithin { tolerance: 0.0 },
            m.sampled.denials as f64 / m.baseline.denials.max(1) as f64,
            "observatory denial tally under sampling relative to the unsampled run (exact)",
        ),
        ClaimResult::new(
            "E17.quantile-rank-error",
            "E17",
            QUOTE,
            ClaimShape::AtMost {
                max: 1.0 / SUBBUCKETS as f64,
            },
            m.quantiles.max_rel_err,
            "largest relative error of p50/p95/p99/p999 vs the exact sorted shadow",
        ),
        ClaimResult::new(
            "E17.quantile-never-overestimates",
            "E17",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.quantiles.overestimates as f64,
            "quantile estimates exceeding the exact order statistic",
        ),
        ClaimResult::new(
            "E17.exemplars-attributed",
            "E17",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            m.baseline.attributed_sketches as f64,
            "profiled monitor sketches whose tail exemplars name a principal",
        ),
        ClaimResult::new(
            "E17.heavy-hitters-found",
            "E17",
            QUOTE,
            ClaimShape::ExactCount { expect: 4 },
            m.heavy_hitters.heavies_found as f64,
            "planted heavy keys surviving 400 noise keys in a k=16 sketch",
        ),
        ClaimResult::new(
            "E17.heavy-hitter-error-bound",
            "E17",
            QUOTE,
            ClaimShape::AtMost { max: 1.0 },
            m.heavy_hitters.max_err_ratio,
            "largest count overestimate as a fraction of the N/k space-saving bound",
        ),
        ClaimResult::new(
            "E17.storm-detected",
            "E17",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            m.baseline.burst_alerts as f64,
            "denial_burst alerts raised by the probing storm",
        ),
        ClaimResult::new(
            "E17.storm-attributed",
            "E17",
            QUOTE,
            ClaimShape::ExactCount { expect: 1 },
            u64::from(m.baseline.storm_attributed) as f64,
            "the prober tops the noisy-principal sketch and is named by the alert",
        ),
        ClaimResult::new(
            "E17.quiet-seeds-silent",
            "E17",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.quiet_false_alarms as f64,
            "denial_burst alerts across the quiet-seed sweep (false alarms)",
        ),
        ClaimResult::new(
            "E17.quiet-sweep-covered",
            "E17",
            QUOTE,
            ClaimShape::AtLeast { min: 100.0 },
            m.quiet_seeds as f64,
            "quiet seeds swept (MKS_SWEEP_SEEDS can raise, default 120)",
        ),
        ClaimResult::new(
            "E17.label-raise-alerted",
            "E17",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            m.baseline.label_raise_alerts as f64,
            "label_raise alerts after the salvager repaired a scribbled label",
        ),
        ClaimResult::new(
            "E17.export-lossless",
            "E17",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            (u64::from(!m.baseline.roundtrip_exact) + u64::from(!m.baseline.sections_nonempty))
                as f64,
            "export defects: parse-emit mismatches plus empty observability sections",
        ),
        ClaimResult::new(
            "E17.read-only-gate-export",
            "E17",
            QUOTE,
            ClaimShape::ExactCount { expect: 1 },
            u64::from(m.baseline.alerts_via_gate) as f64,
            "alert registry readable through hcs_$metering_get, byte-equal to the recorder's",
        ),
        ClaimResult::new(
            "E17.no-new-gates",
            "E17",
            QUOTE,
            ClaimShape::ExactCount { expect: 54 },
            m.baseline.gate_census as f64,
            "user-available gate entries with the observatory wired in",
        ),
    ]
}

/// Measurement + report + claims (+ the accuracy CSV artifact).
pub fn run() -> ExperimentOutput {
    let m = measure();
    let mut out = ExperimentOutput::new(report(&m), claims(&m));
    let mut lines = String::from("metric,value\n");
    writeln!(lines, "baseline_cycles,{}", m.baseline.cycles).unwrap();
    writeln!(lines, "sampled_cycles,{}", m.sampled.cycles).unwrap();
    writeln!(lines, "baseline_ring_records,{}", m.baseline.appended).unwrap();
    writeln!(lines, "sampled_ring_records,{}", m.sampled.appended).unwrap();
    writeln!(lines, "sampled_forced,{}", m.sampled.forced).unwrap();
    writeln!(lines, "burst_alerts,{}", m.baseline.burst_alerts).unwrap();
    writeln!(
        lines,
        "label_raise_alerts,{}",
        m.baseline.label_raise_alerts
    )
    .unwrap();
    writeln!(lines, "quiet_seeds,{}", m.quiet_seeds).unwrap();
    writeln!(lines, "quiet_false_alarms,{}", m.quiet_false_alarms).unwrap();
    writeln!(lines, "quantile_max_rel_err,{:.6}", m.quantiles.max_rel_err).unwrap();
    writeln!(
        lines,
        "hh_max_err_ratio,{:.6}",
        m.heavy_hitters.max_err_ratio
    )
    .unwrap();
    for &(permille, exact, est) in &m.quantiles.points {
        writeln!(lines, "p{permille}_exact,{exact}").unwrap();
        writeln!(lines, "p{permille}_estimate,{est}").unwrap();
    }
    out.artifacts
        .push(("e17_observatory_accuracy.csv".to_string(), lines));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_runs_are_deterministic() {
        let a = run_workload(1);
        let b = run_workload(1);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.appended, b.appended);
        assert_eq!(a.burst_alerts, b.burst_alerts);
    }

    #[test]
    fn sampling_changes_the_ring_but_not_the_clock_or_the_analytics() {
        let full = run_workload(1);
        let thin = run_workload(SAMPLE_RATE);
        assert_eq!(full.cycles, thin.cycles, "sampling must cost zero cycles");
        assert_eq!(full.denials, thin.denials, "analytics precede sampling");
        assert!(thin.appended < full.appended, "{thin:?}");
        assert!(thin.forced >= 1, "criticals survive sampling");
    }

    #[test]
    fn the_storm_is_detected_and_exported() {
        let r = run_workload(1);
        assert!(r.burst_alerts >= 1, "{r:?}");
        assert!(r.label_raise_alerts >= 1, "{r:?}");
        assert!(r.storm_attributed, "{r:?}");
        assert!(r.roundtrip_exact && r.alerts_via_gate, "{r:?}");
        assert_eq!(r.gate_census, 54);
    }

    #[test]
    fn quiet_runs_raise_no_alarms() {
        for seed in 1..=5 {
            let (bursts, _) = run_quiet(seed);
            assert_eq!(bursts, 0, "seed {seed}");
        }
    }
}
