//! A3 — structuring the kernel for certification: per-property audit
//! scope under the layered organization vs a flat one.
//!
//! "One technique of modularization is to divide the kernel into domains
//! arranged so that each property is implied by a subset of the domains."

use std::fmt::Write;

use mks_kernel::layers::StructureReport;
use mks_kernel::KernelConfig;

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::{banner, Table};

const QUOTE: &str = "each property is implied by a subset of the domains ... each involves only a subset of the domains in the kernel";

/// One security property's audit scope.
#[derive(Debug, Clone)]
pub struct ScopeRow {
    /// Property display label.
    pub property: &'static str,
    /// Statement weight to audit under the layered organization.
    pub layered: u32,
    /// Statement weight to audit flat (the whole kernel).
    pub flat: u32,
}

impl ScopeRow {
    /// Layered scope as a fraction of the flat kernel.
    pub fn fraction(&self) -> f64 {
        f64::from(self.layered) / f64::from(self.flat)
    }
}

/// Per-property audit scopes, measured.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// One row per security property.
    pub scopes: Vec<ScopeRow>,
    /// Mean of the per-property scope fractions.
    pub mean_scope: f64,
}

impl Measurement {
    /// Properties whose layered scope is the whole kernel.
    pub fn whole_kernel_properties(&self) -> usize {
        self.scopes.iter().filter(|s| s.layered >= s.flat).count()
    }

    /// Properties whose scope exceeds complete mediation's.
    pub fn wider_than_mediation(&self) -> usize {
        let mediation = self
            .scopes
            .iter()
            .find(|s| s.property == "complete mediation")
            .map(|s| s.layered)
            .unwrap_or(0);
        self.scopes.iter().filter(|s| s.layered > mediation).count()
    }
}

/// Computes every property's audit scope for the kernel configuration.
pub fn measure() -> Measurement {
    let report = StructureReport::for_config(KernelConfig::kernel());
    let scopes = report
        .scopes
        .iter()
        .map(|s| ScopeRow {
            property: s.property.label(),
            layered: s.layered_weight,
            flat: s.flat_weight,
        })
        .collect();
    Measurement {
        scopes,
        mean_scope: report.mean_scope_fraction(),
    }
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "A3: per-property certification scope, layered vs flat kernel",
        &format!("\"{QUOTE}\""),
    );
    let mut t = Table::new(&[
        "security property",
        "layered scope (stmts)",
        "flat scope (stmts)",
        "fraction of kernel",
    ]);
    for s in &m.scopes {
        t.row(&[
            s.property.into(),
            s.layered.to_string(),
            s.flat.to_string(),
            format!("{:.0}%", 100.0 * s.fraction()),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "mean per-property audit scope: {:.0}% of the protected kernel",
        100.0 * m.mean_scope
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "The MLS-at-the-bottom layering (the paper's partitioning proposal)"
    )
    .unwrap();
    writeln!(
        out,
        "makes the compartmentalization property checkable against a fraction"
    )
    .unwrap();
    writeln!(
        out,
        "of the kernel; complete mediation remains the widest property — the"
    )
    .unwrap();
    writeln!(
        out,
        "reason the reference monitor is the part that must be smallest and"
    )
    .unwrap();
    writeln!(out, "best understood.").unwrap();
    out
}

/// The paper's expectations over the scopes.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    vec![
        ClaimResult::new(
            "A3.mean-scope",
            "A3",
            QUOTE,
            ClaimShape::FractionNear {
                paper: 0.35,
                tol: 0.07,
                accept_tol: 0.07,
            },
            m.mean_scope,
            "mean per-property audit scope as a fraction of the kernel",
        ),
        ClaimResult::new(
            "A3.no-property-needs-whole",
            "A3",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.whole_kernel_properties() as f64,
            "properties whose layered audit scope is the entire kernel",
        ),
        ClaimResult::new(
            "A3.mediation-widest",
            "A3",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.wider_than_mediation() as f64,
            "properties with a wider audit scope than complete mediation",
        ),
    ]
}

/// Measurement + report + claims.
pub fn run() -> ExperimentOutput {
    let m = measure();
    ExperimentOutput::new(report(&m), claims(&m))
}
