//! A1 — ablation: the freeing daemons' watermarks.
//!
//! The paper fixes the design ("some small number of free primary memory
//! blocks always exist") but not the number. This sweep shows the
//! trade-off the number controls: a high free-frame target means faulting
//! processes never wait but hot pages get evicted and re-fetched; a low
//! target wastes no frames but makes processes wait for the freer.

use std::fmt::Write;

use mks_vm::{ParallelConfig, RefTrace, TraceConfig, VmStats};

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::drivers::run_parallel_with;
use crate::report::{banner, Table};

const QUOTE: &str = "one process runs in a loop making sure that some small number of free primary memory blocks always exist";

const FRAMES: usize = 16;

/// One watermark setting's run.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Low watermark (freer wakes below this).
    pub low: usize,
    /// Target watermark (freer frees up to this).
    pub target: usize,
    /// Run statistics at this setting.
    pub stats: VmStats,
}

/// The watermark sweep, measured.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// One row per (low, target) pair, rising targets.
    pub sweep: Vec<SweepPoint>,
    /// Distinct pages the trace touches.
    pub distinct_pages: usize,
}

impl Measurement {
    /// Tightest setting (first of the sweep).
    pub fn tightest(&self) -> &SweepPoint {
        &self.sweep[0]
    }

    /// Loosest setting (last of the sweep).
    pub fn loosest(&self) -> &SweepPoint {
        self.sweep.last().expect("sweep is non-empty")
    }

    /// Max fault-path steps across every setting.
    pub fn max_path_steps(&self) -> u32 {
        self.sweep
            .iter()
            .map(|p| p.stats.fault_path_steps_max)
            .max()
            .unwrap_or(0)
    }

    /// Re-fetch ratio at one setting: faults / distinct pages.
    pub fn refetch_ratio(&self, p: &SweepPoint) -> f64 {
        p.stats.faults as f64 / self.distinct_pages as f64
    }
}

/// Sweeps the freer's watermarks over a fixed Zipf trace.
pub fn measure() -> Measurement {
    let trace = RefTrace::generate(&TraceConfig {
        seed: 21,
        nr_segments: 4,
        pages_per_segment: 10,
        length: 2_000,
        theta: 0.9,
        phase_len: 500,
    });
    let sweep = [(1, 1), (1, 2), (2, 4), (4, 8), (6, 12)]
        .into_iter()
        .map(|(low, target)| {
            let cfg = ParallelConfig {
                core_low: low,
                core_target: target,
                bulk_low: 4,
                bulk_target: 8,
            };
            let (stats, _) = run_parallel_with(FRAMES, 64, &trace, 3, 3, cfg);
            SweepPoint { low, target, stats }
        })
        .collect();
    Measurement {
        sweep,
        distinct_pages: trace.distinct_pages(),
    }
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "A1: free-frame watermark sweep for the dedicated freeing process",
        &format!("\"{QUOTE}\""),
    );
    let mut t = Table::new(&[
        "low/target watermarks",
        "faults",
        "waits",
        "re-fetch ratio",
        "mean latency (cyc)",
    ]);
    for p in &m.sweep {
        t.row(&[
            format!("{}/{}", p.low, p.target),
            p.stats.faults.to_string(),
            p.stats.fault_waits.to_string(),
            format!("{:.2}x", m.refetch_ratio(p)),
            format!("{:.0}", p.stats.mean_fault_latency()),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "({FRAMES} primary frames; the trace touches {} distinct pages; a re-fetch",
        m.distinct_pages
    )
    .unwrap();
    writeln!(
        out,
        "ratio of 1.00x would mean every page faulted exactly once.)"
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "Raising the target trades waits for re-fetches: the freer keeps more"
    )
    .unwrap();
    writeln!(
        out,
        "frames free by evicting pages the processes still want. The fault"
    )
    .unwrap();
    writeln!(
        out,
        "*path* stays 2 steps at every setting — the design's simplicity does"
    )
    .unwrap();
    writeln!(out, "not depend on tuning, only its performance does.").unwrap();
    out
}

/// The paper's expectations over the sweep.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    let tight = m.tightest();
    let loose = m.loosest();
    vec![
        ClaimResult::new(
            "A1.path-constant",
            "A1",
            QUOTE,
            ClaimShape::ExactCount { expect: 2 },
            m.max_path_steps() as f64,
            "max fault-path steps across every watermark setting",
        ),
        ClaimResult::new(
            "A1.waits-fall",
            "A1",
            QUOTE,
            ClaimShape::FactorAtLeast {
                paper: 5.0,
                accept: 5.0,
            },
            tight.stats.fault_waits as f64 / loose.stats.fault_waits as f64,
            "fault waits, tightest / loosest watermark setting",
        ),
        ClaimResult::new(
            "A1.refetch-rises",
            "A1",
            QUOTE,
            ClaimShape::FactorAtLeast {
                paper: 1.05,
                accept: 1.05,
            },
            m.refetch_ratio(loose) / m.refetch_ratio(tight),
            "re-fetch ratio, loosest / tightest watermark setting",
        ),
    ]
}

/// Measurement + report + claims.
pub fn run() -> ExperimentOutput {
    let m = measure();
    ExperimentOutput::new(report(&m), claims(&m))
}
