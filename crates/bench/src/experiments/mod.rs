//! The experiment library: every `exp_*` binary's measurement logic as a
//! callable function.
//!
//! Each submodule owns one experiment (E1–E19, A1, A3, A4) and exposes
//!
//! * `measure()` — runs the workload and returns a plain-data measurement
//!   struct (no printing, no process exit, no panics on claim failure);
//! * `report(&m)` — renders the measurement as the experiment's full
//!   plain-text report (what the binary prints and what lands in
//!   `results/<bin>.txt`);
//! * `claims(&m)` — encodes the paper's expectations about the
//!   measurement as machine-checked [`ClaimResult`]s;
//! * `run()` — the bundle of all three, as an [`ExperimentOutput`].
//!
//! The binaries are thin printing wrappers over `run()`; the `exp_all`
//! runner executes the whole [`REGISTRY`] across worker threads; and
//! `tests/claims.rs` asserts every claim's verdict on every `cargo test`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::claims::ClaimResult;
use crate::report::write_result;

pub mod a1_watermarks;
pub mod a3_layering;
pub mod a4_removal_cost;
pub mod e10_mls;
pub mod e11_init;
pub mod e12_penetration;
pub mod e13_translation_validation;
pub mod e14_kernel_size;
pub mod e15_recovery;
pub mod e16_degradation;
pub mod e17_observatory;
pub mod e18_scale;
pub mod e19_parallel;
pub mod e1_linker_gates;
pub mod e20_replay;
pub mod e21_replication;
pub mod e2_kst_split;
pub mod e3_entries;
pub mod e4_ring_calls;
pub mod e5_page_control;
pub mod e6_interrupts;
pub mod e7_buffers;
pub mod e8_io_consolidation;
pub mod e9_policy_fault_injection;

/// Everything one experiment produces.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// The rendered plain-text report (the binary's stdout).
    pub report: String,
    /// The machine-checked claims over this run's measurement.
    pub claims: Vec<ClaimResult>,
    /// Side artifacts to write under `results/` — `(file name, contents)`
    /// (e.g. the flight-recorder JSON snapshots of E4/E5).
    pub artifacts: Vec<(String, String)>,
}

impl ExperimentOutput {
    /// Bundles a report and claims with no side artifacts.
    pub fn new(report: String, claims: Vec<ClaimResult>) -> ExperimentOutput {
        ExperimentOutput {
            report,
            claims,
            artifacts: Vec::new(),
        }
    }
}

/// One registry entry: an experiment's identity and entry point.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Claim-id prefix: `E1`..`E19`, `A1`, `A3`, `A4`.
    pub id: &'static str,
    /// The binary name (and `results/<bin>.txt` stem).
    pub bin: &'static str,
    /// One-line title for the suite summary.
    pub title: &'static str,
    /// Runs the experiment.
    pub run: fn() -> ExperimentOutput,
}

/// Every experiment, in presentation order.
pub const REGISTRY: &[Experiment] = &[
    Experiment {
        id: "E1",
        bin: "exp_e1_linker_gates",
        title: "gate entry points before/after the linker removal",
        run: e1_linker_gates::run,
    },
    Experiment {
        id: "E2",
        bin: "exp_e2_kst_split",
        title: "protected address-space code across the KST split",
        run: e2_kst_split::run,
    },
    Experiment {
        id: "E3",
        bin: "exp_e3_entries",
        title: "user-available supervisor entries across the removal ladder",
        run: e3_entries::run,
    },
    Experiment {
        id: "E4",
        bin: "exp_e4_ring_calls",
        title: "ring-crossing cost, 645 vs 6180",
        run: e4_ring_calls::run,
    },
    Experiment {
        id: "E5",
        bin: "exp_e5_page_control",
        title: "page-fault path, sequential cascade vs dedicated processes",
        run: e5_page_control::run,
    },
    Experiment {
        id: "E6",
        bin: "exp_e6_interrupts",
        title: "interrupt fielding, in-situ vs process-per-handler",
        run: e6_interrupts::run,
    },
    Experiment {
        id: "E7",
        bin: "exp_e7_buffers",
        title: "network input buffering, circular vs infinite",
        run: e7_buffers::run,
    },
    Experiment {
        id: "E8",
        bin: "exp_e8_io_consolidation",
        title: "kernel I/O surface, device zoo vs network attachment",
        run: e8_io_consolidation::run,
    },
    Experiment {
        id: "E9",
        bin: "exp_e9_policy_fault_injection",
        title: "fault injection into the replacement policy",
        run: e9_policy_fault_injection::run,
    },
    Experiment {
        id: "E10",
        bin: "exp_e10_mls",
        title: "information-flow matrix over the compartment lattice",
        run: e10_mls::run,
    },
    Experiment {
        id: "E11",
        bin: "exp_e11_init",
        title: "system start, incremental bootstrap vs memory image",
        run: e11_init::run,
    },
    Experiment {
        id: "E12",
        bin: "exp_e12_penetration",
        title: "the attack catalog, legacy supervisor vs security kernel",
        run: e12_penetration::run,
    },
    Experiment {
        id: "E13",
        bin: "exp_e13_translation_validation",
        title: "per-program translation validation of the kernel's compiler",
        run: e13_translation_validation::run,
    },
    Experiment {
        id: "E14",
        bin: "exp_e14_kernel_size",
        title: "whole-kernel audit across the configuration ladder",
        run: e14_kernel_size::run,
    },
    Experiment {
        id: "E15",
        bin: "exp_e15_recovery",
        title: "crash recovery under injected faults",
        run: e15_recovery::run,
    },
    Experiment {
        id: "E16",
        bin: "exp_e16_degradation",
        title: "graceful degradation under overload",
        run: e16_degradation::run,
    },
    Experiment {
        id: "E17",
        bin: "exp_e17_observatory",
        title: "the kernel observatory: profiling, analytics, surveillance",
        run: e17_observatory::run,
    },
    Experiment {
        id: "E18",
        bin: "exp_e18_scale",
        title: "million-principal scale: mediation cost vs population",
        run: e18_scale::run,
    },
    Experiment {
        id: "E19",
        bin: "exp_e19_parallel",
        title: "the parallel kernel: multi-CPU scheduling, deterministic",
        run: e19_parallel::run,
    },
    Experiment {
        id: "E20",
        bin: "exp_e20_replay",
        title: "the replayable kernel: sealed commit log, differential replay",
        run: e20_replay::run,
    },
    Experiment {
        id: "E21",
        bin: "exp_e21_replication",
        title: "the replicated kernel: failover over the commit log",
        run: e21_replication::run,
    },
    Experiment {
        id: "A1",
        bin: "exp_a1_watermarks",
        title: "free-frame watermark sweep for the freeing process",
        run: a1_watermarks::run,
    },
    Experiment {
        id: "A3",
        bin: "exp_a3_layering",
        title: "per-property certification scope, layered vs flat",
        run: a3_layering::run,
    },
    Experiment {
        id: "A4",
        bin: "exp_a4_removal_cost",
        title: "the performance cost of removal (pathname initiation)",
        run: a4_removal_cost::run,
    },
];

/// Writes an experiment's side artifacts and prints its report — the
/// entire body of each `exp_*` binary.
pub fn emit(out: &ExperimentOutput) {
    for (name, contents) in &out.artifacts {
        if let Err(e) = write_result(name, contents) {
            eprintln!("(could not write results/{name}: {e})");
        }
    }
    print!("{}", out.report);
}

/// Runs every experiment in [`REGISTRY`] across `workers` threads,
/// returning outputs in registry order.
///
/// Experiments are independent seeded simulations, so the outputs are
/// identical to running the binaries one by one; the threads only buy
/// wall-clock time. `workers` is clamped to `1..=REGISTRY.len()`.
pub fn run_all(workers: usize) -> Vec<ExperimentOutput> {
    let workers = workers.clamp(1, REGISTRY.len());
    let next = Arc::new(AtomicUsize::new(0));
    let mut slots: Vec<Option<ExperimentOutput>> = vec![None; REGISTRY.len()];
    if workers == 1 {
        for (i, exp) in REGISTRY.iter().enumerate() {
            slots[i] = Some((exp.run)());
        }
    } else {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = Arc::clone(&next);
                std::thread::spawn(move || {
                    let mut mine: Vec<(usize, ExperimentOutput)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= REGISTRY.len() {
                            return mine;
                        }
                        mine.push((i, (REGISTRY[i].run)()));
                    }
                })
            })
            .collect();
        for h in handles {
            for (i, out) in h.join().expect("experiment worker panicked") {
                slots[i] = Some(out);
            }
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every experiment ran"))
        .collect()
}

/// Flattens the claim sets of `outputs` in registry order.
pub fn all_claims(outputs: &[ExperimentOutput]) -> Vec<ClaimResult> {
    outputs.iter().flat_map(|o| o.claims.clone()).collect()
}

/// A sensible worker count for the current machine.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(REGISTRY.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_twenty_four_experiments() {
        assert_eq!(REGISTRY.len(), 24);
        let mut ids: Vec<&str> = REGISTRY.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 24, "experiment ids are unique");
        for e in REGISTRY {
            assert!(e.bin.starts_with("exp_"), "{} bin name", e.id);
        }
    }

    #[test]
    fn single_experiment_output_is_claim_bearing() {
        let out = (REGISTRY[0].run)();
        assert!(!out.report.is_empty());
        assert!(!out.claims.is_empty());
        for c in &out.claims {
            assert!(c.id.starts_with("E1."), "claim id prefix: {}", c.id);
        }
    }
}
