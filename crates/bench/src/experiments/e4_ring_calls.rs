//! E4 — ring-crossing cost: 645 (software rings) vs 6180 (hardware rings).
//!
//! "a call that went from a user ring in a process to the supervisor ring
//! cost much more than a call which did not change protection
//! environments" (645) / "calls from one ring to another now cost no more
//! than calls inside a ring" (6180).

use std::fmt::Write;

use mks_fs::{Acl, AclMode};
use mks_hw::ast::PageState;
use mks_hw::{
    AccessMode, AddrSpace, CpuModel, FrameId, Machine, RingBrackets, Sdw, SegNo, SegUid, PAGE_WORDS,
};
use mks_kernel::monitor::Monitor;
use mks_kernel::world::{admin_user, System};
use mks_kernel::KernelConfig;
use mks_mls::Label;

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::{banner, layer_breakdown_from_json, Table};

const QUOTE: &str = "645: cross-ring calls \"cost much more\"; 6180: calls from one ring to another now cost no more than calls inside a ring";

const CALLS: u64 = 100_000;
const METERING_FILE: &str = "e4_ring_calls_metering.json";

/// Per-machine call costs, in simulated cycles per call.
#[derive(Debug, Clone, Copy)]
pub struct MachineCosts {
    /// The machine measured.
    pub model: CpuModel,
    /// Same-ring procedure call.
    pub intra: f64,
    /// Gate call into ring 0.
    pub to_ring0: f64,
    /// Gate call into ring 1.
    pub to_ring1: f64,
}

impl MachineCosts {
    /// Cross-ring / intra-ring cost ratio.
    pub fn ratio(&self) -> f64 {
        self.to_ring0 / self.intra
    }
}

/// Both machines' call costs plus the gate-batch metering snapshot.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Honeywell 645 (software rings).
    pub h645: MachineCosts,
    /// Honeywell 6180 (hardware rings).
    pub h6180: MachineCosts,
    /// Flight-recorder snapshot of a reference-monitor gate-call batch,
    /// as read back through the `metering_get` gate (JSON).
    pub metering_json: String,
}

fn measure_model(model: CpuModel) -> MachineCosts {
    let mut m = Machine::new(model, 4);
    let astx = m.ast.activate(SegUid(1), PAGE_WORDS);
    m.ast.entry_mut(astx).pt.ptw_mut(0).state = PageState::InCore(FrameId(0));
    let mut sp = AddrSpace::new();
    // Same-ring procedure, gate into ring 0, gate into ring 1.
    sp.set(
        SegNo(1),
        Sdw::plain(astx, AccessMode::RE, RingBrackets::new(4, 4, 4)),
    );
    sp.set(SegNo(2), Sdw::gate(astx, RingBrackets::gate(0, 5), 8));
    sp.set(SegNo(3), Sdw::gate(astx, RingBrackets::gate(1, 5), 8));
    let mut run = |seg: SegNo| {
        let t0 = m.clock.now();
        for _ in 0..CALLS {
            m.call(&sp, 4, seg, 0).expect("call ok");
        }
        (m.clock.now() - t0) as f64 / CALLS as f64
    };
    MachineCosts {
        model,
        intra: run(SegNo(1)),
        to_ring0: run(SegNo(2)),
        to_ring1: run(SegNo(3)),
    }
}

/// Drives a batch of initiate/read/terminate calls through the reference
/// monitor and reads the flight recorder back through `metering_get`.
fn metering_batch() -> String {
    let mut sys = System::new(KernelConfig::kernel());
    let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
    let root = sys.world.bind_root(admin);
    let seg = Monitor::create_segment(
        &mut sys.world,
        admin,
        root,
        "probe",
        Acl::of("Admin.SysAdmin.a", AclMode::RW),
        RingBrackets::new(4, 4, 4),
        Label::BOTTOM,
    )
    .expect("admin owns the root");
    let _ = Monitor::read(&mut sys.world, admin, seg, 0).expect("first touch faults the page in");
    Monitor::terminate(&mut sys.world, admin, seg).expect("bound");
    for _ in 0..200 {
        let s = Monitor::initiate(&mut sys.world, admin, root, "probe").expect("own segment");
        let _ = Monitor::read(&mut sys.world, admin, s, 0).expect("readable");
        Monitor::terminate(&mut sys.world, admin, s).expect("bound");
    }
    Monitor::metering_snapshot(&mut sys.world, admin).expect("gate is user-callable")
}

/// Measures call costs on both machines and the gate-batch metering.
pub fn measure() -> Measurement {
    Measurement {
        h645: measure_model(CpuModel::H645),
        h6180: measure_model(CpuModel::H6180),
        metering_json: metering_batch(),
    }
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "E4: call costs, intra-ring vs cross-ring, per machine",
        "645: cross-ring calls \"cost much more\"; 6180: \"no more than calls inside a ring\"",
    );
    let mut t = Table::new(&[
        "machine",
        "intra-ring (cyc/call)",
        "gate to ring 0",
        "gate to ring 1",
        "cross/intra ratio",
    ]);
    for c in [&m.h645, &m.h6180] {
        t.row(&[
            c.model.name().into(),
            format!("{:.0}", c.intra),
            format!("{:.0}", c.to_ring0),
            format!("{:.0}", c.to_ring1),
            format!("{:.2}x", c.ratio()),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "{CALLS} calls per cell; costs are simulated machine cycles."
    )
    .unwrap();
    writeln!(
        out,
        "The 6180's parity is what makes the removal program affordable:"
    )
    .unwrap();
    writeln!(
        out,
        "functions can leave the supervisor without a call-cost penalty."
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "flight-recorder snapshot written to results/{METERING_FILE}"
    )
    .unwrap();
    writeln!(out, "per-layer cycle breakdown of the gate-call batch:").unwrap();
    out.push_str(
        &layer_breakdown_from_json(&m.metering_json)
            .expect("gate emits valid JSON")
            .render(),
    );
    out
}

/// The paper's expectations over the two machines.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    vec![
        ClaimResult::new(
            "E4.645-cross-costly",
            "E4",
            QUOTE,
            ClaimShape::FactorAtLeast {
                paper: 10.0,
                accept: 10.0,
            },
            m.h645.ratio(),
            "645 gate-call / intra-ring cost ratio",
        ),
        ClaimResult::new(
            "E4.6180-parity",
            "E4",
            QUOTE,
            ClaimShape::ParityWithin { tolerance: 0.15 },
            m.h6180.ratio(),
            "6180 gate-call / intra-ring cost ratio",
        ),
        ClaimResult::new(
            "E4.hardware-gate-speedup",
            "E4",
            QUOTE,
            ClaimShape::FactorAtLeast {
                paper: 50.0,
                accept: 50.0,
            },
            m.h645.to_ring0 / m.h6180.to_ring0,
            "645 / 6180 gate-call cost (what hardware rings bought)",
        ),
    ]
}

/// Measurement + report + claims (+ the metering snapshot artifact).
pub fn run() -> ExperimentOutput {
    let m = measure();
    let mut out = ExperimentOutput::new(report(&m), claims(&m));
    out.artifacts
        .push((METERING_FILE.to_string(), m.metering_json.clone()));
    out
}
