//! E9 — the policy/mechanism partition: faults in the policy cannot cause
//! disclosure or modification.
//!
//! "The policy algorithm, however, could never read or write the contents
//! of pages, learn the segment to which each page belonged, or cause one
//! page to overwrite another ... It could only cause denial of use."

use std::fmt::Write;

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::drivers::{chaos_monolithic, chaos_split, ChaosOutcome};
use crate::report::{banner, Table};

const QUOTE: &str = "the policy algorithm ... could never cause unauthorized use or modification ... only denial of use";

const ROUNDS: u32 = 2_000;
const SEEDS: u64 = 5;

/// The fault-injection campaign over both arrangements.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Per-seed outcomes: `(seed, split, monolithic)`.
    pub per_seed: Vec<(u64, ChaosOutcome, ChaosOutcome)>,
    /// Split-arrangement totals.
    pub split_total: ChaosOutcome,
    /// Monolithic-arrangement totals.
    pub mono_total: ChaosOutcome,
}

/// Runs the identical garbled decision stream under both arrangements.
pub fn measure() -> Measurement {
    let mut per_seed = Vec::new();
    let mut split_total = ChaosOutcome::default();
    let mut mono_total = ChaosOutcome::default();
    for seed in 1..=SEEDS {
        let split = chaos_split(seed, ROUNDS);
        let mono = chaos_monolithic(seed, ROUNDS);
        for (total, o) in [(&mut split_total, &split), (&mut mono_total, &mono)] {
            total.refused += o.refused;
            total.suboptimal += o.suboptimal;
            total.modifications += o.modifications;
            total.disclosures += o.disclosures;
        }
        per_seed.push((seed, split, mono));
    }
    Measurement {
        per_seed,
        split_total,
        mono_total,
    }
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "E9: fault injection into the replacement policy",
        &format!("\"{QUOTE}\""),
    );
    let mut t = Table::new(&[
        "seed",
        "arrangement",
        "garbled requests refused",
        "suboptimal evictions",
        "unauthorized modifications",
        "unauthorized disclosures",
    ]);
    for (seed, split, mono) in &m.per_seed {
        for (name, o) in [
            ("split (ring 1 policy)", split),
            ("monolithic (ring 0)", mono),
        ] {
            t.row(&[
                seed.to_string(),
                name.into(),
                o.refused.to_string(),
                o.suboptimal.to_string(),
                o.modifications.to_string(),
                o.disclosures.to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "split totals over {} garbled decisions: {} refused, {} suboptimal, {} modifications, {} disclosures",
        SEEDS as u32 * ROUNDS,
        m.split_total.refused,
        m.split_total.suboptimal,
        m.split_total.modifications,
        m.split_total.disclosures
    )
    .unwrap();
    writeln!(
        out,
        "monolithic totals: {} modifications, {} disclosures — the identical decision",
        m.mono_total.modifications, m.mono_total.disclosures
    )
    .unwrap();
    writeln!(
        out,
        "stream, executed with ring-0 powers, corrupts and leaks user data."
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "Consequence drawn in the paper: \"the policy algorithm need not be as"
    )
    .unwrap();
    writeln!(
        out,
        "carefully certified as the rest of the kernel\" — its worst case is"
    )
    .unwrap();
    writeln!(
        out,
        "authorized-resource denial, which the mechanism gates bound."
    )
    .unwrap();
    out
}

/// The paper's expectations over the campaign.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    vec![
        ClaimResult::new(
            "E9.split-no-corruption",
            "E9",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            (m.split_total.modifications + m.split_total.disclosures) as f64,
            "unauthorized modifications + disclosures under the split arrangement",
        ),
        ClaimResult::new(
            "E9.mechanism-refuses",
            "E9",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            m.split_total.refused as f64,
            "garbled requests the mechanism gates refused",
        ),
        ClaimResult::new(
            "E9.denial-only-bounded",
            "E9",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            m.split_total.suboptimal as f64,
            "suboptimal evictions (the bounded denial-of-service residue)",
        ),
        ClaimResult::new(
            "E9.monolithic-corrupts",
            "E9",
            QUOTE,
            ClaimShape::AtLeast { min: 1.0 },
            (m.mono_total.modifications + m.mono_total.disclosures) as f64,
            "modifications + disclosures when the same chaos runs with ring-0 powers",
        ),
    ]
}

/// Measurement + report + claims.
pub fn run() -> ExperimentOutput {
    let m = measure();
    ExperimentOutput::new(report(&m), claims(&m))
}
