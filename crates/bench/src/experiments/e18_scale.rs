//! E18 — million-principal scale: "Multics as a service".
//!
//! The kernel the paper engineers is for a *computer utility* — a shared
//! machine whose registered population is orders of magnitude larger
//! than its live load, and whose reference monitor stands in the path of
//! **every** reference. That architecture only works if mediation cost
//! is a property of the operation, not of the population: an ACL check
//! must not slow down because the site registered another hundred
//! thousand principals.
//!
//! This experiment builds seeded populations at four rungs (10^3 →
//! 10^6 principals; see [`crate::scale`]) with Zipf-skewed projects,
//! population-proportional registry ACLs, and skewed clearances, then
//! drives production-shaped traffic — read-dominated segment access,
//! gate calls, initiation churn, login churn with lazy enrollment — and
//! machine-checks:
//!
//! * **mediation scales** — branch-slot probes per hierarchy lookup and
//!   ACL work-units per evaluation stay ~flat from 10^3 to 10^6, while
//!   the *linear-equivalent* cost (what the pre-index full scans would
//!   examine) grows by orders of magnitude;
//! * **simulated cost parity** — cycles per mediated op are the same at
//!   every rung;
//! * **indexing is invisible** — the indexed ACL / hierarchy paths give
//!   verdicts identical to the retained linear-scan specifications on
//!   sampled probes at every rung and across a seed sweep, batched audit
//!   emission is byte-identical to singles, and the user-available gate
//!   census does not move.

use std::fmt::Write;

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::{banner, Table};
use crate::scale::{audit_batch_parity, run_rung, RungMeasurement, RUNGS};

const QUOTE: &str =
    "the kernel mediates every reference ... a computing utility must serve a large user community without the mediation becoming the bottleneck";

/// Ops driven at the top (10^6) rung — the "10 million mediated
/// references" sustained-load requirement.
const TOP_RUNG_OPS: u64 = 10_000_000;

/// Ops at the lower rungs (enough traffic for stable per-op numbers).
const LOWER_RUNG_OPS: u64 = 200_000;

/// Population of each sweep world (small: the sweep is about seed
/// coverage of the differentials, not scale).
const SWEEP_POPULATION: u64 = 1_000;

/// Ops per sweep seed.
const SWEEP_OPS: u64 = 20_000;

/// Default seeds in the differential sweep; `MKS_SWEEP_SEEDS` overrides
/// (capped in CI to bound wall time).
const SWEEP_SEEDS_DEFAULT: u64 = 8;

/// The campaign's observations.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// One entry per population rung, in [`RUNGS`] order.
    pub rungs: Vec<RungMeasurement>,
    /// Seeds swept at the small rung for differential coverage.
    pub sweep_seeds: u64,
    /// Indexed-vs-linear mismatches across the whole sweep (must be 0).
    pub sweep_mismatches: u64,
    /// Batched audit emission byte-identical to singles.
    pub audit_parity: bool,
}

/// Sweep-seed count: `MKS_SWEEP_SEEDS` bounds wall time in CI.
fn sweep_seed_count() -> u64 {
    std::env::var("MKS_SWEEP_SEEDS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(SWEEP_SEEDS_DEFAULT)
        .max(1)
}

/// Runs the rung ladder, the seed sweep, and the audit-batch parity
/// check.
pub fn measure() -> Measurement {
    let rungs: Vec<RungMeasurement> = RUNGS
        .iter()
        .map(|&pop| {
            let ops = if pop >= 1_000_000 {
                TOP_RUNG_OPS
            } else {
                LOWER_RUNG_OPS
            };
            run_rung(pop, 0xE18, ops)
        })
        .collect();
    let sweep_seeds = sweep_seed_count();
    let mut sweep_mismatches = 0u64;
    for seed in 1..=sweep_seeds {
        let m = run_rung(SWEEP_POPULATION, seed, SWEEP_OPS);
        sweep_mismatches += m.acl_mismatches + m.lookup_mismatches;
    }
    Measurement {
        rungs,
        sweep_seeds,
        sweep_mismatches,
        audit_parity: audit_batch_parity(),
    }
}

fn first(m: &Measurement) -> &RungMeasurement {
    m.rungs.first().expect("at least one rung")
}

fn top(m: &Measurement) -> &RungMeasurement {
    m.rungs.last().expect("at least one rung")
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner("E18: million-principal scale", &format!("\"{QUOTE}\""));
    let mut t = Table::new(&[
        "population",
        "projects",
        "largest",
        "acl entries",
        "ops",
        "cyc/op",
        "probes/lookup",
        "acl work/eval",
        "linear equiv",
        "logins",
    ]);
    for r in &m.rungs {
        t.row(&[
            r.population.to_string(),
            r.nr_projects.to_string(),
            r.largest_project.to_string(),
            r.registry_entries.to_string(),
            r.ops.to_string(),
            format!("{:.1}", r.cycles_per_op),
            format!("{:.3}", r.probes_per_lookup),
            format!("{:.2}", r.acl_work_per_eval),
            r.acl_linear_equiv.to_string(),
            r.stats.logins.to_string(),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    let (f, tp) = (first(m), top(m));
    writeln!(
        out,
        "scaling: population grew {}x (10^3 -> 10^6) while probes per lookup moved",
        tp.population / f.population.max(1),
    )
    .unwrap();
    writeln!(
        out,
        "{:.3} -> {:.3} and indexed ACL work {:.2} -> {:.2} work-units per check;",
        f.probes_per_lookup, tp.probes_per_lookup, f.acl_work_per_eval, tp.acl_work_per_eval,
    )
    .unwrap();
    writeln!(
        out,
        "the linear-equivalent scan those checks replaced grew {} -> {} entries",
        f.acl_linear_equiv, tp.acl_linear_equiv,
    )
    .unwrap();
    writeln!(
        out,
        "({}x). Simulated cost held at {:.1} vs {:.1} cycles per mediated op.",
        tp.acl_linear_equiv / f.acl_linear_equiv.max(1),
        f.cycles_per_op,
        tp.cycles_per_op,
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "traffic at the top rung: {} mediated ops ({} reads, {} writes, {} gate",
        tp.ops, tp.stats.reads, tp.stats.writes, tp.stats.gate_calls,
    )
    .unwrap();
    writeln!(
        out,
        "calls, {} initiations, {} terminations), {} login sessions cycled with",
        tp.stats.initiations, tp.stats.terminations, tp.stats.logins,
    )
    .unwrap();
    writeln!(
        out,
        "{} lazy enrollments, {} denied references audited.",
        tp.stats.enrollments, tp.stats.denied,
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "equivalence: indexed paths vs retained linear specs — {} mismatches at",
        m.rungs
            .iter()
            .map(|r| r.acl_mismatches + r.lookup_mismatches)
            .sum::<u64>(),
    )
    .unwrap();
    writeln!(
        out,
        "the rungs, {} across a {}-seed sweep; batched audit emission byte-equal",
        m.sweep_mismatches, m.sweep_seeds,
    )
    .unwrap();
    writeln!(
        out,
        "to singles: {}; user-available gate census: {} (unchanged).",
        m.audit_parity, tp.gate_census,
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "Consequence: complete mediation survives the computer utility's scale —"
    )
    .unwrap();
    writeln!(
        out,
        "the monitor's cost is set by the operation, not by how many principals"
    )
    .unwrap();
    writeln!(out, "the site has registered.").unwrap();
    out
}

/// The scale experiment's expectations over the measurement.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    let (f, t) = (first(m), top(m));
    let rung_mismatches: u64 = m
        .rungs
        .iter()
        .map(|r| r.acl_mismatches + r.lookup_mismatches)
        .sum();
    let max_acl_work = m
        .rungs
        .iter()
        .map(|r| r.acl_work_per_eval)
        .fold(0.0f64, f64::max);
    vec![
        ClaimResult::new(
            "E18.population-scale",
            "E18",
            QUOTE,
            ClaimShape::AtLeast { min: 1_000_000.0 },
            t.population as f64,
            "registered principals at the top rung",
        ),
        ClaimResult::new(
            "E18.ops-at-scale",
            "E18",
            QUOTE,
            ClaimShape::AtLeast { min: 10_000_000.0 },
            t.ops as f64,
            "monitor-mediated operations sustained over the million-principal world",
        ),
        ClaimResult::new(
            "E18.lookup-probes-flat",
            "E18",
            QUOTE,
            ClaimShape::ParityWithin { tolerance: 0.1 },
            t.probes_per_lookup / f.probes_per_lookup.max(f64::MIN_POSITIVE),
            "branch-slot probes per hierarchy lookup, 10^6 rung relative to 10^3",
        ),
        ClaimResult::new(
            "E18.acl-work-bounded",
            "E18",
            QUOTE,
            ClaimShape::AtMost { max: 4.0 },
            max_acl_work,
            "worst indexed ACL work-units per evaluation across all rungs",
        ),
        ClaimResult::new(
            "E18.linear-counterfactual-grows",
            "E18",
            QUOTE,
            ClaimShape::FactorAtLeast {
                paper: 100.0,
                accept: 100.0,
            },
            t.acl_linear_equiv as f64 / f.acl_linear_equiv.max(1) as f64,
            "growth of the linear-equivalent ACL scan the index replaced, 10^3 -> 10^6",
        ),
        ClaimResult::new(
            "E18.cycles-per-op-flat",
            "E18",
            QUOTE,
            ClaimShape::ParityWithin { tolerance: 0.25 },
            t.cycles_per_op / f.cycles_per_op.max(f64::MIN_POSITIVE),
            "simulated cycles per mediated op, 10^6 rung relative to 10^3",
        ),
        ClaimResult::new(
            "E18.differential-clean",
            "E18",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            rung_mismatches as f64,
            "indexed-vs-linear verdict mismatches sampled at every rung",
        ),
        ClaimResult::new(
            "E18.sweep-clean",
            "E18",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.sweep_mismatches as f64,
            "indexed-vs-linear mismatches across the seed sweep",
        ),
        ClaimResult::new(
            "E18.sweep-covered",
            "E18",
            QUOTE,
            ClaimShape::AtLeast { min: 4.0 },
            m.sweep_seeds as f64,
            "seeds swept in the differential sweep (MKS_SWEEP_SEEDS can raise, default 8)",
        ),
        ClaimResult::new(
            "E18.audit-batch-parity",
            "E18",
            QUOTE,
            ClaimShape::ExactCount { expect: 1 },
            u64::from(m.audit_parity) as f64,
            "batched audit emission byte-identical to per-record appends",
        ),
        ClaimResult::new(
            "E18.login-churn",
            "E18",
            QUOTE,
            ClaimShape::AtLeast { min: 1_000.0 },
            t.stats.logins as f64,
            "login sessions cycled (with lazy enrollment) at the top rung",
        ),
        ClaimResult::new(
            "E18.no-new-gates",
            "E18",
            QUOTE,
            ClaimShape::ExactCount { expect: 54 },
            t.gate_census as f64,
            "user-available gate entries after the million-principal campaign",
        ),
    ]
}

/// Measurement + report + claims (+ the per-rung CSV artifact).
pub fn run() -> ExperimentOutput {
    let m = measure();
    let mut out = ExperimentOutput::new(report(&m), claims(&m));
    let mut lines = String::from(
        "population,projects,largest_project,registry_acl_entries,ops,completed,denied,\
         logins,enrollments,sim_cycles,cycles_per_op,lookups,probes,probes_per_lookup,\
         acl_work_per_eval,acl_linear_equiv\n",
    );
    for r in &m.rungs {
        writeln!(
            lines,
            "{},{},{},{},{},{},{},{},{},{},{:.3},{},{},{:.4},{:.3},{}",
            r.population,
            r.nr_projects,
            r.largest_project,
            r.registry_entries,
            r.ops,
            r.stats.completed,
            r.stats.denied,
            r.stats.logins,
            r.stats.enrollments,
            r.sim_cycles,
            r.cycles_per_op,
            r.lookups,
            r.probes,
            r.probes_per_lookup,
            r.acl_work_per_eval,
            r.acl_linear_equiv,
        )
        .unwrap();
    }
    out.artifacts
        .push(("e18_scale_rungs.csv".to_string(), lines));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_rung_holds_the_scale_invariants() {
        let r = run_rung(1_000, 5, 20_000);
        assert!(r.ops >= 20_000);
        assert!(r.probes_per_lookup < 1.1, "{r:?}");
        assert!(r.acl_work_per_eval < 4.0, "{r:?}");
        assert_eq!(r.acl_mismatches + r.lookup_mismatches, 0);
        assert_eq!(r.gate_census, 54);
    }

    #[test]
    fn rung_measurements_are_deterministic() {
        let a = run_rung(1_000, 11, 10_000);
        let b = run_rung(1_000, 11, 10_000);
        assert_eq!(a.sim_cycles, b.sim_cycles);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.lookups, b.lookups);
        assert_eq!(a.probes, b.probes);
    }
}
