//! E12 — the penetration catalog against both configurations.
//!
//! "in all general-purpose systems confronted, a wily user can construct a
//! program that can obtain unauthorized access" — and the kernel project's
//! goal is a system where he cannot.

use std::fmt::Write;

use mks_kernel::penetration::{breaches, run_catalog, AttackOutcome, AttackReport};
use mks_kernel::KernelConfig;

use super::ExperimentOutput;
use crate::claims::{ClaimResult, ClaimShape};
use crate::report::{banner, Table};

const QUOTE: &str = "a wily user can construct a program that can obtain unauthorized access";

/// The catalog run against every rung of the removal ladder.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full attack reports, legacy configuration.
    pub legacy: Vec<AttackReport>,
    /// Full attack reports, kernel configuration.
    pub kernel: Vec<AttackReport>,
    /// `(configuration name, breaches)` along the removal ladder.
    pub ladder: Vec<(&'static str, usize)>,
}

impl Measurement {
    /// Breach inversions along the ladder (rungs where breaches rise).
    pub fn ladder_inversions(&self) -> usize {
        self.ladder.windows(2).filter(|w| w[1].1 > w[0].1).count()
    }
}

/// Runs the 15-attack catalog against all four configurations.
pub fn measure() -> Measurement {
    let legacy = run_catalog(KernelConfig::legacy());
    let kernel = run_catalog(KernelConfig::kernel());
    let ladder = [
        KernelConfig::legacy(),
        KernelConfig::legacy_linker_removed(),
        KernelConfig::legacy_both_removals(),
        KernelConfig::kernel(),
    ]
    .into_iter()
    .map(|cfg| {
        let r = run_catalog(cfg);
        (cfg.name(), breaches(&r))
    })
    .collect();
    Measurement {
        legacy,
        kernel,
        ladder,
    }
}

fn outcome_cell(o: &AttackOutcome) -> String {
    match o {
        AttackOutcome::Breach(why) => format!("BREACH: {why}"),
        AttackOutcome::Denied => "denied".into(),
        AttackOutcome::DeniedUninformative => "denied (no info)".into(),
        AttackOutcome::AuthorizedDenialOnly => "authorized denial only".into(),
    }
}

/// Renders the experiment's report.
pub fn report(m: &Measurement) -> String {
    let mut out = banner(
        "E12: the attack catalog, legacy supervisor vs security kernel",
        &format!("\"{QUOTE}\" — on the legacy system"),
    );
    let mut t = Table::new(&["attack", "class", "legacy supervisor", "security kernel"]);
    for (l, k) in m.legacy.iter().zip(m.kernel.iter()) {
        t.row(&[
            l.name.into(),
            l.class.into(),
            outcome_cell(&l.outcome),
            outcome_cell(&k.outcome),
        ]);
    }
    out.push_str(&t.render());
    writeln!(out).unwrap();
    writeln!(
        out,
        "breaches: legacy {} / {}   kernel {} / {}",
        breaches(&m.legacy),
        m.legacy.len(),
        breaches(&m.kernel),
        m.kernel.len()
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(out, "intermediate rungs of the removal ladder:").unwrap();
    for (name, b) in &m.ladder {
        writeln!(out, "  {name:<38} {b:>2} breaches").unwrap();
    }
    out
}

/// The paper's expectations over the catalog.
pub fn claims(m: &Measurement) -> Vec<ClaimResult> {
    vec![
        ClaimResult::new(
            "E12.kernel-zero-breaches",
            "E12",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            breaches(&m.kernel) as f64,
            "breaches against the security kernel (15-attack catalog)",
        ),
        ClaimResult::new(
            "E12.legacy-breaches",
            "E12",
            QUOTE,
            ClaimShape::ExactCount { expect: 7 },
            breaches(&m.legacy) as f64,
            "breaches against the legacy supervisor",
        ),
        ClaimResult::new(
            "E12.catalog-size",
            "E12",
            QUOTE,
            ClaimShape::ExactCount { expect: 15 },
            m.kernel.len() as f64,
            "attacks in the Linde-style catalog",
        ),
        ClaimResult::new(
            "E12.monotone-ladder",
            "E12",
            QUOTE,
            ClaimShape::ExactCount { expect: 0 },
            m.ladder_inversions() as f64,
            "removal-ladder rungs where the breach count rises",
        ),
    ]
}

/// Measurement + report + claims.
pub fn run() -> ExperimentOutput {
    let m = measure();
    ExperimentOutput::new(report(&m), claims(&m))
}
