//! Plain-text report tables for the experiment binaries.

use mks_trace::Snapshot;

/// A fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align text.
                let numeric = c
                    .chars()
                    .next()
                    .is_some_and(|ch| ch.is_ascii_digit() || ch == '-')
                    && c.chars().all(|ch| {
                        ch.is_ascii_digit() || ch == '.' || ch == '-' || ch == '%' || ch == 'x'
                    });
                if numeric {
                    line.push_str(&format!("{c:>w$}", w = width[i]));
                } else {
                    line.push_str(&format!("{c:<w$}", w = width[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        let total: usize = width.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
        }
        out
    }
}

/// Renders the per-layer cycle breakdown of a flight-recorder snapshot:
/// for each layer, completed spans, inclusive cycles, exclusive cycles,
/// and the layer's share of all exclusive time ("where the cycles go").
pub fn layer_breakdown(snap: &Snapshot) -> Table {
    let total_excl: u64 = snap.layers.iter().map(|l| l.exclusive).sum();
    let mut t = Table::new(&[
        "layer",
        "spans",
        "inclusive (cyc)",
        "exclusive (cyc)",
        "share",
    ]);
    for l in &snap.layers {
        let share = if total_excl == 0 {
            0.0
        } else {
            100.0 * l.exclusive as f64 / total_excl as f64
        };
        t.row(&[
            l.layer.as_str().into(),
            l.spans.to_string(),
            l.inclusive.to_string(),
            l.exclusive.to_string(),
            format!("{share:.1}%"),
        ]);
    }
    t
}

/// Parses a registry JSON snapshot — as emitted by `Snapshot::to_json`
/// or read back through the metering gate — and renders the per-layer
/// breakdown. The JSON form is integers-and-strings only, so nothing is
/// lost between the kernel's recorder and this table.
pub fn layer_breakdown_from_json(json: &str) -> Result<Table, String> {
    Ok(layer_breakdown(&Snapshot::from_json(json)?))
}

/// Writes experiment output under `results/` (created on demand),
/// returning the path written.
pub fn write_result(name: &str, contents: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// Renders a section banner naming the experiment and the paper's claim.
pub fn banner(experiment: &str, claim: &str) -> String {
    let rule = "=".repeat(72);
    format!("{rule}\n{experiment}\npaper: {claim}\n{rule}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_padded_columns() {
        let mut t = Table::new(&["config", "entries"]);
        t.row(&["legacy".into(), "100".into()]);
        t.row(&["kernel".into(), "53".into()]);
        let s = t.render();
        assert!(s.contains("legacy"));
        assert_eq!(s.lines().count(), 4);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].ends_with("100"));
        assert!(lines[3].ends_with(" 53"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_are_bugs() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn layer_breakdown_renders_from_json_without_loss() {
        use mks_trace::{Clock, Layer, TraceHandle};
        let clock = Clock::new();
        let t = TraceHandle::new(clock.clone());
        let outer = t.span(Layer::Hw, "gate");
        clock.advance(10);
        {
            let _inner = t.span(Layer::Vm, "fault");
            clock.advance(30);
        }
        outer.end();
        let json = t.snapshot().to_json();
        let table = layer_breakdown_from_json(&json).expect("valid snapshot JSON");
        let s = table.render();
        assert!(s.contains("hw"), "hw layer row: {s}");
        assert!(s.contains("vm"));
        // hw exclusive 10, vm exclusive 30 → shares 25% / 75%.
        assert!(s.contains("25.0%"), "{s}");
        assert!(s.contains("75.0%"), "{s}");
    }
}
