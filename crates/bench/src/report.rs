//! Plain-text report tables for the experiment binaries.

/// A fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align text.
                let numeric = c.chars().next().is_some_and(|ch| ch.is_ascii_digit() || ch == '-')
                    && c.chars().all(|ch| {
                        ch.is_ascii_digit() || ch == '.' || ch == '-' || ch == '%' || ch == 'x'
                    });
                if numeric {
                    line.push_str(&format!("{c:>w$}", w = width[i]));
                } else {
                    line.push_str(&format!("{c:<w$}", w = width[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        let total: usize = width.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
        }
        out
    }
}

/// Prints a section banner naming the experiment and the paper's claim.
pub fn banner(experiment: &str, claim: &str) {
    println!("{}", "=".repeat(72));
    println!("{experiment}");
    println!("paper: {claim}");
    println!("{}", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_padded_columns() {
        let mut t = Table::new(&["config", "entries"]);
        t.row(&["legacy".into(), "100".into()]);
        t.row(&["kernel".into(), "53".into()]);
        let s = t.render();
        assert!(s.contains("legacy"));
        assert_eq!(s.lines().count(), 4);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].ends_with("100"));
        assert!(lines[3].ends_with(" 53"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_are_bugs() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
