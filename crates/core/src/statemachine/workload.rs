//! Recorded workload drivers: the E15 fault workload and the E16
//! overload ladder, re-expressed as commit streams.
//!
//! A driver *chooses* commits (using outcomes of earlier commits — the
//! directory pool grows only when a create succeeds, the loop stops
//! when the `Crash` site fires) and records the boundary digest after
//! each application. Replay never re-runs the driver: it folds the
//! recorded log, so any hidden input the driver smuggled past the
//! commit stream shows up as a boundary mismatch. The shapes mirror
//! `recovery::run_plan` (mixed hierarchy/paging/denial/IPC traffic
//! under an armed fault plan, then disarm, salvage, boot check) and
//! E16's ladder (principals per priority class hammering a small
//! machine under admission control).

use mks_fs::{Acl, AclMode, UserId};
use mks_hw::{FaultPlan, RingBrackets, SplitMix64};
use mks_mls::{Compartments, Label, Level};

use crate::pressure::{PressureConfig, Priority};
use crate::world::admin_user;

use super::{Commit, Genesis, KernelStateMachine, Outcome, StateDigest};

/// Shape of one recorded fault run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WorkloadSpec {
    /// Seeds the operation mix (independently of the fault plan).
    pub seed: u64,
    /// Operation boundaries attempted before a natural stop.
    pub ops: u64,
    /// The fault schedule armed over the workload.
    pub plan: FaultPlan,
    /// Arm admission control (mixed priorities) under the plan.
    pub overload: bool,
}

impl WorkloadSpec {
    /// The E15 shape: 32 ops under `FaultPlan::generate(seed)`.
    pub fn faults(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            seed,
            ops: 32,
            plan: FaultPlan::generate(seed),
            overload: false,
        }
    }

    /// The E16-crossover shape: the same mixed workload under an
    /// exhaustion-heavy plan with admission control armed.
    pub fn overload(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            seed,
            ops: 32,
            plan: FaultPlan::generate_overload(seed),
            overload: true,
        }
    }
}

/// A live run and the evidence it leaves: the machine (whose world owns
/// the sealed log), the digest at every commit boundary, and the
/// workload-level facts the experiment asserts over.
pub struct RecordedRun {
    /// The live machine, log included.
    pub sm: KernelStateMachine,
    /// `boundaries[0]` = genesis; `boundaries[k]` = after commit `k-1`.
    pub boundaries: Vec<StateDigest>,
    /// Whether the `Crash` site stopped the workload mid-stream.
    pub crashed: bool,
    /// Workload operations executed before the stop.
    pub ops_run: u64,
    /// Problems the salvage commit reported.
    pub salvage_problems: u64,
    /// Whether the boot-check commit saw divergence (must be 0).
    pub boot_divergence: bool,
}

/// Applies one commit and records the boundary digest.
struct Recorder {
    sm: KernelStateMachine,
    boundaries: Vec<StateDigest>,
}

impl Recorder {
    fn new(genesis: &Genesis) -> Recorder {
        let sm = genesis.build();
        let boundaries = vec![sm.digest()];
        Recorder { sm, boundaries }
    }

    fn commit(&mut self, c: Commit) -> Outcome {
        let out = self.sm.apply(&c);
        self.boundaries.push(self.sm.digest());
        out
    }

    fn seg(&mut self, c: Commit) -> Option<mks_hw::SegNo> {
        self.commit(c).seg()
    }

    fn pid(&mut self, c: Commit) -> crate::world::KProcId {
        match self.commit(c) {
            Outcome::Pid(p) => p,
            other => unreachable!("process creation is infallible: {other:?}"),
        }
    }
}

fn stranger_user() -> UserId {
    UserId::new("Mallory", "Guest", "a")
}

/// Records the E15-shaped mixed workload under `spec.plan`: principals
/// and probe, priming ticks, (optionally) admission arming, then the
/// seeded six-way operation mix with the `Crash` site consulted at
/// every boundary, and finally the recovery tail — disarm, salvage,
/// boot check, and a metering read that exports the log digest.
pub fn record_fault_run(genesis: &Genesis, spec: &WorkloadSpec) -> RecordedRun {
    let mut rec = Recorder::new(genesis);
    let admin = rec.pid(Commit::CreateProcess {
        user: admin_user(),
        label: Label::BOTTOM,
        ring: 4,
    });
    let root = rec
        .seg(Commit::BindRoot { pid: admin })
        .expect("root binds");
    let stranger = rec.pid(Commit::CreateProcess {
        user: stranger_user(),
        label: Label::BOTTOM,
        ring: 4,
    });
    let sroot = rec
        .seg(Commit::BindRoot { pid: stranger })
        .expect("root binds");
    let probe = rec
        .seg(Commit::CreateSegment {
            pid: admin,
            dir: root,
            name: "probe".into(),
            acl: Acl::of("Admin.SysAdmin.a", AclMode::RW),
            brackets: RingBrackets::new(4, 4, 4),
            label: Label::BOTTOM,
        })
        .expect("probe segment creates on a fresh system");
    rec.commit(Commit::Tick { times: 4 });
    if spec.overload {
        rec.commit(Commit::AdmissionEnable {
            config: PressureConfig::default(),
        });
        rec.commit(Commit::SetPriority {
            pid: admin,
            priority: Priority::Interactive,
        });
        rec.commit(Commit::SetPriority {
            pid: stranger,
            priority: Priority::Background,
        });
    }
    rec.commit(Commit::ArmPlan {
        plan: spec.plan.clone(),
    });

    let mut rng = SplitMix64::new(spec.seed ^ 0xd1f7_ac75_0bad_c0de);
    let mut dirs = vec![root];
    let mut crashed = false;
    let mut ops_run = 0u64;
    let secret = Label::new(Level::SECRET, Compartments::of(&[1]));
    for i in 0..spec.ops {
        if rec.commit(Commit::CrashPoll) == Outcome::Fired(true) {
            crashed = true;
            break;
        }
        ops_run += 1;
        match rng.below(6) {
            0 => {
                let parent = dirs[rng.below(dirs.len() as u64) as usize];
                let label = if rng.below(2) == 0 {
                    Label::BOTTOM
                } else {
                    secret
                };
                if let Some(segno) = rec.seg(Commit::CreateDirectory {
                    pid: admin,
                    dir: parent,
                    name: format!("d{i}"),
                    label,
                }) {
                    dirs.push(segno);
                }
            }
            1 => {
                let parent = dirs[rng.below(dirs.len() as u64) as usize];
                rec.commit(Commit::CreateSegment {
                    pid: admin,
                    dir: parent,
                    name: format!("s{i}"),
                    acl: Acl::of("*.*.*", AclMode::RW),
                    brackets: RingBrackets::new(4, 4, 4),
                    label: secret,
                });
            }
            2 => {
                let offset = rng.below(64);
                rec.commit(Commit::Write {
                    pid: admin,
                    seg: probe,
                    offset,
                    value: i + 1,
                });
                rec.commit(Commit::Read {
                    pid: admin,
                    seg: probe,
                    offset,
                });
            }
            3 => {
                rec.commit(Commit::Initiate {
                    pid: stranger,
                    dir: sroot,
                    name: "probe".into(),
                });
            }
            4 => {
                rec.commit(Commit::Wakeup { daemon: 0 });
                rec.commit(Commit::Tick { times: 1 });
            }
            _ => {
                rec.commit(Commit::Tick { times: 2 });
            }
        }
    }
    rec.commit(Commit::Tick { times: 4 });
    rec.commit(Commit::Disarm);
    let salvage_problems = match rec.commit(Commit::Salvage) {
        Outcome::Value(n) => n,
        _ => 0,
    };
    let boot_divergence = rec.commit(Commit::BootCheck) != Outcome::Value(0);
    rec.commit(Commit::MeteringGet { pid: admin });

    RecordedRun {
        sm: rec.sm,
        boundaries: rec.boundaries,
        crashed,
        ops_run,
        salvage_problems,
        boot_divergence,
    }
}

/// Rungs of the recorded overload ladder: principals per rung, all
/// hammering the same small machine under admission control.
pub const LADDER_RUNGS: [u32; 4] = [2, 4, 8, 16];

/// Operations each ladder principal issues per rung.
pub const LADDER_OPS: u64 = 6;

/// Records the E16-shaped overload ladder as commits: admission armed
/// up front, then for each rung a cohort of principals (priority
/// classes assigned round-robin, lowest first) creating and hammering
/// segments while pressure climbs — shed decisions and their audited
/// `Overload` refusals land in the log like any other deterministic
/// verdict. Ends with the same recovery tail as the fault runs.
pub fn record_overload_ladder(genesis: &Genesis, seed: u64) -> RecordedRun {
    let mut rec = Recorder::new(genesis);
    let admin = rec.pid(Commit::CreateProcess {
        user: admin_user(),
        label: Label::BOTTOM,
        ring: 4,
    });
    let root = rec
        .seg(Commit::BindRoot { pid: admin })
        .expect("root binds");
    rec.commit(Commit::Tick { times: 4 });
    // Tight soft caps make the small machine's exhaustion visible to the
    // gauges early (the E16 recipe): the probe population crosses the
    // AST cap and the audit log crosses its headroom cap as the rungs
    // climb, so the later cohorts run into the shed thresholds.
    rec.commit(Commit::AdmissionEnable {
        config: PressureConfig {
            ast_soft_cap: 24,
            audit_cap: 512,
            ..PressureConfig::default()
        },
    });
    rec.commit(Commit::SetPriority {
        pid: admin,
        priority: Priority::System,
    });
    // The ladder arms the exhaustion noise of the overload schedule but
    // strips its `Crash` events: every rung must complete so the
    // differential covers the full shed progression. Crash-mid-shed is
    // the `WorkloadSpec::overload` fault runs' job.
    let plan = FaultPlan::from_events(
        FaultPlan::generate_overload(seed)
            .events
            .into_iter()
            .filter(|e| e.kind != mks_hw::InjectKind::Crash)
            .collect(),
    );
    rec.commit(Commit::ArmPlan { plan });

    let mut rng = SplitMix64::new(seed ^ 0x0e16_1add_e50f_f00d);
    let mut crashed = false;
    let mut ops_run = 0u64;
    'ladder: for (r, rung) in LADDER_RUNGS.iter().enumerate() {
        // The cohort: per-principal probes created under ROOT by the
        // System-class administrator (creation is never shed),
        // world-writable so the principals' own paging traffic is what
        // admission judges. Each principal acquires its probe through
        // its *own* root binding — segment numbers are per-process.
        let mut cohort = Vec::new();
        for p in 0..*rung {
            let user = UserId::new(&format!("Load{p}"), &format!("Rung{r}"), "a");
            let pid = rec.pid(Commit::CreateProcess {
                user,
                label: Label::BOTTOM,
                ring: 4,
            });
            let Some(own_root) = rec.seg(Commit::BindRoot { pid }) else {
                continue;
            };
            rec.commit(Commit::SetPriority {
                pid,
                priority: Priority::ALL[(p as usize) % Priority::ALL.len()],
            });
            let name = format!("p{r}_{p}");
            rec.commit(Commit::CreateSegment {
                pid: admin,
                dir: root,
                name: name.clone(),
                acl: Acl::of("*.*.*", AclMode::RW),
                brackets: RingBrackets::new(4, 4, 4),
                label: Label::BOTTOM,
            });
            let own = rec.commit(Commit::Initiate {
                pid,
                dir: own_root,
                name,
            });
            if let Some(probe) = own.seg() {
                cohort.push((pid, probe));
            }
        }
        for _ in 0..LADDER_OPS {
            for (pid, probe) in &cohort {
                if rec.commit(Commit::CrashPoll) == Outcome::Fired(true) {
                    crashed = true;
                    break 'ladder;
                }
                ops_run += 1;
                // Page-spanning traffic: frame and bulk saturation climb
                // with the rung, pushing the later cohorts into the shed
                // thresholds exactly as E16's ladder does.
                let offset = rng.below(4) * mks_hw::PAGE_WORDS as u64 + rng.below(64);
                rec.commit(Commit::Write {
                    pid: *pid,
                    seg: *probe,
                    offset,
                    value: ops_run,
                });
                rec.commit(Commit::Read {
                    pid: *pid,
                    seg: *probe,
                    offset,
                });
            }
            rec.commit(Commit::Tick { times: 1 });
        }
    }
    rec.commit(Commit::Tick { times: 4 });
    rec.commit(Commit::Disarm);
    let salvage_problems = match rec.commit(Commit::Salvage) {
        Outcome::Value(n) => n,
        _ => 0,
    };
    let boot_divergence = rec.commit(Commit::BootCheck) != Outcome::Value(0);
    rec.commit(Commit::MeteringGet { pid: admin });

    RecordedRun {
        sm: rec.sm,
        boundaries: rec.boundaries,
        crashed,
        ops_run,
        salvage_problems,
        boot_divergence,
    }
}
