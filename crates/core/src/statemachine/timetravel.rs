//! Time-travel audit queries: joining the flight recorder and audit
//! log with the commit log.
//!
//! The flight recorder answers *what happened* (records, counters,
//! alerts) and the audit log answers *who was refused what*; the
//! commit log answers *which mutation did it*. This module joins them:
//! given the boundary digests a recorded run captured, each audit
//! record or clock instant maps back to the commit whose application
//! produced it, and the log window around that commit is the replayable
//! context a reviewer steps through. Every query is a pure read over
//! the recorded artifacts — no live kernel required.

use crate::syslog::{AuditEvent, AuditLog};

use super::commit::{CommitLog, ReplayError, SealedCommit};
use super::StateDigest;

/// A read-only join of one recorded run's commit log and boundary
/// digests (`boundaries[0]` = genesis, `boundaries[k]` = after commit
/// `k-1` — the shape `record_fault_run` produces).
pub struct TimeTravel<'a> {
    log: &'a CommitLog,
    boundaries: &'a [StateDigest],
}

impl<'a> TimeTravel<'a> {
    /// Builds the join, rejecting mismatched artifacts (a boundary
    /// list that does not cover the log is a truncation).
    pub fn new(
        log: &'a CommitLog,
        boundaries: &'a [StateDigest],
    ) -> Result<TimeTravel<'a>, ReplayError> {
        if boundaries.len() as u64 != log.len() + 1 {
            return Err(ReplayError::Truncated {
                expected: log.len(),
                found: (boundaries.len() as u64).saturating_sub(1),
            });
        }
        Ok(TimeTravel { log, boundaries })
    }

    /// The commit boundary reached at or before simulated instant `at`:
    /// how many commits had been applied by then (0 = still at
    /// genesis). Boundary clocks are monotone, so this is a binary
    /// search.
    pub fn commit_at_clock(&self, at: u64) -> u64 {
        (self.boundaries.partition_point(|b| b.clock <= at).max(1) - 1) as u64
    }

    /// The commit whose application appended audit record `audit_seq`,
    /// if the run produced it. Audit counts are monotone across
    /// boundaries; the first boundary that has seen past `audit_seq`
    /// names the commit.
    pub fn commit_for_audit(&self, audit_seq: u64) -> Option<u64> {
        let k = self
            .boundaries
            .partition_point(|b| b.audit_records <= audit_seq);
        if k >= self.boundaries.len() {
            return None;
        }
        // Boundary k is the first with audit_records > audit_seq, i.e.
        // commit k-1 (seq k-1 in the log) appended the record. k == 0
        // means the record predates every commit (genesis noise).
        k.checked_sub(1).map(|c| c as u64)
    }

    /// The sealed commits in the window `[seq - radius, seq + radius]`
    /// — the replayable context around a commit under review.
    pub fn window(&self, seq: u64, radius: u64) -> &[SealedCommit] {
        let lo = seq.saturating_sub(radius) as usize;
        let hi = ((seq + radius + 1).min(self.log.len())) as usize;
        &self.log.entries()[lo.min(hi)..hi]
    }

    /// Joins every denial in the audit log to the commit that produced
    /// it: `(audit seq, commit seq)` pairs, in audit order. The E20
    /// experiment checks this join is total — no denial without a
    /// provenance commit.
    pub fn blame_denials(&self, log: &AuditLog) -> Vec<(u64, Option<u64>)> {
        log.records()
            .iter()
            .filter(|r| matches!(r.event, AuditEvent::AccessDenied { .. }))
            .map(|r| (r.seq, self.commit_for_audit(r.seq)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::workload::{record_fault_run, WorkloadSpec};
    use super::super::Genesis;
    use super::*;
    use mks_hw::FaultPlan;

    #[test]
    fn rejects_boundary_lists_that_do_not_cover_the_log() {
        let genesis = Genesis::kernel_small();
        let run = record_fault_run(
            &genesis,
            &WorkloadSpec {
                seed: 3,
                ops: 4,
                plan: FaultPlan::generate(3),
                overload: false,
            },
        );
        let log = &run.sm.world().commits;
        assert!(matches!(
            TimeTravel::new(log, &run.boundaries[..run.boundaries.len() - 1]),
            Err(ReplayError::Truncated { .. })
        ));
    }

    #[test]
    fn clock_and_audit_queries_are_coherent() {
        let genesis = Genesis::kernel_small();
        let run = record_fault_run(
            &genesis,
            &WorkloadSpec {
                seed: 9,
                ops: 16,
                plan: FaultPlan::generate(9),
                overload: false,
            },
        );
        let log = &run.sm.world().commits;
        let tt = TimeTravel::new(log, &run.boundaries).expect("artifacts match");

        // At or past the final boundary clock, the whole log has been
        // applied.
        let last = run.boundaries.last().expect("nonempty");
        assert_eq!(tt.commit_at_clock(last.clock + 1_000_000), log.len());
        // Monotone in the instant.
        let mut prev = 0;
        for at in (0..=last.clock).step_by((last.clock as usize / 16).max(1)) {
            let c = tt.commit_at_clock(at);
            assert!(c >= prev, "commit_at_clock must be monotone");
            prev = c;
        }

        // Every audit record maps to the commit whose boundary interval
        // contains it.
        for r in run.sm.world().log.records() {
            let Some(c) = tt.commit_for_audit(r.seq) else {
                continue;
            };
            let before = run.boundaries[c as usize].audit_records;
            let after = run.boundaries[c as usize + 1].audit_records;
            assert!(
                before <= r.seq && r.seq < after,
                "audit {} blamed on commit {} whose interval is [{before},{after})",
                r.seq,
                c
            );
        }

        // The denial join is total: every denial has a provenance commit.
        let blamed = tt.blame_denials(&run.sm.world().log);
        for (seq, commit) in &blamed {
            assert!(commit.is_some(), "denial {seq} has no provenance commit");
        }

        // Windows clamp to the log.
        assert!(tt.window(0, 2).len() <= 3);
        assert_eq!(tt.window(log.len() + 10, 2), &[] as &[SealedCommit]);
        assert_eq!(tt.window(2, 0).len(), 1);
    }
}
