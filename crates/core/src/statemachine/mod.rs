//! The replayable kernel: a pure state-machine core behind the runtime
//! wrapper (ROADMAP item 2, experiment E20).
//!
//! The paper's engineering argument is that a security kernel must be
//! small enough to *check*, not trust. E15 checks the first instant —
//! boot determinism pins the initial protected state. This module
//! upgrades that to full-history determinism, following the
//! `zos-kernel-core` shape: a [`Genesis`] describes how a system is
//! assembled; every subsequent state mutation flows through an atomic
//! [`Commit`] sealed into an append-only [`CommitLog`]; and
//! [`reduce`]`(genesis, log)` folds the log back into a bit-exact copy
//! of the live state. Snapshots, restores, time-travel audit queries
//! and the live-vs-replayed differential are all derived from log
//! prefixes — see [`replay`] and [`timetravel`].
//!
//! The split matters for what sits on each side of it. The state
//! machine ([`KernelStateMachine`]) owns the whole [`System`] and is
//! the only writer; observation ([`KernelStateMachine::digest`]) is
//! read-only and never perturbs what it measures. Commits are data,
//! not closures, so a log is storable, diffable and auditable — the
//! prerequisite for replication, migration, and the small-scope
//! enumeration the item-5 prover needs.

pub mod commit;
pub mod replay;
pub mod timetravel;
pub mod wire;
pub mod workload;

pub use commit::{fnv64, Commit, CommitLog, ReplayError, SealedCommit};
pub use replay::{
    reduce, replay_differential, restore, snapshot_at, MachineSnapshot, Mismatch, ReplayMutation,
};
pub use timetravel::TimeTravel;
pub use wire::{decode_commit_log, decode_snapshot, encode_commit_log, encode_snapshot, WireError};
pub use workload::{record_fault_run, record_overload_ladder, RecordedRun, WorkloadSpec};

use mks_hw::{CpuModel, InjectKind, Word};
use mks_procs::{Effects, FnJob, Step};

use crate::config::KernelConfig;
use crate::init::image::{build_image, load_image};
use crate::init::{state_hash, target_state};
use crate::monitor::Monitor;
use crate::world::{KProcId, KernelWorld, System, SystemSize};

/// Everything needed to assemble a replayable system from nothing:
/// configuration, sizing, and the dedicated daemons installed before
/// the first commit. Two machines built from equal geneses are
/// bit-exact, so the genesis digest roots the seal chain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Genesis {
    /// Which kernel configuration to assemble.
    pub cfg: KernelConfig,
    /// Primary-memory frames.
    pub frames: usize,
    /// Bulk-store records.
    pub bulk_records: usize,
    /// Trace-ring capacity (`None` = environment default).
    pub trace_capacity: Option<usize>,
    /// Dedicated daemons blocked on event channels, addressable by
    /// [`Commit::Wakeup`] index.
    pub daemons: u32,
}

impl Genesis {
    /// The E15-sized replayable system: security-kernel configuration,
    /// small memory (to force paging traffic), one blocked daemon.
    pub fn kernel_small() -> Genesis {
        Genesis {
            cfg: KernelConfig::kernel(),
            frames: 16,
            bulk_records: 64,
            trace_capacity: None,
            daemons: 1,
        }
    }

    /// The boot-image hash this genesis initializes to (E15 invariant 5).
    pub fn boot_hash(&self) -> u64 {
        state_hash(&target_state(&self.cfg))
    }

    /// Digest rooting the seal chain: covers the full assembly recipe
    /// *and* the boot target, so logs from different geneses or
    /// different boot images can never be confused.
    pub fn digest(&self) -> u64 {
        fnv64(format!("{self:?}|boot:{:016x}", self.boot_hash()).as_bytes())
    }

    /// Assembles the machine: builds the system, installs the daemons,
    /// and roots the world's commit log at this genesis digest.
    pub fn build(&self) -> KernelStateMachine {
        let mut sys = System::with_size(
            self.cfg,
            SystemSize {
                frames: self.frames,
                bulk_records: self.bulk_records,
                cpu: CpuModel::H6180,
                trace_capacity: self.trace_capacity,
            },
        );
        let mut daemons = Vec::new();
        for _ in 0..self.daemons {
            let ev = sys.tc.alloc_event();
            sys.tc.add_dedicated(Box::new(FnJob::new(
                "replay-daemon",
                move |_e: &mut Effects<'_, KernelWorld>| Step::Block(ev),
            )));
            daemons.push(ev);
        }
        sys.world.commits.seed(self.digest());
        KernelStateMachine {
            genesis: *self,
            sys,
            daemons,
        }
    }
}

/// What applying one commit produced — returned for the driver's
/// convenience (so a workload can thread segment numbers through), not
/// part of the replay contract: equality of [`StateDigest`]s at every
/// boundary is what the differential checks.
#[derive(Clone, PartialEq, Debug)]
pub enum Outcome {
    /// The mutation completed with nothing to return.
    Unit,
    /// A process was created.
    Pid(KProcId),
    /// A segment number was produced.
    Seg(mks_hw::SegNo),
    /// A scalar result (word read, salvage problem count, digest of a
    /// gate's output, boot-check divergence flag).
    Value(u64),
    /// The `Crash` site fired (true) or stayed quiet at this boundary.
    Fired(bool),
    /// The kernel refused the operation — a deterministic verdict, not
    /// an error: refusals replay exactly like grants.
    Refused(String),
}

impl Outcome {
    /// The segment number, if this outcome carries one.
    pub fn seg(&self) -> Option<mks_hw::SegNo> {
        match self {
            Outcome::Seg(s) => Some(*s),
            _ => None,
        }
    }
}

/// The replayable kernel: the whole [`System`] behind a single-writer
/// interface. Every mutation goes through [`KernelStateMachine::apply`]
/// — which seals the commit into the world's log *then* dispatches it —
/// and every observation goes through read-only accessors, so the state
/// a digest reports is exactly the state the log proves.
pub struct KernelStateMachine {
    genesis: Genesis,
    sys: System,
    daemons: Vec<mks_procs::EventId>,
}

impl KernelStateMachine {
    /// The genesis this machine was assembled from.
    pub fn genesis(&self) -> Genesis {
        self.genesis
    }

    /// Read-only view of the world (audit log, commit log, hierarchy).
    pub fn world(&self) -> &KernelWorld {
        &self.sys.world
    }

    /// Seals `commit` into the log and applies it. Infallible by
    /// design: a commit the kernel refuses produces
    /// [`Outcome::Refused`] deterministically — the refusal *is* the
    /// state transition (audit records, counters), and it replays.
    pub fn apply(&mut self, commit: &Commit) -> Outcome {
        self.sys.world.commits.append(commit.clone());
        self.dispatch(commit)
    }

    fn dispatch(&mut self, commit: &Commit) -> Outcome {
        let world = &mut self.sys.world;
        // A log under replay is external data — a mutation arm's log is
        // chain-valid but may name processes that never existed in the
        // replayed history. Refuse deterministically; never panic.
        if let Some(pid) = commit.acting_pid() {
            if !world.has_proc(pid) {
                return Outcome::Refused(format!("NoSuchProcess({pid:?})"));
            }
        }
        match commit {
            Commit::CreateProcess { user, label, ring } => {
                Outcome::Pid(world.create_process(user.clone(), *label, *ring))
            }
            Commit::DestroyProcess { pid } => {
                world.destroy_process(*pid);
                Outcome::Unit
            }
            Commit::BindRoot { pid } => Outcome::Seg(world.bind_root(*pid)),
            Commit::Initiate { pid, dir, name } => {
                refusable_seg(Monitor::initiate(world, *pid, *dir, name))
            }
            Commit::CreateSegment {
                pid,
                dir,
                name,
                acl,
                brackets,
                label,
            } => refusable_seg(Monitor::create_segment(
                world,
                *pid,
                *dir,
                name,
                acl.clone(),
                *brackets,
                *label,
            )),
            Commit::CreateDirectory {
                pid,
                dir,
                name,
                label,
            } => refusable_seg(Monitor::create_directory(world, *pid, *dir, name, *label)),
            Commit::DeleteSegment { pid, dir, name } => {
                refusable_unit(Monitor::delete_segment(world, *pid, *dir, name))
            }
            Commit::SetSegmentAcl {
                pid,
                dir,
                name,
                acl,
            } => refusable_unit(Monitor::set_segment_acl(
                world,
                *pid,
                *dir,
                name,
                acl.clone(),
            )),
            Commit::SetQuota {
                pid,
                dir,
                limit_pages,
            } => refusable_unit(Monitor::set_quota(world, *pid, *dir, *limit_pages)),
            Commit::ListDir { pid, dir } => match Monitor::list_dir(world, *pid, *dir) {
                Ok(names) => Outcome::Value(fnv64(names.join("\n").as_bytes())),
                Err(e) => Outcome::Refused(format!("{e:?}")),
            },
            Commit::Read { pid, seg, offset } => {
                match Monitor::read(world, *pid, *seg, *offset as usize) {
                    Ok(w) => Outcome::Value(w.raw()),
                    Err(e) => Outcome::Refused(format!("{e:?}")),
                }
            }
            Commit::Write {
                pid,
                seg,
                offset,
                value,
            } => refusable_unit(Monitor::write(
                world,
                *pid,
                *seg,
                *offset as usize,
                Word::new(*value),
            )),
            Commit::Terminate { pid, seg } => refusable_unit(Monitor::terminate(world, *pid, *seg)),
            Commit::CallGate { pid, gate, entry } => {
                match Monitor::call_gate(world, *pid, gate, entry) {
                    Ok(ring) => Outcome::Value(u64::from(ring)),
                    Err(e) => Outcome::Refused(format!("{e:?}")),
                }
            }
            Commit::MeteringGet { pid } => match Monitor::metering_snapshot(world, *pid) {
                Ok(json) => Outcome::Value(fnv64(json.as_bytes())),
                Err(e) => Outcome::Refused(format!("{e:?}")),
            },
            Commit::Audit { who, event } => {
                world.audit(who.clone(), event.clone());
                Outcome::Unit
            }
            Commit::Tick { times } => {
                for _ in 0..*times {
                    self.sys.tc.tick(&mut self.sys.world);
                }
                Outcome::Unit
            }
            Commit::Wakeup { daemon } => match self.daemons.get(*daemon as usize) {
                Some(ev) => {
                    let ev = *ev;
                    self.sys.tc.wakeup_external(&mut self.sys.world, ev);
                    Outcome::Unit
                }
                None => Outcome::Refused("no such daemon".into()),
            },
            Commit::AdmissionEnable { config } => {
                world.admission.enable(*config);
                Outcome::Unit
            }
            Commit::SetPriority { pid, priority } => {
                world.admission.set_priority(*pid, *priority);
                Outcome::Unit
            }
            Commit::ArmPlan { plan } => {
                world.vm.machine.inject.arm(plan);
                Outcome::Unit
            }
            Commit::Disarm => {
                world.vm.machine.inject.disarm();
                Outcome::Unit
            }
            Commit::CrashPoll => {
                Outcome::Fired(world.vm.machine.inject.fires(InjectKind::Crash).is_some())
            }
            Commit::Salvage => {
                let report = world.fs.salvage();
                Outcome::Value(report.problems.len() as u64)
            }
            Commit::BootCheck => {
                let img = build_image(&world.cfg);
                let diverged = match load_image(&img, &world.vm.machine.clock) {
                    Ok((state, _)) => state_hash(&state) != self.genesis.boot_hash(),
                    Err(_) => true,
                };
                Outcome::Value(u64::from(diverged))
            }
        }
    }

    /// Publishes this replica's replication status into the world, where
    /// the metering gate exports it read-only (E21). Observational only:
    /// the raw trace snapshot folded into [`StateDigest::metrics_digest`]
    /// never carries it, so publishing different vantage points on
    /// different replicas cannot make their digests diverge.
    pub fn set_repl_status(&mut self, status: Option<mks_trace::ReplSnapshot>) {
        self.world_mut().repl_status = status;
    }

    /// Crate-internal mutable world access, for the legacy backup tape
    /// and the dump/restore differential tests. Deliberately not public:
    /// every external mutation must flow through
    /// [`KernelStateMachine::apply`] so the log stays the whole truth.
    pub(crate) fn world_mut(&mut self) -> &mut KernelWorld {
        &mut self.sys.world
    }

    /// A whole-kernel state digest at the current commit boundary.
    /// Observation only — nothing here moves a counter, takes a gate,
    /// or advances the clock, so digesting at every boundary does not
    /// change what is being digested.
    pub fn digest(&self) -> StateDigest {
        let w = &self.sys.world;
        let mut log_bytes = Vec::new();
        for r in w.log.records() {
            log_bytes.extend_from_slice(format!("{r:?}\n").as_bytes());
        }
        let snap_json = w.vm.machine.trace.snapshot().to_json();
        let mut census: Vec<_> = w.fs.label_census();
        census.sort_by_key(|(uid, _)| *uid);
        let mut label_bytes = Vec::new();
        for (uid, label) in &census {
            label_bytes.extend_from_slice(format!("{uid:?}={label:?};").as_bytes());
        }
        StateDigest {
            seq: w.commits.len(),
            clock: w.vm.machine.clock.now(),
            audit_records: w.log.len() as u64,
            audit_digest: fnv64(&log_bytes),
            metrics_digest: fnv64(snap_json.as_bytes()),
            census: w.gates.user_available_entries() as u64,
            processes: w.nr_processes() as u64,
            label_digest: fnv64(&label_bytes),
            boot_hash: self.genesis.boot_hash(),
            log_digest: w.commits.head(),
        }
    }
}

/// A whole-kernel fingerprint at one commit boundary. The differential
/// claim of E20 is that a live machine and its replay produce equal
/// digests at *every* boundary — each field pins one subsystem, so a
/// mismatch names the layer that diverged.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StateDigest {
    /// Commits applied so far.
    pub seq: u64,
    /// Simulated clock.
    pub clock: u64,
    /// Audit records appended so far.
    pub audit_records: u64,
    /// FNV-1a over the full audit log.
    pub audit_digest: u64,
    /// FNV-1a over the metrics-registry JSON snapshot.
    pub metrics_digest: u64,
    /// User-available gate census (pinned at 54 in the kernel config).
    pub census: u64,
    /// Live kernel processes.
    pub processes: u64,
    /// FNV-1a over the sorted (uid, label) census of the hierarchy.
    pub label_digest: u64,
    /// The genesis boot-image hash (E15 invariant 5).
    pub boot_hash: u64,
    /// The commit log's chain head.
    pub log_digest: u64,
}

impl StateDigest {
    /// Field-by-field comparison, returning `(field, self, other)` for
    /// every divergence.
    pub fn diff(&self, other: &StateDigest) -> Vec<(&'static str, u64, u64)> {
        let pairs = [
            ("seq", self.seq, other.seq),
            ("clock", self.clock, other.clock),
            ("audit_records", self.audit_records, other.audit_records),
            ("audit_digest", self.audit_digest, other.audit_digest),
            ("metrics_digest", self.metrics_digest, other.metrics_digest),
            ("census", self.census, other.census),
            ("processes", self.processes, other.processes),
            ("label_digest", self.label_digest, other.label_digest),
            ("boot_hash", self.boot_hash, other.boot_hash),
            ("log_digest", self.log_digest, other.log_digest),
        ];
        pairs.into_iter().filter(|(_, a, b)| a != b).collect()
    }
}

fn refusable_seg(r: Result<mks_hw::SegNo, crate::monitor::AccessError>) -> Outcome {
    match r {
        Ok(s) => Outcome::Seg(s),
        Err(e) => Outcome::Refused(format!("{e:?}")),
    }
}

fn refusable_unit<T>(r: Result<T, crate::monitor::AccessError>) -> Outcome {
    match r {
        Ok(_) => Outcome::Unit,
        Err(e) => Outcome::Refused(format!("{e:?}")),
    }
}
