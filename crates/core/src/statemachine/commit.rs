//! The commit layer: atomic state mutations and the sealed, append-only
//! log they flow through.
//!
//! A [`Commit`] is pure data — principals, segment numbers, payload
//! words, a fault plan — never a closure or a handle. Sealing a commit
//! binds it into a hash chain rooted at the genesis digest, so a log is
//! self-authenticating: any splice, reorder or truncation either breaks
//! the chain (caught by [`CommitLog::verify`] with a typed
//! [`ReplayError`]) or re-seals covertly, in which case the replay
//! differential catches the divergent state digests instead.

use mks_fs::{Acl, AclMode, UserId};
use mks_hw::{FaultPlan, RingBrackets, RingNo, SegNo};
use mks_mls::Label;

use crate::syslog::AuditEvent;
use crate::world::KProcId;

/// FNV-1a over a byte string — the repo's standard content digest
/// (same constants as the boot-image and lane-report hashes).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One atomic state mutation. Every change to hw/vm/procs/fs/monitor
/// state in a replayable run flows through exactly one of these; the
/// variants cover process lifecycle, reference-monitor mediation,
/// scheduling, auditing, admission control, fault injection and the
/// recovery path. Data-only by construction: applying the same commit
/// to the same state always produces the same next state.
#[derive(Clone, PartialEq, Debug)]
pub enum Commit {
    /// Create a kernel process record.
    CreateProcess {
        /// The logged-in principal.
        user: UserId,
        /// Mandatory label, fixed at creation.
        label: Label,
        /// Initial ring of execution.
        ring: RingNo,
    },
    /// Destroy a process record (idempotent on unknown pids).
    DestroyProcess {
        /// The process to destroy.
        pid: KProcId,
    },
    /// Bind the root directory into a process's KST.
    BindRoot {
        /// The binding process.
        pid: KProcId,
    },
    /// Mediated segment acquisition.
    Initiate {
        /// The requesting process.
        pid: KProcId,
        /// Directory to resolve in.
        dir: SegNo,
        /// Entry name.
        name: String,
    },
    /// Mediated segment creation.
    CreateSegment {
        /// The creating process.
        pid: KProcId,
        /// Parent directory.
        dir: SegNo,
        /// Entry name.
        name: String,
        /// Discretionary ACL installed on the branch.
        acl: Acl<AclMode>,
        /// Ring brackets installed on the branch.
        brackets: RingBrackets,
        /// Mandatory label.
        label: Label,
    },
    /// Mediated directory creation.
    CreateDirectory {
        /// The creating process.
        pid: KProcId,
        /// Parent directory.
        dir: SegNo,
        /// Entry name.
        name: String,
        /// Mandatory label.
        label: Label,
    },
    /// Mediated branch deletion.
    DeleteSegment {
        /// The deleting process.
        pid: KProcId,
        /// Parent directory.
        dir: SegNo,
        /// Entry name.
        name: String,
    },
    /// Mediated ACL replacement on a branch.
    SetSegmentAcl {
        /// The acting process.
        pid: KProcId,
        /// Parent directory.
        dir: SegNo,
        /// Entry name.
        name: String,
        /// The replacement ACL.
        acl: Acl<AclMode>,
    },
    /// Mediated quota assignment on a directory.
    SetQuota {
        /// The acting process.
        pid: KProcId,
        /// Target directory.
        dir: SegNo,
        /// New page limit.
        limit_pages: u64,
    },
    /// Mediated directory listing (moves monitor counters).
    ListDir {
        /// The listing process.
        pid: KProcId,
        /// Target directory.
        dir: SegNo,
    },
    /// Mediated word read (paging traffic).
    Read {
        /// The reading process.
        pid: KProcId,
        /// Target segment.
        seg: SegNo,
        /// Word offset.
        offset: u64,
    },
    /// Mediated word write (paging traffic).
    Write {
        /// The writing process.
        pid: KProcId,
        /// Target segment.
        seg: SegNo,
        /// Word offset.
        offset: u64,
        /// Low 36 bits become the stored word.
        value: u64,
    },
    /// Drop a segment from a process's address space.
    Terminate {
        /// The terminating process.
        pid: KProcId,
        /// The segment to drop.
        seg: SegNo,
    },
    /// Call a supervisor gate by name.
    CallGate {
        /// The calling process.
        pid: KProcId,
        /// Gate segment name.
        gate: String,
        /// Entry name.
        entry: String,
    },
    /// Read the metering snapshot through `hcs_$metering_get` (the
    /// read-only gate that also exposes this log's digest).
    MeteringGet {
        /// The calling process.
        pid: KProcId,
    },
    /// Append a record to the kernel audit log.
    Audit {
        /// Acting principal, if known.
        who: Option<UserId>,
        /// The event.
        event: AuditEvent,
    },
    /// Run the traffic controller for a number of ticks.
    Tick {
        /// How many ticks.
        times: u32,
    },
    /// Wake a genesis daemon's event channel (IPC traffic for the
    /// `DropWakeup` injection site to starve).
    Wakeup {
        /// Index into the genesis daemon list.
        daemon: u32,
    },
    /// Arm admission control.
    AdmissionEnable {
        /// Pressure tuning (thresholds, soft caps) — plain data, so the
        /// arming replays exactly.
        config: crate::pressure::PressureConfig,
    },
    /// Assign a process's priority class.
    SetPriority {
        /// The classified process.
        pid: KProcId,
        /// Its class.
        priority: crate::pressure::Priority,
    },
    /// Arm the fault injector with a deterministic plan.
    ArmPlan {
        /// The schedule to arm.
        plan: FaultPlan,
    },
    /// Disarm the fault injector.
    Disarm,
    /// Consult the `Crash` injection site at an operation boundary.
    CrashPoll,
    /// Run the official salvager over the hierarchy.
    Salvage,
    /// Re-derive the boot image and check it loads to the target state.
    BootCheck,
}

impl Commit {
    /// The commit's contribution to the seal chain: a digest of its
    /// full debug encoding. Any payload difference changes it.
    pub fn encoding_digest(&self) -> u64 {
        fnv64(format!("{self:?}").as_bytes())
    }

    /// The acting process this commit requires to exist, if any.
    /// `CreateProcess` creates its own and `DestroyProcess` is
    /// documented idempotent, so neither names one. The dispatcher
    /// refuses a commit whose acting process is unknown — a log under
    /// replay is external data (possibly a mutation arm's), so a
    /// dangling pid must produce a deterministic verdict, not a panic.
    pub fn acting_pid(&self) -> Option<KProcId> {
        match self {
            Commit::BindRoot { pid }
            | Commit::Initiate { pid, .. }
            | Commit::CreateSegment { pid, .. }
            | Commit::CreateDirectory { pid, .. }
            | Commit::DeleteSegment { pid, .. }
            | Commit::SetSegmentAcl { pid, .. }
            | Commit::SetQuota { pid, .. }
            | Commit::ListDir { pid, .. }
            | Commit::Read { pid, .. }
            | Commit::Write { pid, .. }
            | Commit::Terminate { pid, .. }
            | Commit::CallGate { pid, .. }
            | Commit::MeteringGet { pid }
            | Commit::SetPriority { pid, .. } => Some(*pid),
            _ => None,
        }
    }
}

/// A commit bound into the chain at a fixed position.
#[derive(Clone, PartialEq, Debug)]
pub struct SealedCommit {
    /// Position in the log, dense from 0.
    pub seq: u64,
    /// Chain digest covering every prior seal and this commit.
    pub chain: u64,
    /// The mutation itself.
    pub commit: Commit,
}

/// Why a log (or a snapshot derived from one) was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReplayError {
    /// The log is shorter than the history it claims to cover.
    Truncated {
        /// Commits expected.
        expected: u64,
        /// Commits present.
        found: u64,
    },
    /// Sequence numbers are not dense from 0 — an entry was dropped or
    /// the log was spliced.
    NonMonotonic {
        /// Index of the offending entry.
        at: u64,
        /// The sequence number found there.
        seq: u64,
    },
    /// A seal does not recompute from its predecessor — the entry was
    /// reordered or its payload rewritten after sealing.
    ChainMismatch {
        /// Sequence of the offending entry.
        seq: u64,
        /// Chain digest recomputed from the predecessor.
        expected: u64,
        /// Chain digest stored in the entry.
        found: u64,
    },
    /// The log is rooted at a different genesis than the reducer's.
    BaseMismatch {
        /// The reducer's genesis digest.
        expected: u64,
        /// The log's base.
        found: u64,
    },
    /// Replaying a verified log produced a different chain head than
    /// the log itself carries — the apply path is nondeterministic.
    ChainDivergence {
        /// Sequence at which replay diverged.
        seq: u64,
        /// The input log's seal.
        expected: u64,
        /// The replayed seal.
        found: u64,
    },
    /// A snapshot's claimed position or digest does not match the
    /// prefix it carries — it is stale or mislabeled.
    SnapshotStale {
        /// The prefix length the snapshot claims.
        upto: u64,
        /// The chain head the claim requires.
        expected: u64,
        /// The chain head actually found.
        found: u64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Truncated { expected, found } => {
                write!(f, "log truncated: expected {expected} commits, found {found}")
            }
            ReplayError::NonMonotonic { at, seq } => {
                write!(f, "log not densely sequenced: entry {at} carries seq {seq}")
            }
            ReplayError::ChainMismatch {
                seq,
                expected,
                found,
            } => write!(
                f,
                "seal chain broken at seq {seq}: expected {expected:#018x}, found {found:#018x}"
            ),
            ReplayError::BaseMismatch { expected, found } => write!(
                f,
                "log rooted at wrong genesis: expected {expected:#018x}, found {found:#018x}"
            ),
            ReplayError::ChainDivergence {
                seq,
                expected,
                found,
            } => write!(
                f,
                "replay diverged at seq {seq}: log seal {expected:#018x}, replayed {found:#018x}"
            ),
            ReplayError::SnapshotStale {
                upto,
                expected,
                found,
            } => write!(
                f,
                "snapshot stale at prefix {upto}: claimed head {expected:#018x}, found {found:#018x}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// The append-only, sealed commit log. Immutable in the sense that
/// entries are never rewritten or removed — the only mutation is
/// appending the next seal. Cloning a log (for prefixes, snapshots and
/// mutation arms) never disturbs the original.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CommitLog {
    base: u64,
    entries: Vec<SealedCommit>,
}

impl CommitLog {
    /// An empty log rooted at base digest 0 (re-rooted by
    /// [`CommitLog::seed`] before first use).
    pub fn new() -> CommitLog {
        CommitLog::default()
    }

    /// Roots an empty log at the genesis digest.
    ///
    /// # Panics
    /// Panics if commits were already sealed — the root is part of
    /// every seal and cannot change retroactively.
    pub fn seed(&mut self, base: u64) {
        assert!(
            self.entries.is_empty(),
            "a commit log cannot be re-rooted after sealing"
        );
        self.base = base;
    }

    /// Rebuilds a log from raw parts *without* re-sealing. For tests
    /// and mutation arms that need tampered logs; an honestly built log
    /// always comes from [`CommitLog::append`].
    pub fn from_parts(base: u64, entries: Vec<SealedCommit>) -> CommitLog {
        CommitLog { base, entries }
    }

    /// The genesis digest this log is rooted at.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Commits sealed so far.
    pub fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    /// True when nothing has been sealed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The chain head: the last seal, or the base for an empty log.
    /// This is the digest the metering gate exports.
    pub fn head(&self) -> u64 {
        self.entries.last().map(|s| s.chain).unwrap_or(self.base)
    }

    /// All seals, in order.
    pub fn entries(&self) -> &[SealedCommit] {
        &self.entries
    }

    /// The seal at `seq`, if present.
    pub fn get(&self, seq: u64) -> Option<&SealedCommit> {
        self.entries.get(seq as usize)
    }

    /// The next seal in the chain after `prev`.
    fn chain_next(prev: u64, seq: u64, commit: &Commit) -> u64 {
        let mut bytes = Vec::with_capacity(24);
        bytes.extend_from_slice(&prev.to_le_bytes());
        bytes.extend_from_slice(&seq.to_le_bytes());
        bytes.extend_from_slice(&commit.encoding_digest().to_le_bytes());
        fnv64(&bytes)
    }

    /// Seals `commit` at the end of the log, returning its sequence.
    pub fn append(&mut self, commit: Commit) -> u64 {
        let seq = self.entries.len() as u64;
        let chain = CommitLog::chain_next(self.head(), seq, &commit);
        self.entries.push(SealedCommit { seq, chain, commit });
        seq
    }

    /// Checks internal consistency: sequence numbers dense from 0 and
    /// every seal recomputing from its predecessor. A log that passes
    /// is exactly a log [`CommitLog::append`] could have built.
    pub fn verify(&self) -> Result<(), ReplayError> {
        let mut prev = self.base;
        for (i, s) in self.entries.iter().enumerate() {
            if s.seq != i as u64 {
                return Err(ReplayError::NonMonotonic {
                    at: i as u64,
                    seq: s.seq,
                });
            }
            let expected = CommitLog::chain_next(prev, s.seq, &s.commit);
            if s.chain != expected {
                return Err(ReplayError::ChainMismatch {
                    seq: s.seq,
                    expected,
                    found: s.chain,
                });
            }
            prev = s.chain;
        }
        Ok(())
    }

    /// [`CommitLog::verify`], plus a check that the log reaches the
    /// expected head — the form that catches tail truncation, which is
    /// internally consistent but shorter than the history it replaces.
    pub fn verify_head(&self, expected_len: u64, expected_head: u64) -> Result<(), ReplayError> {
        self.verify()?;
        if self.len() != expected_len || self.head() != expected_head {
            return Err(ReplayError::Truncated {
                expected: expected_len,
                found: self.len(),
            });
        }
        Ok(())
    }

    /// The first `upto` commits as an independent (re-rooted) log.
    pub fn prefix(&self, upto: u64) -> CommitLog {
        CommitLog {
            base: self.base,
            entries: self.entries[..(upto as usize).min(self.entries.len())].to_vec(),
        }
    }

    /// Re-seals a transformed copy of this log's commits — the covert
    /// tampering primitive behind the mutation arms. The result passes
    /// [`CommitLog::verify`] by construction, so only the replay
    /// differential can catch it.
    pub fn resealed(&self, transform: impl FnOnce(&mut Vec<Commit>)) -> CommitLog {
        let mut commits: Vec<Commit> = self.entries.iter().map(|s| s.commit.clone()).collect();
        transform(&mut commits);
        let mut out = CommitLog::new();
        out.seed(self.base);
        for c in commits {
            out.append(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syslog::AuditEvent;

    fn sample_log() -> CommitLog {
        let mut log = CommitLog::new();
        log.seed(0xfeed_f00d);
        log.append(Commit::Tick { times: 2 });
        log.append(Commit::Audit {
            who: None,
            event: AuditEvent::Login { success: true },
        });
        log.append(Commit::CrashPoll);
        log.append(Commit::Tick { times: 1 });
        log.append(Commit::Disarm);
        log
    }

    #[test]
    fn append_seals_densely_and_verifies() {
        let log = sample_log();
        assert_eq!(log.len(), 5);
        assert_eq!(log.base(), 0xfeed_f00d);
        for (i, s) in log.entries().iter().enumerate() {
            assert_eq!(s.seq, i as u64);
        }
        assert_ne!(log.head(), log.base());
        log.verify().expect("an honestly appended log verifies");
        log.verify_head(log.len(), log.head())
            .expect("and it reaches its own head");
    }

    #[test]
    fn every_payload_difference_changes_the_seal() {
        let a = Commit::Tick { times: 1 };
        let b = Commit::Tick { times: 2 };
        assert_ne!(a.encoding_digest(), b.encoding_digest());
        assert_ne!(
            CommitLog::chain_next(7, 0, &a),
            CommitLog::chain_next(7, 0, &b)
        );
        // Position and predecessor are sealed too.
        assert_ne!(
            CommitLog::chain_next(7, 0, &a),
            CommitLog::chain_next(7, 1, &a)
        );
        assert_ne!(
            CommitLog::chain_next(7, 0, &a),
            CommitLog::chain_next(8, 0, &a)
        );
    }

    #[test]
    fn tail_truncation_is_typed() {
        let log = sample_log();
        let cut = log.prefix(3);
        cut.verify()
            .expect("a prefix is internally consistent — that is the danger");
        assert_eq!(
            cut.verify_head(log.len(), log.head()),
            Err(ReplayError::Truncated {
                expected: 5,
                found: 3
            })
        );
    }

    #[test]
    fn raw_payload_tamper_is_typed() {
        let log = sample_log();
        let mut entries = log.entries().to_vec();
        entries[2].commit = Commit::Salvage;
        let tampered = CommitLog::from_parts(log.base(), entries);
        assert!(matches!(
            tampered.verify(),
            Err(ReplayError::ChainMismatch { seq: 2, .. })
        ));
    }

    #[test]
    fn raw_splice_is_typed() {
        let log = sample_log();
        let mut entries = log.entries().to_vec();
        entries.remove(1);
        let spliced = CommitLog::from_parts(log.base(), entries);
        assert_eq!(
            spliced.verify(),
            Err(ReplayError::NonMonotonic { at: 1, seq: 2 })
        );
    }

    #[test]
    fn raw_reorder_is_typed() {
        let log = sample_log();
        let mut entries = log.entries().to_vec();
        entries.swap(1, 2);
        let reordered = CommitLog::from_parts(log.base(), entries);
        assert!(matches!(
            reordered.verify(),
            Err(ReplayError::NonMonotonic { at: 1, seq: 2 })
        ));
    }

    #[test]
    fn covert_reseal_passes_verify_but_moves_the_head() {
        let log = sample_log();
        let forged = log.resealed(|commits| commits.swap(0, 1));
        forged
            .verify()
            .expect("a covert reseal is chain-consistent by construction");
        assert_eq!(forged.len(), log.len());
        assert_ne!(
            forged.head(),
            log.head(),
            "but it cannot reproduce the honest head"
        );
    }

    #[test]
    #[should_panic(expected = "cannot be re-rooted")]
    fn re_rooting_a_sealed_log_panics() {
        let mut log = sample_log();
        log.seed(1);
    }

    #[test]
    fn errors_display() {
        let e = ReplayError::Truncated {
            expected: 5,
            found: 3,
        };
        assert!(e.to_string().contains("truncated"));
        let e = ReplayError::SnapshotStale {
            upto: 4,
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("stale"));
    }
}
