//! Byte-level wire encoding for the replayable kernel's artifacts.
//!
//! The commit log's in-memory form (E20) is enough for replay on one
//! machine, but replication (E21) streams [`SealedCommit`]s and
//! [`MachineSnapshot`]s over a link, and a log at rest wants a stable
//! byte form that survives outside the process. This module is that
//! form: a small, explicit little-endian codec with *typed* rejection —
//! every way a frame can be corrupt, truncated, oversized or foreign
//! maps to a [`WireError`] variant, never a panic and never a silent
//! mis-parse.
//!
//! Wire integrity and chain integrity are different layers on purpose:
//! [`decode_commit_log`] proves the bytes parse, and the caller still
//! runs [`CommitLog::verify`] to prove the *seals* hold. A forged or
//! bit-flipped log that happens to parse is caught by the chain, and a
//! log whose bytes were damaged in flight is caught here first with a
//! precise reason.
//!
//! One representational constraint is inherited from the ACL layer:
//! principal patterns are encoded component-wise and rebuilt through
//! [`Acl::add`], whose `Person.Project.tag` syntax makes `.` a
//! separator. Principal components are dot-free everywhere in this
//! repo (the parser enforces three components), so the round trip is
//! exact.

use mks_fs::{Acl, AclMode, UserId};
use mks_hw::{FaultEvent, FaultPlan, InjectKind, RingBrackets, SegNo};
use mks_mls::{Compartments, Label, Level};

use super::commit::{Commit, CommitLog, SealedCommit};
use super::replay::MachineSnapshot;
use super::{Genesis, StateDigest};
use crate::pressure::{Priority, NR_PRIORITIES};
use crate::syslog::AuditEvent;
use crate::world::KProcId;

/// Magic prefix of an encoded [`CommitLog`].
pub const LOG_MAGIC: [u8; 4] = *b"MKCL";
/// Magic prefix of an encoded [`MachineSnapshot`].
pub const SNAP_MAGIC: [u8; 4] = *b"MKSN";
/// Codec version, bumped on any layout change.
pub const WIRE_VERSION: u16 = 1;

/// Longest string the decoder will accept (names, patterns, audit
/// details). Far above anything the kernel produces; a length field
/// beyond it is treated as corruption, not as an allocation request.
pub const MAX_STR: u64 = 1 << 12;
/// Most elements the decoder will accept in one vector (log entries,
/// ACL entries, fault events).
pub const MAX_VEC: u64 = 1 << 20;

/// Why a byte string was rejected. Every variant names the defect
/// precisely enough to distinguish truncation from corruption from
/// version/genesis mismatch — the error taxonomy test pins this.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The buffer ended before a field's bytes did.
    Truncated {
        /// Bytes the next field needed.
        need: u64,
        /// Bytes remaining.
        have: u64,
    },
    /// The leading magic is not the expected artifact tag.
    BadMagic {
        /// The four bytes found.
        found: [u8; 4],
    },
    /// The codec version is not [`WIRE_VERSION`].
    BadVersion {
        /// The version found.
        found: u16,
    },
    /// A tag byte names no variant of its enum.
    BadTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The tag found.
        tag: u8,
    },
    /// A string field is not valid UTF-8.
    BadUtf8 {
        /// Which field was being decoded.
        what: &'static str,
    },
    /// A length field exceeds the decoder's hard cap — corruption, since
    /// the encoder never produces it.
    Oversize {
        /// Which field was being decoded.
        what: &'static str,
        /// The length claimed.
        len: u64,
    },
    /// The artifact parsed completely but bytes remain — a concatenation
    /// or framing error.
    Trailing {
        /// Bytes left over.
        extra: u64,
    },
    /// A snapshot is rooted at a different genesis than the receiver's.
    ForeignGenesis {
        /// The receiver's genesis digest.
        expected: u64,
        /// The digest the snapshot carries.
        found: u64,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated: next field needs {need} bytes, {have} remain")
            }
            WireError::BadMagic { found } => write!(f, "bad magic {found:?}"),
            WireError::BadVersion { found } => {
                write!(f, "wire version {found} (this codec is {WIRE_VERSION})")
            }
            WireError::BadTag { what, tag } => write!(f, "tag {tag} names no {what} variant"),
            WireError::BadUtf8 { what } => write!(f, "{what} is not valid UTF-8"),
            WireError::Oversize { what, len } => {
                write!(f, "{what} claims length {len}, over the decoder cap")
            }
            WireError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after a complete artifact")
            }
            WireError::ForeignGenesis { expected, found } => write!(
                f,
                "snapshot rooted at foreign genesis {found:#018x} (expected {expected:#018x})"
            ),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------- writer

/// Appends one byte.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a little-endian `u16`.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a bool as one byte (0 or 1).
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

/// Appends a length-prefixed UTF-8 string (`u32` length, then bytes).
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends length-prefixed raw bytes (`u32` length, then bytes).
pub fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

// ---------------------------------------------------------------- reader

/// A bounds-checked little-endian reader over a byte slice. Every read
/// that would run off the end returns [`WireError::Truncated`]; nothing
/// here panics on hostile input.
#[derive(Clone, Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> u64 {
        (self.buf.len() - self.pos) as u64
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: u64) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n as usize];
        self.pos += n as usize;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a bool byte; any value other than 0/1 is a bad tag.
    pub fn bool(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what, tag }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = u64::from(self.u32()?);
        if len > MAX_STR {
            return Err(WireError::Oversize { what, len });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8 { what })
    }

    /// Reads length-prefixed raw bytes (capped like a vector).
    pub fn bytes(&mut self, what: &'static str) -> Result<&'a [u8], WireError> {
        let len = u64::from(self.u32()?);
        if len > MAX_VEC * 64 {
            return Err(WireError::Oversize { what, len });
        }
        self.take(len)
    }

    /// Reads a vector length, enforcing [`MAX_VEC`].
    pub fn vec_len(&mut self, what: &'static str) -> Result<u64, WireError> {
        let len = u64::from(self.u32()?);
        if len > MAX_VEC {
            return Err(WireError::Oversize { what, len });
        }
        Ok(len)
    }

    /// Asserts the artifact consumed every byte.
    pub fn done(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing {
                extra: self.remaining(),
            })
        }
    }
}

// ----------------------------------------------------- component codecs

fn put_user(buf: &mut Vec<u8>, u: &UserId) {
    put_str(buf, &u.person);
    put_str(buf, &u.project);
    put_str(buf, &u.tag);
}

fn get_user(cur: &mut Cursor<'_>) -> Result<UserId, WireError> {
    let person = cur.str("UserId.person")?;
    let project = cur.str("UserId.project")?;
    let tag = cur.str("UserId.tag")?;
    Ok(UserId {
        person,
        project,
        tag,
    })
}

fn put_label(buf: &mut Vec<u8>, l: &Label) {
    put_u8(buf, l.level.0);
    put_u64(buf, l.compartments.0);
}

fn get_label(cur: &mut Cursor<'_>) -> Result<Label, WireError> {
    let level = Level(cur.u8()?);
    let compartments = Compartments(cur.u64()?);
    Ok(Label::new(level, compartments))
}

fn put_acl(buf: &mut Vec<u8>, acl: &Acl<AclMode>) {
    put_u32(buf, acl.entries().len() as u32);
    for e in acl.entries() {
        put_str(buf, &e.person);
        put_str(buf, &e.project);
        put_str(buf, &e.tag);
        let mode =
            u8::from(e.mode.read) | (u8::from(e.mode.execute) << 1) | (u8::from(e.mode.write) << 2);
        put_u8(buf, mode);
    }
}

fn get_acl(cur: &mut Cursor<'_>) -> Result<Acl<AclMode>, WireError> {
    let count = cur.vec_len("Acl.entries")?;
    let mut acl = Acl::empty();
    for _ in 0..count {
        let person = cur.str("AclEntry.person")?;
        let project = cur.str("AclEntry.project")?;
        let tag = cur.str("AclEntry.tag")?;
        let bits = cur.u8()?;
        if bits > 0b111 {
            return Err(WireError::BadTag {
                what: "AclMode",
                tag: bits,
            });
        }
        let mode = AclMode {
            read: bits & 1 != 0,
            execute: bits & 2 != 0,
            write: bits & 4 != 0,
        };
        // Components are dot-free on the wire's encode side, so the
        // rebuilt pattern has exactly three parts and `add` cannot panic.
        if person.contains('.') || project.contains('.') || tag.contains('.') {
            return Err(WireError::BadUtf8 {
                what: "AclEntry.pattern",
            });
        }
        acl.add(&format!("{person}.{project}.{tag}"), mode);
    }
    Ok(acl)
}

fn put_audit_event(buf: &mut Vec<u8>, e: &AuditEvent) {
    match e {
        AuditEvent::AccessDenied { what } => {
            put_u8(buf, 0);
            put_str(buf, what);
        }
        AuditEvent::ProtectionFault { fault } => {
            put_u8(buf, 1);
            put_str(buf, fault);
        }
        AuditEvent::Login { success } => {
            put_u8(buf, 2);
            put_bool(buf, *success);
        }
        AuditEvent::GateRefused { target } => {
            put_u8(buf, 3);
            put_str(buf, target);
        }
        AuditEvent::Lifecycle { what } => {
            put_u8(buf, 4);
            put_str(buf, what);
        }
        AuditEvent::Overload {
            what,
            pressure_permille,
        } => {
            put_u8(buf, 5);
            put_str(buf, what);
            put_u32(buf, *pressure_permille);
        }
    }
}

fn get_audit_event(cur: &mut Cursor<'_>) -> Result<AuditEvent, WireError> {
    Ok(match cur.u8()? {
        0 => AuditEvent::AccessDenied {
            what: cur.str("AuditEvent.what")?,
        },
        1 => AuditEvent::ProtectionFault {
            fault: cur.str("AuditEvent.fault")?,
        },
        2 => AuditEvent::Login {
            success: cur.bool("AuditEvent.success")?,
        },
        3 => AuditEvent::GateRefused {
            target: cur.str("AuditEvent.target")?,
        },
        4 => AuditEvent::Lifecycle {
            what: cur.str("AuditEvent.what")?,
        },
        5 => AuditEvent::Overload {
            what: cur.str("AuditEvent.what")?,
            pressure_permille: cur.u32()?,
        },
        tag => {
            return Err(WireError::BadTag {
                what: "AuditEvent",
                tag,
            })
        }
    })
}

fn put_plan(buf: &mut Vec<u8>, plan: &FaultPlan) {
    put_u64(buf, plan.seed);
    put_u32(buf, plan.events.len() as u32);
    for e in &plan.events {
        put_u8(buf, e.kind as u8);
        put_u64(buf, e.nth);
        put_u64(buf, e.detail);
    }
}

fn get_plan(cur: &mut Cursor<'_>) -> Result<FaultPlan, WireError> {
    let seed = cur.u64()?;
    let count = cur.vec_len("FaultPlan.events")?;
    let mut events = Vec::new();
    for _ in 0..count {
        let tag = cur.u8()?;
        let kind = *InjectKind::ALL.get(tag as usize).ok_or(WireError::BadTag {
            what: "InjectKind",
            tag,
        })?;
        let nth = cur.u64()?;
        let detail = cur.u64()?;
        events.push(FaultEvent { kind, nth, detail });
    }
    // `from_events` would reset the seed; rebuild directly. Events on
    // the wire come from a real plan, already deduplicated and sorted.
    Ok(FaultPlan { seed, events })
}

// ----------------------------------------------------------- Commit

fn put_commit(buf: &mut Vec<u8>, c: &Commit) {
    match c {
        Commit::CreateProcess { user, label, ring } => {
            put_u8(buf, 0);
            put_user(buf, user);
            put_label(buf, label);
            put_u8(buf, *ring);
        }
        Commit::DestroyProcess { pid } => {
            put_u8(buf, 1);
            put_u32(buf, pid.0);
        }
        Commit::BindRoot { pid } => {
            put_u8(buf, 2);
            put_u32(buf, pid.0);
        }
        Commit::Initiate { pid, dir, name } => {
            put_u8(buf, 3);
            put_u32(buf, pid.0);
            put_u16(buf, dir.0);
            put_str(buf, name);
        }
        Commit::CreateSegment {
            pid,
            dir,
            name,
            acl,
            brackets,
            label,
        } => {
            put_u8(buf, 4);
            put_u32(buf, pid.0);
            put_u16(buf, dir.0);
            put_str(buf, name);
            put_acl(buf, acl);
            put_u8(buf, brackets.r1);
            put_u8(buf, brackets.r2);
            put_u8(buf, brackets.r3);
            put_label(buf, label);
        }
        Commit::CreateDirectory {
            pid,
            dir,
            name,
            label,
        } => {
            put_u8(buf, 5);
            put_u32(buf, pid.0);
            put_u16(buf, dir.0);
            put_str(buf, name);
            put_label(buf, label);
        }
        Commit::DeleteSegment { pid, dir, name } => {
            put_u8(buf, 6);
            put_u32(buf, pid.0);
            put_u16(buf, dir.0);
            put_str(buf, name);
        }
        Commit::SetSegmentAcl {
            pid,
            dir,
            name,
            acl,
        } => {
            put_u8(buf, 7);
            put_u32(buf, pid.0);
            put_u16(buf, dir.0);
            put_str(buf, name);
            put_acl(buf, acl);
        }
        Commit::SetQuota {
            pid,
            dir,
            limit_pages,
        } => {
            put_u8(buf, 8);
            put_u32(buf, pid.0);
            put_u16(buf, dir.0);
            put_u64(buf, *limit_pages);
        }
        Commit::ListDir { pid, dir } => {
            put_u8(buf, 9);
            put_u32(buf, pid.0);
            put_u16(buf, dir.0);
        }
        Commit::Read { pid, seg, offset } => {
            put_u8(buf, 10);
            put_u32(buf, pid.0);
            put_u16(buf, seg.0);
            put_u64(buf, *offset);
        }
        Commit::Write {
            pid,
            seg,
            offset,
            value,
        } => {
            put_u8(buf, 11);
            put_u32(buf, pid.0);
            put_u16(buf, seg.0);
            put_u64(buf, *offset);
            put_u64(buf, *value);
        }
        Commit::Terminate { pid, seg } => {
            put_u8(buf, 12);
            put_u32(buf, pid.0);
            put_u16(buf, seg.0);
        }
        Commit::CallGate { pid, gate, entry } => {
            put_u8(buf, 13);
            put_u32(buf, pid.0);
            put_str(buf, gate);
            put_str(buf, entry);
        }
        Commit::MeteringGet { pid } => {
            put_u8(buf, 14);
            put_u32(buf, pid.0);
        }
        Commit::Audit { who, event } => {
            put_u8(buf, 15);
            match who {
                Some(u) => {
                    put_bool(buf, true);
                    put_user(buf, u);
                }
                None => put_bool(buf, false),
            }
            put_audit_event(buf, event);
        }
        Commit::Tick { times } => {
            put_u8(buf, 16);
            put_u32(buf, *times);
        }
        Commit::Wakeup { daemon } => {
            put_u8(buf, 17);
            put_u32(buf, *daemon);
        }
        Commit::AdmissionEnable { config } => {
            put_u8(buf, 18);
            put_u64(buf, config.ast_soft_cap as u64);
            put_u64(buf, config.audit_cap as u64);
            for p in config.shed_permille {
                put_u32(buf, p);
            }
            match config.deadline_budget {
                Some(c) => {
                    put_bool(buf, true);
                    put_u64(buf, c);
                }
                None => put_bool(buf, false),
            }
        }
        Commit::SetPriority { pid, priority } => {
            put_u8(buf, 19);
            put_u32(buf, pid.0);
            put_u8(buf, priority.index() as u8);
        }
        Commit::ArmPlan { plan } => {
            put_u8(buf, 20);
            put_plan(buf, plan);
        }
        Commit::Disarm => put_u8(buf, 21),
        Commit::CrashPoll => put_u8(buf, 22),
        Commit::Salvage => put_u8(buf, 23),
        Commit::BootCheck => put_u8(buf, 24),
    }
}

fn get_commit(cur: &mut Cursor<'_>) -> Result<Commit, WireError> {
    Ok(match cur.u8()? {
        0 => Commit::CreateProcess {
            user: get_user(cur)?,
            label: get_label(cur)?,
            ring: cur.u8()?,
        },
        1 => Commit::DestroyProcess {
            pid: KProcId(cur.u32()?),
        },
        2 => Commit::BindRoot {
            pid: KProcId(cur.u32()?),
        },
        3 => Commit::Initiate {
            pid: KProcId(cur.u32()?),
            dir: SegNo(cur.u16()?),
            name: cur.str("Commit.name")?,
        },
        4 => Commit::CreateSegment {
            pid: KProcId(cur.u32()?),
            dir: SegNo(cur.u16()?),
            name: cur.str("Commit.name")?,
            acl: get_acl(cur)?,
            brackets: RingBrackets::new(cur.u8()?, cur.u8()?, cur.u8()?),
            label: get_label(cur)?,
        },
        5 => Commit::CreateDirectory {
            pid: KProcId(cur.u32()?),
            dir: SegNo(cur.u16()?),
            name: cur.str("Commit.name")?,
            label: get_label(cur)?,
        },
        6 => Commit::DeleteSegment {
            pid: KProcId(cur.u32()?),
            dir: SegNo(cur.u16()?),
            name: cur.str("Commit.name")?,
        },
        7 => Commit::SetSegmentAcl {
            pid: KProcId(cur.u32()?),
            dir: SegNo(cur.u16()?),
            name: cur.str("Commit.name")?,
            acl: get_acl(cur)?,
        },
        8 => Commit::SetQuota {
            pid: KProcId(cur.u32()?),
            dir: SegNo(cur.u16()?),
            limit_pages: cur.u64()?,
        },
        9 => Commit::ListDir {
            pid: KProcId(cur.u32()?),
            dir: SegNo(cur.u16()?),
        },
        10 => Commit::Read {
            pid: KProcId(cur.u32()?),
            seg: SegNo(cur.u16()?),
            offset: cur.u64()?,
        },
        11 => Commit::Write {
            pid: KProcId(cur.u32()?),
            seg: SegNo(cur.u16()?),
            offset: cur.u64()?,
            value: cur.u64()?,
        },
        12 => Commit::Terminate {
            pid: KProcId(cur.u32()?),
            seg: SegNo(cur.u16()?),
        },
        13 => Commit::CallGate {
            pid: KProcId(cur.u32()?),
            gate: cur.str("Commit.gate")?,
            entry: cur.str("Commit.entry")?,
        },
        14 => Commit::MeteringGet {
            pid: KProcId(cur.u32()?),
        },
        15 => Commit::Audit {
            who: if cur.bool("Commit.who")? {
                Some(get_user(cur)?)
            } else {
                None
            },
            event: get_audit_event(cur)?,
        },
        16 => Commit::Tick { times: cur.u32()? },
        17 => Commit::Wakeup { daemon: cur.u32()? },
        18 => {
            let ast_soft_cap = cur.u64()? as usize;
            let audit_cap = cur.u64()? as usize;
            let mut shed_permille = [0u32; NR_PRIORITIES];
            for p in &mut shed_permille {
                *p = cur.u32()?;
            }
            let deadline_budget = if cur.bool("PressureConfig.deadline_budget")? {
                Some(cur.u64()?)
            } else {
                None
            };
            Commit::AdmissionEnable {
                config: crate::pressure::PressureConfig {
                    ast_soft_cap,
                    audit_cap,
                    shed_permille,
                    deadline_budget,
                },
            }
        }
        19 => {
            let pid = KProcId(cur.u32()?);
            let tag = cur.u8()?;
            let priority = *Priority::ALL.get(tag as usize).ok_or(WireError::BadTag {
                what: "Priority",
                tag,
            })?;
            Commit::SetPriority { pid, priority }
        }
        20 => Commit::ArmPlan {
            plan: get_plan(cur)?,
        },
        21 => Commit::Disarm,
        22 => Commit::CrashPoll,
        23 => Commit::Salvage,
        24 => Commit::BootCheck,
        tag => {
            return Err(WireError::BadTag {
                what: "Commit",
                tag,
            })
        }
    })
}

// ----------------------------------------------------- sealed commits

/// Appends one [`SealedCommit`] (seq, chain, payload) to `buf`. Exposed
/// so the replication frame codec can embed seals without re-framing.
pub fn put_sealed(buf: &mut Vec<u8>, s: &SealedCommit) {
    put_u64(buf, s.seq);
    put_u64(buf, s.chain);
    put_commit(buf, &s.commit);
}

/// Reads one [`SealedCommit`] from `cur`.
pub fn get_sealed(cur: &mut Cursor<'_>) -> Result<SealedCommit, WireError> {
    let seq = cur.u64()?;
    let chain = cur.u64()?;
    let commit = get_commit(cur)?;
    Ok(SealedCommit { seq, chain, commit })
}

// ----------------------------------------------------------- artifacts

/// Encodes a whole [`CommitLog`] — magic, version, base digest, entry
/// count, entries. The byte form carries exactly what
/// [`CommitLog::from_parts`] needs; seals travel verbatim so the chain
/// can be re-verified on the far side.
pub fn encode_commit_log(log: &CommitLog) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&LOG_MAGIC);
    put_u16(&mut buf, WIRE_VERSION);
    put_u64(&mut buf, log.base());
    put_u32(&mut buf, log.entries().len() as u32);
    for s in log.entries() {
        put_sealed(&mut buf, s);
    }
    buf
}

/// Decodes a [`CommitLog`] from its byte form with typed rejection of
/// corrupt, truncated or trailing-garbage input. Wire acceptance is
/// *not* chain acceptance: run [`CommitLog::verify`] on the result to
/// prove the seals, exactly as for any externally supplied log.
pub fn decode_commit_log(bytes: &[u8]) -> Result<CommitLog, WireError> {
    let mut cur = Cursor::new(bytes);
    let magic = cur.take(4)?;
    if magic != LOG_MAGIC {
        return Err(WireError::BadMagic {
            found: magic.try_into().unwrap(),
        });
    }
    let version = cur.u16()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion { found: version });
    }
    let base = cur.u64()?;
    let count = cur.vec_len("CommitLog.entries")?;
    let mut entries = Vec::new();
    for _ in 0..count {
        entries.push(get_sealed(&mut cur)?);
    }
    cur.done()?;
    Ok(CommitLog::from_parts(base, entries))
}

/// Encodes a [`MachineSnapshot`]: magic, version, the genesis *digest*
/// (the recipe itself lives on both ends), position, chain head, the
/// ten-field state digest, and the embedded prefix log.
pub fn encode_snapshot(snap: &MachineSnapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&SNAP_MAGIC);
    put_u16(&mut buf, WIRE_VERSION);
    put_u64(&mut buf, snap.genesis.digest());
    put_u64(&mut buf, snap.upto);
    put_u64(&mut buf, snap.chain_head);
    let d = &snap.digest;
    for v in [
        d.seq,
        d.clock,
        d.audit_records,
        d.audit_digest,
        d.metrics_digest,
        d.census,
        d.processes,
        d.label_digest,
        d.boot_hash,
        d.log_digest,
    ] {
        put_u64(&mut buf, v);
    }
    put_bytes(&mut buf, &encode_commit_log(&snap.prefix));
    buf
}

/// Decodes a [`MachineSnapshot`] against the receiver's own genesis.
/// A snapshot rooted elsewhere is rejected as [`WireError::ForeignGenesis`]
/// before any state is touched; a decoded snapshot still goes through
/// [`restore`](super::replay::restore), whose chain and digest checks
/// catch staleness the byte layer cannot.
pub fn decode_snapshot(bytes: &[u8], expected: &Genesis) -> Result<MachineSnapshot, WireError> {
    let mut cur = Cursor::new(bytes);
    let magic = cur.take(4)?;
    if magic != SNAP_MAGIC {
        return Err(WireError::BadMagic {
            found: magic.try_into().unwrap(),
        });
    }
    let version = cur.u16()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion { found: version });
    }
    let genesis_digest = cur.u64()?;
    if genesis_digest != expected.digest() {
        return Err(WireError::ForeignGenesis {
            expected: expected.digest(),
            found: genesis_digest,
        });
    }
    let upto = cur.u64()?;
    let chain_head = cur.u64()?;
    let mut d = [0u64; 10];
    for v in &mut d {
        *v = cur.u64()?;
    }
    let digest = StateDigest {
        seq: d[0],
        clock: d[1],
        audit_records: d[2],
        audit_digest: d[3],
        metrics_digest: d[4],
        census: d[5],
        processes: d[6],
        label_digest: d[7],
        boot_hash: d[8],
        log_digest: d[9],
    };
    let log_bytes = cur.bytes("MachineSnapshot.prefix")?;
    let prefix = decode_commit_log(log_bytes)?;
    cur.done()?;
    Ok(MachineSnapshot {
        genesis: *expected,
        upto,
        chain_head,
        digest,
        prefix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statemachine::workload::{record_fault_run, WorkloadSpec};
    use crate::statemachine::{reduce, snapshot_at};

    fn recorded_log() -> (Genesis, CommitLog) {
        let genesis = Genesis::kernel_small();
        let run = record_fault_run(&genesis, &WorkloadSpec::faults(3));
        (genesis, run.sm.world().commits.clone())
    }

    #[test]
    fn a_recorded_log_round_trips_and_still_verifies() {
        let (genesis, log) = recorded_log();
        let bytes = encode_commit_log(&log);
        let back = decode_commit_log(&bytes).expect("round trip");
        assert_eq!(back, log);
        back.verify().expect("seals survive the wire");
        let sm = reduce(&genesis, &back).expect("decoded log reduces");
        assert_eq!(sm.world().commits.head(), log.head());
    }

    #[test]
    fn a_snapshot_round_trips_and_still_restores() {
        let (genesis, log) = recorded_log();
        let snap = snapshot_at(&genesis, &log, log.len() / 2).expect("in range");
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes, &genesis).expect("round trip");
        assert_eq!(back.upto, snap.upto);
        assert_eq!(back.chain_head, snap.chain_head);
        assert_eq!(back.digest, snap.digest);
        assert_eq!(back.prefix, snap.prefix);
        let sm = crate::statemachine::restore(&back).expect("decoded snapshot restores");
        assert_eq!(sm.digest(), snap.digest);
    }

    #[test]
    fn truncation_at_every_length_is_rejected_not_panicked() {
        let (genesis, log) = recorded_log();
        let bytes = encode_commit_log(&log);
        for cut in 0..bytes.len() {
            match decode_commit_log(&bytes[..cut]) {
                Err(_) => {}
                Ok(parsed) => {
                    // A cut can only parse if it lands exactly on a
                    // shorter, self-consistent artifact — the count
                    // field forbids that here.
                    panic!("cut at {cut} parsed {} entries", parsed.entries().len());
                }
            }
        }
        let snap = snapshot_at(&genesis, &log, 4).expect("in range");
        let sb = encode_snapshot(&snap);
        for cut in [0, 3, 5, 20, sb.len() / 2, sb.len() - 1] {
            assert!(decode_snapshot(&sb[..cut], &genesis).is_err());
        }
    }

    #[test]
    fn corruption_maps_to_typed_errors() {
        let (genesis, log) = recorded_log();
        let good = encode_commit_log(&log);

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_commit_log(&bad),
            Err(WireError::BadMagic { .. })
        ));

        let mut bad = good.clone();
        bad[4] = 0xff;
        assert!(matches!(
            decode_commit_log(&bad),
            Err(WireError::BadVersion { found: 0xff })
        ));

        // Oversize entry count.
        let mut bad = good.clone();
        bad[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_commit_log(&bad),
            Err(WireError::Oversize { .. })
        ));

        // Trailing garbage after a complete log.
        let mut bad = good.clone();
        bad.push(0);
        assert!(matches!(
            decode_commit_log(&bad),
            Err(WireError::Trailing { extra: 1 })
        ));

        // A snapshot from a foreign genesis is refused by digest.
        let snap = snapshot_at(&genesis, &log, 2).expect("in range");
        let sb = encode_snapshot(&snap);
        let other = Genesis {
            frames: genesis.frames + 1,
            ..genesis
        };
        assert!(matches!(
            decode_snapshot(&sb, &other),
            Err(WireError::ForeignGenesis { .. })
        ));
    }

    #[test]
    fn a_bad_commit_tag_is_rejected() {
        let mut log = CommitLog::new();
        log.seed(7);
        log.append(Commit::Disarm);
        let mut bytes = encode_commit_log(&log);
        let last = bytes.len() - 17; // seq(8) + chain(8) + tag(1) from the end
        bytes[last + 16] = 200;
        assert!(matches!(
            decode_commit_log(&bytes),
            Err(WireError::BadTag {
                what: "Commit",
                tag: 200
            })
        ));
    }
}
