//! Replay, snapshot/restore, and the differential that gates them.
//!
//! [`reduce`] folds a sealed log back into a machine; by construction
//! it re-seals every commit it applies, so a replay that produces a
//! different chain than the input log is itself a typed error — a free
//! nondeterminism tripwire underneath the digest differential.
//! [`snapshot_at`]/[`restore`] derive checkpoint/resume from any log
//! prefix, and [`ReplayMutation`] deliberately breaks the replay path
//! so the harness can prove its own teeth (the E20 mutation arms,
//! mirroring E15's `SalvageMutation`).

use super::commit::{CommitLog, ReplayError};
use super::{Genesis, KernelStateMachine, StateDigest};

/// One divergence between a live boundary digest and its replay.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Mismatch {
    /// The commit boundary at which the digests differ (0 = genesis).
    pub seq: u64,
    /// Which digest field diverged.
    pub field: &'static str,
    /// The live run's value.
    pub live: u64,
    /// The replayed value.
    pub replayed: u64,
}

/// Folds a verified log into a fresh machine: builds the genesis, then
/// applies every commit in order. Each application re-seals the commit
/// into the new machine's log, and the fresh seal must equal the input
/// log's — divergence means the apply path itself is nondeterministic
/// and is reported as [`ReplayError::ChainDivergence`].
pub fn reduce(genesis: &Genesis, log: &CommitLog) -> Result<KernelStateMachine, ReplayError> {
    if log.base() != genesis.digest() {
        return Err(ReplayError::BaseMismatch {
            expected: genesis.digest(),
            found: log.base(),
        });
    }
    log.verify()?;
    let mut sm = genesis.build();
    for sealed in log.entries() {
        sm.apply(&sealed.commit);
        let head = sm.world().commits.head();
        if head != sealed.chain {
            return Err(ReplayError::ChainDivergence {
                seq: sealed.seq,
                expected: sealed.chain,
                found: head,
            });
        }
    }
    Ok(sm)
}

/// The headline E20 check: replays `log` from `genesis` and compares
/// the replayed [`StateDigest`] against the live run's at *every*
/// commit boundary (`live[0]` is the digest before the first commit,
/// `live[k]` the digest after commit `k-1`). Returns every field-level
/// divergence; an honest log replays with zero mismatches.
pub fn replay_differential(
    genesis: &Genesis,
    log: &CommitLog,
    live: &[StateDigest],
) -> Result<Vec<Mismatch>, ReplayError> {
    if live.len() as u64 != log.len() + 1 {
        return Err(ReplayError::Truncated {
            expected: live.len().saturating_sub(1) as u64,
            found: log.len(),
        });
    }
    if log.base() != genesis.digest() {
        return Err(ReplayError::BaseMismatch {
            expected: genesis.digest(),
            found: log.base(),
        });
    }
    log.verify()?;
    let mut sm = genesis.build();
    let mut mismatches = Vec::new();
    let mut compare = |seq: u64, live: &StateDigest, replayed: &StateDigest| {
        for (field, l, r) in live.diff(replayed) {
            mismatches.push(Mismatch {
                seq,
                field,
                live: l,
                replayed: r,
            });
        }
    };
    compare(0, &live[0], &sm.digest());
    for sealed in log.entries() {
        sm.apply(&sealed.commit);
        compare(sealed.seq + 1, &live[sealed.seq as usize + 1], &sm.digest());
    }
    Ok(mismatches)
}

/// A checkpoint derived from a log prefix: the prefix itself plus the
/// position, chain head and state digest it claims to represent. A
/// snapshot is *evidence*, not authority — [`restore`] re-derives the
/// state from the prefix and rejects any claim that does not recompute.
#[derive(Clone, PartialEq, Debug)]
pub struct MachineSnapshot {
    /// The assembly recipe.
    pub genesis: Genesis,
    /// How many commits the snapshot covers.
    pub upto: u64,
    /// The chain head at that prefix.
    pub chain_head: u64,
    /// The state digest at that boundary.
    pub digest: StateDigest,
    /// The commits themselves.
    pub prefix: CommitLog,
}

/// Takes a snapshot at commit boundary `upto` (0 = genesis) by
/// replaying that prefix of `log`.
pub fn snapshot_at(
    genesis: &Genesis,
    log: &CommitLog,
    upto: u64,
) -> Result<MachineSnapshot, ReplayError> {
    if upto > log.len() {
        return Err(ReplayError::Truncated {
            expected: upto,
            found: log.len(),
        });
    }
    let prefix = log.prefix(upto);
    let sm = reduce(genesis, &prefix)?;
    Ok(MachineSnapshot {
        genesis: *genesis,
        upto,
        chain_head: prefix.head(),
        digest: sm.digest(),
        prefix,
    })
}

/// Re-derives a machine from a snapshot, verifying every claim the
/// snapshot makes: the prefix length and chain head must match its
/// position, and the replayed state must reproduce its digest. A stale
/// or mislabeled snapshot fails with [`ReplayError::SnapshotStale`].
pub fn restore(snap: &MachineSnapshot) -> Result<KernelStateMachine, ReplayError> {
    if snap.prefix.len() != snap.upto || snap.prefix.head() != snap.chain_head {
        return Err(ReplayError::SnapshotStale {
            upto: snap.upto,
            expected: snap.chain_head,
            found: snap.prefix.head(),
        });
    }
    let sm = reduce(&snap.genesis, &snap.prefix)?;
    let digest = sm.digest();
    if digest != snap.digest {
        return Err(ReplayError::SnapshotStale {
            upto: snap.upto,
            expected: snap.digest.log_digest,
            found: digest.log_digest,
        });
    }
    Ok(sm)
}

/// Re-snapshots a machine from its own log — the second half of the
/// `snapshot(restore(s)) == s` round-trip property.
pub fn resnapshot(sm: &KernelStateMachine) -> MachineSnapshot {
    let log = &sm.world().commits;
    MachineSnapshot {
        genesis: sm.genesis(),
        upto: log.len(),
        chain_head: log.head(),
        digest: sm.digest(),
        prefix: log.clone(),
    }
}

/// A deliberate defect in the replay path, used to prove the harness
/// has teeth (the E20 mutation check, mirroring E15's
/// `SalvageMutation`). The log mutations re-seal covertly, so they
/// pass [`CommitLog::verify`] — only the boundary differential can
/// catch them. The snapshot mutation forges a checkpoint's position —
/// [`restore`]'s recomputation must reject it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReplayMutation {
    /// Replay as shipped.
    None,
    /// Drop one commit from the middle of the log and re-seal.
    SkipCommit {
        /// Which commit to drop.
        nth: u64,
    },
    /// Swap two adjacent commits and re-seal.
    ReorderPair {
        /// The first of the swapped pair.
        first: u64,
    },
    /// Label a snapshot of prefix `upto - 1` as covering `upto`.
    StaleSnapshot {
        /// The claimed (forged) position.
        upto: u64,
    },
}

impl ReplayMutation {
    /// Applies a *log* mutation, returning the covertly re-sealed log
    /// (and whether the mutation actually changed anything).
    /// `StaleSnapshot` does not mutate logs — see
    /// [`ReplayMutation::forge_snapshot`].
    pub fn mutate_log(&self, log: &CommitLog) -> (CommitLog, bool) {
        match *self {
            ReplayMutation::None | ReplayMutation::StaleSnapshot { .. } => (log.clone(), false),
            ReplayMutation::SkipCommit { nth } => {
                if nth >= log.len() {
                    return (log.clone(), false);
                }
                (
                    log.resealed(|commits| {
                        commits.remove(nth as usize);
                    }),
                    true,
                )
            }
            ReplayMutation::ReorderPair { first } => {
                if first + 1 >= log.len() {
                    return (log.clone(), false);
                }
                let distinct =
                    log.get(first).map(|s| &s.commit) != log.get(first + 1).map(|s| &s.commit);
                (
                    log.resealed(|commits| {
                        commits.swap(first as usize, first as usize + 1);
                    }),
                    distinct,
                )
            }
        }
    }

    /// Forges a stale checkpoint: the prefix and chain head of `upto`
    /// (so the cheap position checks pass) carrying the state digest of
    /// `upto - 1`. Only [`restore`]'s full recomputation catches it.
    /// Only meaningful for [`ReplayMutation::StaleSnapshot`].
    pub fn forge_snapshot(
        &self,
        genesis: &Genesis,
        log: &CommitLog,
    ) -> Result<Option<MachineSnapshot>, ReplayError> {
        let ReplayMutation::StaleSnapshot { upto } = *self else {
            return Ok(None);
        };
        if upto == 0 || upto > log.len() {
            return Ok(None);
        }
        let stale = snapshot_at(genesis, log, upto - 1)?;
        let prefix = log.prefix(upto);
        Ok(Some(MachineSnapshot {
            genesis: *genesis,
            upto,
            chain_head: prefix.head(),
            digest: stale.digest,
            prefix,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::super::workload::{record_fault_run, WorkloadSpec};
    use super::*;
    use mks_hw::FaultPlan;

    fn small_run() -> (Genesis, super::super::workload::RecordedRun) {
        let genesis = Genesis::kernel_small();
        let spec = WorkloadSpec {
            seed: 0x51,
            ops: 6,
            plan: FaultPlan::generate(0x51),
            overload: false,
        };
        (genesis, record_fault_run(&genesis, &spec))
    }

    #[test]
    fn reduce_reproduces_the_live_machine() {
        let (genesis, run) = small_run();
        let replayed = reduce(&genesis, &run.sm.world().commits).expect("honest log reduces");
        assert_eq!(replayed.digest(), run.sm.digest());
        let mismatches = replay_differential(&genesis, &run.sm.world().commits, &run.boundaries)
            .expect("honest log replays");
        assert_eq!(mismatches, Vec::new());
    }

    #[test]
    fn reduce_rejects_a_foreign_base() {
        let (genesis, run) = small_run();
        let log = &run.sm.world().commits;
        let foreign = CommitLog::from_parts(log.base() ^ 1, log.entries().to_vec());
        assert_eq!(
            reduce(&genesis, &foreign).err(),
            Some(ReplayError::BaseMismatch {
                expected: genesis.digest(),
                found: genesis.digest() ^ 1,
            })
        );
    }

    #[test]
    fn differential_rejects_short_boundary_lists() {
        let (genesis, run) = small_run();
        let log = &run.sm.world().commits;
        let short = &run.boundaries[..run.boundaries.len() - 1];
        assert!(matches!(
            replay_differential(&genesis, log, short),
            Err(ReplayError::Truncated { .. })
        ));
    }

    #[test]
    fn snapshot_restore_round_trips_at_a_midpoint() {
        let (genesis, run) = small_run();
        let log = &run.sm.world().commits;
        let upto = log.len() / 2;
        let snap = snapshot_at(&genesis, log, upto).expect("prefix snapshots");
        let sm = restore(&snap).expect("snapshot restores");
        assert_eq!(sm.digest(), snap.digest);
        assert_eq!(resnapshot(&sm), snap);
    }

    #[test]
    fn snapshot_past_the_log_is_typed() {
        let (genesis, run) = small_run();
        let log = &run.sm.world().commits;
        assert!(matches!(
            snapshot_at(&genesis, log, log.len() + 1),
            Err(ReplayError::Truncated { .. })
        ));
    }

    #[test]
    fn skip_commit_arm_is_caught_by_the_differential() {
        let (genesis, run) = small_run();
        let log = &run.sm.world().commits;
        let (mutated, applied) = ReplayMutation::SkipCommit { nth: log.len() / 2 }.mutate_log(log);
        assert!(applied);
        mutated.verify().expect("the arm is covert");
        // The mutated log is one commit short: either the length check or
        // the boundary digests must refuse it.
        match replay_differential(&genesis, &mutated, &run.boundaries) {
            Err(ReplayError::Truncated { .. }) => {}
            Ok(mismatches) => assert!(!mismatches.is_empty()),
            Err(e) => panic!("unexpected rejection {e:?}"),
        }
    }

    #[test]
    fn reorder_pair_arm_is_caught_by_the_differential() {
        let (genesis, run) = small_run();
        let log = &run.sm.world().commits;
        // Find an adjacent pair of distinct commits (always exists: the
        // recovery tail is heterogeneous).
        let first = (0..log.len() - 1)
            .find(|&i| ReplayMutation::ReorderPair { first: i }.mutate_log(log).1)
            .expect("some adjacent pair is distinct");
        let (mutated, _) = ReplayMutation::ReorderPair { first }.mutate_log(log);
        mutated.verify().expect("the arm is covert");
        let mismatches = replay_differential(&genesis, &mutated, &run.boundaries)
            .expect("same length, so the differential itself runs");
        assert!(
            !mismatches.is_empty(),
            "reorder must move some boundary digest"
        );
    }

    #[test]
    fn stale_snapshot_arm_is_caught_by_restore() {
        let (genesis, run) = small_run();
        let log = &run.sm.world().commits;
        let upto = log.len() / 2;
        let forged = ReplayMutation::StaleSnapshot { upto }
            .forge_snapshot(&genesis, log)
            .expect("forgery builds")
            .expect("upto is in range");
        assert_eq!(forged.upto, upto, "the forgery claims the right position");
        assert!(matches!(
            restore(&forged),
            Err(ReplayError::SnapshotStale { .. })
        ));
    }

    /// Pinned regression: the differential's reorder arm once panicked
    /// the replayer — swapping `CreateProcess`/`BindRoot` put a
    /// dangling pid in front of the process table and `dispatch` hit
    /// the world's kernel-internal `expect`. A chain-valid log is
    /// still external data: a dangling acting pid must be a typed
    /// refusal, applied and sealed like any other verdict.
    #[test]
    fn dangling_acting_pid_refuses_instead_of_panicking() {
        let genesis = Genesis::kernel_small();
        let mut sm = genesis.build();
        let out = sm.apply(&super::super::Commit::BindRoot {
            pid: crate::world::KProcId(77),
        });
        assert_eq!(
            out,
            super::super::Outcome::Refused("NoSuchProcess(KProcId(77))".into())
        );
        // The refusal sealed and the machine is still live.
        assert_eq!(sm.world().commits.len(), 1);
        assert_eq!(sm.digest().processes, 0);
    }

    #[test]
    fn none_arm_changes_nothing() {
        let (_, run) = small_run();
        let log = &run.sm.world().commits;
        let (same, applied) = ReplayMutation::None.mutate_log(log);
        assert!(!applied);
        assert_eq!(&same, log);
    }
}
