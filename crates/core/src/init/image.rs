//! The memory-image start: initialize once, load forever after.
//!
//! The factory (which may be an ordinary user process of a *previous*
//! system — no privilege needed) runs the same logic as the bootstrap and
//! serializes the resulting [`InitState`] to a checksummed word image on
//! the system tape. A start then consists of exactly two privileged
//! operations: **load** the bit pattern and **verify** its checksum. The
//! certification story collapses from "audit twenty-odd ordered privileged
//! steps" to "audit a loader and a checksum" — and loads are bit-identical,
//! so E11's determinism check is exact hash equality.

use mks_hw::{Clock, Word};

use crate::config::KernelConfig;
use crate::init::{state_hash, target_state, InitState, InitTrace};

/// A system-tape image: a word vector plus its checksum word.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemoryImage {
    /// Serialized initialized-state words.
    pub words: Vec<Word>,
    /// FNV checksum over `words`.
    pub checksum: Word,
}

/// Image-load failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ImageError {
    /// Checksum mismatch: the tape is damaged or tampered with.
    BadChecksum,
    /// The image is structurally malformed.
    Malformed,
}

impl core::fmt::Display for ImageError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ImageError::BadChecksum => write!(f, "image checksum mismatch"),
            ImageError::Malformed => write!(f, "image malformed"),
        }
    }
}

impl std::error::Error for ImageError {}

fn checksum(words: &[Word]) -> Word {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        h ^= w.raw();
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Word::new(h)
}

fn push_str(words: &mut Vec<Word>, s: &str) {
    words.push(Word::new(s.len() as u64));
    for b in s.bytes() {
        words.push(Word::new(u64::from(b)));
    }
}

fn read_str(words: &[Word], pos: &mut usize) -> Result<String, ImageError> {
    let len = words.get(*pos).ok_or(ImageError::Malformed)?.raw() as usize;
    *pos += 1;
    if len > 4096 {
        return Err(ImageError::Malformed);
    }
    let mut bytes = Vec::with_capacity(len);
    for _ in 0..len {
        bytes.push(words.get(*pos).ok_or(ImageError::Malformed)?.raw() as u8);
        *pos += 1;
    }
    String::from_utf8(bytes).map_err(|_| ImageError::Malformed)
}

/// The factory: runs the initialization logic (unprivileged — it builds a
/// *description*, not live protection state) and serializes the result.
pub fn build_image(cfg: &KernelConfig) -> MemoryImage {
    let state = target_state(cfg);
    let mut words = Vec::new();
    words.push(Word::new(u64::from(state.gate_entries)));
    words.push(Word::new(state.daemons.len() as u64));
    for d in &state.daemons {
        push_str(&mut words, d);
    }
    words.push(Word::new(state.supervisor_segments.len() as u64));
    for s in &state.supervisor_segments {
        push_str(&mut words, s);
    }
    words.push(Word::new(u64::from(state.mls_on)));
    words.push(Word::new(state.root_uid));
    let checksum = checksum(&words);
    MemoryImage { words, checksum }
}

/// Cycles to stream the image into memory (per word) and verify.
const LOAD_COST_PER_WORD: u64 = 2;

/// The start-time loader: the *only* privileged initialization code in
/// this pattern.
pub fn load_image(img: &MemoryImage, clock: &Clock) -> Result<(InitState, InitTrace), ImageError> {
    let t0 = clock.now();
    clock.advance(LOAD_COST_PER_WORD * img.words.len() as u64);
    if checksum(&img.words) != img.checksum {
        return Err(ImageError::BadChecksum);
    }
    let w = &img.words;
    let mut pos = 0usize;
    let gate_entries = w.get(pos).ok_or(ImageError::Malformed)?.raw() as u32;
    pos += 1;
    let nr_daemons = w.get(pos).ok_or(ImageError::Malformed)?.raw() as usize;
    pos += 1;
    if nr_daemons > 64 {
        return Err(ImageError::Malformed);
    }
    let mut daemons = Vec::with_capacity(nr_daemons);
    for _ in 0..nr_daemons {
        daemons.push(read_str(w, &mut pos)?);
    }
    let nr_segs = w.get(pos).ok_or(ImageError::Malformed)?.raw() as usize;
    pos += 1;
    if nr_segs > 64 {
        return Err(ImageError::Malformed);
    }
    let mut supervisor_segments = Vec::with_capacity(nr_segs);
    for _ in 0..nr_segs {
        supervisor_segments.push(read_str(w, &mut pos)?);
    }
    let mls_on = w.get(pos).ok_or(ImageError::Malformed)?.raw() != 0;
    pos += 1;
    let root_uid = w.get(pos).ok_or(ImageError::Malformed)?.raw();
    let state = InitState {
        gate_entries,
        daemons,
        supervisor_segments,
        mls_on,
        root_uid,
    };
    let trace = InitTrace {
        steps: vec!["load_image", "verify_checksum"],
        privileged_ops: 2,
        cycles: clock.now() - t0,
    };
    Ok((state, trace))
}

/// Convenience for experiments: hash of the state a load produces.
pub fn load_hash(img: &MemoryImage) -> Result<u64, ImageError> {
    let clock = Clock::new();
    let (state, _) = load_image(img, &clock)?;
    Ok(state_hash(&state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::bootstrap::bootstrap;

    #[test]
    fn image_load_reaches_the_same_state_as_bootstrap() {
        for cfg in [KernelConfig::legacy(), KernelConfig::kernel()] {
            let clock = Clock::new();
            let (boot_state, boot_trace) = bootstrap(&cfg, &clock);
            let img = build_image(&cfg);
            let (img_state, img_trace) = load_image(&img, &clock).unwrap();
            assert_eq!(boot_state, img_state);
            assert_eq!(img_trace.privileged_ops, 2);
            assert!(boot_trace.privileged_ops >= 20);
        }
    }

    #[test]
    fn loads_are_bit_identical() {
        let img = build_image(&KernelConfig::kernel());
        let h1 = load_hash(&img).unwrap();
        let h2 = load_hash(&img).unwrap();
        assert_eq!(h1, h2);
    }

    #[test]
    fn tampered_images_are_rejected() {
        let mut img = build_image(&KernelConfig::kernel());
        img.words[0] = Word::new(img.words[0].raw() ^ 1);
        let clock = Clock::new();
        assert_eq!(load_image(&img, &clock), Err(ImageError::BadChecksum));
    }

    #[test]
    fn truncated_images_are_malformed_not_undefined() {
        let mut img = build_image(&KernelConfig::kernel());
        img.words.truncate(3);
        img.checksum = super::checksum(&img.words);
        let clock = Clock::new();
        assert!(matches!(
            load_image(&img, &clock),
            Err(ImageError::Malformed)
        ));
    }

    #[test]
    fn factory_needs_no_privilege_loader_needs_two_ops() {
        // The factory is a pure function of the configuration — the test
        // *is* the demonstration: no machine, no clock, no world needed.
        let img = build_image(&KernelConfig::kernel());
        assert!(!img.words.is_empty());
        let clock = Clock::new();
        let (_, trace) = load_image(&img, &clock).unwrap();
        assert_eq!(trace.steps, vec!["load_image", "verify_checksum"]);
    }
}
