//! The legacy bootstrap: rebuild the world from parts, privileged, at
//! every start.
//!
//! Each step below models one phase of the historical "bootload" — reading
//! the separate pieces from the system tape and initializing them *in
//! order*, inside the supervisor, with the machine in a half-built state
//! the whole time. Every step is certification surface because every step
//! runs privileged and a mistake in any of them hands out wrongly
//! initialized protection state.

use mks_hw::Clock;

use crate::config::{IoConfig, KernelConfig};
use crate::init::{target_state, InitState, InitTrace};

/// Cycles charged per privileged bootstrap step (tape read + build).
const STEP_COST: u64 = 12_000;

/// Runs the full bootstrap for `cfg`, charging `clock`.
pub fn bootstrap(cfg: &KernelConfig, clock: &Clock) -> (InitState, InitTrace) {
    let mut steps: Vec<&'static str> = Vec::new();
    let mut run = |name: &'static str| {
        steps.push(name);
        clock.advance(STEP_COST);
    };
    // Phase 1: bare machine.
    run("read_bootload_tape_label");
    run("size_primary_memory");
    run("build_fault_vector");
    run("build_interrupt_vector");
    run("wire_bootstrap_segments");
    // Phase 2: the memory hierarchy.
    run("init_page_tables");
    run("init_bulk_store_map");
    run("init_disk_map");
    run("build_free_core_list");
    // Phase 3: processes.
    run("build_traffic_controller");
    run("create_idle_processes");
    run("create_page_control_daemons");
    // Phase 4: the file system.
    run("salvage_check_root");
    run("activate_root_directory");
    run("load_supervisor_segments");
    // Phase 5: gates and services.
    run("build_gate_tables");
    run("set_ring_brackets_on_gates");
    match cfg.io {
        IoConfig::DeviceZoo => {
            run("init_tty_dim");
            run("init_tape_dim");
            run("init_card_dims");
            run("init_printer_dim");
        }
        IoConfig::NetworkOnly => run("init_network_attachment"),
    }
    if cfg.mls {
        run("arm_mls_layer");
    }
    run("start_answering_service");
    let privileged_ops = steps.len() as u32; // every bootstrap step is privileged
    (
        target_state(cfg),
        InitTrace {
            steps,
            privileged_ops,
            cycles: STEP_COST * privileged_ops as u64,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_reaches_the_target_state() {
        let cfg = KernelConfig::legacy();
        let clock = Clock::new();
        let (state, trace) = bootstrap(&cfg, &clock);
        assert_eq!(state, target_state(&cfg));
        assert!(
            trace.steps.len() >= 20,
            "legacy bootstrap is a long privileged sequence"
        );
        assert_eq!(trace.privileged_ops as usize, trace.steps.len());
        assert!(clock.now() > 0);
    }

    #[test]
    fn device_zoo_adds_bootstrap_steps() {
        let clock = Clock::new();
        let (_, zoo) = bootstrap(&KernelConfig::legacy(), &clock);
        let (_, net) = bootstrap(&KernelConfig::kernel(), &clock);
        assert!(zoo.steps.len() > net.steps.len());
        assert!(zoo.steps.contains(&"init_tape_dim"));
        assert!(net.steps.contains(&"init_network_attachment"));
    }
}
