//! System initialization, both ways.
//!
//! "A removal project under investigation is changing most of system
//! initialization from executing inside the supervisor each time the system
//! is started to executing once in a user environment of a previous system.
//! The idea is to produce on a system tape a bit pattern which, when loaded
//! into memory, manifests a fully initialized system, rather than letting
//! the system bootstrap itself in a complex way each time ... One pattern
//! of operation may be much simpler to certify than the other."
//!
//! * [`bootstrap`] — the legacy pattern: a long sequence of privileged,
//!   order-dependent steps run at every start;
//! * [`image`] — the removal: the same steps run **once**, in user mode, in
//!   a factory environment; the result is serialized (with a checksum)
//!   onto the system tape, and a start is just *load + verify* — two
//!   privileged operations, bit-identical every time (experiment E11).

pub mod bootstrap;
pub mod image;

use mks_hw::Cycles;

use crate::config::KernelConfig;

/// The state a fully initialized system presents (a deliberately explicit,
/// serializable digest of the kernel tables the boot process must build).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InitState {
    /// Gate entries installed.
    pub gate_entries: u32,
    /// Dedicated kernel daemons created (page control, interrupts…).
    pub daemons: Vec<String>,
    /// Supervisor segments wired into every address space.
    pub supervisor_segments: Vec<String>,
    /// Whether the MLS layer is armed.
    pub mls_on: bool,
    /// Root directory uid.
    pub root_uid: u64,
}

/// How a start went.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InitTrace {
    /// Ordered names of the steps executed at start time.
    pub steps: Vec<&'static str>,
    /// Steps that required supervisor privilege at start time.
    pub privileged_ops: u32,
    /// Simulated time the start took.
    pub cycles: Cycles,
}

/// A stable 64-bit digest of an [`InitState`] (FNV-1a over its
/// serialization), used for the determinism check: two loads of the same
/// image must produce equal hashes.
pub fn state_hash(s: &InitState) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&s.gate_entries.to_be_bytes());
    for d in &s.daemons {
        eat(d.as_bytes());
        eat(b"\0");
    }
    for seg in &s.supervisor_segments {
        eat(seg.as_bytes());
        eat(b"\0");
    }
    eat(&[u8::from(s.mls_on)]);
    eat(&s.root_uid.to_be_bytes());
    h
}

/// The target state for a configuration (what *any* correct start must
/// produce).
pub fn target_state(cfg: &KernelConfig) -> InitState {
    let gates = crate::gatetable::GateTable::build(cfg);
    let mut daemons = vec!["core_freer".to_string(), "bulk_freer".to_string()];
    if cfg.io == crate::config::IoConfig::NetworkOnly {
        daemons.push("net_handler".to_string());
    } else {
        for d in [
            "tty_handler",
            "tape_handler",
            "card_handler",
            "printer_handler",
        ] {
            daemons.push(d.to_string());
        }
    }
    let supervisor_segments = vec![
        "descriptor_seg_template".to_string(),
        "fault_intercept".to_string(),
        "hcs_".to_string(),
        "hphcs_".to_string(),
        "page_control".to_string(),
        "traffic_control".to_string(),
    ];
    InitState {
        gate_entries: gates.total_entries() as u32,
        daemons,
        supervisor_segments,
        mls_on: cfg.mls,
        root_uid: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_hash_is_stable_and_sensitive() {
        let cfg = KernelConfig::kernel();
        let a = target_state(&cfg);
        let b = target_state(&cfg);
        assert_eq!(state_hash(&a), state_hash(&b));
        let mut c = target_state(&cfg);
        c.gate_entries += 1;
        assert_ne!(state_hash(&a), state_hash(&c));
        let mut d = target_state(&cfg);
        d.daemons.push("rogue".into());
        assert_ne!(state_hash(&a), state_hash(&d));
    }

    #[test]
    fn target_state_tracks_configuration() {
        let legacy = target_state(&KernelConfig::legacy());
        let kernel = target_state(&KernelConfig::kernel());
        assert!(legacy.gate_entries > kernel.gate_entries);
        assert!(legacy.daemons.contains(&"tty_handler".to_string()));
        assert!(kernel.daemons.contains(&"net_handler".to_string()));
        assert!(kernel.mls_on && !legacy.mls_on);
    }
}
