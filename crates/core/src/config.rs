//! System configuration: which of the paper's projects are applied.
//!
//! Each removal/simplification/partition the paper describes is a switch
//! here, so experiments can compare any intermediate configuration — e.g.
//! "legacy plus linker removal only" for E1 — not just the two endpoints.

/// Where the dynamic linker runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkerConfig {
    /// In the supervisor, ring 0 (legacy).
    InKernel,
    /// In the faulting ring (Janson's removal).
    UserRing,
}

/// Where reference names / pathname resolution live.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NamingConfig {
    /// Monolithic KST: paths, refnames, wdirs in ring 0 (legacy).
    InKernel,
    /// Split KST: kernel keeps segno↔uid only (Bratt's removal).
    UserRing,
}

/// External I/O arrangement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoConfig {
    /// Five device-interface modules in the kernel (legacy).
    DeviceZoo,
    /// One network attachment; devices are user-ring services.
    NetworkOnly,
}

/// Page-control design.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PagingConfig {
    /// The sequential cascade in the faulting process (legacy).
    Sequential,
    /// Dedicated freeing processes (the simplification).
    Parallel,
}

/// Replacement policy placement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolicyConfig {
    /// Policy code in ring 0 with full mechanism powers (legacy).
    Monolithic,
    /// Policy in ring 1, mechanism gates in ring 0 (the partition).
    Split,
}

/// Authentication/login placement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoginConfig {
    /// Privileged in-kernel login machinery (legacy).
    InKernel,
    /// Login as ordinary protected-subsystem entry (the removal).
    Unified,
}

/// System initialization style.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InitConfig {
    /// Re-bootstrap from parts at every start (legacy).
    Bootstrap,
    /// Load a pre-initialized memory image (the removal).
    MemoryImage,
}

/// A full system configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KernelConfig {
    /// Linker placement.
    pub linker: LinkerConfig,
    /// Naming placement.
    pub naming: NamingConfig,
    /// I/O arrangement.
    pub io: IoConfig,
    /// Page-control design.
    pub paging: PagingConfig,
    /// Policy placement.
    pub policy: PolicyConfig,
    /// Login placement.
    pub login: LoginConfig,
    /// Initialization style.
    pub init: InitConfig,
    /// MLS enforcement at the bottom layer (both configurations can run
    /// it; the legacy system predates the Mitre model, so its baseline is
    /// off).
    pub mls: bool,
    /// Revocation ("setfaults"): an ACL change retracts the outstanding
    /// descriptors of every process bound to the segment. The legacy
    /// supervisor granted SDWs and never looked back.
    pub revocation: bool,
}

impl KernelConfig {
    /// The pre-project Multics supervisor.
    pub fn legacy() -> KernelConfig {
        KernelConfig {
            linker: LinkerConfig::InKernel,
            naming: NamingConfig::InKernel,
            io: IoConfig::DeviceZoo,
            paging: PagingConfig::Sequential,
            policy: PolicyConfig::Monolithic,
            login: LoginConfig::InKernel,
            init: InitConfig::Bootstrap,
            mls: false,
            revocation: false,
        }
    }

    /// The paper's target security kernel.
    pub fn kernel() -> KernelConfig {
        KernelConfig {
            linker: LinkerConfig::UserRing,
            naming: NamingConfig::UserRing,
            io: IoConfig::NetworkOnly,
            paging: PagingConfig::Parallel,
            policy: PolicyConfig::Split,
            login: LoginConfig::Unified,
            init: InitConfig::MemoryImage,
            mls: true,
            revocation: true,
        }
    }

    /// Legacy with only the linker removal applied (experiment E1).
    pub fn legacy_linker_removed() -> KernelConfig {
        KernelConfig {
            linker: LinkerConfig::UserRing,
            ..KernelConfig::legacy()
        }
    }

    /// Legacy with linker *and* naming removals (experiment E3).
    pub fn legacy_both_removals() -> KernelConfig {
        KernelConfig {
            linker: LinkerConfig::UserRing,
            naming: NamingConfig::UserRing,
            ..KernelConfig::legacy()
        }
    }

    /// Short display name for reports.
    pub fn name(&self) -> &'static str {
        if *self == KernelConfig::legacy() {
            "legacy supervisor"
        } else if *self == KernelConfig::kernel() {
            "security kernel"
        } else if *self == KernelConfig::legacy_linker_removed() {
            "legacy + linker removal"
        } else if *self == KernelConfig::legacy_both_removals() {
            "legacy + linker & naming removals"
        } else {
            "custom configuration"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_differ_in_every_dimension() {
        let l = KernelConfig::legacy();
        let k = KernelConfig::kernel();
        assert_ne!(l.linker, k.linker);
        assert_ne!(l.naming, k.naming);
        assert_ne!(l.io, k.io);
        assert_ne!(l.paging, k.paging);
        assert_ne!(l.policy, k.policy);
        assert_ne!(l.login, k.login);
        assert_ne!(l.init, k.init);
        assert!(k.mls && !l.mls);
        assert!(k.revocation && !l.revocation);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(KernelConfig::legacy().name(), "legacy supervisor");
        assert_eq!(KernelConfig::kernel().name(), "security kernel");
        let custom = KernelConfig {
            mls: true,
            ..KernelConfig::legacy()
        };
        assert_eq!(custom.name(), "custom configuration");
    }
}
