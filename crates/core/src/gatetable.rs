//! The supervisor's gate census.
//!
//! Gates are the kernel's entire call surface: every way a user-ring
//! program can ask ring 0 (or ring 1) to do something. The census below is
//! modeled on the documented Multics surface — `hcs_` (the user-callable
//! hardcore gate) and `hphcs_` (the privileged gate available to system
//! processes only) — with the gate population determined by the
//! configuration: the legacy supervisor carries the linker's ten entries
//! and the naming machinery's twenty-three; the kernel configuration sheds
//! them (keeping four segno-based naming entries) and swaps the
//! twenty-three device entries for the network attachment's five.
//!
//! Experiments: E1 (linker entries ≈ 10% of the legacy surface), E3
//! (linker + naming ≈ ⅓ of user-available entries), E8 (I/O entries), E14
//! (overall surface).

use mks_hw::gate::{rings, GateDef};
use mks_hw::ring::USER_RING;

use crate::config::{IoConfig, KernelConfig, LinkerConfig, NamingConfig};

/// File-system gates common to every configuration: branch manipulation,
/// status, ACLs, quotas, attributes.
pub const FS_GATES: &[&str] = &[
    "append_branch",
    "append_branchx",
    "create_branch_",
    "delete_branch_",
    "chname_file",
    "status_",
    "status_long",
    "list_dir",
    "list_acl",
    "add_acl_entries",
    "delete_acl_entries",
    "replace_acl",
    "add_dir_acl_entries",
    "delete_dir_acl_entries",
    "replace_dir_acl",
    "set_max_length",
    "truncate_seg",
    "set_safety_switch",
    "get_safety_switch",
    "get_author",
    "get_max_length",
    "quota_get",
    "quota_move",
    "set_ring_brackets",
    "get_ring_brackets",
    "get_user_effmode",
    "set_dates",
    "get_dates",
    "add_name_",
    "delete_name_",
];

/// Legacy naming/address-space gates: pathname resolution, reference
/// names, working directories — all in ring 0 before Bratt's removal.
pub const NAMING_GATES_LEGACY: &[&str] = &[
    "initiate",
    "initiate_count",
    "initiate_refname",
    "initiate_search_rules",
    "terminate_file",
    "terminate_name",
    "terminate_noname",
    "terminate_seg",
    "terminate_refname",
    "terminate_single_refname",
    "make_seg",
    "make_ptr_path",
    "fs_get_path_name",
    "fs_get_ref_name",
    "fs_get_seg_ptr",
    "fs_search_get_wdir",
    "fs_search_set_wdir",
    "get_wdir",
    "set_wdir",
    "list_refnames",
    "reserve_segno",
    "release_segno",
    "get_count_refnames",
];

/// Post-removal naming gates: the segment-number interface.
pub const NAMING_GATES_KERNEL: &[&str] = &[
    "initiate_segno",
    "initiate_dir_segno",
    "terminate_segno",
    "get_uid_segno",
];

/// Process and IPC gates (both configurations).
pub const PROC_GATES: &[&str] = &[
    "block",
    "wakeup",
    "get_usage",
    "set_timer",
    "cpu_time_and_paging",
    "get_process_id",
    "create_event_channel",
    "delete_event_channel",
];

/// Miscellaneous supervisor services (both configurations).
/// `metering_get` is the flight-recorder snapshot gate: a read-only view of
/// the kernel's counters, histograms and recent spans. User rings may read
/// the metering; nothing on this entry can reset or rewrite it.
pub const MISC_GATES: &[&str] = &[
    "get_time",
    "get_system_info",
    "set_alarm",
    "signal_set",
    "level_get",
    "level_set",
    "metering_get",
];

/// Privileged (`hphcs_`) entries, callable only from ring 1 system
/// processes — not part of the *user-available* census.
pub const PRIVILEGED_GATES: &[&str] = &[
    "shutdown",
    "reconfigure",
    "set_kst_attributes",
    "admin_gate_acl",
    "wire_process",
    "set_proc_required",
    "syserr",
    "installation_parms",
];

/// The assembled gate tables of a configuration.
#[derive(Debug)]
pub struct GateTable {
    /// All gate segments.
    pub gates: Vec<GateDef>,
}

impl GateTable {
    /// Builds the census for `cfg`.
    pub fn build(cfg: &KernelConfig) -> GateTable {
        let mut hcs: Vec<&'static str> = Vec::new();
        hcs.extend_from_slice(FS_GATES);
        match cfg.naming {
            NamingConfig::InKernel => hcs.extend_from_slice(NAMING_GATES_LEGACY),
            NamingConfig::UserRing => hcs.extend_from_slice(NAMING_GATES_KERNEL),
        }
        hcs.extend_from_slice(PROC_GATES);
        hcs.extend_from_slice(MISC_GATES);
        if cfg.linker == LinkerConfig::InKernel {
            hcs.extend_from_slice(mks_linker::kernel_cfg::LEGACY_LINKER_GATES);
        }
        let io_entries: Vec<&'static str> = match cfg.io {
            IoConfig::DeviceZoo => mks_io::devices::legacy_zoo()
                .iter()
                .flat_map(|d| d.module_info().entries)
                .collect(),
            IoConfig::NetworkOnly => mks_io::network::NetworkAttachment::module_info().entries,
        };
        hcs.extend(io_entries);
        let gates = vec![
            GateDef::new("hcs_", rings::KERNEL, rings::OUTER, hcs),
            GateDef::new(
                "hphcs_",
                rings::KERNEL,
                rings::SUPERVISOR,
                PRIVILEGED_GATES.to_vec(),
            ),
        ];
        GateTable { gates }
    }

    /// Total entry points across all gate segments.
    pub fn total_entries(&self) -> usize {
        self.gates.iter().map(|g| g.entries.len()).sum()
    }

    /// Entry points callable from ordinary user rings.
    pub fn user_available_entries(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| g.callable_from >= USER_RING)
            .map(|g| g.entries.len())
            .sum()
    }

    /// Entries on the user gate whose names are in `set` (census helper).
    pub fn count_matching(&self, set: &[&str]) -> usize {
        self.gates
            .iter()
            .filter(|g| g.user_callable())
            .flat_map(|g| g.entries.iter())
            .filter(|e| set.contains(e))
            .count()
    }

    /// Looks up a gate segment by name.
    pub fn gate(&self, name: &str) -> Option<&GateDef> {
        self.gates.iter().find(|g| g.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_surface_is_about_one_hundred_user_entries() {
        let t = GateTable::build(&KernelConfig::legacy());
        assert_eq!(t.user_available_entries(), 101);
        assert_eq!(t.total_entries(), 109);
    }

    #[test]
    fn linker_removal_cuts_ten_percent_of_gates() {
        let legacy = GateTable::build(&KernelConfig::legacy());
        let removed = GateTable::build(&KernelConfig::legacy_linker_removed());
        let cut = legacy.user_available_entries() - removed.user_available_entries();
        let pct = 100.0 * cut as f64 / legacy.user_available_entries() as f64;
        assert!((9.0..=11.0).contains(&pct), "linker cut {pct}%");
    }

    #[test]
    fn both_removals_cut_about_one_third() {
        let legacy = GateTable::build(&KernelConfig::legacy());
        let removed = GateTable::build(&KernelConfig::legacy_both_removals());
        let cut = legacy.user_available_entries() - removed.user_available_entries();
        let frac = cut as f64 / legacy.user_available_entries() as f64;
        assert!((0.28..=0.38).contains(&frac), "removals cut {frac}");
    }

    #[test]
    fn kernel_config_has_the_small_surface() {
        let t = GateTable::build(&KernelConfig::kernel());
        assert_eq!(t.user_available_entries(), 54);
        assert!(t.gate("hcs_").unwrap().entry("metering_get").is_some());
        assert!(t.gate("hcs_").unwrap().entry("initiate_segno").is_some());
        assert!(t.gate("hcs_").unwrap().entry("link_snap").is_none());
        assert!(t.gate("hcs_").unwrap().entry("tty_read").is_none());
        assert!(t.gate("hcs_").unwrap().entry("net_read").is_some());
    }

    #[test]
    fn privileged_gate_is_not_user_available() {
        let t = GateTable::build(&KernelConfig::kernel());
        let hphcs = t.gate("hphcs_").unwrap();
        assert!(!hphcs.user_callable());
        assert_eq!(
            t.total_entries() - t.user_available_entries(),
            hphcs.entries.len()
        );
    }

    #[test]
    fn no_duplicate_entry_names_on_a_gate() {
        for cfg in [KernelConfig::legacy(), KernelConfig::kernel()] {
            let t = GateTable::build(&cfg);
            for g in &t.gates {
                let mut names = g.entries.clone();
                names.sort_unstable();
                let before = names.len();
                names.dedup();
                assert_eq!(names.len(), before, "{}: duplicate entries", g.name);
            }
        }
    }
}
