//! The penetration suite: Linde-style attacks against both configurations.
//!
//! "Penetration exercises involving a large number of different systems
//! have shown that, in all general-purpose systems confronted, a wily user
//! can construct a program that can obtain unauthorized access to
//! information stored within the system." Experiment E12 runs this catalog
//! — one attack per historical flaw class — against the legacy supervisor
//! and the security kernel, and tabulates who breaches where.
//!
//! Outcome semantics:
//! * [`AttackOutcome::Breach`] — the attack obtained unauthorized release,
//!   modification, or an information oracle;
//! * [`AttackOutcome::Denied`] — refused with an error that names the
//!   refusal;
//! * [`AttackOutcome::DeniedUninformative`] — refused *and* the attacker
//!   learned nothing (the kernel's preferred answer);
//! * [`AttackOutcome::AuthorizedDenialOnly`] — the "attack" only denies
//!   service within bounds the victim authorized (e.g. quota).

use mks_fs::{Acl, AclMode, UserId};
use mks_hw::{AccessMode, CpuModel, Fault, Machine, RingBrackets, Sdw, SegNo, Word};
use mks_linker::kernel_cfg::LegacyLinkOutcome;
use mks_linker::object::ObjectSegment;
use mks_linker::user_cfg::UserLinkOutcome;
use mks_mls::{Compartments, Label, Level};

use crate::auth::AuthError;
use crate::config::{KernelConfig, LinkerConfig, NamingConfig};
use crate::monitor::{AccessError, Monitor};
use crate::world::{admin_user, KProcId, KstState, System};

/// What an attack achieved.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AttackOutcome {
    /// Unauthorized release/modification/oracle obtained.
    Breach(String),
    /// Refused.
    Denied,
    /// Refused without revealing anything.
    DeniedUninformative,
    /// Only authorized denial of service achieved.
    AuthorizedDenialOnly,
}

impl AttackOutcome {
    /// True if the system lost.
    pub fn is_breach(&self) -> bool {
        matches!(self, AttackOutcome::Breach(_))
    }
}

/// One catalog row.
#[derive(Clone, Debug)]
pub struct AttackReport {
    /// Attack name.
    pub name: &'static str,
    /// Flaw class exercised.
    pub class: &'static str,
    /// What happened.
    pub outcome: AttackOutcome,
}

fn attacker() -> UserId {
    UserId::new("Mallory", "Guest", "a")
}

fn victim() -> UserId {
    UserId::new("Jones", "CSR", "a")
}

/// Builds a system with an open `>udd`, a victim process owning a private
/// segment `>udd>secrets`, and an attacker process.
fn arena(cfg: KernelConfig) -> (System, KProcId, KProcId, SegNo) {
    let mut sys = System::new(cfg);
    let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
    let root = bind_root(&mut sys, admin);
    Monitor::create_directory(&mut sys.world, admin, root, "udd", Label::BOTTOM).unwrap();
    sys.world
        .fs
        .set_dir_acl_entry(
            mks_fs::FileSystem::ROOT,
            "udd",
            &admin_user(),
            "*.*.*",
            mks_fs::DirMode::SMA,
        )
        .unwrap();
    let vic = sys.world.create_process(victim(), Label::BOTTOM, 4);
    let atk = sys.world.create_process(attacker(), Label::BOTTOM, 4);
    let root_v = bind_root(&mut sys, vic);
    let udd_v = Monitor::initiate_dir(&mut sys.world, vic, root_v, "udd");
    let secret_seg = Monitor::create_segment(
        &mut sys.world,
        vic,
        udd_v,
        "secrets",
        Acl::of("Jones.CSR.a", AclMode::RW),
        RingBrackets::new(4, 4, 4),
        Label::BOTTOM,
    )
    .unwrap();
    Monitor::write(&mut sys.world, vic, secret_seg, 0, Word::new(0o31337)).unwrap();
    (sys, vic, atk, secret_seg)
}

fn bind_root(sys: &mut System, pid: KProcId) -> SegNo {
    let (_, proc) = sys.world.fs_and_proc_mut(pid);
    match &mut proc.kst {
        KstState::Kernel(k) => mks_fs::kst::bind_root(k),
        KstState::Legacy(k) => k.core.bind(mks_fs::FileSystem::ROOT, true),
    }
}

fn udd_of(sys: &mut System, pid: KProcId) -> SegNo {
    let root = bind_root(sys, pid);
    Monitor::initiate_dir(&mut sys.world, pid, root, "udd")
}

/// 1/2. The linker attacks: feed the linkage-fault service a malstructured
/// object image / a wild link index.
fn linker_attack(cfg: KernelConfig, wild_index: bool) -> AttackOutcome {
    let mut env = NoEnv;
    let rules = mks_linker::SearchRules::new(vec![]);
    let caller = ObjectSegment::new(
        "trojan",
        10,
        vec![("main".into(), 0)],
        vec![("lib_".into(), "entry".into())],
    );
    let mut image = caller.encode();
    let link_index = if wild_index { 4096 } else { 0 };
    if !wild_index {
        image[4] = Word::new(1 << 20); // forged entry count
    }
    match cfg.linker {
        LinkerConfig::InKernel => {
            let mut l = mks_linker::kernel_cfg::LegacyLinker::new();
            match l.handle_linkage_fault(&mut env, &rules, 4, &image, link_index) {
                LegacyLinkOutcome::SupervisorBreach { kind, .. } => {
                    AttackOutcome::Breach(format!("supervisor malfunction: {kind}"))
                }
                _ => AttackOutcome::Denied,
            }
        }
        LinkerConfig::UserRing => {
            let mut l = mks_linker::user_cfg::UserLinker::new();
            match l.handle_linkage_fault(&mut env, &rules, 4, &image, link_index) {
                UserLinkOutcome::BadObject(_) => AttackOutcome::Denied,
                UserLinkOutcome::Snapped(_) => {
                    AttackOutcome::Breach("snapped a forged link".into())
                }
                UserLinkOutcome::Error(_) => AttackOutcome::Denied,
            }
        }
    }
}

/// A linking environment with nothing in it (the attacks fail earlier).
struct NoEnv;

impl mks_linker::LinkEnv for NoEnv {
    fn initiate_segment(&mut self, _dir: SegNo, _name: &str) -> Option<SegNo> {
        None
    }

    fn entry_offset(&mut self, _segno: SegNo, _entry: &str) -> Option<usize> {
        None
    }
}

/// 3. Read another user's ACL-protected segment.
fn acl_bypass(cfg: KernelConfig) -> AttackOutcome {
    let (mut sys, _vic, atk, _seg) = arena(cfg);
    let udd_a = udd_of(&mut sys, atk);
    match Monitor::initiate(&mut sys.world, atk, udd_a, "secrets") {
        Ok(segno) => match Monitor::read(&mut sys.world, atk, segno, 0) {
            Ok(w) if w == Word::new(0o31337) => {
                AttackOutcome::Breach("read the victim's data".into())
            }
            _ => AttackOutcome::Denied,
        },
        Err(AccessError::NoInfo) => AttackOutcome::DeniedUninformative,
        Err(_) => AttackOutcome::Denied,
    }
}

/// 4. Probe for the existence of directories the attacker cannot see.
fn existence_probe(cfg: KernelConfig) -> AttackOutcome {
    let (mut sys, _vic, atk, _seg) = arena(cfg);
    match cfg.naming {
        NamingConfig::InKernel => {
            // Legacy initiate distinguishes "no entry" from other errors:
            // compare the answers for an existing vs missing directory.
            let real = Monitor::initiate_path(&mut sys.world, atk, ">udd>secrets>x");
            let fake = Monitor::initiate_path(&mut sys.world, atk, ">udd>ghost>x");
            if real != fake {
                AttackOutcome::Breach("error codes form an existence oracle".into())
            } else {
                AttackOutcome::Denied
            }
        }
        NamingConfig::UserRing => {
            let real = Monitor::initiate_path(&mut sys.world, atk, ">udd>secrets>x");
            let fake = Monitor::initiate_path(&mut sys.world, atk, ">udd>ghost>x");
            if real == fake {
                AttackOutcome::DeniedUninformative
            } else {
                AttackOutcome::Breach("answers differ".into())
            }
        }
    }
}

/// 5/6. Cross-label flows. In the legacy configuration there *is* no
/// mandatory layer: a permissive ACL is the only line, and labels do
/// nothing — the attack succeeds by construction.
fn mls_flow(cfg: KernelConfig, read_up: bool) -> AttackOutcome {
    let mut sys = System::new(cfg);
    let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
    let root = bind_root(&mut sys, admin);
    Monitor::create_directory(&mut sys.world, admin, root, "udd", Label::BOTTOM).unwrap();
    sys.world
        .fs
        .set_dir_acl_entry(
            mks_fs::FileSystem::ROOT,
            "udd",
            &admin_user(),
            "*.*.*",
            mks_fs::DirMode::SA,
        )
        .unwrap();
    let secret = Label::new(Level::SECRET, Compartments::of(&[1]));
    // Upgraded directory: the BOTTOM admin creates a SECRET-labeled vault.
    let udd_admin = udd_of(&mut sys, admin);
    Monitor::create_directory(&mut sys.world, admin, udd_admin, "vault", secret).unwrap();
    let udd_uid = sys
        .world
        .fs
        .peek_branch(mks_fs::FileSystem::ROOT, "udd")
        .unwrap()
        .uid;
    sys.world
        .fs
        .set_dir_acl_entry(
            udd_uid,
            "vault",
            &admin_user(),
            "*.*.*",
            mks_fs::DirMode::SA,
        )
        .unwrap();
    let spid = sys.world.create_process(victim(), secret, 4);
    let udd_s = udd_of(&mut sys, spid);
    let vault_s = Monitor::initiate_dir(&mut sys.world, spid, udd_s, "vault");
    let seg = Monitor::create_segment(
        &mut sys.world,
        spid,
        vault_s,
        "dossier",
        Acl::of("*.*.*", AclMode::RW), // ACL wide open: only labels protect
        RingBrackets::new(4, 4, 4),
        secret,
    )
    .unwrap();
    Monitor::write(&mut sys.world, spid, seg, 0, Word::new(0o4242)).unwrap();
    let low = sys.world.create_process(attacker(), Label::BOTTOM, 4);
    let udd_l = udd_of(&mut sys, low);
    if read_up {
        let vault_l = Monitor::initiate_dir(&mut sys.world, low, udd_l, "vault");
        match Monitor::initiate(&mut sys.world, low, vault_l, "dossier") {
            Ok(s) => match Monitor::read(&mut sys.world, low, s, 0) {
                Ok(w) if w == Word::new(0o4242) => {
                    AttackOutcome::Breach("read up across labels".into())
                }
                _ => AttackOutcome::Denied,
            },
            Err(_) => AttackOutcome::DeniedUninformative,
        }
    } else {
        // Write down: the SECRET process tries to modulate a BOTTOM
        // segment (a signaling channel to the low attacker).
        let pub_seg = Monitor::create_segment(
            &mut sys.world,
            low,
            udd_l,
            "public",
            Acl::of("*.*.*", AclMode::RW),
            RingBrackets::new(4, 4, 4),
            Label::BOTTOM,
        )
        .unwrap();
        let _ = pub_seg;
        let pub_s = match Monitor::initiate(&mut sys.world, spid, udd_s, "public") {
            Ok(s) => s,
            Err(_) => return AttackOutcome::Denied,
        };
        match Monitor::write(&mut sys.world, spid, pub_s, 0, Word::new(1)) {
            Ok(()) => AttackOutcome::Breach("wrote down across labels".into()),
            Err(_) => AttackOutcome::Denied,
        }
    }
}

/// 7/8/9. Hardware ring attacks (configuration-independent: the 6180
/// enforces these in both configurations).
fn ring_attack(which: u8) -> AttackOutcome {
    let mut m = Machine::new(CpuModel::H6180, 4);
    let astx = m.ast.activate(mks_hw::SegUid(50), mks_hw::PAGE_WORDS);
    m.ast.entry_mut(astx).pt.ptw_mut(0).state = mks_hw::ast::PageState::InCore(mks_hw::FrameId(0));
    let mut sp = mks_hw::AddrSpace::new();
    match which {
        // Call a gate at a non-entry offset.
        7 => {
            sp.set(SegNo(1), Sdw::gate(astx, RingBrackets::gate(0, 5), 3));
            match m.call(&sp, 4, SegNo(1), 200) {
                Err(Fault::NotAGate { .. }) => AttackOutcome::Denied,
                Ok(_) => AttackOutcome::Breach("entered kernel at arbitrary offset".into()),
                Err(_) => AttackOutcome::Denied,
            }
        }
        // Call from beyond the call bracket.
        8 => {
            sp.set(SegNo(1), Sdw::gate(astx, RingBrackets::gate(0, 3), 3));
            match m.call(&sp, 5, SegNo(1), 0) {
                Err(Fault::RingViolation { .. }) => AttackOutcome::Denied,
                Ok(_) => AttackOutcome::Breach("called inside from beyond r3".into()),
                Err(_) => AttackOutcome::Denied,
            }
        }
        // Write a ring-0 data segment from ring 4.
        _ => {
            sp.set(
                SegNo(1),
                Sdw::plain(astx, AccessMode::RW, RingBrackets::private_to(0)),
            );
            match m.write(&sp, 4, SegNo(1), 0, Word::new(1)) {
                Err(Fault::RingViolation { .. }) => AttackOutcome::Denied,
                Ok(()) => AttackOutcome::Breach("wrote kernel data from ring 4".into()),
                Err(_) => AttackOutcome::Denied,
            }
        }
    }
}

/// 10. Storage residue: delete a secret segment, then try to recover its
///     contents from freshly allocated storage.
fn residue(cfg: KernelConfig) -> AttackOutcome {
    let (mut sys, vic, atk, seg) = arena(cfg);
    // Victim deletes the segment (monitor-level: terminate + fs delete +
    // storage scrub via segment control).
    let uid = match &sys.world.proc(vic).kst {
        KstState::Kernel(k) => k.entry(seg).unwrap().uid,
        KstState::Legacy(k) => k.core.entry(seg).unwrap().uid,
    };
    Monitor::terminate(&mut sys.world, vic, seg).unwrap();
    mks_vm::SegControl::delete(&mut sys.world.vm, uid).unwrap();
    let (dir, _) = sys.world.fs.find_by_uid(uid).expect("branch still listed");
    sys.world
        .fs
        .delete_branch(dir, "secrets", &victim())
        .unwrap();
    // Attacker allocates a fresh segment and scans it for the plaintext.
    let udd_a = udd_of(&mut sys, atk);
    let fresh = Monitor::create_segment(
        &mut sys.world,
        atk,
        udd_a,
        "scavenger",
        Acl::of("Mallory.Guest.a", AclMode::RW),
        RingBrackets::new(4, 4, 4),
        Label::BOTTOM,
    )
    .unwrap();
    for off in 0..mks_hw::PAGE_WORDS {
        if Monitor::read(&mut sys.world, atk, fresh, off).unwrap() == Word::new(0o31337) {
            return AttackOutcome::Breach("recovered residue from freed storage".into());
        }
    }
    AttackOutcome::Denied
}

/// 11. Password guessing with an existence probe.
fn password_attack(cfg: KernelConfig) -> AttackOutcome {
    let mut sys = System::new(cfg);
    sys.world
        .auth
        .register(&victim(), "correct horse", Label::BOTTOM);
    // Existence oracle?
    let known = sys
        .world
        .auth
        .authenticate(&victim(), "guess-1", Label::BOTTOM);
    let ghost =
        sys.world
            .auth
            .authenticate(&UserId::new("Nobody", "X", "a"), "guess-1", Label::BOTTOM);
    if known != ghost {
        return AttackOutcome::Breach("login errors reveal which accounts exist".into());
    }
    // Brute force until lockout.
    for i in 0..100 {
        match sys
            .world
            .auth
            .authenticate(&victim(), &format!("guess-{i}"), Label::BOTTOM)
        {
            Err(AuthError::Locked) => return AttackOutcome::Denied,
            Err(AuthError::BadCredentials) => {}
            Err(AuthError::ClearanceExceeded) => {}
            Ok(_) => return AttackOutcome::Breach("guessed the password".into()),
        }
    }
    AttackOutcome::Breach("unlimited guessing permitted".into())
}

/// 12. Notify an event channel the attacker has no write access to.
fn ipc_attack(cfg: KernelConfig) -> AttackOutcome {
    let (mut sys, _vic, atk, _seg) = arena(cfg);
    // The victim's mailbox is (secrets, word 0); the attacker never even
    // obtains a segno for it, and a forged segno fails the probe.
    let forged = SegNo(200);
    match Monitor::may_notify_channel(&mut sys.world, atk, forged, 0) {
        Ok(()) => AttackOutcome::Breach("notified without write access".into()),
        Err(_) => AttackOutcome::Denied,
    }
}

/// 13. Exhaust a shared directory's quota.
fn quota_dos(_cfg: KernelConfig) -> AttackOutcome {
    // Quota is a per-subtree bound: the attacker can exhaust only cells he
    // can charge, and the overflow error is an authorized denial.
    let mut cell = mks_fs::QuotaCell::with_limit(8);
    for _ in 0..8 {
        cell.charge(1).unwrap();
    }
    match cell.charge(1) {
        Err(_) => AttackOutcome::AuthorizedDenialOnly,
        Ok(()) => AttackOutcome::Breach("quota not enforced".into()),
    }
}

/// 14. Plant a reference name so an inner-ring subsystem links to the
///     attacker's code.
fn refname_plant(cfg: KernelConfig) -> AttackOutcome {
    match cfg.naming {
        NamingConfig::InKernel => {
            // The legacy gate accepts a caller-chosen ring number with no
            // validation: ring-4 code binds into ring 1's table.
            let (mut sys, vic, _atk, seg) = arena(cfg);
            let (_, proc) = sys.world.fs_and_proc_mut(vic);
            let KstState::Legacy(kst) = &mut proc.kst else {
                unreachable!()
            };
            kst.set_refname(1, "sqrt_", seg).unwrap(); // attacker-controlled call
            match kst.refname(1, "sqrt_") {
                Ok(s) if s == seg => AttackOutcome::Breach(
                    "ring-4 call bound a reference name in ring 1's table".into(),
                ),
                _ => AttackOutcome::Denied,
            }
        }
        NamingConfig::UserRing => {
            // Post-removal: reference names are per-ring private state of
            // the linker; a ring-4 bind lands in ring 4's table only.
            let mut rn = mks_linker::RefNameManager::new();
            rn.bind(4, "sqrt_", SegNo(200));
            if rn.lookup(1, "sqrt_").is_some() {
                AttackOutcome::Breach("bind leaked across rings".into())
            } else {
                AttackOutcome::DeniedUninformative
            }
        }
    }
}

/// 15. Retain access after revocation: the victim removes the attacker
///     from an ACL; does the attacker's already-granted descriptor die?
fn revocation_gap(cfg: KernelConfig) -> AttackOutcome {
    let mut sys = System::new(cfg);
    let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
    let root = bind_root(&mut sys, admin);
    Monitor::create_directory(&mut sys.world, admin, root, "udd", Label::BOTTOM).unwrap();
    sys.world
        .fs
        .set_dir_acl_entry(
            mks_fs::FileSystem::ROOT,
            "udd",
            &admin_user(),
            "*.*.*",
            mks_fs::DirMode::SMA,
        )
        .unwrap();
    let vic = sys.world.create_process(victim(), Label::BOTTOM, 4);
    let atk = sys.world.create_process(attacker(), Label::BOTTOM, 4);
    let udd_v = udd_of(&mut sys, vic);
    let mut acl = Acl::of("Jones.CSR.a", AclMode::RW);
    acl.add("Mallory.Guest.a", AclMode::R); // granted… for now
    Monitor::create_segment(
        &mut sys.world,
        vic,
        udd_v,
        "minutes",
        acl,
        RingBrackets::new(4, 4, 4),
        Label::BOTTOM,
    )
    .unwrap();
    let udd_a = udd_of(&mut sys, atk);
    let seg_a = Monitor::initiate(&mut sys.world, atk, udd_a, "minutes").expect("granted");
    // The victim revokes Mallory and then writes something sensitive.
    Monitor::set_segment_acl(
        &mut sys.world,
        vic,
        udd_v,
        "minutes",
        Acl::of("Jones.CSR.a", AclMode::RW),
    )
    .unwrap();
    let seg_v = Monitor::initiate(&mut sys.world, vic, udd_v, "minutes").unwrap();
    Monitor::write(&mut sys.world, vic, seg_v, 0, Word::new(0o52525)).unwrap();
    match Monitor::read(&mut sys.world, atk, seg_a, 0) {
        Ok(w) if w == Word::new(0o52525) => {
            AttackOutcome::Breach("stale descriptor survives ACL revocation".into())
        }
        Ok(_) => AttackOutcome::Denied,
        Err(_) => AttackOutcome::Denied,
    }
}

/// Runs the whole catalog against `cfg`.
pub fn run_catalog(cfg: KernelConfig) -> Vec<AttackReport> {
    vec![
        AttackReport {
            name: "malformed object segment to linker",
            class: "argument validation",
            outcome: linker_attack(cfg, false),
        },
        AttackReport {
            name: "wild link index to linker",
            class: "argument validation",
            outcome: linker_attack(cfg, true),
        },
        AttackReport {
            name: "read another user's segment",
            class: "discretionary control",
            outcome: acl_bypass(cfg),
        },
        AttackReport {
            name: "probe directory existence",
            class: "existence oracle",
            outcome: existence_probe(cfg),
        },
        AttackReport {
            name: "read up across labels",
            class: "mandatory policy",
            outcome: mls_flow(cfg, true),
        },
        AttackReport {
            name: "write down across labels",
            class: "mandatory policy",
            outcome: mls_flow(cfg, false),
        },
        AttackReport {
            name: "enter gate at non-entry offset",
            class: "hardware rings",
            outcome: ring_attack(7),
        },
        AttackReport {
            name: "call gate from beyond r3",
            class: "hardware rings",
            outcome: ring_attack(8),
        },
        AttackReport {
            name: "write ring-0 data from ring 4",
            class: "hardware rings",
            outcome: ring_attack(9),
        },
        AttackReport {
            name: "recover residue of deleted segment",
            class: "storage residue",
            outcome: residue(cfg),
        },
        AttackReport {
            name: "password guessing + account probe",
            class: "authentication",
            outcome: password_attack(cfg),
        },
        AttackReport {
            name: "notify channel without write access",
            class: "ipc control",
            outcome: ipc_attack(cfg),
        },
        AttackReport {
            name: "exhaust shared quota",
            class: "denial of service",
            outcome: quota_dos(cfg),
        },
        AttackReport {
            name: "plant cross-ring reference name",
            class: "naming",
            outcome: refname_plant(cfg),
        },
        AttackReport {
            name: "retain access after ACL revocation",
            class: "revocation",
            outcome: revocation_gap(cfg),
        },
    ]
}

/// Number of breaches in a report set.
pub fn breaches(reports: &[AttackReport]) -> usize {
    reports.iter().filter(|r| r.outcome.is_breach()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_legacy_supervisor_falls_to_the_catalog() {
        let reports = run_catalog(KernelConfig::legacy());
        assert_eq!(reports.len(), 15);
        let b = breaches(&reports);
        assert!(b >= 6, "expected several breaches on legacy, got {b}");
        // The linker attack in particular must succeed there.
        assert!(reports[0].outcome.is_breach());
    }

    #[test]
    fn the_security_kernel_resists_every_attack() {
        let reports = run_catalog(KernelConfig::kernel());
        assert_eq!(breaches(&reports), 0, "{reports:#?}");
        // And the only "win" is an authorized denial.
        assert!(reports
            .iter()
            .any(|r| r.outcome == AttackOutcome::AuthorizedDenialOnly));
    }

    #[test]
    fn hardware_attacks_fail_in_both_configurations() {
        for which in [7, 8, 9] {
            assert!(!ring_attack(which).is_breach());
        }
    }

    #[test]
    fn intermediate_configurations_shrink_the_breach_count() {
        let legacy = breaches(&run_catalog(KernelConfig::legacy()));
        let linker_fixed = breaches(&run_catalog(KernelConfig::legacy_linker_removed()));
        let both = breaches(&run_catalog(KernelConfig::legacy_both_removals()));
        assert!(linker_fixed < legacy);
        assert!(both <= linker_fixed);
    }
}
