//! Protected subsystems — and login as a special case of entering one.
//!
//! A protected subsystem is a set of procedures and data that executes in
//! an inner ring of a user's process and can be entered only through its
//! declared gates (the mechanism users get for building their own
//! mutually-suspicious programs, and the paper's tool for containing
//! borrowed trojan horses).
//!
//! The paper's removal idea: "the exploration of a recently-realized
//! equivalence between the mechanics of entering a protected subsystem and
//! the mechanics of creating a new process in response to a user's log in.
//! The goal is to make a single mechanism do both tasks, with the result
//! that the large collection of privileged, protected code used to
//! authenticate and log in users would become non-privileged code."
//!
//! [`login`] implements both arrangements: in the legacy configuration the
//! whole answering service (greeting, credential check, accounting,
//! process build-out) runs privileged; in the unified configuration the
//! answering service is an ordinary subsystem and exactly **one**
//! privileged operation remains — the `create_process` gate that mints the
//! process with kernel-verified attributes.

use mks_fs::UserId;
use mks_hw::RingNo;
use mks_mls::Label;

use crate::auth::AuthError;
use crate::config::LoginConfig;
use crate::world::{KProcId, KernelWorld};

/// A protected-subsystem definition.
#[derive(Clone, Debug)]
pub struct SubsystemDef {
    /// Subsystem name.
    pub name: &'static str,
    /// Ring its procedures execute in.
    pub ring: RingNo,
    /// Declared entry points.
    pub entries: Vec<&'static str>,
}

/// An entry token: proof the caller came through a declared gate; dropping
/// it models returning outward.
#[derive(Debug)]
pub struct SubsystemEntry {
    /// The entered subsystem.
    pub subsystem: &'static str,
    /// Entry point used.
    pub entry: &'static str,
    /// Ring execution continues in.
    pub ring: RingNo,
    /// The caller's ring, restored on return.
    pub caller_ring: RingNo,
}

/// Subsystem-entry failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EntryError {
    /// The named entry is not declared.
    NoSuchEntry,
    /// The caller's ring is inside the subsystem's ring (outward call).
    OutwardEntry,
}

/// Checks and performs a subsystem entry for a process in `caller_ring`.
pub fn enter(
    def: &SubsystemDef,
    caller_ring: RingNo,
    entry: &str,
) -> Result<SubsystemEntry, EntryError> {
    let Some(e) = def.entries.iter().find(|e| **e == entry) else {
        return Err(EntryError::NoSuchEntry);
    };
    if caller_ring < def.ring {
        return Err(EntryError::OutwardEntry);
    }
    Ok(SubsystemEntry {
        subsystem: def.name,
        entry: e,
        ring: def.ring,
        caller_ring,
    })
}

/// The answering service, defined as a subsystem. In the unified
/// configuration this is literally what login enters; in the legacy
/// configuration the same functions are a privileged kernel module.
pub fn answering_service() -> SubsystemDef {
    SubsystemDef {
        name: "answering_service",
        ring: 4,
        entries: vec!["login", "logout", "new_password"],
    }
}

/// Result of a successful login.
#[derive(Debug)]
pub struct LoginOutcome {
    /// The created process.
    pub pid: KProcId,
    /// Privileged operations the login path performed — the removal's
    /// metric: legacy ≈ the whole path, unified = 1.
    pub privileged_ops: u32,
}

/// Login failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoginError {
    /// Authentication failed (uninformative, as [`crate::auth`]).
    Auth(AuthError),
    /// Subsystem-entry failure (unified configuration only).
    Entry(EntryError),
}

/// Authenticates `user` and creates a process at `label` in `ring`.
pub fn login(
    world: &mut KernelWorld,
    user: &UserId,
    password: &str,
    label: Label,
    ring: RingNo,
) -> Result<LoginOutcome, LoginError> {
    match world.cfg.login {
        LoginConfig::InKernel => {
            // Legacy: every step below executes with supervisor privilege.
            let mut privileged_ops = 0;
            privileged_ops += 1; // greet / allocate terminal channel
            let granted = {
                let r = world.auth.authenticate(user, password, label);
                let at = world.vm.machine.clock.now();
                world.log.append(
                    at,
                    Some(user.clone()),
                    crate::syslog::AuditEvent::Login { success: r.is_ok() },
                );
                r.map_err(LoginError::Auth)?
            };
            privileged_ops += 1; // credential check
            privileged_ops += 1; // accounting entry
            privileged_ops += 1; // build process directory
            privileged_ops += 1; // build descriptor segment
            let pid = world.create_process(user.clone(), granted, ring);
            privileged_ops += 1; // create_process proper
            privileged_ops += 1; // attach terminal to process
            privileged_ops += 1; // start command environment
            Ok(LoginOutcome {
                pid,
                privileged_ops,
            })
        }
        LoginConfig::Unified => {
            // Unified: the caller enters the answering-service subsystem
            // (unprivileged), which authenticates in user-ring code and
            // performs exactly one privileged call.
            let svc = answering_service();
            let _token = enter(&svc, 4, "login").map_err(LoginError::Entry)?;
            let granted = {
                let r = world.auth.authenticate(user, password, label); // ring 4
                let at = world.vm.machine.clock.now();
                world.log.append(
                    at,
                    Some(user.clone()),
                    crate::syslog::AuditEvent::Login { success: r.is_ok() },
                );
                r.map_err(LoginError::Auth)?
            };
            let pid = world.create_process(user.clone(), granted, ring); // the one gate
            Ok(LoginOutcome {
                pid,
                privileged_ops: 1,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelConfig;
    use crate::world::System;
    use mks_mls::{Compartments, Level};

    fn jones() -> UserId {
        UserId::new("Jones", "CSR", "a")
    }

    fn secret() -> Label {
        Label::new(Level::SECRET, Compartments::NONE)
    }

    #[test]
    fn subsystem_entry_enforces_declared_gates() {
        let svc = answering_service();
        assert!(enter(&svc, 4, "login").is_ok());
        assert!(matches!(
            enter(&svc, 4, "backdoor"),
            Err(EntryError::NoSuchEntry)
        ));
        // An inner-ring caller "entering" an outer subsystem is an outward
        // call — refused.
        let inner = SubsystemDef {
            name: "db",
            ring: 2,
            entries: vec!["query"],
        };
        assert!(matches!(
            enter(&inner, 1, "query"),
            Err(EntryError::OutwardEntry)
        ));
        assert!(enter(&inner, 4, "query").is_ok());
    }

    #[test]
    fn login_works_in_both_arrangements() {
        for cfg in [KernelConfig::legacy(), KernelConfig::kernel()] {
            let mut sys = System::new(cfg);
            sys.world.auth.register(&jones(), "moonshot", secret());
            let out = login(&mut sys.world, &jones(), "moonshot", Label::BOTTOM, 4).unwrap();
            assert_eq!(sys.world.proc(out.pid).user, jones());
            assert_eq!(sys.world.proc(out.pid).label, Label::BOTTOM);
        }
    }

    #[test]
    fn unification_collapses_privileged_ops_to_one() {
        let mut legacy = System::new(KernelConfig::legacy());
        legacy.world.auth.register(&jones(), "pw", secret());
        let l = login(&mut legacy.world, &jones(), "pw", Label::BOTTOM, 4).unwrap();

        let mut kernel = System::new(KernelConfig::kernel());
        kernel.world.auth.register(&jones(), "pw", secret());
        let k = login(&mut kernel.world, &jones(), "pw", Label::BOTTOM, 4).unwrap();

        assert!(
            l.privileged_ops >= 8,
            "legacy login is privileged throughout"
        );
        assert_eq!(
            k.privileged_ops, 1,
            "unified login keeps one privileged gate"
        );
    }

    #[test]
    fn bad_credentials_create_no_process() {
        let mut sys = System::new(KernelConfig::kernel());
        sys.world.auth.register(&jones(), "right", secret());
        let before = sys.world.nr_processes();
        let err = login(&mut sys.world, &jones(), "wrong", Label::BOTTOM, 4).unwrap_err();
        assert!(matches!(err, LoginError::Auth(AuthError::BadCredentials)));
        assert_eq!(sys.world.nr_processes(), before);
    }

    #[test]
    fn clearance_is_enforced_at_login() {
        let mut sys = System::new(KernelConfig::kernel());
        sys.world.auth.register(&jones(), "pw", Label::BOTTOM);
        let err = login(&mut sys.world, &jones(), "pw", secret(), 4).unwrap_err();
        assert!(matches!(
            err,
            LoginError::Auth(AuthError::ClearanceExceeded)
        ));
    }
}
