//! The simulated replication link — hostile by construction.
//!
//! Every frame send consults the shared fault injector
//! ([`mks_hw::InjectorHandle`]) at the replication site classes, so a
//! seeded [`FaultPlan`](mks_hw::FaultPlan) deterministically drops,
//! duplicates, reorders and delays frames, and partitions one replica
//! off the link for a bounded window. Delivery is by simulated tick:
//! frames due at or before `now` arrive in `(deliver_at, send_seq)`
//! order, so the whole protocol run is a pure function of the genesis,
//! the workload seed and the fault plan.

use mks_hw::{InjectKind, InjectorHandle};

use super::frame::Frame;

/// Link-level accounting, exposed for experiments and tests.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LinkStats {
    /// Frames submitted to the link.
    pub sent: u64,
    /// Frames handed to a receiver.
    pub delivered: u64,
    /// Frames dropped by a `ReplDrop` fault.
    pub dropped: u64,
    /// Frames enqueued twice by a `ReplDup` fault.
    pub duplicated: u64,
    /// Frames held back by a `ReplReorder` fault.
    pub reordered: u64,
    /// Frames given extra latency by a `ReplDelay` fault.
    pub delayed: u64,
    /// Frames eaten by an active partition window.
    pub partition_drops: u64,
}

/// One frame in flight.
#[derive(Clone, Debug)]
struct InFlight {
    deliver_at: u64,
    seq: u64,
    to: u32,
    bytes: Vec<u8>,
}

/// The link proper: an injector-mediated delay queue.
#[derive(Debug)]
pub struct Link {
    inject: InjectorHandle,
    replicas: u32,
    queue: Vec<InFlight>,
    next_seq: u64,
    /// An active partition: `(isolated replica, open until tick)`.
    partition: Option<(u32, u64)>,
    stats: LinkStats,
}

impl Link {
    /// A link between `replicas` endpoints, consulting `inject`.
    pub fn new(inject: InjectorHandle, replicas: u32) -> Link {
        Link {
            inject,
            replicas,
            queue: Vec::new(),
            next_seq: 0,
            partition: None,
            stats: LinkStats::default(),
        }
    }

    /// Accounting so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// The active partition, if one is open at `now`.
    pub fn partitioned(&self, now: u64) -> Option<u32> {
        match self.partition {
            Some((iso, until)) if until > now => Some(iso),
            _ => None,
        }
    }

    /// Submits `frame` at tick `now`. The injector is consulted at each
    /// replication site class; an unlucky frame is dropped, duplicated,
    /// reordered (held so later frames overtake it), delayed, or eaten
    /// by a partition window opened by `ReplPartition`.
    pub fn send(&mut self, now: u64, frame: &Frame) {
        self.stats.sent += 1;
        if let Some(detail) = self.inject.fires(InjectKind::ReplPartition) {
            let iso = (detail % u64::from(self.replicas)) as u32;
            self.partition = Some((iso, now + 4 + (detail / 7) % 24));
        }
        if let Some(iso) = self.partitioned(now) {
            if frame.from == iso || frame.to == iso {
                self.stats.partition_drops += 1;
                return;
            }
        }
        if self.inject.fires(InjectKind::ReplDrop).is_some() {
            self.stats.dropped += 1;
            return;
        }
        let mut deliver_at = now + 1;
        if let Some(detail) = self.inject.fires(InjectKind::ReplDelay) {
            deliver_at = now + 2 + detail % 12;
            self.stats.delayed += 1;
        } else if self.inject.fires(InjectKind::ReplReorder).is_some() {
            // Held one extra tick: frames sent next tick overtake it.
            deliver_at = now + 2;
            self.stats.reordered += 1;
        }
        let bytes = frame.encode();
        let dup = self.inject.fires(InjectKind::ReplDup).is_some();
        self.enqueue(deliver_at, frame.to, bytes.clone());
        if dup {
            self.stats.duplicated += 1;
            self.enqueue(deliver_at + 1, frame.to, bytes);
        }
    }

    fn enqueue(&mut self, deliver_at: u64, to: u32, bytes: Vec<u8>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(InFlight {
            deliver_at,
            seq,
            to,
            bytes,
        });
    }

    /// Removes and returns every frame due at or before `now`, in
    /// deterministic `(deliver_at, send order)` order.
    pub fn deliver_due(&mut self, now: u64) -> Vec<(u32, Vec<u8>)> {
        let mut due: Vec<InFlight> = Vec::new();
        let mut rest: Vec<InFlight> = Vec::new();
        for f in self.queue.drain(..) {
            if f.deliver_at <= now {
                due.push(f);
            } else {
                rest.push(f);
            }
        }
        self.queue = rest;
        due.sort_by_key(|f| (f.deliver_at, f.seq));
        self.stats.delivered += due.len() as u64;
        due.into_iter().map(|f| (f.to, f.bytes)).collect()
    }

    /// Frames still in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}
