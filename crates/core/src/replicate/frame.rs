//! The replication wire protocol: typed frames over the simulated link.
//!
//! Every frame carries the sender's epoch — the fencing term — so a
//! receiver can order protocol history without trusting the link's
//! delivery order. Frames are encoded with the same byte codec the
//! commit log uses ([`wire`](crate::statemachine::wire)), and decode
//! failures are *typed and counted, never fatal*: a hostile link can
//! corrupt a frame, and the worst it achieves is a retransmission.
//!
//! Snapshots travel as raw bytes inside [`Body::Snapshot`] so that
//! frame decoding stays genesis-free; the receiving replica decodes the
//! inner [`MachineSnapshot`](crate::statemachine::MachineSnapshot)
//! against its *own* genesis, which is where a foreign-genesis artifact
//! is refused.

use crate::statemachine::wire::{
    get_sealed, put_sealed, put_u32, put_u64, put_u8, Cursor, WireError, WIRE_VERSION,
};
use crate::statemachine::SealedCommit;

/// Magic prefix of an encoded replication frame.
pub const FRAME_MAGIC: [u8; 4] = *b"MKRF";

/// One replication message between two replicas.
#[derive(Clone, PartialEq, Debug)]
pub struct Frame {
    /// Sending replica.
    pub from: u32,
    /// Receiving replica.
    pub to: u32,
    /// The sender's epoch at send time — the fencing term carried by
    /// *every* frame, monotone per sender.
    pub epoch: u64,
    /// The payload.
    pub body: Body,
}

/// Frame payloads.
#[derive(Clone, PartialEq, Debug)]
pub enum Body {
    /// Primary → backup: sealed commits starting at `prev_len`, which
    /// the receiver accepts only if its own prefix head matches
    /// `prev_head` (the chain does the consistency proof).
    Append {
        /// Log length the seals extend from.
        prev_len: u64,
        /// Chain head of that prefix.
        prev_head: u64,
        /// Commits known majority-acknowledged, piggybacked.
        acked: u64,
        /// The seals themselves, contiguous from `prev_len`.
        seals: Vec<SealedCommit>,
    },
    /// Backup → primary: the receiver's log position after an append,
    /// acknowledged *by chain head* so a stale or divergent ack cannot
    /// be mistaken for progress.
    Ack {
        /// The backup's log length.
        len: u64,
        /// The chain head at that length.
        head: u64,
    },
    /// Backup → primary: an append was refused. `divergent` false means
    /// a gap (send more history); true means the logs disagree below
    /// `have_len` (snapshot catch-up required). Also sent in reply to a
    /// stale-epoch frame, carrying the refusing replica's higher epoch
    /// so a deposed primary learns it was fenced.
    Nack {
        /// The refusing replica's log length.
        have_len: u64,
        /// Its chain head.
        have_head: u64,
        /// Whether the histories conflict (vs. merely lag).
        divergent: bool,
    },
    /// Primary → backups: liveness beacon with the primary's position.
    Heartbeat {
        /// The primary's log length.
        len: u64,
        /// Its chain head.
        head: u64,
        /// Commits known majority-acknowledged.
        acked: u64,
    },
    /// Primary → backup: live state migration for a lagging or foreign
    /// replica — an encoded [`MachineSnapshot`]
    /// (`crate::statemachine::MachineSnapshot`) plus the log suffix
    /// above it.
    Snapshot {
        /// `wire::encode_snapshot` bytes, decoded against the
        /// receiver's genesis.
        snap: Vec<u8>,
        /// Seals above the snapshot's prefix.
        suffix: Vec<SealedCommit>,
    },
    /// Candidate → all: request a vote for the frame's epoch, carrying
    /// the candidate's log credentials for the up-to-dateness check.
    VoteRequest {
        /// Epoch of the candidate's last log entry.
        last_epoch: u64,
        /// The candidate's log length.
        len: u64,
    },
    /// Voter → candidate: one vote for the frame's epoch.
    VoteGrant,
    /// Replica → primary: a deposed primary tried to append on a stale
    /// epoch; the current primary seals an audit record so the fencing
    /// event lands in the replicated history itself.
    FenceReport {
        /// The deposed replica.
        deposed: u32,
        /// The stale epoch it tried to seal on.
        deposed_epoch: u64,
    },
}

impl Frame {
    /// Encodes the frame for the link.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC);
        crate::statemachine::wire::put_u16(&mut buf, WIRE_VERSION);
        put_u32(&mut buf, self.from);
        put_u32(&mut buf, self.to);
        put_u64(&mut buf, self.epoch);
        match &self.body {
            Body::Append {
                prev_len,
                prev_head,
                acked,
                seals,
            } => {
                put_u8(&mut buf, 0);
                put_u64(&mut buf, *prev_len);
                put_u64(&mut buf, *prev_head);
                put_u64(&mut buf, *acked);
                put_u32(&mut buf, seals.len() as u32);
                for s in seals {
                    put_sealed(&mut buf, s);
                }
            }
            Body::Ack { len, head } => {
                put_u8(&mut buf, 1);
                put_u64(&mut buf, *len);
                put_u64(&mut buf, *head);
            }
            Body::Nack {
                have_len,
                have_head,
                divergent,
            } => {
                put_u8(&mut buf, 2);
                put_u64(&mut buf, *have_len);
                put_u64(&mut buf, *have_head);
                put_u8(&mut buf, u8::from(*divergent));
            }
            Body::Heartbeat { len, head, acked } => {
                put_u8(&mut buf, 3);
                put_u64(&mut buf, *len);
                put_u64(&mut buf, *head);
                put_u64(&mut buf, *acked);
            }
            Body::Snapshot { snap, suffix } => {
                put_u8(&mut buf, 4);
                crate::statemachine::wire::put_bytes(&mut buf, snap);
                put_u32(&mut buf, suffix.len() as u32);
                for s in suffix {
                    put_sealed(&mut buf, s);
                }
            }
            Body::VoteRequest { last_epoch, len } => {
                put_u8(&mut buf, 5);
                put_u64(&mut buf, *last_epoch);
                put_u64(&mut buf, *len);
            }
            Body::VoteGrant => put_u8(&mut buf, 6),
            Body::FenceReport {
                deposed,
                deposed_epoch,
            } => {
                put_u8(&mut buf, 7);
                put_u32(&mut buf, *deposed);
                put_u64(&mut buf, *deposed_epoch);
            }
        }
        buf
    }

    /// Decodes a frame with typed rejection; a corrupted frame costs
    /// the sender a retransmission, nothing more.
    pub fn decode(bytes: &[u8]) -> Result<Frame, WireError> {
        let mut cur = Cursor::new(bytes);
        let magic = cur.take(4)?;
        if magic != FRAME_MAGIC {
            return Err(WireError::BadMagic {
                found: magic.try_into().unwrap(),
            });
        }
        let version = cur.u16()?;
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion { found: version });
        }
        let from = cur.u32()?;
        let to = cur.u32()?;
        let epoch = cur.u64()?;
        let body = match cur.u8()? {
            0 => {
                let prev_len = cur.u64()?;
                let prev_head = cur.u64()?;
                let acked = cur.u64()?;
                let count = cur.vec_len("Append.seals")?;
                let mut seals = Vec::new();
                for _ in 0..count {
                    seals.push(get_sealed(&mut cur)?);
                }
                Body::Append {
                    prev_len,
                    prev_head,
                    acked,
                    seals,
                }
            }
            1 => Body::Ack {
                len: cur.u64()?,
                head: cur.u64()?,
            },
            2 => Body::Nack {
                have_len: cur.u64()?,
                have_head: cur.u64()?,
                divergent: cur.bool("Nack.divergent")?,
            },
            3 => Body::Heartbeat {
                len: cur.u64()?,
                head: cur.u64()?,
                acked: cur.u64()?,
            },
            4 => {
                let snap = cur.bytes("Snapshot.snap")?.to_vec();
                let count = cur.vec_len("Snapshot.suffix")?;
                let mut suffix = Vec::new();
                for _ in 0..count {
                    suffix.push(get_sealed(&mut cur)?);
                }
                Body::Snapshot { snap, suffix }
            }
            5 => Body::VoteRequest {
                last_epoch: cur.u64()?,
                len: cur.u64()?,
            },
            6 => Body::VoteGrant,
            7 => Body::FenceReport {
                deposed: cur.u32()?,
                deposed_epoch: cur.u64()?,
            },
            tag => return Err(WireError::BadTag { what: "Body", tag }),
        };
        cur.done()?;
        Ok(Frame {
            from,
            to,
            epoch,
            body,
        })
    }
}
