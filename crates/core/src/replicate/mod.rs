//! # Replicated kernel: primary/backup failover over the commit log (E21)
//!
//! The replay contract of E20 made the kernel a deterministic state
//! machine: `reduce(genesis, log)` rebuilds the *identical* world from
//! the sealed commit log. This module spends that determinism on
//! availability. A **primary** replica seals commits and streams the
//! sealed frames over a simulated (and hostile) link; **backups** apply
//! each seal through the same state machine and acknowledge *by chain
//! head*, so an acknowledgement is a cryptographic claim about history,
//! not a counter. When the primary falls silent, a seeded
//! election promotes the most up-to-date backup; the epoch carried in
//! every frame fences the deposed primary — its stale appends are
//! refused *and audited into the replicated history itself*.
//!
//! The paper's certification argument survives replication unchanged:
//! each replica runs the unmodified security kernel, the link carries
//! only sealed commits, and every failover is machine-checked against
//! `reduce` — the promoted backup's world digest must equal the pure
//! fold of its log, and no majority-acknowledged commit may be lost.
//!
//! Layout:
//! * [`frame`] — the typed wire protocol (append/ack/nack, heartbeat,
//!   snapshot catch-up, votes, fence reports);
//! * [`link`] — the injector-mediated hostile link (drop, duplicate,
//!   reorder, delay, partition);
//! * this module — replicas, the cluster scheduler, the election and
//!   fencing protocol, and the mixed-workload driver used by the E21
//!   experiment.

pub mod frame;
pub mod link;

pub use frame::{Body, Frame};
pub use link::{Link, LinkStats};

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use mks_fs::{Acl, AclMode};
use mks_hw::{Backoff, BackoffPolicy, InjectKind, InjectorHandle, RingBrackets, SplitMix64};
use mks_mls::{Compartments, Label, Level};
use mks_trace::ReplSnapshot;

use crate::statemachine::restore;
use crate::statemachine::wire::WireError;
use crate::statemachine::{
    decode_snapshot, encode_snapshot, reduce, snapshot_at, Commit, CommitLog, Genesis,
    KernelStateMachine, Outcome, ReplayError,
};
use crate::syslog::AuditEvent;
use crate::world::admin_user;

/// Why a replication operation was refused or failed.
#[derive(Clone, PartialEq, Debug)]
pub enum ReplError {
    /// No replica currently holds the primary role.
    NoPrimary {
        /// The highest epoch known to the cluster.
        epoch: u64,
    },
    /// The addressed replica is a backup in the current epoch.
    NotPrimary {
        /// The addressed replica.
        id: u32,
    },
    /// The addressed replica believes it is (or was) a sealer, but its
    /// epoch is stale: it has been fenced by a newer election.
    Deposed {
        /// The addressed replica.
        id: u32,
        /// Its stale epoch.
        epoch: u64,
        /// The cluster's current epoch.
        current: u64,
    },
    /// The addressed replica is crashed.
    Down {
        /// The addressed replica.
        id: u32,
    },
    /// A wire-format failure surfaced through the replication layer.
    Wire(WireError),
    /// A replay failure surfaced through the replication layer.
    Replay(ReplayError),
}

impl fmt::Display for ReplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplError::NoPrimary { epoch } => {
                write!(f, "no primary holds epoch {epoch}; an election is pending")
            }
            ReplError::NotPrimary { id } => {
                write!(f, "replica {id} is a backup; seals go to the primary")
            }
            ReplError::Deposed { id, epoch, current } => write!(
                f,
                "replica {id} was deposed: its epoch {epoch} is fenced by epoch {current}"
            ),
            ReplError::Down { id } => write!(f, "replica {id} is down"),
            ReplError::Wire(e) => write!(f, "replication wire failure: {e}"),
            ReplError::Replay(e) => write!(f, "replication replay failure: {e}"),
        }
    }
}

impl std::error::Error for ReplError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplError::Wire(e) => Some(e),
            ReplError::Replay(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ReplError {
    fn from(e: WireError) -> ReplError {
        ReplError::Wire(e)
    }
}

impl From<ReplayError> for ReplError {
    fn from(e: ReplayError) -> ReplError {
        ReplError::Replay(e)
    }
}

/// A replica's role in the current epoch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// The sealer: the only replica allowed to append in its epoch.
    Primary,
    /// A follower applying the primary's stream.
    Backup,
    /// Crashed; will restart (with or without amnesia) later.
    Down,
}

impl Role {
    /// Stable lowercase name, exported through metering.
    pub fn name(self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Backup => "backup",
            Role::Down => "down",
        }
    }
}

/// Cluster shape and protocol timing, all in simulated ticks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReplConfig {
    /// Number of replicas (clamped to at least 2).
    pub replicas: usize,
    /// Heartbeat period of the primary.
    pub heartbeat_every: u64,
    /// Quiet ticks a backup tolerates before standing for election
    /// (staggered per replica to avoid split votes).
    pub election_timeout: u64,
    /// Backoff policy pacing append retransmissions per peer.
    pub resend_policy: BackoffPolicy,
    /// Seed folded into every per-peer backoff sequence.
    pub seed: u64,
    /// Maximum seals per append frame.
    pub batch: u64,
}

impl Default for ReplConfig {
    fn default() -> ReplConfig {
        ReplConfig {
            replicas: 3,
            heartbeat_every: 4,
            election_timeout: 12,
            resend_policy: BackoffPolicy {
                max_retries: 4,
                base: 2,
                cap: 16,
            },
            seed: 0,
            batch: 24,
        }
    }
}

/// Per-replica protocol accounting.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ReplicaStats {
    /// Heartbeat periods that passed without hearing a primary.
    pub heartbeat_misses: u64,
    /// Append/snapshot retransmissions sent while primary.
    pub resends: u64,
    /// Stale-epoch frames this replica refused (fencing in action).
    pub fenced: u64,
    /// Snapshot catch-up migrations applied.
    pub catchups: u64,
    /// Seals applied from the replication stream.
    pub appends_applied: u64,
    /// Frames or snapshots that failed to decode (typed, non-fatal).
    pub decode_errors: u64,
    /// Fence reports received while primary.
    pub fence_reports: u64,
    /// Exhausted backoff schedules restarted with a bumped seed.
    pub backoff_restarts: u64,
}

/// A cluster-level protocol event, timestamped in simulated ticks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReplEvent {
    /// A backup won an election.
    Promoted {
        /// The promoted replica.
        id: u32,
        /// The epoch it now seals in.
        epoch: u64,
        /// When.
        at: u64,
    },
    /// A primary adopted a higher epoch and stepped down.
    Deposed {
        /// The deposed replica.
        id: u32,
        /// The epoch it adopted (the one that fenced it).
        epoch: u64,
        /// When.
        at: u64,
    },
    /// A replica crashed.
    Crashed {
        /// The crashed replica.
        id: u32,
        /// When.
        at: u64,
        /// Whether it will restart from genesis (true) or with its
        /// durable log intact (false).
        amnesia: bool,
    },
    /// A crashed replica rejoined as a backup.
    Restarted {
        /// The restarted replica.
        id: u32,
        /// When.
        at: u64,
    },
    /// A deposed sealer's append was refused on a stale epoch; the
    /// refusal is also sealed into the replicated history as an audit
    /// record.
    Fenced {
        /// The fenced replica.
        id: u32,
        /// The stale epoch it tried to seal on.
        stale_epoch: u64,
        /// When.
        at: u64,
    },
    /// A lagging or divergent replica was caught up by snapshot.
    SnapshotMigrated {
        /// The migrated replica.
        id: u32,
        /// When.
        at: u64,
    },
}

/// The machine-checked verdict recorded at each promotion: the new
/// primary's live world must equal the pure fold of its log, and every
/// majority-acknowledged prefix must survive into its history.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FailoverCheck {
    /// The epoch of the promotion.
    pub epoch: u64,
    /// The promoted replica.
    pub id: u32,
    /// `reduce(genesis, log).digest() == live.digest()` at promotion.
    pub digest_equal: bool,
    /// Every acknowledged `(len, head)` mark is a prefix of the
    /// promoted log with a matching chain head.
    pub acked_covered: bool,
}

/// Effects a frame handler reports back to the cluster scheduler
/// (which owns the event journal and the cross-replica registries).
#[derive(Default)]
struct HandleEffects {
    promoted: bool,
    deposed: bool,
    migrated: bool,
    acked_moved: bool,
    fence_report: Option<(u32, u64)>,
}

/// One replica: an unmodified security kernel plus protocol state.
struct Replica {
    id: u32,
    role: Role,
    /// The fencing term; monotone, carried in every frame.
    epoch: u64,
    /// Highest epoch this replica granted a vote in.
    voted_in: u64,
    /// Epoch under which the last log entry was replicated.
    last_entry_epoch: u64,
    leader: Option<u32>,
    sm: KernelStateMachine,
    /// Majority-acknowledged prefix length known here.
    acked_len: u64,
    quiet_ticks: u64,
    stall_until: u64,
    /// `(tick, amnesia)` when crashed.
    restart_at: Option<(u64, bool)>,
    /// Primary only: highest chain-verified log length per peer.
    match_len: Vec<u64>,
    backoffs: Vec<Backoff>,
    backoff_due: Vec<u64>,
    /// An open candidacy: `(epoch, granters)`.
    candidacy: Option<(u64, BTreeSet<u32>)>,
    stats: ReplicaStats,
    inbox: VecDeque<Vec<u8>>,
    cfg: ReplConfig,
}

impl Replica {
    fn log(&self) -> &CommitLog {
        &self.sm.world().commits
    }

    fn len(&self) -> u64 {
        self.log().len()
    }

    fn head(&self) -> u64 {
        self.log().head()
    }

    fn nack(&self, to: u32, divergent: bool) -> Frame {
        Frame {
            from: self.id,
            to,
            epoch: self.epoch,
            body: Body::Nack {
                have_len: self.len(),
                have_head: self.head(),
                divergent,
            },
        }
    }

    fn ack(&self, to: u32) -> Frame {
        Frame {
            from: self.id,
            to,
            epoch: self.epoch,
            body: Body::Ack {
                len: self.len(),
                head: self.head(),
            },
        }
    }

    fn heartbeat(&self, to: u32) -> Frame {
        Frame {
            from: self.id,
            to,
            epoch: self.epoch,
            body: Body::Heartbeat {
                len: self.len(),
                head: self.head(),
                acked: self.acked_len,
            },
        }
    }

    /// An append frame extending the peer's chain-verified position.
    fn append_frame(&self, to: u32, from_len: u64) -> Frame {
        let end = self.len().min(from_len + self.cfg.batch);
        let seals = self.log().entries()[from_len as usize..end as usize].to_vec();
        Frame {
            from: self.id,
            to,
            epoch: self.epoch,
            body: Body::Append {
                prev_len: from_len,
                prev_head: self.log().prefix(from_len).head(),
                acked: self.acked_len,
                seals,
            },
        }
    }

    /// A snapshot-catch-up frame: the acknowledged prefix as a
    /// `MachineSnapshot` plus every seal above it.
    fn snapshot_frame(&self, genesis: &Genesis, to: u32) -> Option<Frame> {
        let upto = self.acked_len.min(self.len());
        let snap = snapshot_at(genesis, self.log(), upto).ok()?;
        let suffix = self.log().entries()[upto as usize..].to_vec();
        Some(Frame {
            from: self.id,
            to,
            epoch: self.epoch,
            body: Body::Snapshot {
                snap: encode_snapshot(&snap),
                suffix,
            },
        })
    }

    /// Starts a fresh per-peer backoff schedule (after an ack or a
    /// role change); the seed folds in epoch and endpoints so every
    /// schedule is replayable.
    fn reset_backoff(&mut self, peer: usize, now: u64) {
        let seed = self.cfg.seed ^ (self.epoch << 8) ^ (u64::from(self.id) << 4) ^ peer as u64;
        self.backoffs[peer] = Backoff::new(seed, self.cfg.resend_policy);
        self.backoff_due[peer] = now + 1;
    }

    /// Advances the peer's retransmission deadline along its backoff
    /// schedule; an exhausted schedule restarts with a bumped seed.
    fn pace(&mut self, peer: usize, now: u64) {
        match self.backoffs[peer].next_delay() {
            Some(d) => self.backoff_due[peer] = now + d,
            None => {
                self.stats.backoff_restarts += 1;
                let seed = self.cfg.seed
                    ^ (self.epoch << 8)
                    ^ (u64::from(self.id) << 4)
                    ^ peer as u64
                    ^ 0x9e37_79b9;
                self.backoffs[peer] = Backoff::new(seed, self.cfg.resend_policy);
                self.backoff_due[peer] = now + self.cfg.resend_policy.cap;
            }
        }
    }

    /// Handles one decoded frame. Outgoing frames go to `out`; effects
    /// the cluster must journal or audit go to `fx`.
    fn handle(
        &mut self,
        genesis: &Genesis,
        n: usize,
        now: u64,
        f: Frame,
        out: &mut Vec<Frame>,
        fx: &mut HandleEffects,
    ) {
        // Epoch adoption: any frame from a newer epoch fences this
        // replica's current role.
        if f.epoch > self.epoch {
            self.epoch = f.epoch;
            if self.role == Role::Primary {
                self.role = Role::Backup;
                fx.deposed = true;
            }
            self.candidacy = None;
            self.leader = None;
        }
        let Frame {
            from,
            epoch: fepoch,
            body,
            ..
        } = f;
        match body {
            Body::Heartbeat {
                len,
                head: _,
                acked,
            } => {
                if fepoch < self.epoch {
                    // Teach the deposed primary its epoch is stale.
                    out.push(self.nack(from, false));
                    return;
                }
                self.leader = Some(from);
                self.quiet_ticks = 0;
                self.candidacy = None;
                self.acked_len = self.acked_len.max(acked.min(self.len()));
                if len > self.len() {
                    out.push(self.nack(from, false));
                }
            }
            Body::Append {
                prev_len,
                prev_head,
                acked,
                seals,
            } => {
                if fepoch < self.epoch {
                    // The fence proper: a stale sealer's append is
                    // refused, and the current primary is told so the
                    // refusal can be audited into the history.
                    self.stats.fenced += 1;
                    out.push(self.nack(from, false));
                    if let Some(l) = self.leader {
                        if l != from && l != self.id {
                            out.push(Frame {
                                from: self.id,
                                to: l,
                                epoch: self.epoch,
                                body: Body::FenceReport {
                                    deposed: from,
                                    deposed_epoch: fepoch,
                                },
                            });
                        }
                    }
                    return;
                }
                self.leader = Some(from);
                self.quiet_ticks = 0;
                self.candidacy = None;
                if prev_len > self.len() {
                    out.push(self.nack(from, false));
                    return;
                }
                if self.log().prefix(prev_len).head() != prev_head {
                    out.push(self.nack(from, true));
                    return;
                }
                for s in &seals {
                    if s.seq < self.len() {
                        // Duplicate delivery: the stored chain must
                        // agree, else the histories diverged.
                        if self.log().get(s.seq).map(|e| e.chain) != Some(s.chain) {
                            out.push(self.nack(from, true));
                            return;
                        }
                    } else if s.seq == self.len() {
                        self.sm.apply(&s.commit);
                        self.stats.appends_applied += 1;
                        // Determinism tripwire: resealing the commit
                        // here must reproduce the primary's chain.
                        if self.log().get(s.seq).map(|e| e.chain) != Some(s.chain) {
                            out.push(self.nack(from, true));
                            return;
                        }
                    } else {
                        out.push(self.nack(from, false));
                        return;
                    }
                }
                self.last_entry_epoch = fepoch;
                self.acked_len = self.acked_len.max(acked.min(self.len()));
                out.push(self.ack(from));
            }
            Body::Ack { len, head } => {
                if self.role != Role::Primary || fepoch != self.epoch {
                    return;
                }
                let peer = from as usize;
                if len <= self.len() && self.log().prefix(len).head() == head {
                    if len > self.match_len[peer] {
                        self.match_len[peer] = len;
                        fx.acked_moved = true;
                    }
                    self.reset_backoff(peer, now);
                    if len < self.len() {
                        // Keep streaming: the ack pipelines the next
                        // batch without waiting for the resend pacer.
                        out.push(self.append_frame(from, len));
                    }
                } else if let Some(fr) = self.snapshot_frame(genesis, from) {
                    out.push(fr);
                }
            }
            Body::Nack {
                have_len,
                have_head,
                divergent,
            } => {
                if self.role != Role::Primary || fepoch != self.epoch {
                    return;
                }
                let peer = from as usize;
                let far_behind = self.len().saturating_sub(have_len) > 2 * self.cfg.batch;
                if !divergent
                    && !far_behind
                    && have_len <= self.len()
                    && self.log().prefix(have_len).head() == have_head
                {
                    self.match_len[peer] = self.match_len[peer].max(have_len);
                    if now >= self.backoff_due[peer] {
                        out.push(self.append_frame(from, have_len));
                        self.stats.resends += 1;
                        self.pace(peer, now);
                    }
                } else if let Some(fr) = self.snapshot_frame(genesis, from) {
                    // Divergent histories and deep gaps (an amnesiac
                    // restart, a long partition) migrate by snapshot
                    // rather than replaying the whole log in batches.
                    out.push(fr);
                    self.stats.resends += 1;
                    self.pace(peer, now);
                }
            }
            Body::Snapshot { snap, suffix } => {
                if fepoch < self.epoch {
                    return;
                }
                self.leader = Some(from);
                self.quiet_ticks = 0;
                self.candidacy = None;
                let decoded = match decode_snapshot(&snap, genesis) {
                    Ok(d) => d,
                    Err(_) => {
                        self.stats.decode_errors += 1;
                        return;
                    }
                };
                // Stale-duplicate guard: if this exact history is
                // already a consistent prefix of ours, applying it
                // would only roll back acknowledged progress.
                let total = decoded.upto + suffix.len() as u64;
                let end_head = suffix.last().map(|s| s.chain).unwrap_or(decoded.chain_head);
                if total <= self.len() && self.log().prefix(total).head() == end_head {
                    out.push(self.ack(from));
                    return;
                }
                let mut sm = match restore(&decoded) {
                    Ok(sm) => sm,
                    Err(_) => {
                        self.stats.decode_errors += 1;
                        return;
                    }
                };
                for s in &suffix {
                    if s.seq != sm.world().commits.len() {
                        self.stats.decode_errors += 1;
                        return;
                    }
                    sm.apply(&s.commit);
                    if sm.world().commits.head() != s.chain {
                        self.stats.decode_errors += 1;
                        return;
                    }
                }
                self.sm = sm;
                self.acked_len = self.acked_len.max(decoded.upto).min(self.len());
                self.stats.catchups += 1;
                self.last_entry_epoch = fepoch;
                fx.migrated = true;
                out.push(self.ack(from));
            }
            Body::VoteRequest { last_epoch, len } => {
                if fepoch < self.epoch {
                    return;
                }
                // One vote per epoch, and only for a candidate whose
                // log is at least as up to date as ours (so every
                // acknowledged commit survives the election, by
                // majority intersection).
                let up_to_date = (last_epoch, len) >= (self.last_entry_epoch, self.len());
                if self.voted_in < fepoch && up_to_date {
                    self.voted_in = fepoch;
                    self.quiet_ticks = 0;
                    out.push(Frame {
                        from: self.id,
                        to: from,
                        epoch: self.epoch,
                        body: Body::VoteGrant,
                    });
                }
            }
            Body::VoteGrant => {
                if fepoch != self.epoch {
                    return;
                }
                let won = match &mut self.candidacy {
                    Some((e, granters)) if *e == fepoch => {
                        granters.insert(from);
                        granters.len() > n / 2
                    }
                    _ => false,
                };
                if won && self.role != Role::Primary {
                    self.role = Role::Primary;
                    self.leader = Some(self.id);
                    self.candidacy = None;
                    self.match_len = vec![0; n];
                    self.match_len[self.id as usize] = self.len();
                    for p in 0..n {
                        if p != self.id as usize {
                            self.reset_backoff(p, now);
                        }
                    }
                    fx.promoted = true;
                    // Announce; backups nack to pull what they miss.
                    for p in 0..n as u32 {
                        if p != self.id {
                            out.push(self.heartbeat(p));
                        }
                    }
                }
            }
            Body::FenceReport {
                deposed,
                deposed_epoch,
            } => {
                if self.role != Role::Primary || fepoch != self.epoch {
                    return;
                }
                self.stats.fence_reports += 1;
                fx.fence_report = Some((deposed, deposed_epoch));
            }
        }
    }
}

/// A replicated kernel: `n` replicas of the same genesis joined by a
/// hostile link, advanced one simulated tick at a time.
pub struct Cluster {
    genesis: Genesis,
    cfg: ReplConfig,
    replicas: Vec<Replica>,
    link: Link,
    inject: InjectorHandle,
    now: u64,
    /// Every majority-acknowledged `(len, chain head)` mark, in order —
    /// the durability ledger failover is checked against.
    acked_marks: Vec<(u64, u64)>,
    /// Which replicas actually sealed in each epoch; more than one
    /// sealer in an epoch would be split-brain.
    sealer_epochs: BTreeMap<u64, BTreeSet<u32>>,
    /// Fence audits already sealed, keyed by `(deposed, stale epoch)`.
    fence_audits: BTreeSet<(u32, u64)>,
    promotions: u64,
    failover_checks: Vec<FailoverCheck>,
    events: Vec<ReplEvent>,
}

impl Cluster {
    /// A fresh cluster: replica 0 is the epoch-1 primary, the rest are
    /// backups, and a shared (initially disarmed) injector mediates
    /// the link.
    pub fn new(genesis: Genesis, cfg: ReplConfig) -> Cluster {
        let n = cfg.replicas.max(2);
        let inject = InjectorHandle::disarmed();
        let mut replicas = Vec::with_capacity(n);
        for id in 0..n as u32 {
            let mut backoffs = Vec::with_capacity(n);
            for p in 0..n as u64 {
                backoffs.push(Backoff::new(
                    cfg.seed ^ (1 << 8) ^ (u64::from(id) << 4) ^ p,
                    cfg.resend_policy,
                ));
            }
            replicas.push(Replica {
                id,
                role: if id == 0 { Role::Primary } else { Role::Backup },
                epoch: 1,
                voted_in: 1,
                last_entry_epoch: 0,
                leader: Some(0),
                sm: genesis.build(),
                acked_len: 0,
                quiet_ticks: 0,
                stall_until: 0,
                restart_at: None,
                match_len: vec![0; n],
                backoffs,
                backoff_due: vec![0; n],
                candidacy: None,
                stats: ReplicaStats::default(),
                inbox: VecDeque::new(),
                cfg,
            });
        }
        Cluster {
            genesis,
            cfg,
            link: Link::new(inject.clone(), n as u32),
            inject,
            replicas,
            now: 0,
            acked_marks: Vec::new(),
            sealer_epochs: BTreeMap::new(),
            fence_audits: BTreeSet::new(),
            promotions: 0,
            failover_checks: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Arms a fault plan on the shared injector.
    pub fn arm(&self, plan: &mks_hw::FaultPlan) {
        self.inject.arm(plan);
    }

    /// Disarms the injector.
    pub fn disarm(&self) {
        self.inject.disarm();
    }

    /// Faults fired so far.
    pub fn fired(&self) -> Vec<mks_hw::FiredFault> {
        self.inject.fired()
    }

    /// The genesis every replica was built from.
    pub fn genesis(&self) -> &Genesis {
        &self.genesis
    }

    /// The current simulated tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The current primary (the highest-epoch replica holding the
    /// role), if any.
    pub fn primary(&self) -> Option<u32> {
        self.primary_index().map(|i| i as u32)
    }

    fn primary_index(&self) -> Option<usize> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.role == Role::Primary)
            .max_by_key(|(_, r)| r.epoch)
            .map(|(i, _)| i)
    }

    /// The highest epoch any replica has adopted.
    pub fn max_epoch(&self) -> u64 {
        self.replicas.iter().map(|r| r.epoch).max().unwrap_or(0)
    }

    /// A replica's role.
    pub fn role_of(&self, id: u32) -> Role {
        self.replicas[id as usize].role
    }

    /// A replica's epoch.
    pub fn epoch_of(&self, id: u32) -> u64 {
        self.replicas[id as usize].epoch
    }

    /// A replica's commit log.
    pub fn log_of(&self, id: u32) -> &CommitLog {
        self.replicas[id as usize].log()
    }

    /// A replica's live world digest.
    pub fn digest_of(&self, id: u32) -> crate::statemachine::StateDigest {
        self.replicas[id as usize].sm.digest()
    }

    /// A replica's protocol accounting.
    pub fn stats_of(&self, id: u32) -> ReplicaStats {
        self.replicas[id as usize].stats
    }

    /// The replication status a replica last published to metering.
    pub fn status_of(&self, id: u32) -> Option<ReplSnapshot> {
        self.replicas[id as usize].sm.world().repl_status.clone()
    }

    /// The event journal.
    pub fn events(&self) -> &[ReplEvent] {
        &self.events
    }

    /// Every majority-acknowledged `(len, head)` durability mark.
    pub fn acked_marks(&self) -> &[(u64, u64)] {
        &self.acked_marks
    }

    /// Link accounting.
    pub fn link_stats(&self) -> LinkStats {
        self.link.stats()
    }

    /// Elections won so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// The machine-checked verdicts recorded at each promotion.
    pub fn failover_checks(&self) -> &[FailoverCheck] {
        &self.failover_checks
    }

    /// Epochs in which more than one replica sealed — split-brain
    /// evidence; must be empty.
    pub fn sealer_violations(&self) -> Vec<u64> {
        self.sealer_epochs
            .iter()
            .filter(|(_, s)| s.len() > 1)
            .map(|(e, _)| *e)
            .collect()
    }

    /// Seals `commit` on the current primary, or reports why not. A
    /// crash fault at the `ReplPrimaryCrash` site takes the primary
    /// down instead (it restarts later, with or without amnesia).
    pub fn submit(&mut self, commit: &Commit) -> Result<Outcome, ReplError> {
        let pid = match self.primary_index() {
            Some(p) => p,
            None => {
                return Err(ReplError::NoPrimary {
                    epoch: self.max_epoch(),
                })
            }
        };
        if let Some(detail) = self.inject.fires(InjectKind::ReplPrimaryCrash) {
            self.crash(pid, detail);
            return Err(ReplError::Down { id: pid as u32 });
        }
        self.seal_as(pid as u32, commit)
    }

    /// Seals `commit` on a *specific* replica. A backup refuses with
    /// [`ReplError::NotPrimary`]; a deposed sealer is refused with
    /// [`ReplError::Deposed`] *and* the refusal is audited into the
    /// replicated history — the fence is itself evidence.
    pub fn seal_as(&mut self, id: u32, commit: &Commit) -> Result<Outcome, ReplError> {
        let i = id as usize;
        let max_e = self.max_epoch();
        let (role, epoch) = {
            let r = &self.replicas[i];
            (r.role, r.epoch)
        };
        match role {
            Role::Down => Err(ReplError::Down { id }),
            Role::Primary => Ok(self.seal_on(i, commit)),
            Role::Backup => {
                if epoch < max_e {
                    // Audit through the *current* primary; until one is
                    // elected the pair stays unmarked so the first
                    // post-election refusal still seals the evidence.
                    if let Some(p) = self.primary_index() {
                        if self.fence_audits.insert((id, epoch)) {
                            self.events.push(ReplEvent::Fenced {
                                id,
                                stale_epoch: epoch,
                                at: self.now,
                            });
                            let audit = fence_audit(id, epoch);
                            self.seal_on(p, &audit);
                        }
                    }
                    Err(ReplError::Deposed {
                        id,
                        epoch,
                        current: max_e,
                    })
                } else {
                    Err(ReplError::NotPrimary { id })
                }
            }
        }
    }

    /// The actual seal: apply locally, register the sealer for the
    /// split-brain census, and stream appends to every peer.
    fn seal_on(&mut self, i: usize, commit: &Commit) -> Outcome {
        let n = self.replicas.len();
        let now = self.now;
        let epoch = self.replicas[i].epoch;
        let out = self.replicas[i].sm.apply(commit);
        self.replicas[i].last_entry_epoch = epoch;
        let len = self.replicas[i].len();
        self.replicas[i].match_len[i] = len;
        self.sealer_epochs
            .entry(epoch)
            .or_default()
            .insert(i as u32);
        for p in 0..n {
            if p == i {
                continue;
            }
            let fr = self.replicas[i].append_frame(p as u32, self.replicas[i].match_len[p]);
            self.link.send(now, &fr);
        }
        self.recompute_acked(i);
        out
    }

    fn crash(&mut self, i: usize, detail: u64) {
        let amnesia = (detail >> 8) & 1 == 1;
        let r = &mut self.replicas[i];
        r.role = Role::Down;
        r.restart_at = Some((self.now + 3 + detail % 17, amnesia));
        r.inbox.clear();
        r.candidacy = None;
        r.leader = None;
        self.events.push(ReplEvent::Crashed {
            id: r.id,
            at: self.now,
            amnesia,
        });
    }

    /// Recomputes the majority-acknowledged prefix from the primary's
    /// chain-verified match lengths and extends the durability ledger.
    fn recompute_acked(&mut self, i: usize) {
        let n = self.replicas.len();
        let mut sorted = self.replicas[i].match_len.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let majority = sorted[n / 2];
        if majority > self.replicas[i].acked_len {
            self.replicas[i].acked_len = majority;
            let head = self.replicas[i].log().prefix(majority).head();
            let extend = self
                .acked_marks
                .last()
                .map(|&(l, _)| majority > l)
                .unwrap_or(true);
            if extend {
                self.acked_marks.push((majority, head));
            }
        }
    }

    /// Records the machine-checked failover verdict for a promotion.
    fn failover_check(&mut self, i: usize) {
        let r = &self.replicas[i];
        let digest_equal = match reduce(&self.genesis, r.log()) {
            Ok(sm) => sm.digest() == r.sm.digest(),
            Err(_) => false,
        };
        let acked_covered = self
            .acked_marks
            .iter()
            .all(|&(len, head)| len <= r.len() && r.log().prefix(len).head() == head);
        self.failover_checks.push(FailoverCheck {
            epoch: r.epoch,
            id: r.id,
            digest_equal,
            acked_covered,
        });
    }

    fn apply_effects(&mut self, id: u32, fx: HandleEffects) {
        if fx.deposed {
            self.events.push(ReplEvent::Deposed {
                id,
                epoch: self.replicas[id as usize].epoch,
                at: self.now,
            });
        }
        if fx.migrated {
            self.events
                .push(ReplEvent::SnapshotMigrated { id, at: self.now });
        }
        if fx.acked_moved {
            self.recompute_acked(id as usize);
        }
        if fx.promoted {
            self.promotions += 1;
            self.events.push(ReplEvent::Promoted {
                id,
                epoch: self.replicas[id as usize].epoch,
                at: self.now,
            });
            self.failover_check(id as usize);
        }
        if let Some((deposed, de)) = fx.fence_report {
            if self.fence_audits.insert((deposed, de)) {
                self.events.push(ReplEvent::Fenced {
                    id: deposed,
                    stale_epoch: de,
                    at: self.now,
                });
                let audit = fence_audit(deposed, de);
                self.seal_on(id as usize, &audit);
            }
        }
    }

    /// Advances the cluster one simulated tick: stalls and restarts,
    /// link delivery, frame processing, primary heartbeats and paced
    /// resends, election timers, and the metering status export.
    pub fn tick(&mut self) {
        self.now += 1;
        let now = self.now;
        let n = self.replicas.len();

        // A backup-stall fault freezes one backup's frame processing.
        if let Some(detail) = self.inject.fires(InjectKind::ReplBackupStall) {
            let victim = (detail % n as u64) as usize;
            if self.replicas[victim].role == Role::Backup {
                self.replicas[victim].stall_until = now + 2 + (detail >> 8) % 10;
            }
        }

        // Crashed replicas restart as backups; amnesia victims start
        // over from genesis and rely on snapshot catch-up.
        for i in 0..n {
            let genesis = self.genesis;
            let r = &mut self.replicas[i];
            if r.role != Role::Down {
                continue;
            }
            if let Some((at, amnesia)) = r.restart_at {
                if at <= now {
                    if amnesia {
                        r.sm = genesis.build();
                        r.epoch = 1;
                        r.voted_in = 0;
                        r.last_entry_epoch = 0;
                        r.acked_len = 0;
                    }
                    r.role = Role::Backup;
                    r.leader = None;
                    r.quiet_ticks = 0;
                    r.restart_at = None;
                    // Reboot haze: a restarted replica spends one tick
                    // before processing frames, so a sealer deposed
                    // while down observably holds its stale epoch (and
                    // is refused through the fence) before adoption.
                    r.stall_until = now + 1;
                    self.events.push(ReplEvent::Restarted { id: r.id, at: now });
                }
            }
        }

        // Link delivery: frames to a crashed replica are lost.
        for (to, bytes) in self.link.deliver_due(now) {
            let r = &mut self.replicas[to as usize];
            if r.role != Role::Down {
                r.inbox.push_back(bytes);
            }
        }

        // Frame processing, in replica order for determinism.
        for i in 0..n {
            if self.replicas[i].role == Role::Down || self.replicas[i].stall_until > now {
                continue;
            }
            while let Some(bytes) = self.replicas[i].inbox.pop_front() {
                let frame = match Frame::decode(&bytes) {
                    Ok(fr) => fr,
                    Err(_) => {
                        self.replicas[i].stats.decode_errors += 1;
                        continue;
                    }
                };
                let mut out = Vec::new();
                let mut fx = HandleEffects::default();
                let genesis = self.genesis;
                self.replicas[i].handle(&genesis, n, now, frame, &mut out, &mut fx);
                for fr in &out {
                    self.link.send(now, fr);
                }
                self.apply_effects(i as u32, fx);
            }
        }

        // Primary duties: periodic heartbeats and paced resends for
        // peers whose chain-verified position lags.
        for i in 0..n {
            if self.replicas[i].role != Role::Primary || self.replicas[i].stall_until > now {
                continue;
            }
            if now.is_multiple_of(self.cfg.heartbeat_every) {
                for p in 0..n as u32 {
                    if p as usize != i {
                        let fr = self.replicas[i].heartbeat(p);
                        self.link.send(now, &fr);
                    }
                }
            }
            let len = self.replicas[i].len();
            for p in 0..n {
                if p == i {
                    continue;
                }
                if self.replicas[i].match_len[p] < len && now >= self.replicas[i].backoff_due[p] {
                    let from_len = self.replicas[i].match_len[p];
                    let fr = self.replicas[i].append_frame(p as u32, from_len);
                    self.link.send(now, &fr);
                    self.replicas[i].stats.resends += 1;
                    self.replicas[i].pace(p, now);
                }
            }
        }

        // Election timers: a quiet backup stands for election on a
        // per-replica staggered timeout.
        let max_e = self.max_epoch();
        for i in 0..n {
            let r = &mut self.replicas[i];
            if r.role != Role::Backup || r.stall_until > now {
                continue;
            }
            r.quiet_ticks += 1;
            if r.quiet_ticks.is_multiple_of(self.cfg.heartbeat_every) {
                r.stats.heartbeat_misses += 1;
            }
            if r.quiet_ticks > self.cfg.election_timeout + 3 * u64::from(r.id) {
                let e = max_e.max(r.epoch) + 1;
                r.epoch = e;
                r.voted_in = e;
                r.candidacy = Some((e, BTreeSet::from([r.id])));
                r.quiet_ticks = 0;
                r.leader = None;
                let creds = (r.last_entry_epoch, r.len());
                let id = r.id;
                for p in 0..n as u32 {
                    if p != id {
                        let fr = Frame {
                            from: id,
                            to: p,
                            epoch: e,
                            body: Body::VoteRequest {
                                last_epoch: creds.0,
                                len: creds.1,
                            },
                        };
                        self.link.send(now, &fr);
                    }
                }
            }
        }

        self.publish_status();
    }

    /// Publishes each replica's replication status into its world, so
    /// `hcs_$metering_get` exports the `repl.*` gauges.
    fn publish_status(&mut self) {
        let max_len = self
            .replicas
            .iter()
            .filter(|r| r.role != Role::Down)
            .map(|r| r.len())
            .max()
            .unwrap_or(0);
        for r in &mut self.replicas {
            let len = r.len();
            let snap = ReplSnapshot {
                role: r.role.name().to_string(),
                epoch: r.epoch,
                commits: len,
                acked: r.acked_len,
                lag: max_len.saturating_sub(len),
                heartbeat_misses: r.stats.heartbeat_misses,
                resends: r.stats.resends,
                fenced: r.stats.fenced,
                catchups: r.stats.catchups,
            };
            r.sm.set_repl_status(Some(snap));
        }
    }

    /// Whether every replica is up with a log identical to the
    /// primary's, nothing in flight and nothing queued.
    pub fn converged(&self) -> bool {
        if self.replicas.iter().any(|r| r.role == Role::Down) {
            return false;
        }
        let p = match self.primary_index() {
            Some(p) => p,
            None => return false,
        };
        let (plen, phead) = (self.replicas[p].len(), self.replicas[p].head());
        self.replicas
            .iter()
            .all(|r| r.len() == plen && r.head() == phead && r.inbox.is_empty())
    }

    /// Ticks (up to `max` times) until the cluster converges with an
    /// empty link; returns whether it did.
    pub fn run_quiet(&mut self, max: u64) -> bool {
        for _ in 0..max {
            if self.converged() && self.link.in_flight() == 0 {
                return true;
            }
            self.tick();
        }
        self.converged() && self.link.in_flight() == 0
    }
}

/// The audit record sealed when a deposed sealer is fenced.
fn fence_audit(deposed: u32, stale_epoch: u64) -> Commit {
    Commit::Audit {
        who: None,
        event: AuditEvent::ProtectionFault {
            fault: format!("repl fence: deposed primary {deposed} refused at epoch {stale_epoch}"),
        },
    }
}

/// What the mixed-workload driver observed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DriveReport {
    /// Commits successfully sealed on a primary.
    pub submitted: u64,
    /// Kernel-level refusals among them (deterministic verdicts).
    pub refused: u64,
    /// Submissions retried because no primary was available.
    pub retries: u64,
    /// Salvager findings at the end of the run.
    pub salvage_problems: u64,
    /// Whether the boot-check diverged at the end of the run.
    pub boot_divergence: bool,
}

/// Submits with retry: a crashed or mid-election cluster refuses, so
/// the driver ticks and tries again, like a client re-dialing.
fn submit_retry(cluster: &mut Cluster, commit: &Commit, report: &mut DriveReport) -> Outcome {
    for _ in 0..400 {
        match cluster.submit(commit) {
            Ok(out) => {
                report.submitted += 1;
                if matches!(out, Outcome::Refused(_)) {
                    report.refused += 1;
                }
                return out;
            }
            Err(_) => {
                report.retries += 1;
                cluster.tick();
            }
        }
    }
    panic!("replication cluster made no progress after 400 ticks submitting {commit:?}");
}

/// Drives the E15-shaped mixed workload through the cluster: the same
/// seeded six-way operation mix the fault experiments use (minus the
/// in-machine crash sites — here the *cluster* is what fails), with
/// one cluster tick per operation and the recovery tail at the end.
pub fn drive_mixed_workload(cluster: &mut Cluster, seed: u64, ops: u64) -> DriveReport {
    let mut report = DriveReport::default();
    let admin = match submit_retry(
        cluster,
        &Commit::CreateProcess {
            user: admin_user(),
            label: Label::BOTTOM,
            ring: 4,
        },
        &mut report,
    ) {
        Outcome::Pid(p) => p,
        out => panic!("admin process creation returned {out:?}"),
    };
    let root = submit_retry(cluster, &Commit::BindRoot { pid: admin }, &mut report)
        .seg()
        .expect("root binds");
    let stranger = match submit_retry(
        cluster,
        &Commit::CreateProcess {
            user: mks_fs::UserId::new("Mallory", "Guest", "a"),
            label: Label::BOTTOM,
            ring: 4,
        },
        &mut report,
    ) {
        Outcome::Pid(p) => p,
        out => panic!("stranger process creation returned {out:?}"),
    };
    let sroot = submit_retry(cluster, &Commit::BindRoot { pid: stranger }, &mut report)
        .seg()
        .expect("root binds");
    let probe = submit_retry(
        cluster,
        &Commit::CreateSegment {
            pid: admin,
            dir: root,
            name: "probe".into(),
            acl: Acl::of("Admin.SysAdmin.a", AclMode::RW),
            brackets: RingBrackets::new(4, 4, 4),
            label: Label::BOTTOM,
        },
        &mut report,
    )
    .seg()
    .expect("probe segment creates on a fresh system");
    submit_retry(cluster, &Commit::Tick { times: 4 }, &mut report);

    let mut rng = SplitMix64::new(seed ^ 0xd1f7_ac75_0bad_c0de);
    let mut dirs = vec![root];
    let secret = Label::new(Level::SECRET, Compartments::of(&[1]));
    for i in 0..ops {
        match rng.below(6) {
            0 => {
                let parent = dirs[rng.below(dirs.len() as u64) as usize];
                let label = if rng.below(2) == 0 {
                    Label::BOTTOM
                } else {
                    secret
                };
                if let Some(segno) = submit_retry(
                    cluster,
                    &Commit::CreateDirectory {
                        pid: admin,
                        dir: parent,
                        name: format!("d{i}"),
                        label,
                    },
                    &mut report,
                )
                .seg()
                {
                    dirs.push(segno);
                }
            }
            1 => {
                let parent = dirs[rng.below(dirs.len() as u64) as usize];
                submit_retry(
                    cluster,
                    &Commit::CreateSegment {
                        pid: admin,
                        dir: parent,
                        name: format!("s{i}"),
                        acl: Acl::of("*.*.*", AclMode::RW),
                        brackets: RingBrackets::new(4, 4, 4),
                        label: secret,
                    },
                    &mut report,
                );
            }
            2 => {
                let offset = rng.below(64);
                submit_retry(
                    cluster,
                    &Commit::Write {
                        pid: admin,
                        seg: probe,
                        offset,
                        value: i + 1,
                    },
                    &mut report,
                );
                submit_retry(
                    cluster,
                    &Commit::Read {
                        pid: admin,
                        seg: probe,
                        offset,
                    },
                    &mut report,
                );
            }
            3 => {
                submit_retry(
                    cluster,
                    &Commit::Initiate {
                        pid: stranger,
                        dir: sroot,
                        name: "probe".into(),
                    },
                    &mut report,
                );
            }
            4 => {
                submit_retry(cluster, &Commit::Wakeup { daemon: 0 }, &mut report);
                submit_retry(cluster, &Commit::Tick { times: 1 }, &mut report);
            }
            _ => {
                submit_retry(cluster, &Commit::Tick { times: 2 }, &mut report);
            }
        }
        cluster.tick();
    }
    submit_retry(cluster, &Commit::Tick { times: 4 }, &mut report);
    report.salvage_problems = match submit_retry(cluster, &Commit::Salvage, &mut report) {
        Outcome::Value(n) => n,
        _ => 0,
    };
    report.boot_divergence =
        submit_retry(cluster, &Commit::BootCheck, &mut report) != Outcome::Value(0);
    submit_retry(cluster, &Commit::MeteringGet { pid: admin }, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mks_hw::{FaultEvent, FaultPlan};

    fn small_cluster(seed: u64) -> Cluster {
        Cluster::new(
            Genesis::kernel_small(),
            ReplConfig {
                seed,
                ..ReplConfig::default()
            },
        )
    }

    #[test]
    fn frames_round_trip_over_the_codec() {
        let frames = vec![
            Frame {
                from: 0,
                to: 2,
                epoch: 7,
                body: Body::Heartbeat {
                    len: 5,
                    head: 0xabcd,
                    acked: 3,
                },
            },
            Frame {
                from: 1,
                to: 0,
                epoch: 7,
                body: Body::Nack {
                    have_len: 4,
                    have_head: 0x1234,
                    divergent: true,
                },
            },
            Frame {
                from: 2,
                to: 0,
                epoch: 8,
                body: Body::VoteRequest {
                    last_epoch: 7,
                    len: 5,
                },
            },
            Frame {
                from: 0,
                to: 2,
                epoch: 8,
                body: Body::VoteGrant,
            },
            Frame {
                from: 1,
                to: 2,
                epoch: 8,
                body: Body::FenceReport {
                    deposed: 0,
                    deposed_epoch: 7,
                },
            },
        ];
        for f in frames {
            let bytes = f.encode();
            assert_eq!(Frame::decode(&bytes).expect("frame decodes"), f);
        }
        let mut bad = Frame {
            from: 0,
            to: 1,
            epoch: 1,
            body: Body::VoteGrant,
        }
        .encode();
        let last = bad.len() - 1;
        bad[last] = 99;
        assert!(matches!(
            Frame::decode(&bad),
            Err(WireError::BadTag { what: "Body", .. })
        ));
    }

    #[test]
    fn quiet_cluster_replicates_and_converges() {
        let mut cluster = small_cluster(11);
        let report = drive_mixed_workload(&mut cluster, 11, 40);
        assert!(report.submitted > 40);
        assert_eq!(report.retries, 0, "no faults, no retries");
        assert!(cluster.run_quiet(600), "quiet cluster converges");
        let plog = cluster.log_of(0);
        for id in 1..cluster.replica_count() as u32 {
            assert_eq!(cluster.log_of(id).len(), plog.len());
            assert_eq!(cluster.log_of(id).head(), plog.head());
            assert_eq!(cluster.digest_of(id), cluster.digest_of(0));
        }
        let reduced = reduce(cluster.genesis(), plog).expect("replicated log reduces");
        assert_eq!(reduced.digest(), cluster.digest_of(0));
        assert!(cluster.sealer_violations().is_empty());
        let status = cluster.status_of(0).expect("status published");
        assert_eq!(status.role, "primary");
        assert_eq!(status.commits, plog.len());
    }

    #[test]
    fn primary_crash_promotes_an_up_to_date_backup() {
        let mut cluster = small_cluster(23);
        let plan = FaultPlan {
            seed: 23,
            events: vec![FaultEvent {
                kind: InjectKind::ReplPrimaryCrash,
                nth: 30,
                detail: 0x0100, // amnesia restart, prompt
            }],
        };
        cluster.arm(&plan);
        let report = drive_mixed_workload(&mut cluster, 23, 60);
        cluster.disarm();
        assert!(report.retries > 0, "the crash forced client retries");
        assert_eq!(cluster.promotions(), 1, "exactly one election won");
        assert!(cluster.run_quiet(2000), "cluster heals after the crash");
        for check in cluster.failover_checks() {
            assert!(check.digest_equal, "promoted digest equals reduce()");
            assert!(check.acked_covered, "no acked commit lost");
        }
        assert!(cluster.sealer_violations().is_empty(), "no split brain");
        let p = cluster.primary().expect("a primary exists");
        assert_ne!(p, 0, "a backup was promoted");
        // The deposed replica rejoined and now tracks the new epoch.
        assert_eq!(cluster.epoch_of(0), cluster.max_epoch());
        assert_eq!(cluster.role_of(0), Role::Backup);
        // A deposed (now mere backup) replica cannot seal.
        let err = cluster
            .seal_as(0, &Commit::Tick { times: 1 })
            .expect_err("backup seal refused");
        assert!(matches!(
            err,
            ReplError::NotPrimary { id: 0 } | ReplError::Deposed { id: 0, .. }
        ));
    }

    #[test]
    fn repl_errors_render_and_chain_sources() {
        let e = ReplError::Deposed {
            id: 2,
            epoch: 3,
            current: 5,
        };
        assert!(e.to_string().contains("fenced by epoch 5"));
        let w = ReplError::Wire(WireError::Trailing { extra: 4 });
        assert!(std::error::Error::source(&w).is_some());
        assert!(std::error::Error::source(&e).is_none());
    }
}
