//! Host-parallel execution of independent kernel **lanes** (E19).
//!
//! The simulated kernel is single-address-space by construction (every
//! `Machine` hangs off `Rc` handles), so host-side parallelism shards at
//! the *world* boundary: a **lane** is a complete, independently seeded
//! [`System`] — boot image, work-stealing traffic controller, parallel
//! page control, audit log, admission control — and [`run_lanes`] fans a
//! set of lanes out over OS threads with a **static** lane→thread
//! assignment (`lane % threads`). Because each lane's result depends only
//! on its own seed, the per-lane [`LaneReport`] must be *byte-identical*
//! whatever `threads` is; the sequential==parallel differential
//! ([`differential_mismatches`]) machine-checks exactly that, extending
//! the page-control differential of `mks_vm::parallel` to the whole
//! kernel: boot hash, audit log, metrics registry, gate census, clock.
//!
//! Anything thread-count-dependent that leaks into a lane — an iteration
//! over a `HashMap` with a per-instance hasher, a host timestamp, a
//! shared counter — shows up here as a digest mismatch, which is the
//! point: determinism is what makes the parallel kernel *certifiable*
//! (the paper's auditing argument depends on reproducible evidence).

use std::thread;

use mks_hw::{SegUid, SplitMix64, PAGE_WORDS};
use mks_procs::{Effects, FnJob, SchedMode, Step, TcConfig, TrafficController};
use mks_vm::parallel::TraceJob;
use mks_vm::{BulkFreerJob, ClockPolicy, CoreFreerJob, ParallelConfig, ParallelPageControl};

use crate::config::KernelConfig;
use crate::init;
use crate::pressure::{PressureConfig, Priority};
use crate::syslog::AuditEvent;
use crate::world::{admin_user, KernelWorld, System, SystemSize};

/// Shape of a lane fleet: how many lanes, how many host threads carry
/// them, and how big each lane's simulated workload is.
#[derive(Clone, Copy, Debug)]
pub struct LaneConfig {
    /// Independent kernel worlds to run.
    pub lanes: usize,
    /// Host threads to shard them over (1 = run inline, no spawning).
    pub threads: usize,
    /// Simulated CPUs in each lane's work-stealing traffic controller.
    pub nr_cpus: usize,
    /// Base seed; each lane derives its own stream from it.
    pub seed: u64,
    /// Paging processes per lane.
    pub procs: usize,
    /// Page references each paging process issues.
    pub refs_per_proc: usize,
}

impl Default for LaneConfig {
    fn default() -> LaneConfig {
        LaneConfig {
            lanes: 4,
            threads: 1,
            nr_cpus: 4,
            seed: 0xE19,
            procs: 3,
            refs_per_proc: 48,
        }
    }
}

/// Everything audit-visible about one finished lane, digested. Two runs
/// of the same lane must compare equal field-for-field regardless of the
/// host thread count.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LaneReport {
    /// Which lane this is.
    pub lane: usize,
    /// Digest of the boot target state ([`init::state_hash`]).
    pub boot_hash: u64,
    /// FNV-1a digest of the full audit log.
    pub audit_digest: u64,
    /// Number of audit records behind the digest.
    pub audit_records: usize,
    /// FNV-1a digest of the metrics-registry JSON snapshot.
    pub metrics_digest: u64,
    /// Length of the snapshot JSON behind the digest.
    pub metrics_len: usize,
    /// User-available gate census (must stay pinned at 54).
    pub census: usize,
    /// Final simulated clock.
    pub clock: u64,
    /// Job steps the lane's scheduler dispatched.
    pub steps: u64,
    /// Work-stealing migrations that happened.
    pub steals: u64,
    /// Page faults the lane serviced.
    pub faults: u64,
    /// Lock-order violations observed (must be 0).
    pub lock_violations: u64,
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `f(lane)` for every `lane in 0..lanes`, sharded over `threads`
/// host threads with the static assignment `lane % threads`.
///
/// With `threads <= 1` everything runs inline on the caller's thread —
/// that is the baseline arm of the differential, not a degenerate case.
/// Results come back in lane order either way.
///
/// # Panics
/// Propagates a panic from any lane (a poisoned lane must fail the run,
/// not vanish into a thread).
pub fn run_lanes<T, F>(lanes: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || lanes <= 1 {
        return (0..lanes).map(f).collect();
    }
    let threads = threads.min(lanes);
    let mut slots: Vec<Option<T>> = (0..lanes).map(|_| None).collect();
    thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    (t..lanes)
                        .step_by(threads)
                        .map(|lane| (lane, f(lane)))
                        .collect::<Vec<(usize, T)>>()
                })
            })
            .collect();
        for h in handles {
            for (lane, v) in h.join().expect("lane thread panicked") {
                slots[lane] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every lane assigned to exactly one thread"))
        .collect()
}

/// Builds and runs one complete kernel lane, returning its digest.
///
/// The workload deliberately crosses every subsystem the differential
/// guards: process creation and login audits (audit-log lock), a
/// work-stealing scheduler run mixing paging processes with the two
/// dedicated freeing daemons (run-queue locks, page control, AST, bulk
/// map), auditor jobs appending through the kernel choke point
/// mid-schedule, and an admission-control overload slice (E16 shape).
pub fn lane_world_run(cfg: &LaneConfig, lane: usize) -> LaneReport {
    let kcfg = KernelConfig::kernel();
    let boot_hash = init::state_hash(&init::target_state(&kcfg));
    let mut sys = System::with_size(
        kcfg,
        SystemSize {
            frames: 16,
            bulk_records: 64,
            ..SystemSize::default()
        },
    );
    let lane_seed = cfg
        .seed
        .wrapping_add((lane as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));

    // The lane's own scheduler: work-stealing over `nr_cpus` simulated
    // CPUs. The page-control event channels are re-allocated on it so
    // daemon and faulting-process wakeups stay wired up.
    let mut tc: TrafficController<KernelWorld> = TrafficController::new(TcConfig {
        nr_cpus: cfg.nr_cpus,
        nr_vprocs: cfg.procs + 6,
        quantum: 4,
        sched: SchedMode::WorkStealing { seed: lane_seed },
    });
    sys.world.pc = ParallelPageControl::new(
        ParallelConfig {
            core_low: 2,
            core_target: 4,
            bulk_low: 4,
            bulk_target: 8,
        },
        &mut tc,
    );
    tc.add_dedicated(Box::new(CoreFreerJob::new(
        Box::new(ClockPolicy::default()),
    )));
    tc.add_dedicated(Box::new(BulkFreerJob));

    // Login slice: every lane creates (and audits) a few processes.
    for i in 0..3u32 {
        let pid = sys
            .world
            .create_process(admin_user(), mks_mls::Label::BOTTOM, 4);
        sys.world
            .audit(Some(admin_user()), AuditEvent::Login { success: true });
        sys.world.audit(
            Some(admin_user()),
            AuditEvent::Lifecycle {
                what: format!("lane {lane} process {i} created as {pid:?}"),
            },
        );
    }

    // Paging slice: `procs` trace processes over private segments, under
    // enough frame pressure that the freeing daemons must run.
    let pages = 8usize;
    let mut rng = SplitMix64::new(lane_seed ^ 0xE19);
    for p in 0..cfg.procs {
        let uid = SegUid(1_000 + (lane * 100 + p) as u64);
        sys.world.vm.machine.ast.activate(uid, pages * PAGE_WORDS);
        let refs: Vec<(SegUid, usize)> = (0..cfg.refs_per_proc)
            .map(|_| (uid, rng.below(pages as u64) as usize))
            .collect();
        tc.spawn(Box::new(TraceJob::new(refs, 4)));
    }

    // Audit slice: two auditors appending through the kernel choke point
    // while the paging schedule interleaves around them.
    for j in 0..2u32 {
        let mut left = 8u32;
        tc.spawn(Box::new(FnJob::new(
            "auditor",
            move |e: &mut Effects<'_, KernelWorld>| {
                left -= 1;
                let what = format!("lane {lane} auditor {j} beat {left}");
                e.ctx.audit(None, AuditEvent::Lifecycle { what });
                if left == 0 {
                    Step::Done
                } else {
                    Step::Continue
                }
            },
        )));
    }

    let out = tc.run_until_quiet(&mut sys.world, 2_000_000);
    assert!(out.quiescent, "lane {lane} wedged");

    // Overload slice: the E16 admission path, against a deterministic
    // pressure ramp; sheds are audited like the resilience layer does.
    sys.world.admission.enable(PressureConfig::default());
    for i in 0..24u32 {
        let pressure = (i * 83 + lane as u32 * 17) % 1_000;
        let prio = Priority::ALL[(i as usize) % Priority::ALL.len()];
        if !sys.world.admission.decide(prio, pressure) {
            sys.world.audit(
                None,
                AuditEvent::Overload {
                    what: format!("lane {lane} request {i}"),
                    pressure_permille: pressure,
                },
            );
        }
    }

    let mut log_bytes = Vec::new();
    for r in sys.world.log.records() {
        log_bytes.extend_from_slice(format!("{r:?}\n").as_bytes());
    }
    let snap_json = sys.world.vm.machine.trace.snapshot().to_json();
    let lock_audit = sys.world.vm.machine.locks.audit();
    let stats = tc.stats();
    LaneReport {
        lane,
        boot_hash,
        audit_digest: fnv64(&log_bytes),
        audit_records: sys.world.log.len(),
        metrics_digest: fnv64(snap_json.as_bytes()),
        metrics_len: snap_json.len(),
        census: sys.world.gates.user_available_entries(),
        clock: sys.world.vm.machine.clock.now(),
        steps: stats.steps,
        steals: stats.steals,
        faults: sys.world.vm.stats().faults,
        lock_violations: lock_audit.violations,
    }
}

/// Runs the fleet described by `cfg` and returns the lane reports in
/// lane order.
pub fn lane_reports(cfg: &LaneConfig) -> Vec<LaneReport> {
    run_lanes(cfg.lanes, cfg.threads, |lane| lane_world_run(cfg, lane))
}

/// The whole-kernel sequential==parallel differential: runs the fleet at
/// `threads = 1` (the baseline), then at every thread count `2..=
/// max_threads`, and counts lane reports that differ from the baseline
/// in *any* field. A correct sharded kernel returns 0.
pub fn differential_mismatches(cfg: &LaneConfig, max_threads: usize) -> u64 {
    let base = lane_reports(&LaneConfig { threads: 1, ..*cfg });
    let mut mismatches = 0u64;
    for threads in 2..=max_threads {
        let got = lane_reports(&LaneConfig { threads, ..*cfg });
        mismatches += got.iter().zip(&base).filter(|(g, b)| g != b).count() as u64;
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn small() -> LaneConfig {
        LaneConfig {
            lanes: 3,
            procs: 2,
            refs_per_proc: 24,
            ..LaneConfig::default()
        }
    }

    #[test]
    fn run_lanes_runs_every_lane_exactly_once() {
        let hits = AtomicUsize::new(0);
        let out = run_lanes(7, 3, |lane| {
            hits.fetch_add(1, Ordering::SeqCst);
            lane * 10
        });
        assert_eq!(hits.load(Ordering::SeqCst), 7);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn lane_worlds_actually_exercise_the_kernel() {
        let r = lane_world_run(&small(), 0);
        assert!(r.steps > 0, "scheduler ran nothing");
        assert!(r.faults > 0, "no paging happened");
        assert!(r.audit_records > 5, "audit choke point unused");
        assert_eq!(r.census, 54, "gate census moved");
        assert_eq!(r.lock_violations, 0, "lock order violated");
    }

    #[test]
    fn lane_reports_are_deterministic() {
        let cfg = small();
        assert_eq!(lane_world_run(&cfg, 1), lane_world_run(&cfg, 1));
    }

    #[test]
    fn thread_count_never_changes_a_lane_report() {
        assert_eq!(differential_mismatches(&small(), 3), 0);
    }

    #[test]
    fn different_lanes_diverge() {
        let cfg = small();
        let a = lane_world_run(&cfg, 0);
        let b = lane_world_run(&cfg, 1);
        assert_ne!(a.audit_digest, b.audit_digest);
    }
}
