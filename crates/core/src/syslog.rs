//! The kernel audit log (`syserr` in Multics terms).
//!
//! The paper's *review* activity — "a list of all known Multics security
//! flaws is maintained" — needs raw material: the kernel records every
//! security-relevant event (denials, violations, authentications, gate
//! refusals) with its acting principal. The log is kernel state, append
//! only; non-kernel code cannot erase its tracks.

use mks_fs::UserId;
use mks_hw::Cycles;

/// The kind of security-relevant event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AuditEvent {
    /// A reference was denied (ACL, MLS, ring — the monitor's NoInfo and
    /// violation answers).
    AccessDenied {
        /// What was asked for.
        what: String,
    },
    /// A hardware protection violation fault was taken.
    ProtectionFault {
        /// Fault description.
        fault: String,
    },
    /// A login attempt.
    Login {
        /// Whether it succeeded.
        success: bool,
    },
    /// A gate call refused (wrong ring or unknown entry).
    GateRefused {
        /// The gate and entry.
        target: String,
    },
    /// An object was created or destroyed (coarse lifecycle tracking).
    Lifecycle {
        /// Description.
        what: String,
    },
    /// Admission control shed a request under resource pressure, or a
    /// bounded retry path gave up. Not a denial — the caller was entitled
    /// to the operation; the kernel refused it *now* to protect its
    /// invariants. Audited so degradation is reviewable after the fact.
    Overload {
        /// The operation that was shed.
        what: String,
        /// Peak pressure (permille) at refusal time.
        pressure_permille: u32,
    },
}

/// One log record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AuditRecord {
    /// Monotone sequence number.
    pub seq: u64,
    /// Simulated time of the event.
    pub at: Cycles,
    /// Acting principal (if known).
    pub who: Option<UserId>,
    /// The event.
    pub event: AuditEvent,
}

/// The append-only kernel log.
#[derive(Debug, Default)]
pub struct AuditLog {
    records: Vec<AuditRecord>,
    next_seq: u64,
    /// Time of the newest record, or `None` until the first append. The
    /// very first record *establishes* the baseline — whatever time it
    /// claims, there is nothing earlier on file to contradict it, so it
    /// can never flag a skew (even if an injected warp moved it backwards
    /// before the log saw it).
    last_at: Option<Cycles>,
    clock_skews: u64,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> AuditLog {
        AuditLog::default()
    }

    /// Appends a record.
    ///
    /// Timestamps must be non-decreasing: a record claiming to predate the
    /// last one is a sign of clock tampering (or a kernel bug), and a log
    /// whose order contradicts its timestamps is useless for review. Such a
    /// record is kept — dropping evidence would be worse — but its `at` is
    /// saturated up to the last seen time and the skew is flagged in
    /// [`AuditLog::clock_skews`].
    ///
    /// The **first** record is the baseline: it is stored as claimed and
    /// never counts as a skew, because an empty log has no earlier time to
    /// contradict it. Skew detection is a statement about *order within
    /// the log*, not about absolute time.
    pub fn append(&mut self, at: Cycles, who: Option<UserId>, event: AuditEvent) -> u64 {
        let at = match self.last_at {
            Some(last) if at < last => {
                self.clock_skews += 1;
                last
            }
            _ => {
                self.last_at = Some(at);
                at
            }
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.records.push(AuditRecord {
            seq,
            at,
            who,
            event,
        });
        seq
    }

    /// Appends a batch of records sharing one timestamp, growing the log
    /// once. Each record goes through exactly the per-record
    /// [`AuditLog::append`] logic, so a batch of N is byte-identical to N
    /// single appends at the same instant — the E18 differential claim.
    /// Returns the sequence number of the first record (the batch is
    /// `first..first + batch.len()`), or the current next-seq for an
    /// empty batch.
    pub fn append_batch(
        &mut self,
        at: Cycles,
        batch: impl IntoIterator<Item = (Option<UserId>, AuditEvent)>,
    ) -> u64 {
        let first = self.next_seq;
        let batch = batch.into_iter();
        self.records.reserve(batch.size_hint().0);
        for (who, event) in batch {
            self.append(at, who, event);
        }
        first
    }

    /// Number of appends whose timestamp ran backwards and was saturated.
    /// Nonzero is a red flag for the review activity.
    pub fn clock_skews(&self) -> u64 {
        self.clock_skews
    }

    /// Records with sequence number `from_seq` or later — the incremental
    /// read used by a reviewer polling the log ("everything since the last
    /// snapshot I took").
    pub fn snapshot_range(&self, from_seq: u64) -> &[AuditRecord] {
        // seq is assigned densely from 0, so it doubles as the index.
        let start = usize::try_from(from_seq.min(self.next_seq)).unwrap_or(self.records.len());
        &self.records[start.min(self.records.len())..]
    }

    /// All records, in order. (Read-only: there is deliberately no way to
    /// remove or rewrite a record.)
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Records whose event matches `pred`.
    pub fn matching<'a>(
        &'a self,
        mut pred: impl FnMut(&AuditEvent) -> bool + 'a,
    ) -> impl Iterator<Item = &'a AuditRecord> {
        self.records.iter().filter(move |r| pred(&r.event))
    }

    /// Count of denial-shaped records (the review activity's first query).
    pub fn nr_denials(&self) -> usize {
        self.records
            .iter()
            .filter(|r| {
                matches!(
                    r.event,
                    AuditEvent::AccessDenied { .. }
                        | AuditEvent::ProtectionFault { .. }
                        | AuditEvent::GateRefused { .. }
                )
            })
            .count()
    }

    /// Principals with repeated denials (candidate probes) — principals
    /// with at least `threshold` denial records.
    pub fn suspicious_principals(&self, threshold: usize) -> Vec<(UserId, usize)> {
        let mut counts: std::collections::HashMap<UserId, usize> = Default::default();
        for r in &self.records {
            if let (Some(who), true) = (
                r.who.clone(),
                matches!(
                    r.event,
                    AuditEvent::AccessDenied { .. }
                        | AuditEvent::ProtectionFault { .. }
                        | AuditEvent::GateRefused { .. }
                ),
            ) {
                *counts.entry(who).or_default() += 1;
            }
        }
        let mut v: Vec<_> = counts
            .into_iter()
            .filter(|(_, c)| *c >= threshold)
            .collect();
        v.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| a.0.to_acl_string().cmp(&b.0.to_acl_string()))
        });
        v
    }

    /// Total records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mallory() -> UserId {
        UserId::new("Mallory", "Guest", "a")
    }

    #[test]
    fn records_are_sequenced_and_immutable_in_shape() {
        let mut log = AuditLog::new();
        let a = log.append(10, None, AuditEvent::Login { success: true });
        let b = log.append(
            20,
            Some(mallory()),
            AuditEvent::AccessDenied { what: "x".into() },
        );
        assert_eq!((a, b), (0, 1));
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.records()[1].at, 20);
    }

    #[test]
    fn denial_counting_and_matching() {
        let mut log = AuditLog::new();
        log.append(
            1,
            Some(mallory()),
            AuditEvent::AccessDenied { what: "a".into() },
        );
        log.append(
            2,
            Some(mallory()),
            AuditEvent::GateRefused {
                target: "hphcs_$shutdown".into(),
            },
        );
        log.append(3, None, AuditEvent::Login { success: false });
        assert_eq!(log.nr_denials(), 2);
        assert_eq!(
            log.matching(|e| matches!(e, AuditEvent::Login { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn repeated_probes_surface_as_suspicious() {
        let mut log = AuditLog::new();
        for i in 0..5 {
            log.append(
                i,
                Some(mallory()),
                AuditEvent::AccessDenied {
                    what: format!("p{i}"),
                },
            );
        }
        log.append(
            9,
            Some(UserId::new("Jones", "CSR", "a")),
            AuditEvent::AccessDenied {
                what: "one-off".into(),
            },
        );
        let sus = log.suspicious_principals(3);
        assert_eq!(sus.len(), 1);
        assert_eq!(sus[0].0, mallory());
        assert_eq!(sus[0].1, 5);
    }

    #[test]
    fn suspicious_ties_break_on_principal_name() {
        let mut log = AuditLog::new();
        let zed = UserId::new("Zed", "Guest", "a");
        let abe = UserId::new("Abe", "Guest", "a");
        // Interleave so insertion order cannot accidentally produce the
        // expected ordering: Zed logs first, but Abe sorts first.
        for i in 0..3 {
            log.append(
                2 * i,
                Some(zed.clone()),
                AuditEvent::AccessDenied { what: "z".into() },
            );
            log.append(
                2 * i + 1,
                Some(abe.clone()),
                AuditEvent::AccessDenied { what: "a".into() },
            );
        }
        for i in 0..4 {
            log.append(
                100 + i,
                Some(mallory()),
                AuditEvent::AccessDenied { what: "m".into() },
            );
        }
        let sus = log.suspicious_principals(3);
        assert_eq!(sus.len(), 3);
        assert_eq!(sus[0], (mallory(), 4), "highest count first");
        assert_eq!(sus[1], (abe, 3), "equal counts sort by principal string");
        assert_eq!(sus[2], (zed, 3));
    }

    #[test]
    fn backwards_timestamps_saturate_and_flag() {
        let mut log = AuditLog::new();
        log.append(100, None, AuditEvent::Login { success: true });
        // A record claiming to predate the last one is kept, but its time
        // is pulled up and the skew counted.
        log.append(
            40,
            Some(mallory()),
            AuditEvent::AccessDenied { what: "x".into() },
        );
        log.append(150, None, AuditEvent::Login { success: false });
        assert_eq!(log.clock_skews(), 1);
        let times: Vec<Cycles> = log.records().iter().map(|r| r.at).collect();
        assert_eq!(times, vec![100, 100, 150], "timestamps are non-decreasing");
        // Equal timestamps are fine (many events in one cycle).
        log.append(150, None, AuditEvent::Login { success: true });
        assert_eq!(log.clock_skews(), 1);
    }

    #[test]
    fn snapshot_range_reads_incrementally() {
        let mut log = AuditLog::new();
        for i in 0..5 {
            log.append(
                i,
                None,
                AuditEvent::Lifecycle {
                    what: format!("e{i}"),
                },
            );
        }
        assert_eq!(log.snapshot_range(0).len(), 5);
        let tail = log.snapshot_range(3);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 3);
        // Past-the-end and absurd starting points are empty, not a panic.
        assert!(log.snapshot_range(5).is_empty());
        assert!(log.snapshot_range(u64::MAX).is_empty());
    }
}
