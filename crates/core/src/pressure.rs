//! Overload resilience: pressure gauges, priority classes, and admission
//! control at the kernel's gate layer.
//!
//! Schroeder's auditability argument is hollow if the kernel can be
//! wedged by a quota storm or a page-frame famine: a supervisor that
//! stalls or panics under hostile load has lost its invariants just as
//! surely as one that leaks a segment. This module gives the kernel a
//! *graceful degradation* posture instead:
//!
//! * [`read_pressure`] computes per-resource **pressure gauges** (page
//!   frames, AST occupancy, traffic-controller run slots, the root quota
//!   cell, audit-log headroom) directly from kernel state, in permille;
//! * every kernel process carries a [`Priority`] class (default
//!   [`Priority::Normal`]), and each class has an admission threshold —
//!   strictly increasing with priority, so under rising pressure the
//!   kernel **sheds lowest-priority work first**, provably: a class is
//!   refused only at pressures where every lower class is also refused;
//! * a shed request gets a typed
//!   [`AccessError::Overload`](crate::monitor::AccessError::Overload)
//!   refusal — audited, never a stall, never a panic;
//! * admitted requests may carry a **deadline** (trace-clock cycles);
//!   bounded retry paths (paging famine, quota storms) give up with the
//!   same typed refusal once the deadline passes.
//!
//! The whole layer is **disabled by default** and is then a strict
//! no-op: [`AdmissionControl::disabled`] admits everything without
//! reading a gauge or writing a metric, so a system that never calls
//! [`AdmissionControl::enable`] is behavior-identical to one built
//! before this module existed (machine-checked by the differential test
//! in `tests/overload_resilience.rs`).

use std::collections::HashMap;

use mks_hw::Cycles;

use crate::world::{KProcId, KernelWorld};

/// Priority classes for kernel gate calls, lowest first. The discriminant
/// order *is* the shed order: under pressure, `Background` is refused
/// first and `System` last (by default, never).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Priority {
    /// Bulk, deferrable work (backup sweeps, absentee jobs).
    Background = 0,
    /// Ordinary interactive computing — the default class.
    Normal = 1,
    /// Latency-sensitive sessions (the operator's terminal).
    Interactive = 2,
    /// Kernel housekeeping and the answering service: never shed.
    System = 3,
}

/// Number of [`Priority`] classes.
pub const NR_PRIORITIES: usize = 4;

impl Priority {
    /// Every class, lowest (shed-first) to highest.
    pub const ALL: [Priority; NR_PRIORITIES] = [
        Priority::Background,
        Priority::Normal,
        Priority::Interactive,
        Priority::System,
    ];

    /// Stable lower-case name, used in metrics and reports.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Background => "background",
            Priority::Normal => "normal",
            Priority::Interactive => "interactive",
            Priority::System => "system",
        }
    }

    /// The class's index in discriminant order.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// The resources the pressure gauges track.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Resource {
    /// Primary-memory cascade saturation: core occupancy blended with
    /// bulk-store occupancy (a full core behind an empty bulk store is
    /// healthy demand paging; a full core behind a full bulk store is
    /// imminent famine).
    Frames = 0,
    /// Active-segment-table occupancy against the configured soft cap
    /// (the simulated AST grows unboundedly, so the cap supplies the
    /// "table full" notion real hardware imposed).
    AstSlots = 1,
    /// Traffic-controller shared run slots (fed externally via
    /// [`AdmissionControl::set_run_slots`]; zero pressure until fed).
    RunSlots = 2,
    /// The root quota cell's used fraction — the storage system's
    /// aggregate headroom.
    Quota = 3,
    /// Audit-log length against the configured cap: a flooded log is a
    /// review activity that can no longer keep up.
    AuditHeadroom = 4,
}

/// Number of tracked [`Resource`]s.
pub const NR_RESOURCES: usize = 5;

impl Resource {
    /// Every resource, in discriminant order.
    pub const ALL: [Resource; NR_RESOURCES] = [
        Resource::Frames,
        Resource::AstSlots,
        Resource::RunSlots,
        Resource::Quota,
        Resource::AuditHeadroom,
    ];

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Resource::Frames => "frames",
            Resource::AstSlots => "ast-slots",
            Resource::RunSlots => "run-slots",
            Resource::Quota => "quota",
            Resource::AuditHeadroom => "audit-headroom",
        }
    }

    /// The flight-recorder gauge name (`pressure.<resource>`), published
    /// as histogram observations so `hcs_$metering_get` exports the
    /// distribution.
    pub fn gauge_name(self) -> &'static str {
        match self {
            Resource::Frames => "pressure.frames",
            Resource::AstSlots => "pressure.ast_slots",
            Resource::RunSlots => "pressure.run_slots",
            Resource::Quota => "pressure.quota",
            Resource::AuditHeadroom => "pressure.audit_headroom",
        }
    }
}

/// Tuning for the pressure layer. All thresholds are in permille of
/// utilization (0 = idle, 1000 = exhausted).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PressureConfig {
    /// Soft capacity for AST occupancy (the simulated table is unbounded;
    /// this supplies the exhaustion point).
    pub ast_soft_cap: usize,
    /// Audit-log record count treated as a full log.
    pub audit_cap: usize,
    /// Admission threshold per priority class, indexed by
    /// [`Priority::index`]. A call of class `p` is admitted iff the peak
    /// pressure is *below* `shed_permille[p]`. Must be non-decreasing in
    /// priority so shedding is lowest-priority-first; a value above 1000
    /// means "never shed".
    pub shed_permille: [u32; NR_PRIORITIES],
    /// Deadline budget granted to each admitted call, if any: the call's
    /// deadline is `now + budget` on the trace clock, and bounded retry
    /// paths refuse with `Overload` once it passes.
    pub deadline_budget: Option<Cycles>,
}

/// One pressure reading: per-resource utilization in permille.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PressureReading {
    /// Utilization per resource, indexed in [`Resource::ALL`] order.
    pub permille: [u32; NR_RESOURCES],
}

impl PressureReading {
    /// The peak pressure across all resources — the number admission
    /// decisions are made on.
    pub fn peak(&self) -> u32 {
        *self.permille.iter().max().expect("non-empty")
    }

    /// The resource at peak pressure (first of equals in
    /// [`Resource::ALL`] order).
    pub fn dominant(&self) -> Resource {
        let peak = self.peak();
        Resource::ALL[self
            .permille
            .iter()
            .position(|p| *p == peak)
            .expect("peak exists")]
    }
}

fn permille(used: usize, capacity: usize) -> u32 {
    if capacity == 0 {
        return 0;
    }
    ((used.min(capacity) as u64 * 1000) / capacity as u64) as u32
}

/// Computes the current pressure gauges from kernel state. Pure
/// observation: reads counters and table sizes, moves no clock, writes no
/// metric.
pub fn read_pressure(world: &KernelWorld) -> PressureReading {
    let cfg = &world.admission.cfg;
    // Primary-memory pressure is *cascade saturation*, not occupancy: a
    // demand-paged kernel keeps its free pool near empty by design, so a
    // full core alone is healthy. Famine risk is real when the bulk store
    // behind it is also filling — eviction then cascades to disk on every
    // fault. Blend the two levels so the gauge rises smoothly toward 1000
    // as the whole hierarchy saturates.
    let total_frames = world.vm.machine.mem.nr_frames();
    let free_frames = world.vm.nr_free_frames();
    let core = permille(total_frames.saturating_sub(free_frames), total_frames);
    let bulk_cap = world.vm.bulk.capacity();
    let bulk = permille(bulk_cap - world.vm.bulk.free_records(), bulk_cap);
    let frames = (core + bulk) / 2;
    let ast = permille(world.vm.machine.ast.nr_active(), cfg.ast_soft_cap);
    let run_slots = match world.admission.run_slots {
        Some((used, total)) => permille(used, total),
        None => 0,
    };
    let quota = match world.fs.quota_cell(mks_fs::FileSystem::ROOT) {
        Ok(Some(cell)) => permille(cell.used_pages as usize, cell.limit_pages as usize),
        _ => 0,
    };
    let audit = permille(world.log.len(), cfg.audit_cap);
    PressureReading {
        permille: [frames, ast, run_slots, quota, audit],
    }
}

/// One admission decision, recorded for the shed-order checks: the
/// experiment and the sweep prove that no lower-priority request was
/// admitted at a pressure at or above one where a higher-priority request
/// was shed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AdmissionDecision {
    /// The caller's priority class.
    pub priority: Priority,
    /// Peak pressure (permille) at decision time.
    pub pressure: u32,
    /// Whether the call was admitted.
    pub admitted: bool,
}

/// Admission-control state: per-process priorities, the externally fed
/// run-slot gauge, and the decision log. Lives on [`KernelWorld`];
/// **disabled by default**, in which state every query is a constant-time
/// no-op.
#[derive(Clone, Debug, Default)]
pub struct AdmissionControl {
    enabled: bool,
    /// The active tuning (gauge caps, shed thresholds, deadline budget).
    pub cfg: PressureConfig,
    priorities: HashMap<KProcId, Priority>,
    run_slots: Option<(usize, usize)>,
    decisions: Vec<AdmissionDecision>,
    admitted_by_class: [u64; NR_PRIORITIES],
    shed_by_class: [u64; NR_PRIORITIES],
}

impl Default for PressureConfig {
    /// Background sheds at 60% utilization, Normal at 75%, Interactive at
    /// 90%, System never.
    fn default() -> PressureConfig {
        PressureConfig {
            ast_soft_cap: 96,
            audit_cap: 4096,
            shed_permille: [600, 750, 900, 1001],
            deadline_budget: None,
        }
    }
}

impl AdmissionControl {
    /// A disabled controller (identical to `Default`): admits everything,
    /// reads nothing, records nothing.
    pub fn disabled() -> AdmissionControl {
        AdmissionControl::default()
    }

    /// Arms admission control with `cfg`.
    ///
    /// # Panics
    /// Panics if the shed thresholds are not non-decreasing in priority —
    /// a configuration that would shed high-priority work before low
    /// would silently break the lowest-priority-first guarantee.
    pub fn enable(&mut self, cfg: PressureConfig) {
        assert!(
            cfg.shed_permille.windows(2).all(|w| w[0] <= w[1]),
            "shed thresholds must be non-decreasing in priority: {:?}",
            cfg.shed_permille
        );
        self.enabled = true;
        self.cfg = cfg;
    }

    /// True when the layer is armed.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Assigns `pid`'s priority class (processes default to
    /// [`Priority::Normal`]).
    pub fn set_priority(&mut self, pid: KProcId, priority: Priority) {
        self.priorities.insert(pid, priority);
    }

    /// The class `pid`'s gate calls are admitted under.
    pub fn priority_of(&self, pid: KProcId) -> Priority {
        self.priorities
            .get(&pid)
            .copied()
            .unwrap_or(Priority::Normal)
    }

    /// Feeds the traffic-controller run-slot gauge (`used` of `total`
    /// shared slots occupied). The scheduler cannot be read from inside a
    /// gate call, so whoever drives the system publishes its census here.
    pub fn set_run_slots(&mut self, used: usize, total: usize) {
        self.run_slots = Some((used, total));
    }

    /// Decides admission for a call of class `priority` at `pressure`
    /// permille, recording the decision. `true` = admitted.
    pub fn decide(&mut self, priority: Priority, pressure: u32) -> bool {
        let admitted = pressure < self.cfg.shed_permille[priority.index()];
        self.decisions.push(AdmissionDecision {
            priority,
            pressure,
            admitted,
        });
        if admitted {
            self.admitted_by_class[priority.index()] += 1;
        } else {
            self.shed_by_class[priority.index()] += 1;
        }
        admitted
    }

    /// Every decision since the last [`AdmissionControl::reset_decisions`].
    pub fn decisions(&self) -> &[AdmissionDecision] {
        &self.decisions
    }

    /// Clears the decision log and per-class tallies (gauge feeds and
    /// priorities survive). Used between load-ladder rungs.
    pub fn reset_decisions(&mut self) {
        self.decisions.clear();
        self.admitted_by_class = [0; NR_PRIORITIES];
        self.shed_by_class = [0; NR_PRIORITIES];
    }

    /// Admitted calls per class, indexed by [`Priority::index`].
    pub fn admitted_by_class(&self) -> [u64; NR_PRIORITIES] {
        self.admitted_by_class
    }

    /// Shed calls per class, indexed by [`Priority::index`].
    pub fn shed_by_class(&self) -> [u64; NR_PRIORITIES] {
        self.shed_by_class
    }

    /// Counts **priority inversions** in the decision log: pairs where a
    /// *lower*-priority call was admitted at a pressure at or above one
    /// where a *higher*-priority call was shed. Zero is the
    /// lowest-priority-first guarantee; with monotone thresholds it is
    /// zero by construction, and this check proves it from the record
    /// rather than the implementation.
    pub fn priority_inversions(&self) -> u64 {
        let mut inversions = 0;
        for shed in self.decisions.iter().filter(|d| !d.admitted) {
            for adm in self.decisions.iter().filter(|d| d.admitted) {
                if adm.priority < shed.priority && adm.pressure >= shed.pressure {
                    inversions += 1;
                }
            }
        }
        inversions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelConfig;
    use crate::world::{admin_user, System};
    use mks_mls::Label;

    #[test]
    fn disabled_controller_admits_everything_and_records_nothing() {
        let ac = AdmissionControl::disabled();
        assert!(!ac.is_enabled());
        assert!(ac.decisions().is_empty());
        assert_eq!(ac.priority_of(KProcId(1)), Priority::Normal);
    }

    #[test]
    fn monotone_thresholds_shed_lowest_priority_first() {
        let mut ac = AdmissionControl::disabled();
        ac.enable(PressureConfig::default());
        // At 80% pressure: Background and Normal shed, Interactive and
        // System admitted.
        assert!(!ac.decide(Priority::Background, 800));
        assert!(!ac.decide(Priority::Normal, 800));
        assert!(ac.decide(Priority::Interactive, 800));
        assert!(ac.decide(Priority::System, 800));
        // System survives total exhaustion.
        assert!(ac.decide(Priority::System, 1000));
        assert_eq!(ac.priority_inversions(), 0);
        assert_eq!(ac.shed_by_class(), [1, 1, 0, 0]);
        assert_eq!(ac.admitted_by_class(), [0, 0, 1, 2]);
    }

    #[test]
    fn inversion_counter_detects_a_violation() {
        let mut ac = AdmissionControl::disabled();
        ac.enable(PressureConfig::default());
        // Hand-build an inverted log: high priority shed at 500, low
        // priority admitted at 500.
        ac.decisions.push(AdmissionDecision {
            priority: Priority::Interactive,
            pressure: 500,
            admitted: false,
        });
        ac.decisions.push(AdmissionDecision {
            priority: Priority::Background,
            pressure: 500,
            admitted: true,
        });
        assert_eq!(ac.priority_inversions(), 1);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_thresholds_are_rejected() {
        let mut ac = AdmissionControl::disabled();
        ac.enable(PressureConfig {
            shed_permille: [900, 750, 600, 1001],
            ..PressureConfig::default()
        });
    }

    #[test]
    fn pressure_reading_tracks_frame_consumption() {
        let mut sys = System::new(KernelConfig::kernel());
        let before = read_pressure(&sys.world);
        let pid = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
        let root = sys.world.bind_root(pid);
        // Paging traffic consumes frames; the gauge must move.
        let seg = crate::monitor::Monitor::create_segment(
            &mut sys.world,
            pid,
            root,
            "hog",
            mks_fs::Acl::of("*.*.*", mks_fs::AclMode::RW),
            mks_hw::RingBrackets::new(4, 4, 4),
            Label::BOTTOM,
        )
        .unwrap();
        crate::monitor::Monitor::write(&mut sys.world, pid, seg, 0, mks_hw::Word::new(1)).unwrap();
        let after = read_pressure(&sys.world);
        let fi = Resource::Frames as usize;
        assert!(after.permille[fi] > before.permille[fi]);
        assert!(after.peak() <= 1000);
    }

    #[test]
    fn run_slot_gauge_is_externally_fed() {
        let mut sys = System::new(KernelConfig::kernel());
        sys.world.admission.enable(PressureConfig::default());
        assert_eq!(
            read_pressure(&sys.world).permille[Resource::RunSlots as usize],
            0
        );
        sys.world.admission.set_run_slots(6, 8);
        assert_eq!(
            read_pressure(&sys.world).permille[Resource::RunSlots as usize],
            750
        );
    }
}
