//! Structuring the kernel for certification: the paper's two techniques.
//!
//! "One technique of modularization is to divide the kernel into domains
//! arranged so that each property is implied by a subset of the domains.
//! ... Another technique is to ignore any structure suggested by the
//! security properties and divide the kernel into domains according to a
//! principle like Parnas' notion of information hiding ... Which of these
//! two approaches is preferable, or indeed whether they really are
//! different approaches, remains to be seen."
//!
//! This module makes the comparison concrete for *this* kernel. Each
//! security property is mapped to the set of modules whose correctness it
//! rests on (the property-subset technique); each module carries an
//! interface-specification burden (the information-hiding technique,
//! approximated by its gate/entry count plus a fixed per-module interface
//! cost). [`StructureReport`] computes the audit scope either way, and the
//! A3 ablation (`exp_a3_layering`) prints the numbers — including the
//! paper's observation that putting the MLS layer at the *bottom* shrinks
//! the scope of the compartmentalization property to a fraction of the
//! kernel.

use mks_hw::module::Category;

use crate::audit::SystemInventory;
use crate::config::KernelConfig;

/// A security property of the model the kernel must match.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Property {
    /// No information flows downward in the lattice (simple security + ★).
    NoDownwardFlow,
    /// Every reference is mediated (no path around the monitor).
    CompleteMediation,
    /// Discretionary ACLs are enforced as written.
    AclEnforcement,
    /// Gate entry points are the only ways into the kernel rings.
    GateIntegrity,
    /// Released storage carries no residue.
    NoResidue,
    /// IPC connectivity follows memory protection.
    IpcGuarded,
    /// Authentication precedes every session.
    AuthenticatedSessions,
}

impl Property {
    /// All properties, for reports.
    pub const ALL: [Property; 7] = [
        Property::NoDownwardFlow,
        Property::CompleteMediation,
        Property::AclEnforcement,
        Property::GateIntegrity,
        Property::NoResidue,
        Property::IpcGuarded,
        Property::AuthenticatedSessions,
    ];

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Property::NoDownwardFlow => "no downward flow",
            Property::CompleteMediation => "complete mediation",
            Property::AclEnforcement => "acl enforcement",
            Property::GateIntegrity => "gate integrity",
            Property::NoResidue => "no residue",
            Property::IpcGuarded => "ipc guarded",
            Property::AuthenticatedSessions => "authenticated sessions",
        }
    }

    /// The module categories this property's verification must examine,
    /// **given the layered structure** (MLS at the bottom, policy split
    /// out, naming/linker outside). This encodes the design decisions; the
    /// scope numbers are then measured from the audited inventory.
    pub fn layered_scope(self) -> &'static [Category] {
        match self {
            // The bottom layer: labels checked before anything else, so
            // only the MLS module and the monitor that calls it matter.
            Property::NoDownwardFlow => &[Category::Mls, Category::Gates],
            // Mediation: the monitor plus everything that can mint an SDW
            // or move a page under one.
            Property::CompleteMediation => &[
                Category::Gates,
                Category::AddressSpace,
                Category::PageControl,
            ],
            Property::AclEnforcement => &[Category::FileSystem, Category::Gates],
            Property::GateIntegrity => &[Category::Gates, Category::Processes],
            Property::NoResidue => &[Category::PageControl],
            Property::IpcGuarded => &[Category::Ipc, Category::Gates],
            Property::AuthenticatedSessions => &[Category::Auth, Category::Gates],
        }
    }
}

/// One row of the structure report.
#[derive(Clone, Debug)]
pub struct PropertyScope {
    /// The property.
    pub property: Property,
    /// Protected statements a verifier must read under the layered
    /// (property-subset) organization.
    pub layered_weight: u32,
    /// Statements under a flat organization (no layering: every property
    /// potentially involves every protected module).
    pub flat_weight: u32,
}

/// The structure comparison for one configuration.
pub struct StructureReport {
    /// Per-property scopes.
    pub scopes: Vec<PropertyScope>,
    /// Total protected weight (the flat scope).
    pub total_protected: u32,
}

impl StructureReport {
    /// Computes the report from an audited inventory.
    pub fn build(inv: &SystemInventory) -> StructureReport {
        let total_protected = inv.protected_weight();
        let scopes = Property::ALL
            .iter()
            .map(|p| {
                let layered_weight = p
                    .layered_scope()
                    .iter()
                    .map(|c| inv.protected_weight_of(*c))
                    .sum();
                PropertyScope {
                    property: *p,
                    layered_weight,
                    flat_weight: total_protected,
                }
            })
            .collect();
        StructureReport {
            scopes,
            total_protected,
        }
    }

    /// Convenience: build for a configuration.
    pub fn for_config(cfg: KernelConfig) -> StructureReport {
        StructureReport::build(&SystemInventory::build(cfg))
    }

    /// Mean fraction of the kernel a per-property verification must read.
    pub fn mean_scope_fraction(&self) -> f64 {
        if self.scopes.is_empty() || self.total_protected == 0 {
            return 0.0;
        }
        let s: f64 = self
            .scopes
            .iter()
            .map(|s| f64::from(s.layered_weight) / f64::from(self.total_protected))
            .sum();
        s / self.scopes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_property_has_a_nonempty_scope() {
        let r = StructureReport::for_config(KernelConfig::kernel());
        for s in &r.scopes {
            assert!(s.layered_weight > 0, "{:?} has empty scope", s.property);
            assert!(s.layered_weight <= s.flat_weight);
        }
    }

    #[test]
    fn layering_shrinks_the_mean_audit_scope() {
        let r = StructureReport::for_config(KernelConfig::kernel());
        assert!(
            r.mean_scope_fraction() < 0.75,
            "mean scope fraction {} — layering is not helping",
            r.mean_scope_fraction()
        );
    }

    #[test]
    fn the_bottom_layer_property_has_a_small_scope() {
        // The paper's motivation for MLS-at-the-bottom: the
        // compartmentalization property should be checkable against a
        // fraction of the kernel.
        let r = StructureReport::for_config(KernelConfig::kernel());
        let flow = r
            .scopes
            .iter()
            .find(|s| s.property == Property::NoDownwardFlow)
            .unwrap();
        let frac = f64::from(flow.layered_weight) / f64::from(flow.flat_weight);
        assert!(frac < 0.5, "no-downward-flow needs {frac} of the kernel");
    }

    #[test]
    fn mediation_is_the_widest_property() {
        // Complete mediation genuinely spans more of the kernel than any
        // other property — that is *why* the monitor is the heart.
        let r = StructureReport::for_config(KernelConfig::kernel());
        let mediation = r
            .scopes
            .iter()
            .find(|s| s.property == Property::CompleteMediation)
            .unwrap()
            .layered_weight;
        for s in &r.scopes {
            assert!(s.layered_weight <= mediation, "{:?}", s.property);
        }
    }
}
