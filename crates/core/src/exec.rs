//! The execution service: running programs out of segments.
//!
//! This module closes the loop the paper's removal projects opened: a
//! *program* is a KPL module compiled into an executable segment
//! (`mks-cert`'s word format, behind a length word); *running* it pulls the
//! image through the reference monitor (so ACLs, labels and the `e` mode
//! bit all apply), and every external reference (`lib_$entry`) is resolved
//! at call time by the dynamic-linking machinery — the same search-rules +
//! reference-name algorithm in both configurations, with the
//! configuration deciding *where the reference names live*: per-process
//! private tables (kernel configuration) or the shared supervisor table
//! (legacy).
//!
//! The faulting-and-snapping flow is exactly Janson's: the first call
//! through a link searches, initiates and records; later calls reuse the
//! binding.

use mks_cert::{
    compile_module, module_from_words, module_to_words, parse_program, run_module, ExecError,
    ExternResolver, Module,
};
use mks_fs::{Acl, AclMode};
use mks_hw::{RingBrackets, SegNo, Word, PAGE_WORDS};
use mks_linker::snap::{snap, LinkEnv, SearchRules};
use mks_mls::Label;
use mks_vm::SegControl;

use crate::config::LinkerConfig;
use crate::monitor::{AccessError, Monitor};
use crate::world::{KProcId, KernelWorld, KstState};

/// Execution-service failures.
#[derive(Debug, PartialEq, Eq)]
pub enum ExecFault {
    /// KPL parse error in the source being installed.
    Parse(String),
    /// KPL compile error.
    Compile(String),
    /// A monitor refusal (ACL, label, quota, fault).
    Access(AccessError),
    /// The segment's image is not a valid module.
    BadImage(&'static str),
    /// Object-code failure at run time.
    Vm(ExecError),
    /// The module exports no such entry point.
    NoSuchEntry(String),
    /// The caller lacks execute permission on the segment.
    NotExecutable,
    /// An external reference could not be linked.
    Link(String),
    /// Cross-segment call nesting exceeded the bound.
    Depth,
}

impl core::fmt::Display for ExecFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExecFault::Parse(e) => write!(f, "parse: {e}"),
            ExecFault::Compile(e) => write!(f, "compile: {e}"),
            ExecFault::Access(e) => write!(f, "access: {e}"),
            ExecFault::BadImage(e) => write!(f, "bad image: {e}"),
            ExecFault::Vm(e) => write!(f, "execution: {e}"),
            ExecFault::NoSuchEntry(e) => write!(f, "no entry point {e}"),
            ExecFault::NotExecutable => write!(f, "segment is not executable"),
            ExecFault::Link(e) => write!(f, "linkage: {e}"),
            ExecFault::Depth => write!(f, "cross-segment call nesting too deep"),
        }
    }
}

impl std::error::Error for ExecFault {}

/// Compiles `source` and installs it as the executable segment `name` in
/// the directory bound at `dir_segno`. The stored image is one length word
/// followed by the module words. Returns the caller's binding.
pub fn install_module(
    world: &mut KernelWorld,
    pid: KProcId,
    dir_segno: SegNo,
    name: &str,
    source: &str,
    acl: Acl<AclMode>,
    label: Label,
) -> Result<SegNo, ExecFault> {
    let procs = parse_program(source).map_err(|e| ExecFault::Parse(e.to_string()))?;
    let module = compile_module(name, &procs).map_err(|e| ExecFault::Compile(e.to_string()))?;
    let words = module_to_words(&module).map_err(ExecFault::Vm)?;
    let segno = Monitor::create_segment(
        world,
        pid,
        dir_segno,
        name,
        acl,
        RingBrackets::new(4, 4, 4),
        label,
    )
    .map_err(ExecFault::Access)?;
    // Size the segment for the image (+1 for the length word).
    let len = words.len() + 1;
    let uid = match &world.proc(pid).kst {
        KstState::Kernel(k) => k.entry(segno),
        KstState::Legacy(k) => k.core.entry(segno),
    }
    .expect("just created")
    .uid;
    SegControl::grow(&mut world.vm, uid, len.max(PAGE_WORDS))
        .map_err(AccessError::Mech)
        .map_err(ExecFault::Access)?;
    world.fs.note_segment_length(uid, len.max(PAGE_WORDS));
    Monitor::write(world, pid, segno, 0, Word::new(words.len() as u64))
        .map_err(ExecFault::Access)?;
    for (i, w) in words.iter().enumerate() {
        Monitor::write(world, pid, segno, i + 1, *w).map_err(ExecFault::Access)?;
    }
    Ok(segno)
}

/// Reads and decodes the module stored at `segno`, enforcing the execute
/// mode bit (programs are *executed*, not just read).
pub fn load_module(
    world: &mut KernelWorld,
    pid: KProcId,
    segno: SegNo,
) -> Result<Module, ExecFault> {
    let executable = world
        .proc(pid)
        .aspace
        .get(segno)
        .is_some_and(|sdw| sdw.mode.execute || sdw.mode.write);
    // (A writable binding is the owner's own program under construction;
    //  an execute-only binding is the normal shared-library case.)
    if !executable {
        return Err(ExecFault::NotExecutable);
    }
    let len = Monitor::read(world, pid, segno, 0)
        .map_err(ExecFault::Access)?
        .raw() as usize;
    if len > 1 << 18 {
        return Err(ExecFault::BadImage("length word absurd"));
    }
    let mut words = Vec::with_capacity(len);
    for i in 0..len {
        words.push(Monitor::read(world, pid, segno, i + 1).map_err(ExecFault::Access)?);
    }
    match module_from_words(&words) {
        Ok(m) => Ok(m),
        Err(ExecError::BadImage(why)) => Err(ExecFault::BadImage(why)),
        Err(e) => Err(ExecFault::Vm(e)),
    }
}

/// The execution environment of one process: its search rules and the
/// recursion bound for cross-segment calls.
pub struct ExecEnv<'a> {
    /// The world.
    pub world: &'a mut KernelWorld,
    /// The executing process.
    pub pid: KProcId,
    /// Directories (by segno binding) searched for external references.
    pub rules: SearchRules,
    depth: usize,
}

/// Maximum cross-segment call nesting.
const MAX_XSEG_DEPTH: usize = 16;

impl<'a> ExecEnv<'a> {
    /// Creates an environment searching the given directories, in order.
    pub fn new(world: &'a mut KernelWorld, pid: KProcId, dirs: Vec<SegNo>) -> ExecEnv<'a> {
        ExecEnv {
            world,
            pid,
            rules: SearchRules::new(dirs),
            depth: 0,
        }
    }

    /// Calls `entry` of the module at `segno` with `args`.
    pub fn call(
        &mut self,
        segno: SegNo,
        entry: &str,
        args: &[i64],
        fuel: &mut u64,
    ) -> Result<i64, ExecFault> {
        let module = load_module(self.world, self.pid, segno)?;
        let idx = module
            .proc_named(entry)
            .ok_or_else(|| ExecFault::NoSuchEntry(format!("{}${entry}", module.name)))?;
        run_module(&module, idx, args, fuel, self).map_err(|e| match e {
            ExecError::ExternUnavailable(s) => ExecFault::Link(s),
            other => ExecFault::Vm(other),
        })
    }

    /// Snaps `seg$entry` with the configured linker's reference-name
    /// placement, returning the target binding.
    fn snap_link(&mut self, seg: &str, entry: &str) -> Result<SegNo, String> {
        let ring = self.world.proc(self.pid).ring;
        match self.world.cfg.linker {
            LinkerConfig::UserRing => {
                // Per-process, per-ring private reference names.
                let mut linker = std::mem::take(&mut self.world.proc_mut(self.pid).linker);
                let rules = self.rules.clone();
                let mut env = MonitorLinkEnv {
                    world: self.world,
                    pid: self.pid,
                };
                let out = snap(&mut env, &mut linker.refnames, &rules, ring, seg, entry);
                self.world.proc_mut(self.pid).linker = linker;
                out.map(|l| l.segno).map_err(|e| e.to_string())
            }
            LinkerConfig::InKernel => {
                // The shared supervisor table (the legacy arrangement).
                let mut linker = std::mem::take(&mut self.world.legacy_linker);
                let rules = self.rules.clone();
                let mut env = MonitorLinkEnv {
                    world: self.world,
                    pid: self.pid,
                };
                let out = snap(&mut env, &mut linker.refnames, &rules, ring, seg, entry);
                self.world.legacy_linker = linker;
                out.map(|l| l.segno).map_err(|e| e.to_string())
            }
        }
    }
}

impl ExternResolver for ExecEnv<'_> {
    fn call_extern(
        &mut self,
        seg: &str,
        entry: &str,
        args: &[i64],
        fuel: &mut u64,
    ) -> Result<i64, ExecError> {
        if self.depth >= MAX_XSEG_DEPTH {
            return Err(ExecError::ExternUnavailable("call nesting too deep".into()));
        }
        let target = self
            .snap_link(seg, entry)
            .map_err(|e| ExecError::ExternUnavailable(format!("{seg}${entry}: {e}")))?;
        self.depth += 1;
        let out = self.call(target, entry, args, fuel);
        self.depth -= 1;
        out.map_err(|e| match e {
            ExecFault::Vm(v) => v,
            other => ExecError::ExternUnavailable(format!("{seg}${entry}: {other}")),
        })
    }
}

/// The linking environment over the reference monitor: initiation applies
/// the full ACL/MLS checks, so a link can only snap to segments the
/// *executing process* could open anyway — linking grants nothing.
struct MonitorLinkEnv<'a> {
    world: &'a mut KernelWorld,
    pid: KProcId,
}

impl LinkEnv for MonitorLinkEnv<'_> {
    fn initiate_segment(&mut self, dir: SegNo, name: &str) -> Option<SegNo> {
        Monitor::initiate(self.world, self.pid, dir, name).ok()
    }

    fn entry_offset(&mut self, segno: SegNo, entry: &str) -> Option<usize> {
        load_module(self.world, self.pid, segno)
            .ok()?
            .proc_named(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelConfig;
    use crate::world::{admin_user, System};
    use mks_fs::{DirMode, UserId};

    fn jones() -> UserId {
        UserId::new("Jones", "CSR", "a")
    }

    /// System with an open >udd and >lib, plus a Jones process.
    fn setup(cfg: KernelConfig) -> (System, KProcId, SegNo, SegNo) {
        let mut sys = System::new(cfg);
        let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
        let root = sys.world.bind_root(admin);
        for d in ["udd", "lib"] {
            Monitor::create_directory(&mut sys.world, admin, root, d, Label::BOTTOM).unwrap();
            sys.world
                .fs
                .set_dir_acl_entry(
                    mks_fs::FileSystem::ROOT,
                    d,
                    &admin_user(),
                    "*.*.*",
                    DirMode::SA,
                )
                .unwrap();
        }
        let pid = sys.world.create_process(jones(), Label::BOTTOM, 4);
        let root_j = sys.world.bind_root(pid);
        let udd = Monitor::initiate_dir(&mut sys.world, pid, root_j, "udd");
        let lib = Monitor::initiate_dir(&mut sys.world, pid, root_j, "lib");
        (sys, pid, udd, lib)
    }

    fn rw_re(owner: &str) -> Acl<AclMode> {
        let mut acl = Acl::of(owner, AclMode::REW);
        acl.add("*.*.*", AclMode::RE);
        acl
    }

    #[test]
    fn install_and_run_a_self_contained_program() {
        for cfg in [KernelConfig::legacy(), KernelConfig::kernel()] {
            let (mut sys, pid, udd, _lib) = setup(cfg);
            let seg = install_module(
                &mut sys.world,
                pid,
                udd,
                "tri_",
                "proc tri(n) { let acc = 0; while 0 < n { acc := acc + n; n := n - 1; } return acc; }",
                rw_re("Jones.CSR.a"),
                Label::BOTTOM,
            )
            .unwrap();
            let mut env = ExecEnv::new(&mut sys.world, pid, vec![]);
            let mut fuel = 100_000;
            assert_eq!(env.call(seg, "tri", &[100], &mut fuel), Ok(5050));
        }
    }

    #[test]
    fn cross_segment_calls_link_dynamically() {
        for cfg in [KernelConfig::legacy(), KernelConfig::kernel()] {
            let (mut sys, pid, udd, lib) = setup(cfg);
            install_module(
                &mut sys.world,
                pid,
                lib,
                "math_",
                "proc square(x) { return x * x; } proc cube(x) { return x * square(x); }",
                rw_re("Jones.CSR.a"),
                Label::BOTTOM,
            )
            .unwrap();
            let app = install_module(
                &mut sys.world,
                pid,
                udd,
                "app_",
                "proc main(n) { return math_$cube(n) + math_$square(n); }",
                rw_re("Jones.CSR.a"),
                Label::BOTTOM,
            )
            .unwrap();
            let mut env = ExecEnv::new(&mut sys.world, pid, vec![lib]);
            let mut fuel = 100_000;
            assert_eq!(env.call(app, "main", &[3], &mut fuel), Ok(36));
            // Second call rides the snapped link (reference name bound).
            let mut fuel = 100_000;
            assert_eq!(env.call(app, "main", &[4], &mut fuel), Ok(80));
        }
    }

    #[test]
    fn linking_grants_nothing_the_caller_lacks() {
        let (mut sys, pid, udd, lib) = setup(KernelConfig::kernel());
        // A library only its owner may touch.
        let owner = sys
            .world
            .create_process(UserId::new("Owner", "X", "a"), Label::BOTTOM, 4);
        let root_o = sys.world.bind_root(owner);
        let lib_o = Monitor::initiate_dir(&mut sys.world, owner, root_o, "lib");
        install_module(
            &mut sys.world,
            owner,
            lib_o,
            "secretlib_",
            "proc f(x) { return x; }",
            Acl::of("Owner.X.a", AclMode::REW),
            Label::BOTTOM,
        )
        .unwrap();
        // Jones's program references it; the link must fail to snap, and
        // uninformatively so.
        let app = install_module(
            &mut sys.world,
            pid,
            udd,
            "probe_",
            "proc main() { return secretlib_$f(1); }",
            rw_re("Jones.CSR.a"),
            Label::BOTTOM,
        )
        .unwrap();
        let mut env = ExecEnv::new(&mut sys.world, pid, vec![lib]);
        let mut fuel = 10_000;
        match env.call(app, "main", &[], &mut fuel) {
            Err(ExecFault::Link(e)) => assert!(e.contains("secretlib_")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn execute_permission_is_required() {
        let (mut sys, pid, udd, _lib) = setup(KernelConfig::kernel());
        // Readable but not executable to others.
        let mut acl = Acl::of("Jones.CSR.a", AclMode::REW);
        acl.add("Smith.CSR.a", AclMode::R);
        install_module(
            &mut sys.world,
            pid,
            udd,
            "data_not_code",
            "proc f() { return 7; }",
            acl,
            Label::BOTTOM,
        )
        .unwrap();
        let smith = sys
            .world
            .create_process(UserId::new("Smith", "CSR", "a"), Label::BOTTOM, 4);
        let root_s = sys.world.bind_root(smith);
        let udd_s = Monitor::initiate_dir(&mut sys.world, smith, root_s, "udd");
        let seg_s = Monitor::initiate(&mut sys.world, smith, udd_s, "data_not_code").unwrap();
        let mut env = ExecEnv::new(&mut sys.world, smith, vec![]);
        let mut fuel = 1_000;
        assert_eq!(
            env.call(seg_s, "f", &[], &mut fuel),
            Err(ExecFault::NotExecutable)
        );
    }

    #[test]
    fn corrupted_images_are_contained() {
        let (mut sys, pid, udd, _lib) = setup(KernelConfig::kernel());
        let seg = install_module(
            &mut sys.world,
            pid,
            udd,
            "victim_",
            "proc f() { return 1; }",
            rw_re("Jones.CSR.a"),
            Label::BOTTOM,
        )
        .unwrap();
        // The owner scribbles over the image (or a buggy compiler did).
        Monitor::write(&mut sys.world, pid, seg, 3, Word::new(0o777777)).unwrap();
        let mut env = ExecEnv::new(&mut sys.world, pid, vec![]);
        let mut fuel = 1_000;
        match env.call(seg, "f", &[], &mut fuel) {
            Err(ExecFault::BadImage(_))
            | Err(ExecFault::Vm(_))
            | Err(ExecFault::NoSuchEntry(_)) => {}
            other => panic!("corruption must be contained, got {other:?}"),
        }
    }

    #[test]
    fn runaway_programs_exhaust_fuel_not_the_kernel() {
        let (mut sys, pid, udd, _lib) = setup(KernelConfig::kernel());
        let seg = install_module(
            &mut sys.world,
            pid,
            udd,
            "spin_",
            "proc f() { let x = 1; while x > 0 { x := x + 1; } return x; }",
            rw_re("Jones.CSR.a"),
            Label::BOTTOM,
        )
        .unwrap();
        let mut env = ExecEnv::new(&mut sys.world, pid, vec![]);
        let mut fuel = 50_000;
        assert_eq!(
            env.call(seg, "f", &[], &mut fuel),
            Err(ExecFault::Vm(ExecError::OutOfFuel))
        );
        assert_eq!(fuel, 0);
    }

    #[test]
    fn search_rule_order_decides_shadowing() {
        let (mut sys, pid, udd, lib) = setup(KernelConfig::kernel());
        install_module(
            &mut sys.world,
            pid,
            lib,
            "util_",
            "proc v() { return 1; }",
            rw_re("Jones.CSR.a"),
            Label::BOTTOM,
        )
        .unwrap();
        install_module(
            &mut sys.world,
            pid,
            udd,
            "util_",
            "proc v() { return 2; }",
            rw_re("Jones.CSR.a"),
            Label::BOTTOM,
        )
        .unwrap();
        let app_src = "proc main() { return util_$v(); }";
        let app = install_module(
            &mut sys.world,
            pid,
            udd,
            "app_",
            app_src,
            rw_re("Jones.CSR.a"),
            Label::BOTTOM,
        )
        .unwrap();
        // udd first: the working-directory copy shadows the library.
        let mut env = ExecEnv::new(&mut sys.world, pid, vec![udd, lib]);
        let mut fuel = 10_000;
        assert_eq!(env.call(app, "main", &[], &mut fuel), Ok(2));
        // lib first, in a fresh process (fresh reference names).
        let pid2 = sys.world.create_process(jones(), Label::BOTTOM, 4);
        let root2 = sys.world.bind_root(pid2);
        let udd2 = Monitor::initiate_dir(&mut sys.world, pid2, root2, "udd");
        let lib2 = Monitor::initiate_dir(&mut sys.world, pid2, root2, "lib");
        let app2 = Monitor::initiate(&mut sys.world, pid2, udd2, "app_").unwrap();
        let mut env = ExecEnv::new(&mut sys.world, pid2, vec![lib2, udd2]);
        let mut fuel = 10_000;
        assert_eq!(env.call(app2, "main", &[], &mut fuel), Ok(1));
    }
}
