//! Authentication: the password store.
//!
//! Passwords are never stored; a salted, iterated hash is. The hash is a
//! small in-tree construction (an FNV-1a-based sponge) rather than an
//! external dependency, keeping the trusted base self-contained — the same
//! instinct that drives the whole kernel project.
//!
//! Where this code *runs* is configuration-dependent and is the point of
//! the login-unification removal (see [`crate::subsystem`]): in the legacy
//! system the answerer and its password checks are privileged ring-0 code;
//! in the kernel configuration they execute as an ordinary protected
//! subsystem, and only the tiny "create a process with these attributes"
//! gate stays privileged.

use std::collections::HashMap;

use mks_fs::UserId;
use mks_mls::Label;

/// Iterations of the password hash (slows guessing).
const HASH_ROUNDS: usize = 1000;

/// A 64-bit salted iterated hash of a password.
fn password_hash(salt: u64, password: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt;
    for _ in 0..HASH_ROUNDS {
        for b in password.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    }
    h
}

/// One registered principal.
#[derive(Clone, Debug)]
struct Account {
    salt: u64,
    hash: u64,
    /// The clearance ceiling the principal may log in at.
    clearance: Label,
    /// Consecutive failures since the last success (lockout counter).
    failures: u32,
    locked: bool,
}

/// Authentication failures. The error deliberately does not distinguish
/// "no such user" from "wrong password" — the same no-oracle principle as
/// the file system's phantoms.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuthError {
    /// Bad principal or password.
    BadCredentials,
    /// Too many failures; the account is locked.
    Locked,
    /// Requested login label exceeds the principal's clearance.
    ClearanceExceeded,
}

impl core::fmt::Display for AuthError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AuthError::BadCredentials => write!(f, "incorrect login"),
            AuthError::Locked => write!(f, "account locked"),
            AuthError::ClearanceExceeded => write!(f, "label exceeds clearance"),
        }
    }
}

impl std::error::Error for AuthError {}

/// Failures allowed before lockout.
const MAX_FAILURES: u32 = 5;

/// The password/clearance database.
#[derive(Debug, Default)]
pub struct AuthDb {
    accounts: HashMap<String, Account>,
    salt_seq: u64,
}

impl AuthDb {
    /// An empty database.
    pub fn new() -> AuthDb {
        AuthDb::default()
    }

    fn key(user: &UserId) -> String {
        format!("{}.{}", user.person, user.project)
    }

    /// Registers (or re-registers) a principal.
    pub fn register(&mut self, user: &UserId, password: &str, clearance: Label) {
        self.salt_seq += 1;
        let salt = self.salt_seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let account = Account {
            salt,
            hash: password_hash(salt, password),
            clearance,
            failures: 0,
            locked: false,
        };
        self.accounts.insert(Self::key(user), account);
    }

    /// Verifies credentials and the requested login label; on success
    /// returns the label the process may be created with.
    pub fn authenticate(
        &mut self,
        user: &UserId,
        password: &str,
        requested: Label,
    ) -> Result<Label, AuthError> {
        let Some(acct) = self.accounts.get_mut(&Self::key(user)) else {
            // Burn the same hashing work for unknown users so timing does
            // not reveal account existence.
            let _ = password_hash(0, password);
            return Err(AuthError::BadCredentials);
        };
        if acct.locked {
            return Err(AuthError::Locked);
        }
        if password_hash(acct.salt, password) != acct.hash {
            acct.failures += 1;
            if acct.failures >= MAX_FAILURES {
                acct.locked = true;
            }
            return Err(AuthError::BadCredentials);
        }
        acct.failures = 0;
        if !acct.clearance.dominates(&requested) {
            return Err(AuthError::ClearanceExceeded);
        }
        Ok(requested)
    }

    /// Administrative unlock.
    pub fn unlock(&mut self, user: &UserId) -> bool {
        match self.accounts.get_mut(&Self::key(user)) {
            Some(a) => {
                a.locked = false;
                a.failures = 0;
                true
            }
            None => false,
        }
    }

    /// Number of registered principals.
    pub fn nr_accounts(&self) -> usize {
        self.accounts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mks_mls::{Compartments, Level};

    fn jones() -> UserId {
        UserId::new("Jones", "CSR", "a")
    }

    fn secret() -> Label {
        Label::new(Level::SECRET, Compartments::NONE)
    }

    #[test]
    fn register_then_authenticate() {
        let mut db = AuthDb::new();
        db.register(&jones(), "pdp-10 forever", secret());
        assert_eq!(
            db.authenticate(&jones(), "pdp-10 forever", Label::BOTTOM),
            Ok(Label::BOTTOM)
        );
    }

    #[test]
    fn wrong_password_and_unknown_user_are_indistinguishable() {
        let mut db = AuthDb::new();
        db.register(&jones(), "right", secret());
        let wrong = db.authenticate(&jones(), "wrong", Label::BOTTOM);
        let ghost = db.authenticate(&UserId::new("Ghost", "X", "a"), "any", Label::BOTTOM);
        assert_eq!(wrong, Err(AuthError::BadCredentials));
        assert_eq!(ghost, Err(AuthError::BadCredentials));
    }

    #[test]
    fn clearance_bounds_the_login_label() {
        let mut db = AuthDb::new();
        db.register(&jones(), "pw", secret());
        assert!(db.authenticate(&jones(), "pw", secret()).is_ok());
        let ts = Label::new(Level::TOP_SECRET, Compartments::NONE);
        assert_eq!(
            db.authenticate(&jones(), "pw", ts),
            Err(AuthError::ClearanceExceeded)
        );
    }

    #[test]
    fn repeated_failures_lock_the_account() {
        let mut db = AuthDb::new();
        db.register(&jones(), "pw", secret());
        for _ in 0..MAX_FAILURES {
            let _ = db.authenticate(&jones(), "guess", Label::BOTTOM);
        }
        assert_eq!(
            db.authenticate(&jones(), "pw", Label::BOTTOM),
            Err(AuthError::Locked)
        );
        assert!(db.unlock(&jones()));
        assert!(db.authenticate(&jones(), "pw", Label::BOTTOM).is_ok());
    }

    #[test]
    fn success_resets_the_failure_counter() {
        let mut db = AuthDb::new();
        db.register(&jones(), "pw", secret());
        for _ in 0..MAX_FAILURES - 1 {
            let _ = db.authenticate(&jones(), "guess", Label::BOTTOM);
        }
        assert!(db.authenticate(&jones(), "pw", Label::BOTTOM).is_ok());
        // Counter reset: more guesses allowed before lockout.
        let _ = db.authenticate(&jones(), "guess", Label::BOTTOM);
        assert!(db.authenticate(&jones(), "pw", Label::BOTTOM).is_ok());
    }

    #[test]
    fn same_password_different_salt_different_hash() {
        let mut db = AuthDb::new();
        db.register(&jones(), "pw", secret());
        db.register(&UserId::new("Smith", "CSR", "a"), "pw", secret());
        let a = db.accounts.get("Jones.CSR").unwrap().hash;
        let b = db.accounts.get("Smith.CSR").unwrap().hash;
        assert_ne!(a, b);
    }
}
