//! The reference monitor: every acquisition of access is mediated here.
//!
//! The kernel's security argument has exactly one shape: a process can
//! touch a word of a segment **only** through an SDW in its descriptor
//! segment, and SDWs are installed **only** by this module, which checks
//!
//! 1. the **mandatory** (Mitre-model) rules first — no read up, no write
//!    down — when the configuration runs the MLS layer;
//! 2. the **discretionary** ACL of the branch;
//! 3. and then lets the *hardware* enforce the result on every reference,
//!    via the mode bits and ring brackets it writes into the SDW.
//!
//! Refusals are deliberately uninformative ([`AccessError::NoInfo`]): a
//! process not entitled to a segment is not entitled to know whether the
//! segment exists either — the same principle as the KST's phantom
//! directories.

use mks_fs::kst::kernel_initiate_dir;
use mks_fs::pathres::{parse_path, DirInitiator};
use mks_fs::{Acl, AclMode, BranchKind, FsError, LegacyKstError, QuotaCell, QuotaError};
use mks_hw::ast::PageState;
use mks_hw::{
    AccessType, Backoff, BackoffPolicy, Cycles, Fault, RingBrackets, SegNo, SegUid, Word,
};
use mks_mls::{mls_check, AccessKind, Label, MlsDenied};
use mks_vm::{MechError, SegControl};

use crate::config::NamingConfig;
use crate::pressure::{read_pressure, Resource};
use crate::world::{KProcId, KernelWorld, KstState};

/// Monitor refusals and failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AccessError {
    /// The caller is not entitled to any information about the target
    /// (covers: no such entry, no access, wrong kind, phantom directory).
    NoInfo,
    /// A hardware fault that could not be serviced transparently.
    Fault(Fault),
    /// A file-system refusal on an operation the caller *was* entitled to
    /// attempt (e.g. creating over an existing name).
    Fs(FsError),
    /// A mandatory-policy denial surfaced on an explicit label operation.
    Mls(MlsDenied),
    /// Page-control mechanism refusal that could not be recovered.
    Mech(MechError),
    /// Legacy naming error (legacy configuration only — and an existence
    /// oracle, which is the point of comparing the two).
    Legacy(LegacyKstError),
    /// A quota cell refused the charge (record quota overflow).
    Quota(QuotaError),
    /// Bad pathname syntax.
    BadPath,
    /// No such gate or entry point.
    UnknownGate,
    /// The caller's ring may not call that gate.
    GateDenied,
    /// Admission control shed the call under resource pressure: the peak
    /// pressure (permille) that triggered the refusal. Typed, audited, and
    /// retryable — the graceful alternative to stalling or panicking.
    Overload(u32),
}

impl core::fmt::Display for AccessError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AccessError::NoInfo => write!(f, "no information"),
            AccessError::Fault(x) => write!(f, "fault: {x}"),
            AccessError::Fs(x) => write!(f, "file system: {x}"),
            AccessError::Mls(x) => write!(f, "mandatory policy: {x}"),
            AccessError::Mech(x) => write!(f, "page control: {x}"),
            AccessError::Legacy(x) => write!(f, "legacy naming: {x}"),
            AccessError::Quota(x) => write!(f, "quota: {x}"),
            AccessError::BadPath => write!(f, "bad pathname"),
            AccessError::UnknownGate => write!(f, "unknown gate or entry"),
            AccessError::GateDenied => write!(f, "gate not callable from this ring"),
            AccessError::Overload(p) => {
                write!(f, "shed under resource pressure ({p} permille)")
            }
        }
    }
}

impl std::error::Error for AccessError {}

/// The reference monitor (stateless; all state is in the world).
pub struct Monitor;

/// Mode bits granted after combining the ACL with the mandatory rules.
fn combine(acl_mode: AclMode, subject: &Label, object: &Label, mls_on: bool) -> mks_hw::AccessMode {
    let read_ok = !mls_on || mls_check(subject, object, AccessKind::Read).is_ok();
    let write_ok = !mls_on || mls_check(subject, object, AccessKind::Write).is_ok();
    mks_hw::AccessMode {
        read: acl_mode.read && read_ok,
        write: acl_mode.write && write_ok,
        execute: acl_mode.execute && read_ok,
    }
}

/// Everything the monitor needs to know about a branch to grant access.
#[derive(Clone, Debug)]
struct GrantTarget {
    uid: SegUid,
    len_words: usize,
    brackets: RingBrackets,
    mode: mks_hw::AccessMode,
}

/// What `status_long` reveals about a branch (to a caller entitled to it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BranchStatus {
    /// All entry names (primary first).
    pub names: Vec<String>,
    /// Directory or segment.
    pub is_directory: bool,
    /// Segment length in words (0 for directories).
    pub len_words: usize,
    /// Ring brackets (segments only).
    pub brackets: Option<RingBrackets>,
    /// Mandatory label.
    pub label: mks_mls::Label,
    /// Creating principal.
    pub author: String,
}

impl Monitor {
    /// Records a reference-monitor verdict in the flight recorder: one
    /// `Verdict` event attributed to the calling principal, plus the
    /// `monitor.granted` / `monitor.denied` counter.
    fn verdict(world: &KernelWorld, pid: KProcId, what: &str, granted: bool) {
        let t = &world.vm.machine.trace;
        let outcome = if granted { "granted" } else { "denied" };
        t.counter_add(
            if granted {
                "monitor.granted"
            } else {
                "monitor.denied"
            },
            1,
        );
        t.event_for(
            mks_trace::Layer::Monitor,
            mks_trace::EventKind::Verdict,
            &world.proc(pid).user.to_acl_string(),
            &format!("{what}: {outcome}"),
        );
    }

    /// Admission control at the gate layer. With admission **disabled**
    /// (the default) this is a strict no-op: no gauge is read, no metric
    /// written, no record appended — the differential test pins that.
    ///
    /// When enabled: reads the pressure gauges, publishes them to the
    /// flight recorder, and decides by the caller's priority class. An
    /// admitted call gets back its deadline (if the config grants one);
    /// a shed call gets an audited, typed [`AccessError::Overload`] —
    /// the kernel refuses *now* rather than stall, panic, or silently
    /// queue unbounded work. Every decision — admit or shed — is recorded
    /// as a reference-monitor verdict, so mediation of admitted requests
    /// is checkable from the trace.
    fn admit(
        world: &mut KernelWorld,
        pid: KProcId,
        what: &str,
    ) -> Result<Option<Cycles>, AccessError> {
        if !world.admission.is_enabled() {
            return Ok(None);
        }
        let reading = read_pressure(world);
        for (i, r) in Resource::ALL.iter().enumerate() {
            world
                .vm
                .machine
                .trace
                .observe(r.gauge_name(), Cycles::from(reading.permille[i]));
        }
        let priority = world.admission.priority_of(pid);
        let peak = reading.peak();
        let admitted = world.admission.decide(priority, peak);
        Self::verdict(world, pid, &format!("admit {what}"), admitted);
        if admitted {
            world.vm.machine.trace.counter_add("admission.admitted", 1);
            let deadline = world
                .admission
                .cfg
                .deadline_budget
                .map(|b| world.vm.machine.clock.now().saturating_add(b));
            Ok(deadline)
        } else {
            world.vm.machine.trace.counter_add("admission.shed", 1);
            let who = world.proc(pid).user.clone();
            world.audit(
                Some(who),
                crate::syslog::AuditEvent::Overload {
                    what: what.to_string(),
                    pressure_permille: peak,
                },
            );
            Err(AccessError::Overload(peak))
        }
    }

    /// Refuses an operation whose bounded retries ran out (or whose
    /// deadline passed): audits the give-up as an `Overload` record and
    /// counts it, so backpressure is reviewable, never silent.
    /// Opens the profiled span for one gated operation. On close (any
    /// exit path — the guard drops), the span's inclusive cycles land in
    /// the `q.monitor.<op>.<class>` quantile sketch, where the class is
    /// the caller's admission priority, with the calling principal riding
    /// into the sketch's exemplar reservoir — so a tail latency in a
    /// snapshot names who paid it.
    #[must_use = "the profiled span closes when the guard drops"]
    fn op_span(
        world: &KernelWorld,
        pid: KProcId,
        layer: mks_trace::Layer,
        label: &str,
        op: &str,
    ) -> mks_trace::SpanGuard {
        let class = world.admission.priority_of(pid).name();
        let principal = world.proc(pid).user.to_acl_string();
        world.vm.machine.trace.span_profiled(
            layer,
            label,
            &format!("q.monitor.{op}.{class}"),
            Some(&principal),
        )
    }

    fn overload_refusal(world: &mut KernelWorld, pid: KProcId, what: &str) -> AccessError {
        let peak = read_pressure(world).peak();
        world.vm.machine.trace.counter_add("admission.overload", 1);
        let who = world.proc(pid).user.clone();
        world.audit(
            Some(who),
            crate::syslog::AuditEvent::Overload {
                what: what.to_string(),
                pressure_permille: peak,
            },
        );
        AccessError::Overload(peak)
    }

    /// Looks up the branch `name` in the *real* directory `dir_uid` and
    /// computes the access `pid` would get. Returns `NoInfo` unless the
    /// caller ends up with at least one mode bit.
    fn resolve_target(
        world: &KernelWorld,
        pid: KProcId,
        dir_uid: SegUid,
        name: &str,
    ) -> Result<GrantTarget, AccessError> {
        let proc = world.proc(pid);
        let Some(branch) = world.fs.peek_branch(dir_uid, name) else {
            Self::verdict(world, pid, &format!("access {name}"), false);
            return Err(AccessError::NoInfo);
        };
        let BranchKind::Segment {
            acl,
            len_words,
            brackets,
        } = &branch.kind
        else {
            Self::verdict(world, pid, &format!("access {name}"), false);
            return Err(AccessError::NoInfo);
        };
        let acl_mode = acl.effective(&proc.user).unwrap_or(AclMode::NULL);
        let mode = combine(acl_mode, &proc.label, &branch.label, world.cfg.mls);
        if !mode.read && !mode.write && !mode.execute {
            Self::verdict(world, pid, &format!("access {name}"), false);
            return Err(AccessError::NoInfo);
        }
        Self::verdict(world, pid, &format!("access {name}"), true);
        Ok(GrantTarget {
            uid: branch.uid,
            len_words: *len_words,
            brackets: *brackets,
            mode,
        })
    }

    /// Activates the target and installs its SDW; returns the segno.
    ///
    /// Activation rides the bounded-backoff discipline: an injected AST
    /// exhaustion is retried a few times with deterministic jittered
    /// delays (a real system would wait for the deactivation daemon to
    /// free slots), then surfaces as an audited overload refusal instead
    /// of a stall. With the injector disarmed the fast path is taken
    /// unconditionally.
    fn grant(
        world: &mut KernelWorld,
        pid: KProcId,
        target: GrantTarget,
    ) -> Result<SegNo, AccessError> {
        let len = target.len_words.max(mks_hw::PAGE_WORDS);
        let mut backoff = Backoff::new(
            target.uid.0 ^ world.vm.machine.clock.now(),
            BackoffPolicy::default(),
        );
        let astx = loop {
            match SegControl::try_activate(&mut world.vm, target.uid, len) {
                Ok(astx) => break astx,
                Err(MechError::AstExhausted) => match backoff.next_delay() {
                    Some(delay) => {
                        world.vm.machine.clock.advance(delay);
                        world.vm.machine.trace.counter_add("backoff.retries", 1);
                    }
                    None => {
                        return Err(Self::overload_refusal(world, pid, "activate"));
                    }
                },
                Err(e) => return Err(AccessError::Mech(e)),
            }
        };
        let (_, proc) = world.vm_and_proc_mut(pid);
        let segno = match &mut proc.kst {
            KstState::Kernel(k) => k.bind(target.uid, false),
            KstState::Legacy(k) => k.core.bind(target.uid, false),
        };
        proc.aspace.set(
            segno,
            mks_hw::Sdw::plain(astx, target.mode, target.brackets),
        );
        Ok(segno)
    }

    /// Resolves `dir_segno` to a real directory uid via the caller's KST;
    /// phantoms and non-directories yield `NoInfo`.
    fn real_dir(
        world: &KernelWorld,
        pid: KProcId,
        dir_segno: SegNo,
    ) -> Result<SegUid, AccessError> {
        let proc = world.proc(pid);
        let entry = match &proc.kst {
            KstState::Kernel(k) => k.entry(dir_segno),
            KstState::Legacy(k) => k.core.entry(dir_segno),
        }
        .ok_or(AccessError::NoInfo)?;
        if entry.phantom || !entry.is_dir {
            return Err(AccessError::NoInfo);
        }
        Ok(entry.uid)
    }

    /// Gate `initiate_segno` (kernel configuration): initiate the segment
    /// `name` in the directory bound at `dir_segno`.
    pub fn initiate(
        world: &mut KernelWorld,
        pid: KProcId,
        dir_segno: SegNo,
        name: &str,
    ) -> Result<SegNo, AccessError> {
        Self::admit(world, pid, &format!("initiate {name}"))?;
        let trace = world.vm.machine.trace.clone();
        let gate_span = Self::op_span(
            world,
            pid,
            mks_trace::Layer::Hw,
            "gate.initiate_segno",
            "initiate",
        );
        world.vm.machine.charge_gate_crossing();
        let mon_span = trace.span(mks_trace::Layer::Monitor, "monitor.initiate");
        let result = Self::real_dir(world, pid, dir_segno)
            .and_then(|dir_uid| Self::resolve_target(world, pid, dir_uid, name));
        let out = match result {
            Ok(target) => Self::grant(world, pid, target),
            Err(e) => {
                let who = world.proc(pid).user.clone();
                world.audit(
                    Some(who),
                    crate::syslog::AuditEvent::AccessDenied {
                        what: format!("initiate {name}"),
                    },
                );
                Err(e)
            }
        };
        Self::verdict(world, pid, &format!("initiate {name}"), out.is_ok());
        mon_span.end();
        gate_span.end();
        out
    }

    /// Gate `initiate_dir_segno` (kernel configuration): initiate a
    /// directory for traversal. Never errs — lies instead (see
    /// [`mks_fs::kst`]).
    pub fn initiate_dir(
        world: &mut KernelWorld,
        pid: KProcId,
        dir_segno: SegNo,
        name: &str,
    ) -> SegNo {
        let trace = world.vm.machine.trace.clone();
        let gate_span = Self::op_span(
            world,
            pid,
            mks_trace::Layer::Hw,
            "gate.initiate_dir_segno",
            "initiate_dir",
        );
        world.vm.machine.charge_gate_crossing();
        let mon_span = trace.span(mks_trace::Layer::Monitor, "monitor.initiate_dir");
        let (fs, proc) = world.fs_and_proc_mut(pid);
        let segno = match &mut proc.kst {
            KstState::Kernel(k) => kernel_initiate_dir(fs, k, dir_segno, name),
            // The legacy configuration reaches directories by pathname;
            // a segno-based traversal there just mints a kernel binding.
            KstState::Legacy(k) => match k.core.entry(dir_segno) {
                Some(e) if e.is_dir && !e.phantom => match fs.peek_branch(e.uid, name) {
                    Some(b) if b.is_dir() => k.core.bind(b.uid, true),
                    _ => k.core.bind_phantom(true),
                },
                _ => k.core.bind_phantom(true),
            },
        };
        // Traversal always "succeeds" (phantoms preserve that fiction).
        Self::verdict(world, pid, &format!("initiate_dir {name}"), true);
        mon_span.end();
        gate_span.end();
        segno
    }

    /// Initiates by full pathname, in whichever style the configuration
    /// prescribes: user-ring resolution over the segno interface (kernel),
    /// or the supervisor walk (legacy — whose errors leak existence).
    pub fn initiate_path(
        world: &mut KernelWorld,
        pid: KProcId,
        path: &str,
    ) -> Result<SegNo, AccessError> {
        match world.cfg.naming {
            NamingConfig::UserRing => {
                // User-ring loop: resolve the containing directory by
                // repeated initiate_dir calls, then one initiate.
                let comps = parse_path(path).map_err(|_| AccessError::BadPath)?;
                let (leaf, dirs) = comps.split_last().expect("non-empty");
                let mut dir = {
                    let (_, proc) = world.fs_and_proc_mut(pid);
                    match &mut proc.kst {
                        KstState::Kernel(k) => mks_fs::kst::bind_root(k),
                        KstState::Legacy(k) => k.core.bind(mks_fs::FileSystem::ROOT, true),
                    }
                };
                for c in dirs {
                    dir = Self::initiate_dir(world, pid, dir, c);
                }
                Self::initiate(world, pid, dir, leaf)
            }
            NamingConfig::InKernel => {
                // The legacy supervisor does the whole walk behind ONE gate.
                let trace = world.vm.machine.trace.clone();
                let gate_span = Self::op_span(
                    world,
                    pid,
                    mks_trace::Layer::Hw,
                    "gate.initiate_path",
                    "initiate_path",
                );
                world.vm.machine.charge_gate_crossing();
                let mon_span = trace.span(mks_trace::Layer::Monitor, "monitor.initiate_path");
                let out = Self::initiate_path_in_kernel(world, pid, path);
                Self::verdict(world, pid, &format!("initiate_path {path}"), out.is_ok());
                mon_span.end();
                gate_span.end();
                out
            }
        }
    }

    /// The legacy in-kernel pathname walk (body of the `InKernel` arm of
    /// [`Monitor::initiate_path`], split out so the gate wrapper can record
    /// the verdict on every exit path).
    fn initiate_path_in_kernel(
        world: &mut KernelWorld,
        pid: KProcId,
        path: &str,
    ) -> Result<SegNo, AccessError> {
        let ring = world.proc(pid).ring;
        let (fs, proc) = world.fs_and_proc_mut(pid);
        let KstState::Legacy(kst) = &mut proc.kst else {
            unreachable!("legacy naming config uses legacy KSTs");
        };
        kst.initiate_path(fs, path, ring, None)
            .map_err(AccessError::Legacy)?;
        // The legacy supervisor still applies ACL/MLS before
        // installing the SDW.
        let comps = parse_path(path).map_err(|_| AccessError::BadPath)?;
        let (leaf, dirs) = comps.split_last().expect("non-empty");
        let mut dir_uid = mks_fs::FileSystem::ROOT;
        for c in dirs {
            dir_uid = world
                .fs
                .peek_branch(dir_uid, c)
                .map(|b| b.uid)
                .ok_or(AccessError::NoInfo)?;
        }
        let target = Self::resolve_target(world, pid, dir_uid, leaf)?;
        Self::grant(world, pid, target)
    }

    /// Gate `create_branch_`: create a segment and initiate it.
    pub fn create_segment(
        world: &mut KernelWorld,
        pid: KProcId,
        dir_segno: SegNo,
        name: &str,
        acl: Acl<AclMode>,
        brackets: RingBrackets,
        label: Label,
    ) -> Result<SegNo, AccessError> {
        Self::admit(world, pid, &format!("create_segment {name}"))?;
        let _op = Self::op_span(
            world,
            pid,
            mks_trace::Layer::Monitor,
            "monitor.create_segment",
            "create_segment",
        );
        let dir_uid = Self::real_dir(world, pid, dir_segno)?;
        // MLS: creating in a directory is a write to it.
        if world.cfg.mls {
            let subj = world.proc(pid).label;
            let dlabel = world.fs.dir_label(dir_uid).map_err(AccessError::Fs)?;
            mls_check(&subj, &dlabel, AccessKind::Write).map_err(AccessError::Mls)?;
        }
        let user = world.proc(pid).user.clone();
        world
            .fs
            .create_segment(dir_uid, name, &user, acl, brackets, label)
            .map_err(AccessError::Fs)?;
        // Storage accounting: the first page is charged at creation; an
        // overflow undoes the creation entirely.
        if let Err(e) = Self::charge_quota(world, pid, dir_uid, 1) {
            let _ = world.fs.delete_branch(dir_uid, name, &user);
            return Err(e);
        }
        let target = Self::resolve_target(world, pid, dir_uid, name)?;
        Self::grant(world, pid, target)
    }

    /// Walks up from `dir_uid` to the nearest directory holding a quota
    /// cell (every hierarchy has one: the root's). A *damaged* hierarchy
    /// may contain a parent-pointer cycle until the salvager runs — the
    /// walk must answer `None` (a deterministic refusal) rather than hang
    /// the kernel on it, so revisiting a directory stops the climb.
    fn quota_account(world: &KernelWorld, mut dir_uid: SegUid) -> Option<SegUid> {
        // Hash-set cycle check: torn parent pointers can make this climb
        // arbitrarily long before the salvager runs, and a linear `seen`
        // scan would make it quadratic.
        let mut seen: std::collections::HashSet<SegUid> = std::collections::HashSet::new();
        loop {
            if matches!(world.fs.quota_cell(dir_uid), Ok(Some(_))) {
                return Some(dir_uid);
            }
            if !seen.insert(dir_uid) {
                return None;
            }
            dir_uid = world.fs.dir_parent(dir_uid).ok().flatten()?;
        }
    }

    /// Gate `quota_get`: the cell governing the directory bound at
    /// `dir_segno` (requires status on that directory).
    pub fn quota_get(
        world: &mut KernelWorld,
        pid: KProcId,
        dir_segno: SegNo,
    ) -> Result<QuotaCell, AccessError> {
        Self::admit(world, pid, "quota_get")?;
        let _op = Self::op_span(
            world,
            pid,
            mks_trace::Layer::Monitor,
            "monitor.quota_get",
            "quota_get",
        );
        let dir_uid = Self::real_dir(world, pid, dir_segno)?;
        let user = world.proc(pid).user.clone();
        if !world
            .fs
            .dir_access(dir_uid, &user)
            .map_err(AccessError::Fs)?
            .status
        {
            return Err(AccessError::NoInfo);
        }
        let account = Self::quota_account(world, dir_uid).ok_or(AccessError::NoInfo)?;
        match world.fs.quota_cell(account) {
            Ok(Some(q)) => Ok(q),
            _ => Err(AccessError::NoInfo),
        }
    }

    /// Gate `quota_move`: carve a quota cell of `limit_pages` onto the
    /// directory bound at `dir_segno`, taking the limit from its governing
    /// ancestor cell. Requires `m` on the directory.
    pub fn set_quota(
        world: &mut KernelWorld,
        pid: KProcId,
        dir_segno: SegNo,
        limit_pages: u64,
    ) -> Result<(), AccessError> {
        Self::admit(world, pid, "set_quota")?;
        let _op = Self::op_span(
            world,
            pid,
            mks_trace::Layer::Monitor,
            "monitor.set_quota",
            "set_quota",
        );
        let dir_uid = Self::real_dir(world, pid, dir_segno)?;
        let user = world.proc(pid).user.clone();
        if !world
            .fs
            .dir_access(dir_uid, &user)
            .map_err(AccessError::Fs)?
            .modify
        {
            return Err(AccessError::Fs(FsError::NoPermission { needed: 'm' }));
        }
        let parent = world
            .fs
            .dir_parent(dir_uid)
            .map_err(AccessError::Fs)?
            .ok_or(AccessError::Fs(FsError::NoPermission { needed: 'm' }))?;
        let account = Self::quota_account(world, parent).ok_or(AccessError::NoInfo)?;
        let mut source = match world.fs.quota_cell(account) {
            Ok(Some(q)) => q,
            _ => return Err(AccessError::NoInfo),
        };
        let mut cell = QuotaCell::with_limit(0);
        source
            .move_to(&mut cell, limit_pages)
            .map_err(AccessError::Quota)?;
        *world.fs.quota_cell_mut(account).map_err(AccessError::Fs)? = Some(source);
        *world.fs.quota_cell_mut(dir_uid).map_err(AccessError::Fs)? = Some(cell);
        Ok(())
    }

    /// Charges `pages` against the cell governing `dir_uid`; refuses with
    /// the quota error on overflow (nothing is half-charged).
    ///
    /// The `QuotaStorm` injection point lives here: an armed plan can make
    /// the accounting cell transiently contended (many principals charging
    /// at once), and the charge rides the bounded-backoff discipline —
    /// a few deterministic jittered retries, then an audited overload
    /// refusal attributed to `pid`. Never a stall, never a half-charge.
    fn charge_quota(
        world: &mut KernelWorld,
        pid: KProcId,
        dir_uid: SegUid,
        pages: u64,
    ) -> Result<(), AccessError> {
        let mut backoff = Backoff::new(
            dir_uid.0 ^ world.vm.machine.clock.now(),
            BackoffPolicy::default(),
        );
        while world
            .vm
            .machine
            .inject
            .fires(mks_hw::InjectKind::QuotaStorm)
            .is_some()
        {
            world.vm.machine.trace.counter_add("inject.quota_storms", 1);
            match backoff.next_delay() {
                Some(delay) => {
                    world.vm.machine.clock.advance(delay);
                    world.vm.machine.trace.counter_add("backoff.retries", 1);
                }
                None => return Err(Self::overload_refusal(world, pid, "charge_quota")),
            }
        }
        let account = Self::quota_account(world, dir_uid).ok_or(AccessError::NoInfo)?;
        let mut cell = match world.fs.quota_cell(account) {
            Ok(Some(q)) => q,
            _ => return Err(AccessError::NoInfo),
        };
        cell.charge(pages).map_err(AccessError::Quota)?;
        *world.fs.quota_cell_mut(account).map_err(AccessError::Fs)? = Some(cell);
        Ok(())
    }

    fn release_quota(world: &mut KernelWorld, dir_uid: SegUid, pages: u64) {
        if let Some(account) = Self::quota_account(world, dir_uid) {
            if let Ok(Some(mut cell)) = world.fs.quota_cell(account) {
                cell.release(pages);
                if let Ok(slot) = world.fs.quota_cell_mut(account) {
                    *slot = Some(cell);
                }
            }
        }
    }

    /// Gate `delete_branch_` for segments: removes the branch (requires
    /// `m` on the directory), destroys and scrubs the storage, revokes the
    /// caller's binding, and releases the quota charge.
    pub fn delete_segment(
        world: &mut KernelWorld,
        pid: KProcId,
        dir_segno: SegNo,
        name: &str,
    ) -> Result<(), AccessError> {
        Self::admit(world, pid, &format!("delete_segment {name}"))?;
        let _op = Self::op_span(
            world,
            pid,
            mks_trace::Layer::Monitor,
            "monitor.delete_segment",
            "delete_segment",
        );
        let dir_uid = Self::real_dir(world, pid, dir_segno)?;
        let user = world.proc(pid).user.clone();
        let branch = world
            .fs
            .delete_branch(dir_uid, name, &user)
            .map_err(AccessError::Fs)?;
        let uid = branch.uid;
        if world.vm.machine.ast.find(uid).is_some() {
            mks_vm::SegControl::delete(&mut world.vm, uid).map_err(AccessError::Mech)?;
        }
        let (_, proc) = world.vm_and_proc_mut(pid);
        let segno = match &mut proc.kst {
            KstState::Kernel(k) => k.segno_of(uid),
            KstState::Legacy(k) => k.core.segno_of(uid),
        };
        if let Some(s) = segno {
            match &mut proc.kst {
                KstState::Kernel(k) => {
                    k.unbind(s);
                }
                KstState::Legacy(k) => {
                    let _ = k.terminate_segno(s);
                }
            }
            proc.aspace.clear(s);
        }
        Self::release_quota(world, dir_uid, 1);
        Ok(())
    }

    /// Gate `create_dir_`: create a subdirectory, returning its segno
    /// binding for traversal.
    pub fn create_directory(
        world: &mut KernelWorld,
        pid: KProcId,
        dir_segno: SegNo,
        name: &str,
        label: Label,
    ) -> Result<SegNo, AccessError> {
        Self::admit(world, pid, &format!("create_directory {name}"))?;
        let _op = Self::op_span(
            world,
            pid,
            mks_trace::Layer::Monitor,
            "monitor.create_directory",
            "create_directory",
        );
        let dir_uid = Self::real_dir(world, pid, dir_segno)?;
        if world.cfg.mls {
            let subj = world.proc(pid).label;
            let dlabel = world.fs.dir_label(dir_uid).map_err(AccessError::Fs)?;
            mls_check(&subj, &dlabel, AccessKind::Write).map_err(AccessError::Mls)?;
        }
        let user = world.proc(pid).user.clone();
        let uid = world
            .fs
            .create_directory(dir_uid, name, &user, label)
            .map_err(AccessError::Fs)?;
        let (_, proc) = world.fs_and_proc_mut(pid);
        let segno = match &mut proc.kst {
            KstState::Kernel(k) => k.bind(uid, true),
            KstState::Legacy(k) => k.core.bind(uid, true),
        };
        Ok(segno)
    }

    /// Gate `list_dir`: entry names of the directory bound at `dir_segno`,
    /// under the status permission and (if on) the mandatory read rule.
    pub fn list_dir(
        world: &mut KernelWorld,
        pid: KProcId,
        dir_segno: SegNo,
    ) -> Result<Vec<String>, AccessError> {
        Self::admit(world, pid, "list_dir")?;
        let _op = Self::op_span(
            world,
            pid,
            mks_trace::Layer::Monitor,
            "monitor.list_dir",
            "list_dir",
        );
        let dir_uid = Self::real_dir(world, pid, dir_segno)?;
        let proc = world.proc(pid);
        if world.cfg.mls {
            let dlabel = world.fs.dir_label(dir_uid).map_err(AccessError::Fs)?;
            mls_check(&proc.label, &dlabel, AccessKind::Read).map_err(|_| AccessError::NoInfo)?;
        }
        let user = proc.user.clone();
        let branches = world
            .fs
            .list(dir_uid, &user)
            .map_err(|_| AccessError::NoInfo)?;
        Ok(branches
            .iter()
            .map(|b| b.primary_name().to_string())
            .collect())
    }

    /// Gate `status_long`: the attributes of the branch `name` in the
    /// directory bound at `dir_segno`. Requires `s` on the directory and
    /// (when MLS is armed) mandatory read on it; phantoms answer NoInfo.
    pub fn status(
        world: &mut KernelWorld,
        pid: KProcId,
        dir_segno: SegNo,
        name: &str,
    ) -> Result<BranchStatus, AccessError> {
        Self::admit(world, pid, &format!("status {name}"))?;
        let _op = Self::op_span(
            world,
            pid,
            mks_trace::Layer::Monitor,
            "monitor.status",
            "status",
        );
        let dir_uid = Self::real_dir(world, pid, dir_segno)?;
        let proc = world.proc(pid);
        if world.cfg.mls {
            let dlabel = world.fs.dir_label(dir_uid).map_err(AccessError::Fs)?;
            mls_check(&proc.label, &dlabel, AccessKind::Read).map_err(|_| AccessError::NoInfo)?;
        }
        let user = proc.user.clone();
        let branch = world
            .fs
            .get_branch(dir_uid, name, &user)
            .map_err(|_| AccessError::NoInfo)?;
        Ok(match &branch.kind {
            BranchKind::Segment {
                len_words,
                brackets,
                ..
            } => BranchStatus {
                names: branch.names.clone(),
                is_directory: false,
                len_words: *len_words,
                brackets: Some(*brackets),
                label: branch.label,
                author: branch.author.to_acl_string(),
            },
            BranchKind::Directory { .. } => BranchStatus {
                names: branch.names.clone(),
                is_directory: true,
                len_words: 0,
                brackets: None,
                label: branch.label,
                author: branch.author.to_acl_string(),
            },
        })
    }

    /// Gate `replace_acl`: replaces a segment's ACL (requires `m` on the
    /// containing directory). In a configuration with revocation, the
    /// change *retracts outstanding descriptors* ("setfaults"): every
    /// process bound to the segment has its SDW recomputed under the new
    /// ACL, so revoked access ends now, not at next initiation. The legacy
    /// supervisor skipped this — the gap penetration attack 15 exploits.
    pub fn set_segment_acl(
        world: &mut KernelWorld,
        pid: KProcId,
        dir_segno: SegNo,
        name: &str,
        new_acl: Acl<AclMode>,
    ) -> Result<(), AccessError> {
        Self::admit(world, pid, &format!("set_segment_acl {name}"))?;
        let _op = Self::op_span(
            world,
            pid,
            mks_trace::Layer::Monitor,
            "monitor.set_segment_acl",
            "set_segment_acl",
        );
        let dir_uid = Self::real_dir(world, pid, dir_segno)?;
        let user = world.proc(pid).user.clone();
        world
            .fs
            .set_segment_acl(dir_uid, name, &user, new_acl)
            .map_err(AccessError::Fs)?;
        if world.cfg.revocation {
            Self::setfaults(world, dir_uid, name);
        }
        Ok(())
    }

    /// Recomputes every process's descriptor for the branch `name` in
    /// `dir_uid` under its current ACL and labels.
    fn setfaults(world: &mut KernelWorld, dir_uid: SegUid, name: &str) {
        let Some(branch) = world.fs.peek_branch(dir_uid, name) else {
            return;
        };
        let BranchKind::Segment { acl, .. } = &branch.kind else {
            return;
        };
        let uid = branch.uid;
        let acl = acl.clone();
        let obj_label = branch.label;
        let mls_on = world.cfg.mls;
        world.for_each_proc_mut(|proc| {
            let segno = match &proc.kst {
                KstState::Kernel(k) => k.segno_of(uid),
                KstState::Legacy(k) => k.core.segno_of(uid),
            };
            let Some(segno) = segno else { return };
            let acl_mode = acl.effective(&proc.user).unwrap_or(AclMode::NULL);
            let mode = combine(acl_mode, &proc.label, &obj_label, mls_on);
            if let Some(sdw) = proc.aspace.get_mut(segno) {
                sdw.mode = mode;
            }
        });
    }

    /// Gate `terminate_segno`.
    pub fn terminate(
        world: &mut KernelWorld,
        pid: KProcId,
        segno: SegNo,
    ) -> Result<(), AccessError> {
        let trace = world.vm.machine.trace.clone();
        let gate_span = Self::op_span(
            world,
            pid,
            mks_trace::Layer::Hw,
            "gate.terminate_segno",
            "terminate",
        );
        world.vm.machine.charge_gate_crossing();
        let mon_span = trace.span(mks_trace::Layer::Monitor, "monitor.terminate");
        let (_, proc) = world.vm_and_proc_mut(pid);
        let entry = match &mut proc.kst {
            KstState::Kernel(k) => k.unbind(segno),
            KstState::Legacy(k) => k.core.unbind(segno),
        };
        let out = if entry.is_none() {
            Err(AccessError::NoInfo)
        } else {
            proc.aspace.clear(segno);
            Ok(())
        };
        Self::verdict(
            world,
            pid,
            &format!("terminate segno {}", segno.0),
            out.is_ok(),
        );
        mon_span.end();
        gate_span.end();
        out
    }

    /// Services directed faults transparently, then performs the access.
    ///
    /// Page-fault service rides the bounded-backoff discipline: a frame
    /// famine (injected or organic) is retried with deterministic jittered
    /// delays instead of failing hard on the first refusal — eviction may
    /// free a frame on the next attempt — and gives up with an audited
    /// overload refusal once the retry budget (or the call's admission
    /// `deadline`, when one was granted) is exhausted. Retrying is safe:
    /// the famine path refuses *before* any transfer is consumed, so a
    /// retry never double-applies a disk transfer (machine-checked by the
    /// proptests in `tests/overload_resilience.rs`).
    fn access_with_fault_service<T>(
        world: &mut KernelWorld,
        pid: KProcId,
        deadline: Option<Cycles>,
        mut op: impl FnMut(&mut KernelWorld, KProcId) -> Result<T, Fault>,
    ) -> Result<T, AccessError> {
        // The retry discipline engages only when the resilience layer is
        // in play (admission enabled or an injection plan armed); off that
        // path a famine surfaces immediately, exactly as it always did.
        let resilient = world.admission.is_enabled() || world.vm.machine.inject.is_armed();
        let mut famine: Option<Backoff> = None;
        for _ in 0..4 {
            match op(world, pid) {
                Ok(v) => return Ok(v),
                Err(Fault::MissingPage { seg, page }) => {
                    let uid = {
                        let proc = world.proc(pid);
                        match &proc.kst {
                            KstState::Kernel(k) => k.entry(seg),
                            KstState::Legacy(k) => k.core.entry(seg),
                        }
                        .map(|e| e.uid)
                        .ok_or(AccessError::Fault(Fault::MissingPage { seg, page }))?
                    };
                    loop {
                        let (vm, pager) = {
                            let w = &mut *world;
                            (&mut w.vm, &mut w.pager)
                        };
                        match pager.handle_fault(vm, uid, page) {
                            Ok(_) => break,
                            Err(MechError::NoFreeFrame) if resilient => {
                                if let Some(dl) = deadline {
                                    if world.vm.machine.clock.now() > dl {
                                        return Err(Self::overload_refusal(
                                            world,
                                            pid,
                                            "page fault (deadline)",
                                        ));
                                    }
                                }
                                let b = famine.get_or_insert_with(|| {
                                    Backoff::new(uid.0 ^ page as u64, BackoffPolicy::default())
                                });
                                match b.next_delay() {
                                    Some(delay) => {
                                        world.vm.machine.clock.advance(delay);
                                        world.vm.machine.trace.counter_add("backoff.retries", 1);
                                    }
                                    None => {
                                        return Err(Self::overload_refusal(
                                            world,
                                            pid,
                                            "page fault (frame famine)",
                                        ));
                                    }
                                }
                            }
                            Err(e) => return Err(AccessError::Mech(e)),
                        }
                    }
                }
                Err(f) => return Err(AccessError::Fault(f)),
            }
        }
        Err(AccessError::Mech(MechError::NoFreeFrame))
    }

    /// Reads one word of the segment bound at `segno`.
    pub fn read(
        world: &mut KernelWorld,
        pid: KProcId,
        segno: SegNo,
        offset: usize,
    ) -> Result<Word, AccessError> {
        let deadline = Self::admit(world, pid, "read")?;
        let _op = Self::op_span(
            world,
            pid,
            mks_trace::Layer::Monitor,
            "monitor.read",
            "read",
        );
        Self::access_with_fault_service(world, pid, deadline, |w, pid| {
            let (vm, proc) = w.vm_and_proc_mut(pid);
            vm.machine.read(&proc.aspace, proc.ring, segno, offset)
        })
    }

    /// Writes one word of the segment bound at `segno`.
    pub fn write(
        world: &mut KernelWorld,
        pid: KProcId,
        segno: SegNo,
        offset: usize,
        value: Word,
    ) -> Result<(), AccessError> {
        let deadline = Self::admit(world, pid, "write")?;
        let _op = Self::op_span(
            world,
            pid,
            mks_trace::Layer::Monitor,
            "monitor.write",
            "write",
        );
        Self::access_with_fault_service(world, pid, deadline, |w, pid| {
            let (vm, proc) = w.vm_and_proc_mut(pid);
            vm.machine
                .write(&proc.aspace, proc.ring, segno, offset, value)
        })
    }

    /// IPC guard: may `pid` notify the event channel bound to word
    /// `(segno, offset)`? Authorized exactly when the ordinary memory
    /// protection lets the process *write* that word — the paper's
    /// "controlled with the standard memory protection mechanisms".
    pub fn may_notify_channel(
        world: &mut KernelWorld,
        pid: KProcId,
        segno: SegNo,
        offset: usize,
    ) -> Result<(), AccessError> {
        let (vm, proc) = world.vm_and_proc_mut(pid);
        vm.machine
            .probe(&proc.aspace, proc.ring, segno, offset, AccessType::Write)
            .map_err(AccessError::Fault)
    }

    /// Gate-call check: may `pid` (in its current ring) call `entry` of
    /// gate `gate`? Returns the target ring on success.
    pub fn call_gate(
        world: &mut KernelWorld,
        pid: KProcId,
        gate: &str,
        entry: &str,
    ) -> Result<u8, AccessError> {
        Self::admit(world, pid, &format!("call {gate}${entry}"))?;
        let _op = Self::op_span(
            world,
            pid,
            mks_trace::Layer::Monitor,
            "monitor.call_gate",
            "call_gate",
        );
        let ring = world.proc(pid).ring;
        let Some(g) = world.gates.gate(gate) else {
            Self::verdict(world, pid, &format!("call {gate}${entry}"), false);
            return Err(AccessError::UnknownGate);
        };
        if g.entry(entry).is_none() {
            Self::verdict(world, pid, &format!("call {gate}${entry}"), false);
            return Err(AccessError::UnknownGate);
        }
        if ring > g.callable_from {
            let who = world.proc(pid).user.clone();
            world.audit(
                Some(who),
                crate::syslog::AuditEvent::GateRefused {
                    target: format!("{gate}${entry}"),
                },
            );
            Self::verdict(world, pid, &format!("call {gate}${entry}"), false);
            return Err(AccessError::GateDenied);
        }
        world
            .vm
            .machine
            .clock
            .advance(world.vm.machine.cost.call_cross_ring);
        Self::verdict(world, pid, &format!("call {gate}${entry}"), true);
        Ok(g.target_ring)
    }

    /// The `metering_get` gate: a read-only JSON snapshot of the kernel
    /// flight recorder — counters, histograms, per-layer cycle totals and
    /// the recent trace ring. Callable from any user ring; the caller gets
    /// a serialized *copy*, so no path through this entry can reset or
    /// rewrite the recorder.
    pub fn metering_snapshot(world: &mut KernelWorld, pid: KProcId) -> Result<String, AccessError> {
        Self::call_gate(world, pid, "hcs_", "metering_get")?;
        let mut snap = world.vm.machine.trace.snapshot();
        // Commit-log exposure (E20): the same read-only gate carries the
        // log's length and chain-head digest, so a user ring can check
        // the kernel's replayable history without a new entry point.
        snap.replay = Some(mks_trace::ReplaySnapshot {
            commits: world.commits.len(),
            log_digest: world.commits.head(),
        });
        // Replication exposure (E21): when this kernel is a replica, the
        // gate also carries its role, epoch, lag and link-health gauges.
        snap.repl = world.repl_status.clone();
        Ok(snap.to_json())
    }

    /// True if the page of `(segno, offset)` is resident for `pid` —
    /// a test/experiment observer, not a gate.
    pub fn is_resident(world: &KernelWorld, pid: KProcId, segno: SegNo, offset: usize) -> bool {
        let proc = world.proc(pid);
        let Some(sdw) = proc.aspace.get(segno) else {
            return false;
        };
        let entry = world.vm.machine.ast.entry(sdw.astx);
        let page = offset / mks_hw::PAGE_WORDS;
        page < entry.pt.nr_pages() && matches!(entry.pt.ptw(page).state, PageState::InCore(_))
    }
}

/// User-ring path resolution adapter used by examples and tests: drives
/// the monitor's segno interface exactly as a user-ring resolver would.
pub struct UserRingResolver<'a> {
    /// The world.
    pub world: &'a mut KernelWorld,
    /// The calling process.
    pub pid: KProcId,
}

impl DirInitiator for UserRingResolver<'_> {
    fn root(&mut self) -> SegNo {
        let (_, proc) = self.world.fs_and_proc_mut(self.pid);
        match &mut proc.kst {
            KstState::Kernel(k) => mks_fs::kst::bind_root(k),
            KstState::Legacy(k) => k.core.bind(mks_fs::FileSystem::ROOT, true),
        }
    }

    fn initiate_dir(&mut self, dir: SegNo, name: &str) -> SegNo {
        Monitor::initiate_dir(self.world, self.pid, dir, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelConfig;
    use crate::world::{admin_user, KstState, System};
    use mks_fs::{DirMode, UserId};
    use mks_mls::{Compartments, Level};

    fn jones() -> UserId {
        UserId::new("Jones", "CSR", "a")
    }

    fn root_of(sys: &mut System, pid: KProcId) -> SegNo {
        let (_, proc) = sys.world.fs_and_proc_mut(pid);
        match &mut proc.kst {
            KstState::Kernel(k) => mks_fs::kst::bind_root(k),
            KstState::Legacy(k) => k.core.bind(mks_fs::FileSystem::ROOT, true),
        }
    }

    /// A system with `>udd` (status+append for everyone) and two
    /// processes: admin and Jones, both at BOTTOM in ring 4.
    fn setup(cfg: KernelConfig) -> (System, KProcId, KProcId) {
        let mut sys = System::new(cfg);
        let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
        let jpid = sys.world.create_process(jones(), Label::BOTTOM, 4);
        let root = root_of(&mut sys, admin);
        Monitor::create_directory(&mut sys.world, admin, root, "udd", Label::BOTTOM).unwrap();
        sys.world
            .fs
            .set_dir_acl_entry(
                mks_fs::FileSystem::ROOT,
                "udd",
                &admin_user(),
                "*.*.*",
                DirMode::SA,
            )
            .unwrap();
        (sys, admin, jpid)
    }

    fn udd_of(sys: &mut System, pid: KProcId) -> SegNo {
        let root = root_of(sys, pid);
        Monitor::initiate_dir(&mut sys.world, pid, root, "udd")
    }

    fn mk_seg(sys: &mut System, pid: KProcId, dir: SegNo, name: &str, acl: &str) -> SegNo {
        Monitor::create_segment(
            &mut sys.world,
            pid,
            dir,
            name,
            Acl::of(acl, AclMode::RW),
            RingBrackets::new(4, 4, 4),
            Label::BOTTOM,
        )
        .unwrap()
    }

    #[test]
    fn create_write_read_round_trip() {
        for cfg in [KernelConfig::legacy(), KernelConfig::kernel()] {
            let (mut sys, _admin, jones) = setup(cfg);
            let udd = udd_of(&mut sys, jones);
            let seg = mk_seg(&mut sys, jones, udd, "notes", "Jones.CSR.a");
            Monitor::write(&mut sys.world, jones, seg, 10, Word::new(0o777)).unwrap();
            assert_eq!(
                Monitor::read(&mut sys.world, jones, seg, 10).unwrap(),
                Word::new(0o777)
            );
        }
    }

    #[test]
    fn acl_denies_the_unlisted_with_no_information() {
        let (mut sys, _admin, jones) = setup(KernelConfig::kernel());
        let udd_j = udd_of(&mut sys, jones);
        mk_seg(&mut sys, jones, udd_j, "private", "Jones.CSR.a");
        let smith = sys
            .world
            .create_process(UserId::new("Smith", "CSR", "a"), Label::BOTTOM, 4);
        let udd_s = udd_of(&mut sys, smith);
        // Denied access and nonexistence are the same answer.
        assert_eq!(
            Monitor::initiate(&mut sys.world, smith, udd_s, "private"),
            Err(AccessError::NoInfo)
        );
        assert_eq!(
            Monitor::initiate(&mut sys.world, smith, udd_s, "no_such_segment"),
            Err(AccessError::NoInfo)
        );
    }

    #[test]
    fn mls_blocks_read_up_and_write_down() {
        let (mut sys, admin, _jones) = setup(KernelConfig::kernel());
        let secret = Label::new(Level::SECRET, Compartments::NONE);
        // The BOTTOM admin creates an *upgraded* SECRET directory (writing
        // the BOTTOM parent at the admin's own level is legal; the child
        // label dominates the parent's — the Multics upgraded-directory
        // pattern).
        let udd_admin = udd_of(&mut sys, admin);
        Monitor::create_directory(&mut sys.world, admin, udd_admin, "vault", secret).unwrap();
        let udd_uid = sys
            .world
            .fs
            .peek_branch(mks_fs::FileSystem::ROOT, "udd")
            .unwrap()
            .uid;
        sys.world
            .fs
            .set_dir_acl_entry(udd_uid, "vault", &admin_user(), "*.*.*", DirMode::SA)
            .unwrap();
        let spid = sys.world.create_process(admin_user(), secret, 4);
        let udd_s = udd_of(&mut sys, spid);
        let vault_s = Monitor::initiate_dir(&mut sys.world, spid, udd_s, "vault");
        let seg = Monitor::create_segment(
            &mut sys.world,
            spid,
            vault_s,
            "dossier",
            Acl::of("*.*.*", AclMode::RW),
            RingBrackets::new(4, 4, 4),
            secret,
        )
        .unwrap();
        Monitor::write(&mut sys.world, spid, seg, 0, Word::new(1)).unwrap();
        // BOTTOM process: wide-open ACL notwithstanding, no read up; blind
        // write-up is allowed by the *-property.
        let udd_a = udd_of(&mut sys, admin);
        let vault_a = Monitor::initiate_dir(&mut sys.world, admin, udd_a, "vault");
        let seg_a = Monitor::initiate(&mut sys.world, admin, vault_a, "dossier").unwrap();
        assert!(matches!(
            Monitor::read(&mut sys.world, admin, seg_a, 0),
            Err(AccessError::Fault(Fault::AccessViolation { .. }))
        ));
        assert!(Monitor::write(&mut sys.world, admin, seg_a, 1, Word::new(2)).is_ok());
        // And the SECRET process cannot write down.
        let low = Monitor::create_segment(
            &mut sys.world,
            admin,
            udd_a,
            "public",
            Acl::of("*.*.*", AclMode::RW),
            RingBrackets::new(4, 4, 4),
            Label::BOTTOM,
        );
        assert!(low.is_ok());
        let low_s = Monitor::initiate(&mut sys.world, spid, udd_s, "public").unwrap();
        assert!(matches!(
            Monitor::write(&mut sys.world, spid, low_s, 0, Word::new(9)),
            Err(AccessError::Fault(Fault::AccessViolation { .. }))
        ));
        assert!(Monitor::read(&mut sys.world, spid, low_s, 0).is_ok());
    }

    #[test]
    fn page_faults_are_serviced_transparently() {
        let (mut sys, _admin, jones) = setup(KernelConfig::kernel());
        let udd_j = udd_of(&mut sys, jones);
        let seg = mk_seg(&mut sys, jones, udd_j, "big", "Jones.CSR.a");
        Monitor::write(&mut sys.world, jones, seg, 0, Word::new(7)).unwrap();
        assert!(Monitor::is_resident(&sys.world, jones, seg, 0));
        assert!(sys.world.vm.stats().faults >= 1);
    }

    #[test]
    fn pathname_initiation_works_in_both_styles() {
        for cfg in [KernelConfig::legacy(), KernelConfig::kernel()] {
            let (mut sys, _admin, jones) = setup(cfg);
            let udd_j = udd_of(&mut sys, jones);
            mk_seg(&mut sys, jones, udd_j, "prog", "Jones.CSR.a");
            let seg = Monitor::initiate_path(&mut sys.world, jones, ">udd>prog").unwrap();
            assert!(Monitor::write(&mut sys.world, jones, seg, 0, Word::new(1)).is_ok());
        }
    }

    #[test]
    fn existence_oracle_differs_between_configurations() {
        // Legacy: a missing mid-path component is reported as such.
        let (mut sys, _a, jones_pid) = setup(KernelConfig::legacy());
        let err = Monitor::initiate_path(&mut sys.world, jones_pid, ">udd>ghost>x").unwrap_err();
        assert!(matches!(
            err,
            AccessError::Legacy(LegacyKstError::NoEntry(_))
        ));
        // Kernel: the same probe gets the uninformative answer.
        let (mut sys2, _a2, jones2) = setup(KernelConfig::kernel());
        let err2 = Monitor::initiate_path(&mut sys2.world, jones2, ">udd>ghost>x").unwrap_err();
        assert_eq!(err2, AccessError::NoInfo);
    }

    #[test]
    fn terminate_revokes_the_descriptor() {
        let (mut sys, _a, jones) = setup(KernelConfig::kernel());
        let udd_j = udd_of(&mut sys, jones);
        let seg = mk_seg(&mut sys, jones, udd_j, "tmp", "Jones.CSR.a");
        Monitor::write(&mut sys.world, jones, seg, 0, Word::new(5)).unwrap();
        Monitor::terminate(&mut sys.world, jones, seg).unwrap();
        assert!(matches!(
            Monitor::read(&mut sys.world, jones, seg, 0),
            Err(AccessError::Fault(Fault::NoDescriptor { .. }))
        ));
        assert_eq!(
            Monitor::terminate(&mut sys.world, jones, seg),
            Err(AccessError::NoInfo)
        );
    }

    #[test]
    fn gate_calls_respect_call_brackets() {
        let (mut sys, _a, jones) = setup(KernelConfig::kernel());
        assert_eq!(
            Monitor::call_gate(&mut sys.world, jones, "hcs_", "block"),
            Ok(0)
        );
        assert_eq!(
            Monitor::call_gate(&mut sys.world, jones, "hphcs_", "shutdown"),
            Err(AccessError::GateDenied)
        );
        assert_eq!(
            Monitor::call_gate(&mut sys.world, jones, "hcs_", "warp_core"),
            Err(AccessError::UnknownGate)
        );
        let sysproc = sys.world.create_process(admin_user(), Label::BOTTOM, 1);
        assert_eq!(
            Monitor::call_gate(&mut sys.world, sysproc, "hphcs_", "shutdown"),
            Ok(0)
        );
    }

    #[test]
    fn metering_gate_is_readable_from_user_rings() {
        let (mut sys, _a, jones) = setup(KernelConfig::kernel());
        let granted_before = sys.world.vm.machine.trace.counter("monitor.granted");
        let json = Monitor::metering_snapshot(&mut sys.world, jones).unwrap();
        assert!(
            json.contains("\"counters\""),
            "snapshot is a JSON object: {json}"
        );
        assert!(
            json.contains("monitor.granted"),
            "verdict counters are visible"
        );
        // The snapshot is a copy: reading the metering never rewinds it.
        assert!(sys.world.vm.machine.trace.counter("monitor.granted") > granted_before);
        let again = Monitor::metering_snapshot(&mut sys.world, jones).unwrap();
        assert!(again.contains("monitor.granted"));
    }

    #[test]
    fn ipc_notify_follows_write_access() {
        let (mut sys, _a, jones) = setup(KernelConfig::kernel());
        let udd_j = udd_of(&mut sys, jones);
        let chan = mk_seg(&mut sys, jones, udd_j, "mailbox", "Jones.CSR.a");
        // The channel word must be resident/present for the probe's bounds
        // check; touch it once.
        Monitor::write(&mut sys.world, jones, chan, 0, Word::ZERO).unwrap();
        assert!(Monitor::may_notify_channel(&mut sys.world, jones, chan, 0).is_ok());
        // Smith cannot even initiate the mailbox, let alone notify it.
        let smith = sys
            .world
            .create_process(UserId::new("Smith", "CSR", "a"), Label::BOTTOM, 4);
        let udd_s = udd_of(&mut sys, smith);
        assert_eq!(
            Monitor::initiate(&mut sys.world, smith, udd_s, "mailbox"),
            Err(AccessError::NoInfo)
        );
    }

    #[test]
    fn list_dir_needs_status_and_mandatory_read() {
        let (mut sys, _a, jones) = setup(KernelConfig::kernel());
        let udd_j = udd_of(&mut sys, jones);
        mk_seg(&mut sys, jones, udd_j, "visible", "Jones.CSR.a");
        let names = Monitor::list_dir(&mut sys.world, jones, udd_j).unwrap();
        assert!(names.contains(&"visible".to_string()));
        // A phantom directory lists nothing — uninformatively.
        let ghost = Monitor::initiate_dir(&mut sys.world, jones, udd_j, "ghost");
        assert_eq!(
            Monitor::list_dir(&mut sys.world, jones, ghost),
            Err(AccessError::NoInfo)
        );
    }

    #[test]
    fn quota_bounds_creation_and_delete_releases() {
        let (mut sys, _admin, jones) = setup(KernelConfig::kernel());
        let udd_j = udd_of(&mut sys, jones);
        // Jones makes a project directory and gets 2 pages of quota on it
        // (needs 'm' on the dir — the creator has sma).
        let proj =
            Monitor::create_directory(&mut sys.world, jones, udd_j, "proj", Label::BOTTOM).unwrap();
        Monitor::set_quota(&mut sys.world, jones, proj, 2).unwrap();
        assert_eq!(
            Monitor::quota_get(&mut sys.world, jones, proj)
                .unwrap()
                .limit_pages,
            2
        );
        // Two segments fit; the third overflows the cell.
        mk_seg(&mut sys, jones, proj, "a", "Jones.CSR.a");
        mk_seg(&mut sys, jones, proj, "b", "Jones.CSR.a");
        let err = Monitor::create_segment(
            &mut sys.world,
            jones,
            proj,
            "c",
            Acl::of("Jones.CSR.a", AclMode::RW),
            RingBrackets::new(4, 4, 4),
            Label::BOTTOM,
        )
        .unwrap_err();
        assert!(matches!(err, AccessError::Quota(_)), "{err:?}");
        // The failed creation left no residue in the directory.
        assert!(!Monitor::list_dir(&mut sys.world, jones, proj)
            .unwrap()
            .contains(&"c".to_string()));
        // Deleting one releases the charge; creation works again.
        Monitor::delete_segment(&mut sys.world, jones, proj, "a").unwrap();
        assert!(Monitor::create_segment(
            &mut sys.world,
            jones,
            proj,
            "c",
            Acl::of("Jones.CSR.a", AclMode::RW),
            RingBrackets::new(4, 4, 4),
            Label::BOTTOM,
        )
        .is_ok());
        // And the quota damage is confined to the subtree: creating under
        // udd (governed by the root's big cell) still works.
        assert!(Monitor::create_segment(
            &mut sys.world,
            jones,
            udd_j,
            "outside",
            Acl::of("Jones.CSR.a", AclMode::RW),
            RingBrackets::new(4, 4, 4),
            Label::BOTTOM,
        )
        .is_ok());
    }

    #[test]
    fn delete_segment_scrubs_and_revokes() {
        let (mut sys, _admin, jones) = setup(KernelConfig::kernel());
        let udd_j = udd_of(&mut sys, jones);
        // Deletion needs 'm', which Jones holds on his own home directory.
        let home = Monitor::create_directory(&mut sys.world, jones, udd_j, "Jones", Label::BOTTOM)
            .unwrap();
        let seg = mk_seg(&mut sys, jones, home, "doomed", "Jones.CSR.a");
        Monitor::write(&mut sys.world, jones, seg, 0, Word::new(0o7777)).unwrap();
        // Deleting from udd without 'm' is refused…
        assert!(matches!(
            Monitor::delete_segment(&mut sys.world, jones, udd_j, "Jones"),
            Err(AccessError::Fs(_))
        ));
        // …but from his home it works.
        Monitor::delete_segment(&mut sys.world, jones, home, "doomed").unwrap();
        // Binding revoked…
        assert!(matches!(
            Monitor::read(&mut sys.world, jones, seg, 0),
            Err(AccessError::Fault(Fault::NoDescriptor { .. }))
        ));
        // …name free for reuse, and the new segment starts zeroed.
        let again = mk_seg(&mut sys, jones, home, "doomed", "Jones.CSR.a");
        assert_eq!(
            Monitor::read(&mut sys.world, jones, again, 0).unwrap(),
            Word::ZERO
        );
    }

    #[test]
    fn set_quota_requires_modify() {
        let (mut sys, admin, jones) = setup(KernelConfig::kernel());
        let udd_a = udd_of(&mut sys, admin);
        Monitor::create_directory(&mut sys.world, admin, udd_a, "shared", Label::BOTTOM).unwrap();
        // Jones (no 'm' on admin's dir) cannot carve quota onto it.
        let udd_j = udd_of(&mut sys, jones);
        let shared_j = Monitor::initiate_dir(&mut sys.world, jones, udd_j, "shared");
        assert!(matches!(
            Monitor::set_quota(&mut sys.world, jones, shared_j, 5),
            Err(AccessError::Fs(FsError::NoPermission { needed: 'm' }))
        ));
    }

    #[test]
    fn status_reveals_attributes_only_to_the_entitled() {
        let (mut sys, _admin, jones) = setup(KernelConfig::kernel());
        let udd_j = udd_of(&mut sys, jones);
        mk_seg(&mut sys, jones, udd_j, "report", "Jones.CSR.a");
        let st = Monitor::status(&mut sys.world, jones, udd_j, "report").unwrap();
        assert_eq!(st.names, vec!["report".to_string()]);
        assert!(!st.is_directory);
        assert_eq!(st.author, "Jones.CSR.a");
        assert!(st.brackets.is_some());
        // Status of a missing entry and of a phantom dir: both NoInfo.
        assert_eq!(
            Monitor::status(&mut sys.world, jones, udd_j, "ghost"),
            Err(AccessError::NoInfo)
        );
        let phantom = Monitor::initiate_dir(&mut sys.world, jones, udd_j, "phantom");
        assert_eq!(
            Monitor::status(&mut sys.world, jones, phantom, "anything"),
            Err(AccessError::NoInfo)
        );
    }

    #[test]
    fn acl_revocation_retracts_outstanding_descriptors() {
        let (mut sys, _admin, jones) = setup(KernelConfig::kernel());
        let udd_j = udd_of(&mut sys, jones);
        let home = Monitor::create_directory(&mut sys.world, jones, udd_j, "Jones", Label::BOTTOM)
            .unwrap();
        let mut acl = Acl::of("Jones.CSR.a", AclMode::RW);
        acl.add("Smith.CSR.a", AclMode::R);
        let seg = Monitor::create_segment(
            &mut sys.world,
            jones,
            home,
            "shared",
            acl,
            RingBrackets::new(4, 4, 4),
            Label::BOTTOM,
        )
        .unwrap();
        Monitor::write(&mut sys.world, jones, seg, 0, Word::new(9)).unwrap();
        // Smith binds it and reads happily.
        let smith = sys
            .world
            .create_process(UserId::new("Smith", "CSR", "a"), Label::BOTTOM, 4);
        let seg_s = Monitor::initiate_path(&mut sys.world, smith, ">udd>Jones>shared").unwrap();
        assert!(Monitor::read(&mut sys.world, smith, seg_s, 0).is_ok());
        // Jones revokes Smith. With setfaults, Smith's *outstanding*
        // descriptor dies immediately.
        Monitor::set_segment_acl(
            &mut sys.world,
            jones,
            home,
            "shared",
            Acl::of("Jones.CSR.a", AclMode::RW),
        )
        .unwrap();
        assert!(matches!(
            Monitor::read(&mut sys.world, smith, seg_s, 0),
            Err(AccessError::Fault(Fault::AccessViolation { .. }))
        ));
        // Jones himself still has access (his SDW was recomputed too).
        assert!(Monitor::read(&mut sys.world, jones, seg, 0).is_ok());
        // In the legacy configuration the same revocation leaves Smith's
        // old descriptor alive — the gap attack 15 exploits.
        let (mut sys2, _a2, jones2) = setup(KernelConfig::legacy());
        let udd2 = udd_of(&mut sys2, jones2);
        let home2 =
            Monitor::create_directory(&mut sys2.world, jones2, udd2, "Jones", Label::BOTTOM)
                .unwrap();
        let mut acl2 = Acl::of("Jones.CSR.a", AclMode::RW);
        acl2.add("Smith.CSR.a", AclMode::R);
        Monitor::create_segment(
            &mut sys2.world,
            jones2,
            home2,
            "shared",
            acl2,
            RingBrackets::new(4, 4, 4),
            Label::BOTTOM,
        )
        .unwrap();
        let smith2 = sys2
            .world
            .create_process(UserId::new("Smith", "CSR", "a"), Label::BOTTOM, 4);
        let seg_s2 = Monitor::initiate_path(&mut sys2.world, smith2, ">udd>Jones>shared").unwrap();
        Monitor::set_segment_acl(
            &mut sys2.world,
            jones2,
            home2,
            "shared",
            Acl::of("Jones.CSR.a", AclMode::RW),
        )
        .unwrap();
        assert!(
            Monitor::read(&mut sys2.world, smith2, seg_s2, 0).is_ok(),
            "legacy: the stale descriptor persists"
        );
    }

    #[test]
    fn user_ring_resolver_drives_the_segno_interface() {
        let (mut sys, _a, jones) = setup(KernelConfig::kernel());
        let udd_j = udd_of(&mut sys, jones);
        mk_seg(&mut sys, jones, udd_j, "target", "Jones.CSR.a");
        let mut resolver = UserRingResolver {
            world: &mut sys.world,
            pid: jones,
        };
        let (dir, leaf) = mks_fs::pathres::resolve_path(&mut resolver, ">udd>target").unwrap();
        assert_eq!(leaf, "target");
        let seg = Monitor::initiate(&mut sys.world, jones, dir, &leaf).unwrap();
        assert!(Monitor::read(&mut sys.world, jones, seg, 0).is_ok());
    }
}
