//! Backup: dumping the hierarchy to tape and restoring it.
//!
//! The paper keeps backup among the kernel's *internal* I/O even after the
//! device zoo leaves ("Internal I/O functions (for managing the virtual
//! memory, performing backup, and loading the system) would still be
//! managed in the kernel"). This module implements a complete
//! dump/restore cycle: the hierarchy's directories, branches, ACLs,
//! labels, quotas and every segment's page contents stream to a
//! [`mks_io::devices::tape::TapeDim`] as tagged records; restore
//! rebuilds an equivalent hierarchy in a fresh world.
//!
//! Record format (each record is a byte vector on tape):
//! `D <path> <label>` for a directory, `S <path> <label> <acl…>` followed
//! by one `P <page#> <data…>` record per nonzero page, and a final file
//! mark.

use mks_fs::{Acl, AclMode, BranchKind, FileSystem, UserId};
use mks_hw::{RingBrackets, SegUid, Word, PAGE_WORDS};
use mks_io::devices::tape::TapeDim;
use mks_io::devices::{Device, DeviceOp, DeviceResult};
use mks_mls::{Compartments, Label, Level};
use mks_vm::{mechanism, SegControl, VmWorld};

/// Backup/restore failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BackupError {
    /// The tape refused an operation.
    Tape(&'static str),
    /// A record on the tape is malformed.
    BadRecord(String),
    /// The restore target already has a conflicting entry.
    Conflict(String),
}

impl core::fmt::Display for BackupError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BackupError::Tape(e) => write!(f, "tape: {e}"),
            BackupError::BadRecord(r) => write!(f, "bad tape record: {r}"),
            BackupError::Conflict(p) => write!(f, "restore conflict at {p}"),
        }
    }
}

impl std::error::Error for BackupError {}

fn encode_label(l: &Label) -> String {
    format!("{}:{}", l.level.0, l.compartments.0)
}

fn decode_label(s: &str) -> Option<Label> {
    let (lvl, comps) = s.split_once(':')?;
    Some(Label::new(
        Level(lvl.parse().ok()?),
        Compartments(comps.parse().ok()?),
    ))
}

fn encode_acl(acl: &Acl<AclMode>) -> String {
    acl.entries()
        .iter()
        .map(|e| format!("{}.{}.{}={}", e.person, e.project, e.tag, e.mode))
        .collect::<Vec<_>>()
        .join(",")
}

fn decode_acl(s: &str) -> Option<Acl<AclMode>> {
    let mut acl = Acl::empty();
    if s.is_empty() {
        return Some(acl);
    }
    for part in s.split(',') {
        let (pat, mode) = part.split_once('=')?;
        acl.add(pat, AclMode::parse(mode)?);
    }
    Some(acl)
}

fn write_record(tape: &mut TapeDim, rec: String) -> Result<(), BackupError> {
    match tape.submit(DeviceOp::Write {
        data: rec.into_bytes(),
    }) {
        DeviceResult::Done => Ok(()),
        DeviceResult::Rejected(e) => Err(BackupError::Tape(e)),
        _ => Err(BackupError::Tape("unexpected tape answer")),
    }
}

/// Dumps the subtree rooted at `dir` (paths relative to it) onto `tape`,
/// pulling segment pages through page control as needed. Ends with a file
/// mark.
pub fn dump(
    fs: &FileSystem,
    vm: &mut VmWorld,
    dir: SegUid,
    tape: &mut TapeDim,
) -> Result<u32, BackupError> {
    let mut records = 0;
    dump_dir(fs, vm, dir, "", tape, &mut records)?;
    match tape.submit(DeviceOp::Control { order: "write_eof" }) {
        DeviceResult::Done => Ok(records),
        _ => Err(BackupError::Tape("eof refused")),
    }
}

fn ensure_resident(vm: &mut VmWorld, uid: SegUid, page: usize) -> Option<mks_hw::FrameId> {
    let astx = vm.machine.ast.find(uid)?;
    if page >= vm.machine.ast.entry(astx).pt.nr_pages() {
        return None;
    }
    if let mks_hw::ast::PageState::InCore(f) = vm.machine.ast.entry(astx).pt.ptw(page).state {
        return Some(f);
    }
    while vm.nr_free_frames() == 0 {
        let usage = mechanism::usage_stats(vm);
        let v = *usage.first()?;
        if mechanism::evict_to_bulk(vm, v.uid, v.page).is_err() {
            let oldest = vm.bulk.oldest()?;
            mechanism::evict_bulk_to_disk(vm, oldest).ok()?;
        }
    }
    mechanism::load_page(vm, uid, page).ok()
}

fn dump_dir(
    fs: &FileSystem,
    vm: &mut VmWorld,
    dir: SegUid,
    prefix: &str,
    tape: &mut TapeDim,
    records: &mut u32,
) -> Result<(), BackupError> {
    // Walk entries via the unchecked interface: backup is a kernel daemon.
    let branches: Vec<_> = {
        // find names by peeking through the hierarchy: reuse find_by_uid
        // style iteration via list on known structure.
        let mut v = Vec::new();
        // FileSystem has no public "children of uid" other than list(),
        // which checks ACLs; backup runs as kernel, so walk via peek by
        // collecting names from the node through the audit-safe route:
        // iterate all branches and keep those whose parent is `dir`.
        for name in fs.child_names(dir) {
            v.push(name);
        }
        v
    };
    for name in branches {
        let branch = fs.peek_branch(dir, &name).expect("listed name exists");
        let path = format!("{prefix}>{name}");
        match &branch.kind {
            BranchKind::Directory { .. } => {
                write_record(tape, format!("D {path} {}", encode_label(&branch.label)))?;
                *records += 1;
                dump_dir(fs, vm, branch.uid, &path, tape, records)?;
            }
            BranchKind::Segment { acl, len_words, .. } => {
                write_record(
                    tape,
                    format!(
                        "S {path} {} {} {}",
                        encode_label(&branch.label),
                        len_words,
                        encode_acl(acl)
                    ),
                )?;
                *records += 1;
                // Dump nonzero pages.
                let uid = branch.uid;
                SegControl::activate(vm, uid, (*len_words).max(PAGE_WORDS));
                let pages = len_words.div_ceil(PAGE_WORDS);
                for p in 0..pages.max(1) {
                    let Some(frame) = ensure_resident(vm, uid, p) else {
                        continue;
                    };
                    let mut bytes = Vec::with_capacity(PAGE_WORDS * 8);
                    let mut nonzero = false;
                    for off in 0..PAGE_WORDS {
                        let w = vm.machine.mem.read(frame, off).raw();
                        if w != 0 {
                            nonzero = true;
                        }
                        bytes.extend_from_slice(&w.to_be_bytes());
                    }
                    if nonzero {
                        let mut rec = format!("P {p} ").into_bytes();
                        rec.extend_from_slice(&bytes);
                        match tape.submit(DeviceOp::Write { data: rec }) {
                            DeviceResult::Done => *records += 1,
                            DeviceResult::Rejected(e) => return Err(BackupError::Tape(e)),
                            _ => return Err(BackupError::Tape("unexpected answer")),
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// A uid-independent digest of the subtree rooted at `dir`: sorted
/// paths, branch kind, label, ACL entries, segment length and every
/// nonzero page's contents. Ring brackets and quotas are *excluded* —
/// the tape format does not carry them (restore rebuilds user-ring
/// brackets and default quotas), so this digest captures exactly the
/// equivalence a dump/restore cycle preserves. Two worlds with equal
/// hierarchy digests hold the same protected information under the
/// same labels and ACLs, whatever uids and residency they use.
pub fn hierarchy_digest(fs: &FileSystem, vm: &mut VmWorld, dir: SegUid) -> u64 {
    let mut canon = String::new();
    digest_dir(fs, vm, dir, "", &mut canon);
    crate::statemachine::fnv64(canon.as_bytes())
}

fn digest_dir(fs: &FileSystem, vm: &mut VmWorld, dir: SegUid, prefix: &str, out: &mut String) {
    let mut names = fs.child_names(dir);
    names.sort();
    for name in names {
        let branch = fs.peek_branch(dir, &name).expect("listed name exists");
        let path = format!("{prefix}>{name}");
        match &branch.kind {
            BranchKind::Directory { .. } => {
                out.push_str(&format!("D {path} {}\n", encode_label(&branch.label)));
                digest_dir(fs, vm, branch.uid, &path, out);
            }
            BranchKind::Segment { acl, len_words, .. } => {
                out.push_str(&format!(
                    "S {path} {} {} {}\n",
                    encode_label(&branch.label),
                    len_words,
                    encode_acl(acl)
                ));
                let uid = branch.uid;
                SegControl::activate(vm, uid, (*len_words).max(PAGE_WORDS));
                let pages = len_words.div_ceil(PAGE_WORDS);
                for p in 0..pages.max(1) {
                    let Some(frame) = ensure_resident(vm, uid, p) else {
                        continue;
                    };
                    let mut cells = String::new();
                    for off in 0..PAGE_WORDS {
                        let w = vm.machine.mem.read(frame, off).raw();
                        if w != 0 {
                            cells.push_str(&format!("{off}:{w:x} "));
                        }
                    }
                    if !cells.is_empty() {
                        out.push_str(&format!("P {path} {p} {cells}\n"));
                    }
                }
            }
        }
    }
}

/// Restores a dump into `fs`/`vm` under `target` (usually the root), as
/// `owner`. Returns the number of objects created.
pub fn restore(
    fs: &mut FileSystem,
    vm: &mut VmWorld,
    target: SegUid,
    tape: &mut TapeDim,
    owner: &UserId,
) -> Result<u32, BackupError> {
    let mut created = 0;
    let mut current_seg: Option<SegUid> = None;
    loop {
        let data = match tape.submit(DeviceOp::Read { count: 1 }) {
            DeviceResult::Data(d) if d.is_empty() => break, // file mark
            DeviceResult::Data(d) => d,
            DeviceResult::Rejected(_) => break, // end of tape
            _ => return Err(BackupError::Tape("unexpected answer")),
        };
        match data.first() {
            Some(b'D') | Some(b'S') => {
                let text = String::from_utf8(data.clone())
                    .map_err(|_| BackupError::BadRecord("non-utf8 header".into()))?;
                let mut parts = text.split_whitespace();
                let kind = parts.next().unwrap();
                let path = parts
                    .next()
                    .ok_or_else(|| BackupError::BadRecord(text.clone()))?;
                let label = decode_label(
                    parts
                        .next()
                        .ok_or_else(|| BackupError::BadRecord(text.clone()))?,
                )
                .ok_or_else(|| BackupError::BadRecord(text.clone()))?;
                // Resolve the parent under the target.
                let comps: Vec<&str> = path.split('>').filter(|c| !c.is_empty()).collect();
                let (leaf, dirs) = comps
                    .split_last()
                    .ok_or_else(|| BackupError::BadRecord(text.clone()))?;
                let mut dir = target;
                for c in dirs {
                    let b = fs
                        .peek_branch(dir, c)
                        .ok_or_else(|| BackupError::Conflict((*c).to_string()))?;
                    dir = b.uid;
                }
                if kind == "D" {
                    fs.create_directory(dir, leaf, owner, label)
                        .map_err(|_| BackupError::Conflict(path.to_string()))?;
                    created += 1;
                    current_seg = None;
                } else {
                    let len: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| BackupError::BadRecord(text.clone()))?;
                    let acl = decode_acl(parts.next().unwrap_or(""))
                        .ok_or_else(|| BackupError::BadRecord(text.clone()))?;
                    let uid = fs
                        .create_segment(dir, leaf, owner, acl, RingBrackets::new(4, 4, 4), label)
                        .map_err(|_| BackupError::Conflict(path.to_string()))?;
                    fs.note_segment_length(uid, len);
                    SegControl::activate(vm, uid, len.max(PAGE_WORDS));
                    created += 1;
                    current_seg = Some(uid);
                }
            }
            Some(b'P') => {
                let uid =
                    current_seg.ok_or_else(|| BackupError::BadRecord("orphan page".into()))?;
                // Parse "P <page#> " then 8-byte words.
                let sp1 = data
                    .iter()
                    .position(|b| *b == b' ')
                    .ok_or_else(|| BackupError::BadRecord("page header".into()))?;
                let sp2 = data[sp1 + 1..]
                    .iter()
                    .position(|b| *b == b' ')
                    .map(|i| i + sp1 + 1)
                    .ok_or_else(|| BackupError::BadRecord("page header".into()))?;
                let page: usize = std::str::from_utf8(&data[sp1 + 1..sp2])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| BackupError::BadRecord("page number".into()))?;
                let body = &data[sp2 + 1..];
                if body.len() != PAGE_WORDS * 8 {
                    return Err(BackupError::BadRecord("page body size".into()));
                }
                let frame = ensure_resident(vm, uid, page)
                    .ok_or_else(|| BackupError::BadRecord("page out of range".into()))?;
                for off in 0..PAGE_WORDS {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&body[off * 8..off * 8 + 8]);
                    vm.machine
                        .mem
                        .write(frame, off, Word::new(u64::from_be_bytes(b)));
                }
                let astx = vm.machine.ast.find(uid).expect("activated");
                vm.machine.ast.entry_mut(astx).pt.ptw_mut(page).modified = true;
            }
            _ => return Err(BackupError::BadRecord(format!("{data:?}"))),
        }
    }
    Ok(created)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mks_hw::{CpuModel, Machine};

    fn admin() -> UserId {
        UserId::new("Admin", "SysAdmin", "a")
    }

    fn build_world() -> (FileSystem, VmWorld, SegUid) {
        let mut fs = FileSystem::new(&admin());
        let mut vm = VmWorld::new(Machine::new(CpuModel::H6180, 8), 32);
        let udd = fs
            .create_directory(FileSystem::ROOT, "udd", &admin(), Label::BOTTOM)
            .unwrap();
        let proj = fs
            .create_directory(udd, "CSR", &admin(), Label::BOTTOM)
            .unwrap();
        let seg = fs
            .create_segment(
                proj,
                "data",
                &admin(),
                Acl::of("Jones.CSR.a", AclMode::RW),
                RingBrackets::new(4, 4, 4),
                Label::new(Level::CONFIDENTIAL, Compartments::NONE),
            )
            .unwrap();
        fs.note_segment_length(seg, 2 * PAGE_WORDS);
        SegControl::activate(&mut vm, seg, 2 * PAGE_WORDS);
        for p in 0..2 {
            let f = mechanism::load_page(&mut vm, seg, p).unwrap();
            for off in (0..PAGE_WORDS).step_by(31) {
                vm.machine
                    .mem
                    .write(f, off, Word::new((p * 1000 + off) as u64));
            }
            let astx = vm.machine.ast.find(seg).unwrap();
            vm.machine.ast.entry_mut(astx).pt.ptw_mut(p).modified = true;
        }
        (fs, vm, seg)
    }

    #[test]
    fn dump_restore_round_trips_structure_and_contents() {
        let (fs, mut vm, _) = build_world();
        let mut tape = TapeDim::new();
        let n = dump(&fs, &mut vm, FileSystem::ROOT, &mut tape).unwrap();
        assert!(n >= 4, "dir + dir + seg + at least one page, got {n}");

        // Restore into a fresh world.
        tape.submit(DeviceOp::Control { order: "rewind" });
        let mut fs2 = FileSystem::new(&admin());
        let mut vm2 = VmWorld::new(Machine::new(CpuModel::H6180, 8), 32);
        let created = restore(&mut fs2, &mut vm2, FileSystem::ROOT, &mut tape, &admin()).unwrap();
        assert_eq!(created, 3);

        // Structure: >udd>CSR>data exists with label and ACL intact.
        let udd = fs2.peek_branch(FileSystem::ROOT, "udd").unwrap().uid;
        let csr = fs2.peek_branch(udd, "CSR").unwrap().uid;
        let b = fs2.peek_branch(csr, "data").unwrap();
        assert_eq!(b.label, Label::new(Level::CONFIDENTIAL, Compartments::NONE));
        let BranchKind::Segment { acl, len_words, .. } = &b.kind else {
            panic!()
        };
        assert_eq!(*len_words, 2 * PAGE_WORDS);
        assert_eq!(
            acl.effective(&UserId::new("Jones", "CSR", "a")),
            Some(AclMode::RW)
        );
        // Contents: every written word survives.
        let uid = b.uid;
        for p in 0..2 {
            let f = super::ensure_resident(&mut vm2, uid, p).unwrap();
            for off in (0..PAGE_WORDS).step_by(31) {
                assert_eq!(
                    vm2.machine.mem.read(f, off),
                    Word::new((p * 1000 + off) as u64),
                    "page {p} off {off}"
                );
            }
        }
    }

    #[test]
    fn restore_onto_conflicting_tree_is_refused() {
        let (fs, mut vm, _) = build_world();
        let mut tape = TapeDim::new();
        dump(&fs, &mut vm, FileSystem::ROOT, &mut tape).unwrap();
        tape.submit(DeviceOp::Control { order: "rewind" });
        // Restoring over the same (already populated) world collides.
        let mut fs2 = fs;
        let mut vm2 = vm;
        let err = restore(&mut fs2, &mut vm2, FileSystem::ROOT, &mut tape, &admin()).unwrap_err();
        assert!(matches!(err, BackupError::Conflict(_)));
    }

    #[test]
    fn write_protected_tape_refuses_the_dump() {
        let (fs, mut vm, _) = build_world();
        let mut tape = TapeDim::mounted(vec![]); // write ring out
        let err = dump(&fs, &mut vm, FileSystem::ROOT, &mut tape).unwrap_err();
        assert_eq!(err, BackupError::Tape("write ring out"));
    }

    /// Satellite check: the tape path (`dump`/`restore` into a fresh
    /// world) and the replay path (`MachineSnapshot` restore) must
    /// agree on the hierarchy digest — two entirely different recovery
    /// mechanisms converging on the same protected information.
    #[test]
    fn tape_restore_and_snapshot_restore_agree_on_hierarchy_digest() {
        use crate::statemachine::{
            restore as machine_restore, snapshot_at, Commit, Genesis, Outcome,
        };
        use mks_mls::Level;

        let genesis = Genesis::kernel_small();
        let mut sm = genesis.build();
        let admin_pid = match sm.apply(&Commit::CreateProcess {
            user: admin(),
            label: Label::BOTTOM,
            ring: 4,
        }) {
            Outcome::Pid(p) => p,
            out => panic!("admin creation returned {out:?}"),
        };
        let root = sm
            .apply(&Commit::BindRoot { pid: admin_pid })
            .seg()
            .expect("root binds");
        let d1 = sm
            .apply(&Commit::CreateDirectory {
                pid: admin_pid,
                dir: root,
                name: "archive".into(),
                label: Label::BOTTOM,
            })
            .seg()
            .expect("directory creates");
        let s1 = sm
            .apply(&Commit::CreateSegment {
                pid: admin_pid,
                dir: d1,
                name: "ledger".into(),
                acl: Acl::of("Admin.SysAdmin.a", AclMode::RW),
                brackets: RingBrackets::new(4, 4, 4),
                label: Label::new(Level::CONFIDENTIAL, Compartments::NONE),
            })
            .seg()
            .expect("segment creates");
        for off in [0u64, 7, 63] {
            sm.apply(&Commit::Write {
                pid: admin_pid,
                seg: s1,
                offset: off,
                value: 0x5a5a + off,
            });
        }
        sm.apply(&Commit::Tick { times: 3 });

        // Replay path: snapshot the full log and restore a twin.
        let log = sm.world().commits.clone();
        let snap = snapshot_at(&genesis, &log, log.len()).expect("snapshot covers the log");
        let mut twin = machine_restore(&snap).expect("snapshot restores");

        // Tape path: dump the live hierarchy, restore into a fresh
        // world that never saw the commit log.
        let mut tape = TapeDim::new();
        let w = sm.world_mut();
        dump(&w.fs, &mut w.vm, FileSystem::ROOT, &mut tape).expect("dump succeeds");
        tape.submit(DeviceOp::Control { order: "rewind" });
        let mut fs2 = FileSystem::new(&admin());
        let mut vm2 = VmWorld::new(Machine::new(CpuModel::H6180, 8), 32);
        restore(&mut fs2, &mut vm2, FileSystem::ROOT, &mut tape, &admin())
            .expect("tape restores into a fresh world");

        let live = hierarchy_digest(&w.fs, &mut w.vm, FileSystem::ROOT);
        let tw = twin.world_mut();
        let via_snapshot = hierarchy_digest(&tw.fs, &mut tw.vm, FileSystem::ROOT);
        let via_tape = hierarchy_digest(&fs2, &mut vm2, FileSystem::ROOT);
        assert_eq!(live, via_snapshot, "replay rebuilds the same hierarchy");
        assert_eq!(
            live, via_tape,
            "tape round-trip rebuilds the same hierarchy"
        );
    }

    #[test]
    fn label_and_acl_codecs_round_trip() {
        let l = Label::new(Level::SECRET, Compartments::of(&[1, 5]));
        assert_eq!(decode_label(&encode_label(&l)).unwrap(), l);
        let mut acl = Acl::of("Jones.CSR.a", AclMode::RW);
        acl.add("*.SysAdmin.*", AclMode::REW);
        acl.add("Spy.KGB.*", AclMode::NULL);
        assert_eq!(decode_acl(&encode_acl(&acl)).unwrap(), acl);
    }
}
