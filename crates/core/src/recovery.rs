//! The crash-recovery harness: workloads under injected faults, a
//! mid-operation kill, a re-boot through initialization and the salvager,
//! and a machine-checked pass over the kernel's integrity invariants.
//!
//! The paper's engineering argument is that a security kernel must come
//! back *securely* from a crash: "the salvager repairs the hierarchy in
//! the restrictive direction" and initialization from a pre-built memory
//! image "always produces the same protected state". This module turns
//! that argument into an executable check. [`run_plan`] builds a small
//! system, arms the fault injector with a seeded [`FaultPlan`], drives a
//! mixed workload (hierarchy creation, paging traffic, denied references,
//! IPC wakeups) until the plan's `Crash` event kills it mid-operation,
//! then recovers — re-boot from the memory image, official salvage — and
//! asserts the invariants the rest of the tree relies on:
//!
//! 1. **labels only raised** — no surviving branch's label moved downward
//!    across recovery (restrictive repair, the paper's rule);
//! 2. **no residual damage** — a second salvage after recovery reports a
//!    clean hierarchy (repair is complete and idempotent);
//! 3. **gate census unchanged** — the kernel's entry-point surface is a
//!    function of configuration, not of crash history;
//! 4. **reference monitor still consulted** — post-recovery references
//!    still produce verdict records and counter movement in the flight
//!    recorder;
//! 5. **boot determinism** — the memory image still loads to the exact
//!    `target_state` hash.
//!
//! A [`SalvageMutation`] deliberately breaks the recovery path (skip the
//! salvage, or lower a label after repair) so the harness can prove its
//! own teeth: a broken salvager must surface as violations.

use std::collections::BTreeMap;

use mks_fs::{Acl, AclMode, Problem, UserId};
use mks_hw::{CpuModel, FaultPlan, FiredFault, InjectKind, RingBrackets, SplitMix64, Word};
use mks_mls::{Compartments, Label, Level};
use mks_procs::{Effects, FnJob, Step};

use crate::config::KernelConfig;
use crate::gatetable::GateTable;
use crate::init::image::{build_image, load_image};
use crate::init::{state_hash, target_state};
use crate::monitor::Monitor;
use crate::world::{admin_user, System, SystemSize};

/// A deliberate defect in the recovery path, used to prove the harness
/// detects a broken salvager (the mutation check of experiment E15).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SalvageMutation {
    /// Recovery as shipped: boot, then salvage.
    None,
    /// Skip the salvage entirely — damage must surface as residual
    /// problems on the post-recovery consistency check.
    SkipSalvage,
    /// Salvage, then lower one surviving branch's label — must surface as
    /// a labels-only-raised violation.
    LowerAfterRepair,
}

/// Sizing and shape of one recovery run.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryOpts {
    /// Workload operations attempted before a natural stop (a `Crash`
    /// event in the plan usually stops the run earlier).
    pub ops: u64,
    /// Primary-memory frames (small, to force paging traffic).
    pub frames: usize,
    /// Bulk-store records.
    pub bulk_records: usize,
    /// Deliberate recovery defect, if any.
    pub mutation: SalvageMutation,
    /// Run the workload with admission control **enabled** (default
    /// pressure config, mixed priority classes), so a crash can land while
    /// the kernel is actively shedding load. The five invariants must hold
    /// either way — overload is not an excuse to come back insecure.
    pub overload: bool,
}

impl Default for RecoveryOpts {
    fn default() -> RecoveryOpts {
        RecoveryOpts {
            ops: 32,
            frames: 16,
            bulk_records: 64,
            mutation: SalvageMutation::None,
            overload: false,
        }
    }
}

/// What one recovery run observed. Two runs of the same plan and options
/// compare equal — the harness is deterministic by construction.
#[derive(Clone, PartialEq, Debug)]
pub struct RecoveryOutcome {
    /// The plan's seed (0 for hand-built plans).
    pub seed: u64,
    /// Whether a `Crash` event stopped the workload mid-stream.
    pub crashed: bool,
    /// Workload operations actually executed before the stop.
    pub ops_run: u64,
    /// Every fault the injector delivered, in order.
    pub fired: Vec<FiredFault>,
    /// Problems the official salvage found.
    pub problems_found: usize,
    /// How many of them it repaired.
    pub repaired: usize,
    /// Distinct repair arms exercised (sorted, deduplicated).
    pub problem_kinds: Vec<&'static str>,
    /// Invariant 1 failures: surviving labels that moved downward.
    pub labels_lowered: u64,
    /// Invariant 2 failures: problems still present after recovery.
    pub residual_damage: u64,
    /// Invariant 3 failures: gate census changes across recovery.
    pub census_drift: u64,
    /// Invariant 4 failures: monitor consultation not observed.
    pub monitor_misses: u64,
    /// Invariant 5 failures: memory image no longer boots to target.
    pub boot_divergence: u64,
    /// Whether the requested [`SalvageMutation`] actually took effect
    /// (`LowerAfterRepair` needs a surviving non-BOTTOM label).
    pub mutation_applied: bool,
    /// Human-readable description of every violation, in check order.
    pub violations: Vec<String>,
}

impl RecoveryOutcome {
    /// True when every integrity invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Maps a salvager problem to the stable kind name used in reports.
pub fn problem_kind(p: &Problem) -> &'static str {
    match p {
        Problem::DuplicateName { .. } => "duplicate-name",
        Problem::LabelViolation { .. } => "label-violation",
        Problem::MissingNode { .. } => "missing-node",
        Problem::OrphanNode { .. } => "orphan-node",
        Problem::WrongParent { .. } => "wrong-parent",
        Problem::NamelessBranch { .. } => "nameless-branch",
        Problem::QuotaOvercommit { .. } => "quota-overcommit",
        Problem::DuplicateUid { .. } => "duplicate-uid",
    }
}

fn stranger_user() -> UserId {
    UserId::new("Mallory", "Guest", "a")
}

/// Runs the seeded plan `FaultPlan::generate(seed)` through the harness.
pub fn run_seed(seed: u64, opts: RecoveryOpts) -> RecoveryOutcome {
    run_plan(&FaultPlan::generate(seed), opts)
}

/// Runs one plan: workload under injection, crash, recovery, invariants.
pub fn run_plan(plan: &FaultPlan, opts: RecoveryOpts) -> RecoveryOutcome {
    let cfg = KernelConfig::kernel();
    let mut sys = System::with_size(
        cfg,
        SystemSize {
            frames: opts.frames,
            bulk_records: opts.bulk_records,
            cpu: CpuModel::H6180,
            ..SystemSize::default()
        },
    );
    let inject = sys.world.vm.machine.inject.clone();

    // Principals: the administrator does the work, a stranger provides
    // denied references (audit-log traffic through the SkewClock site).
    let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
    let root = sys.world.bind_root(admin);
    let stranger = sys.world.create_process(stranger_user(), Label::BOTTOM, 4);
    let sroot = sys.world.bind_root(stranger);

    // A paging probe the workload hammers (admin-only, so the stranger's
    // initiates are denied).
    let probe = Monitor::create_segment(
        &mut sys.world,
        admin,
        root,
        "probe",
        Acl::of("Admin.SysAdmin.a", AclMode::RW),
        RingBrackets::new(4, 4, 4),
        Label::BOTTOM,
    )
    .expect("probe segment creates on a fresh system");

    // A dedicated daemon blocking on an event channel: the DropWakeup
    // injection point has something real to starve.
    let daemon_event = sys.tc.alloc_event();
    sys.tc.add_dedicated(Box::new(FnJob::new(
        "recovery-daemon",
        move |_e: &mut Effects<'_, crate::world::KernelWorld>| Step::Block(daemon_event),
    )));
    for _ in 0..4 {
        sys.tc.tick(&mut sys.world);
    }

    // Setup is done; everything from here on runs under the plan. In
    // overload mode the admission layer is armed as well, with the admin
    // above the stranger in the shed order — so the plan's exhaustion
    // events land on a kernel that is actively prioritizing.
    if opts.overload {
        sys.world
            .admission
            .enable(crate::pressure::PressureConfig::default());
        sys.world
            .admission
            .set_priority(admin, crate::pressure::Priority::Interactive);
        sys.world
            .admission
            .set_priority(stranger, crate::pressure::Priority::Background);
    }
    inject.arm(plan);

    // The workload proper. Operations on a damaged hierarchy may be
    // refused — deterministic refusals are part of the scenario. The
    // `Crash` injection point is consulted at every operation boundary,
    // so a plan chooses exactly which operation the kill interrupts.
    let mut rng = SplitMix64::new(plan.seed ^ 0xd1f7_ac75_0bad_c0de);
    let mut dirs = vec![root];
    let mut crashed = false;
    let mut ops_run = 0u64;
    let secret = Label::new(Level::SECRET, Compartments::of(&[1]));
    for i in 0..opts.ops {
        if inject.fires(InjectKind::Crash).is_some() {
            crashed = true;
            break;
        }
        ops_run += 1;
        match rng.below(6) {
            0 => {
                let parent = dirs[rng.below(dirs.len() as u64) as usize];
                let label = if rng.below(2) == 0 {
                    Label::BOTTOM
                } else {
                    secret
                };
                if let Ok(segno) = Monitor::create_directory(
                    &mut sys.world,
                    admin,
                    parent,
                    &format!("d{i}"),
                    label,
                ) {
                    dirs.push(segno);
                }
            }
            1 => {
                let parent = dirs[rng.below(dirs.len() as u64) as usize];
                let _ = Monitor::create_segment(
                    &mut sys.world,
                    admin,
                    parent,
                    &format!("s{i}"),
                    Acl::of("*.*.*", AclMode::RW),
                    RingBrackets::new(4, 4, 4),
                    secret,
                );
            }
            2 => {
                // Paging churn through the monitor: the SlowDisk/FailDisk
                // sites fire inside the transfers this provokes.
                let off = rng.below(64) as usize;
                let _ = Monitor::write(&mut sys.world, admin, probe, off, Word::new(i + 1));
                let _ = Monitor::read(&mut sys.world, admin, probe, off);
            }
            3 => {
                // A denied reference: audit-log traffic through the
                // monitor's timestamp (SkewClock) site.
                let _ = Monitor::initiate(&mut sys.world, stranger, sroot, "probe");
            }
            4 => {
                sys.tc.wakeup_external(&mut sys.world, daemon_event);
                sys.tc.tick(&mut sys.world);
            }
            _ => {
                sys.tc.tick(&mut sys.world);
                sys.tc.tick(&mut sys.world);
            }
        }
    }
    for _ in 0..4 {
        sys.tc.tick(&mut sys.world);
    }
    inject.disarm();
    let fired = inject.fired();

    // Snapshot what must survive recovery.
    let census_before: BTreeMap<_, _> = sys.world.fs.label_census().into_iter().collect();
    let gates_before = (
        sys.world.gates.total_entries(),
        sys.world.gates.user_available_entries(),
    );

    let mut out = RecoveryOutcome {
        seed: plan.seed,
        crashed,
        ops_run,
        fired,
        problems_found: 0,
        repaired: 0,
        problem_kinds: Vec::new(),
        labels_lowered: 0,
        residual_damage: 0,
        census_drift: 0,
        monitor_misses: 0,
        boot_divergence: 0,
        mutation_applied: false,
        violations: Vec::new(),
    };

    // --- Recovery step 1: re-boot through initialization. The memory
    // image is configuration state, not crash state: it must still load,
    // and load to exactly the pre-computed target.
    let img = build_image(&sys.world.cfg);
    match load_image(&img, &sys.world.vm.machine.clock) {
        Ok((state, _)) => {
            let expected = state_hash(&target_state(&sys.world.cfg));
            if state_hash(&state) != expected {
                out.boot_divergence += 1;
                out.violations
                    .push("boot: image loaded to a state different from target".into());
            }
        }
        Err(e) => {
            out.boot_divergence += 1;
            out.violations
                .push(format!("boot: image failed to load: {e:?}"));
        }
    }

    // --- Recovery step 2: the salvage pass (possibly mutated).
    match opts.mutation {
        SalvageMutation::SkipSalvage => {
            out.mutation_applied = true;
        }
        SalvageMutation::None | SalvageMutation::LowerAfterRepair => {
            let report = sys.world.fs.salvage();
            out.problems_found = report.problems.len();
            out.repaired = report.repaired;
            let mut kinds: Vec<&'static str> = report.problems.iter().map(problem_kind).collect();
            kinds.sort_unstable();
            kinds.dedup();
            out.problem_kinds = kinds;
            if opts.mutation == SalvageMutation::LowerAfterRepair {
                // Lower the first surviving non-BOTTOM label (uids are
                // unique post-salvage, so the lookup is deterministic).
                let target = sys
                    .world
                    .fs
                    .label_census()
                    .into_iter()
                    .find(|(_, label)| *label != Label::BOTTOM);
                if let Some((uid, _)) = target {
                    if let Some((dir, _)) = sys.world.fs.find_by_uid(uid) {
                        out.mutation_applied =
                            sys.world
                                .fs
                                .apply_tear(dir, uid, mks_fs::TearMode::LowerLabel);
                    }
                }
            }
        }
    }

    // --- Invariant 1: labels only raised. Every branch that survived
    // recovery must carry a label dominating what it had at the crash.
    for (uid, after) in sys.world.fs.label_census() {
        if let Some(before) = census_before.get(&uid) {
            if !after.dominates(before) {
                out.labels_lowered += 1;
                out.violations.push(format!(
                    "labels: uid {} lowered across recovery ({before:?} -> {after:?})",
                    uid.0
                ));
            }
        }
    }

    // --- Invariant 2: no residual damage. A fresh consistency pass after
    // recovery must report a clean hierarchy; anything it finds means the
    // official salvage was skipped, incomplete, or not idempotent.
    let recheck = sys.world.fs.salvage();
    if !recheck.clean() {
        out.residual_damage += recheck.problems.len() as u64;
        let mut kinds: Vec<&'static str> = recheck.problems.iter().map(problem_kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        out.violations.push(format!(
            "residual: {} problem(s) survived recovery: {kinds:?}",
            recheck.problems.len()
        ));
    }

    // --- Invariant 3: gate census unchanged. The protected entry-point
    // surface is a function of the configuration alone.
    let gates_after = (
        sys.world.gates.total_entries(),
        sys.world.gates.user_available_entries(),
    );
    let rebuilt = GateTable::build(&sys.world.cfg);
    let gates_target = (rebuilt.total_entries(), rebuilt.user_available_entries());
    if gates_after != gates_before || gates_after != gates_target {
        out.census_drift += 1;
        out.violations.push(format!(
            "gates: census drifted across recovery ({gates_before:?} -> {gates_after:?}, target {gates_target:?})"
        ));
    }

    // --- Invariant 4: the reference monitor is still consulted. A
    // post-recovery reference must move the verdict counters and leave a
    // verdict record in the flight recorder — if it does not, references
    // are flowing around the monitor.
    let trace = sys.world.vm.machine.trace.clone();
    let granted_before = trace.counter("monitor.granted");
    let denied_before = trace.counter("monitor.denied");
    let post = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
    let post_root = sys.world.bind_root(post);
    let first = Monitor::terminate(&mut sys.world, post, post_root);
    let second = Monitor::terminate(&mut sys.world, post, post_root);
    let granted_moved = trace.counter("monitor.granted") == granted_before + 1;
    let denied_moved = trace.counter("monitor.denied") == denied_before + 1;
    let verdict_recorded = trace
        .records()
        .iter()
        .any(|r| r.kind == mks_trace::EventKind::Verdict);
    if first.is_err() || second.is_ok() || !granted_moved || !denied_moved || !verdict_recorded {
        out.monitor_misses += 1;
        out.violations.push(format!(
            "monitor: post-recovery consultation not observed \
             (granted {granted_moved}, denied {denied_moved}, recorded {verdict_recorded})"
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mks_hw::FaultEvent;

    #[test]
    fn a_quiet_plan_recovers_clean() {
        let out = run_plan(&FaultPlan::from_events(vec![]), RecoveryOpts::default());
        assert!(out.ok(), "{:?}", out.violations);
        assert!(!out.crashed);
        assert!(out.fired.is_empty());
        assert_eq!(out.problems_found, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let opts = RecoveryOpts::default();
        let a = run_seed(0xE15, opts);
        let b = run_seed(0xE15, opts);
        assert_eq!(a, b);
    }

    #[test]
    fn a_crash_event_stops_the_workload_early() {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            kind: InjectKind::Crash,
            nth: 5,
            detail: 0,
        }]);
        let out = run_plan(&plan, RecoveryOpts::default());
        assert!(out.crashed);
        assert_eq!(out.ops_run, 5, "the kill lands at the chosen boundary");
        assert!(out.ok(), "{:?}", out.violations);
    }

    #[test]
    fn injected_damage_is_found_and_repaired() {
        // Tear the first few branch creations; the salvage must find and
        // repair the damage with every invariant intact.
        let plan = FaultPlan::from_events(
            (0..3)
                .map(|n| FaultEvent {
                    kind: InjectKind::TearBranch,
                    nth: n,
                    detail: n,
                })
                .collect(),
        );
        let out = run_plan(&plan, RecoveryOpts::default());
        assert!(!out.fired.is_empty());
        assert!(out.ok(), "{:?}", out.violations);
    }

    #[test]
    fn a_parent_cycle_refuses_instead_of_hanging() {
        // Regression: a SkipParentUpdate tear on a ROOT-level directory
        // leaves a self-referential parent pointer until the salvager
        // runs. The quota walk used to spin forever on that cycle; it
        // must instead refuse deterministically and recover clean.
        let plan = FaultPlan::from_events(vec![FaultEvent {
            kind: InjectKind::TearBranch,
            nth: 0,
            detail: 3,
        }]);
        let out = run_plan(&plan, RecoveryOpts::default());
        assert!(out.ok(), "{:?}", out.violations);
        assert!(out.problem_kinds.contains(&"wrong-parent"), "{out:?}");
    }

    #[test]
    fn skipping_the_salvage_is_caught() {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            kind: InjectKind::TearBranch,
            nth: 0,
            detail: 1,
        }]);
        let honest = run_plan(&plan, RecoveryOpts::default());
        assert!(honest.problems_found > 0, "the tear must damage the tree");
        let broken = run_plan(
            &plan,
            RecoveryOpts {
                mutation: SalvageMutation::SkipSalvage,
                ..RecoveryOpts::default()
            },
        );
        assert!(broken.residual_damage > 0, "{broken:?}");
        assert!(!broken.ok());
    }

    #[test]
    fn lowering_a_label_after_repair_is_caught() {
        let out = run_plan(
            &FaultPlan::from_events(vec![]),
            RecoveryOpts {
                mutation: SalvageMutation::LowerAfterRepair,
                ..RecoveryOpts::default()
            },
        );
        assert!(
            out.mutation_applied,
            "a non-BOTTOM label must exist to lower"
        );
        assert!(out.labels_lowered > 0, "{out:?}");
        assert!(!out.ok());
    }
}
