//! # mks-kernel — the Multics security kernel
//!
//! The paper's central artifact: "a minimal, protected central core of
//! software whose correct operation is necessary and sufficient to
//! guarantee enforcement within a system of the security model. Rather than
//! being dispersed throughout the system software, all protection
//! mechanisms are collected in the kernel, so that only this kernel need be
//! considered in order to certify the security properties of the system."
//!
//! This crate assembles the substrates (`mks-hw`, `mks-vm`, `mks-procs`,
//! `mks-fs`, `mks-mls`, `mks-linker`, `mks-io`) into a whole system, in
//! **two configurations**:
//!
//! * the *legacy supervisor* — everything in ring 0, the device zoo, the
//!   in-kernel linker and pathname machinery, in-situ interrupts,
//!   monolithic page control, and incremental bootstrap; and
//! * the *security kernel* — the paper's target: the removals done
//!   (linker, reference names, pathname resolution, login out of ring 0),
//!   the simplifications done (network-only I/O, infinite buffer, parallel
//!   page control, interrupt processes, memory-image initialization) and
//!   the partitions drawn (MLS at the bottom layer, policy/mechanism split
//!   across rings).
//!
//! Modules:
//! * [`config`] — which configuration is assembled, removal by removal;
//! * [`world`] — the whole-system state and per-process state;
//! * [`monitor`] — the reference monitor: every segment acquisition is
//!   mediated here (mandatory MLS check first, then the discretionary ACL,
//!   then ring brackets installed in the SDW for the hardware to enforce);
//! * [`gatetable`] — the supervisor's gate census per configuration
//!   (experiments E1/E3);
//! * [`audit`] — the certification audit: measured module inventory and
//!   size/entry reports (E2/E8/E14);
//! * [`auth`] — passwords and authentication;
//! * [`subsystem`] — protected-subsystem entry, and the login unification
//!   that makes the authentication machinery non-privileged;
//! * [`init`] — incremental bootstrap vs pre-initialized memory image (E11);
//! * [`flaws`] — the review activity's flaw registry;
//! * [`penetration`] — the Linde-style attack catalog run against both
//!   configurations (E12).

pub mod audit;
pub mod auth;
pub mod backup;
pub mod config;
pub mod exec;
pub mod flaws;
pub mod gatetable;
pub mod init;
pub mod layers;
pub mod monitor;
pub mod par;
pub mod penetration;
pub mod pressure;
pub mod recovery;
pub mod replicate;
pub mod statemachine;
pub mod subsystem;
pub mod syslog;
pub mod world;

pub use audit::{AuditReport, SystemInventory};
pub use auth::{AuthDb, AuthError};
pub use config::{IoConfig, KernelConfig, LinkerConfig, NamingConfig, PagingConfig, PolicyConfig};
pub use gatetable::GateTable;
pub use monitor::{AccessError, Monitor};
pub use par::{differential_mismatches, lane_reports, run_lanes, LaneConfig, LaneReport};
pub use pressure::{
    read_pressure, AdmissionControl, PressureConfig, PressureReading, Priority, Resource,
};
pub use recovery::{RecoveryOpts, RecoveryOutcome, SalvageMutation};
pub use replicate::{Cluster, DriveReport, ReplConfig, ReplError, ReplEvent, Role};
pub use statemachine::{
    Commit, CommitLog, Genesis, KernelStateMachine, MachineSnapshot, Outcome, ReplayError,
    ReplayMutation, SealedCommit, StateDigest, TimeTravel,
};
pub use syslog::{AuditEvent, AuditLog};
pub use world::{KProcId, KernelWorld, ProcState};
