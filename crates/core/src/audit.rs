//! The certification audit: what must be certified, and how big it is.
//!
//! The paper's bottom-line metrics are *how much* sits inside the
//! protection boundary (code weight) and *how wide* its call surface is
//! (gate entries). This module builds the module inventory of a
//! configuration with **measured** weights: every weight is the statement
//! count of the actual Rust implementation of that module in this
//! repository, obtained by [`mks_hw::source_weight`] over `include_str!`
//! of the real source files. Nothing is a hand-picked constant, so the
//! before/after ratios (experiments E2, E8, E14) are properties of the two
//! implementations, exactly as the paper's were.

use mks_hw::module::{Category, ModuleInfo};
use mks_hw::source_weight;

use crate::config::{
    IoConfig, KernelConfig, LinkerConfig, LoginConfig, NamingConfig, PagingConfig, PolicyConfig,
};
use crate::gatetable::{GateTable, NAMING_GATES_KERNEL, NAMING_GATES_LEGACY, PROC_GATES};

macro_rules! weigh {
    ($($path:literal),+ $(,)?) => {
        0 $(+ source_weight(include_str!($path)))+
    };
}

/// The audited inventory of one configuration.
pub struct SystemInventory {
    /// The configuration audited.
    pub cfg: KernelConfig,
    /// Every module, with ring, category, measured weight, and gates.
    pub modules: Vec<ModuleInfo>,
    /// The gate census.
    pub gates: GateTable,
}

impl SystemInventory {
    /// Builds the inventory for `cfg`.
    pub fn build(cfg: KernelConfig) -> SystemInventory {
        let mut m: Vec<ModuleInfo> = Vec::new();

        // --- file system core (always kernel) ---
        m.push(ModuleInfo {
            name: "directory control",
            ring: 0,
            category: Category::FileSystem,
            weight: weigh!(
                "../../fs/src/hierarchy.rs",
                "../../fs/src/acl.rs",
                "../../fs/src/quota.rs"
            ),
            entries: crate::gatetable::FS_GATES.to_vec(),
        });

        // --- address-space management ---
        m.push(ModuleInfo {
            name: "KST (segno\u{2194}uid core)",
            ring: 0,
            category: Category::AddressSpace,
            weight: weigh!("../../fs/src/kst.rs"),
            entries: match cfg.naming {
                NamingConfig::UserRing => NAMING_GATES_KERNEL.to_vec(),
                NamingConfig::InKernel => vec![],
            },
        });
        match cfg.naming {
            NamingConfig::InKernel => m.push(ModuleInfo {
                name: "legacy naming (paths, refnames, wdirs)",
                ring: 0,
                category: Category::AddressSpace,
                weight: weigh!("../../fs/src/kst_legacy.rs"),
                entries: NAMING_GATES_LEGACY.to_vec(),
            }),
            NamingConfig::UserRing => m.push(ModuleInfo {
                name: "naming library (user ring)",
                ring: 4,
                category: Category::AddressSpace,
                weight: weigh!("../../fs/src/pathres.rs", "../../linker/src/refname.rs"),
                entries: vec![],
            }),
        }

        // --- dynamic linker ---
        match cfg.linker {
            LinkerConfig::InKernel => m.push(mks_linker::kernel_cfg::LegacyLinker::module_info()),
            LinkerConfig::UserRing => m.push(mks_linker::user_cfg::UserLinker::module_info()),
        }

        // --- page control ---
        m.push(ModuleInfo {
            name: "page/segment mechanism",
            ring: 0,
            category: Category::PageControl,
            weight: weigh!(
                "../../vm/src/mechanism.rs",
                "../../vm/src/hierarchy.rs",
                "../../vm/src/segctl.rs",
                "../../vm/src/stats.rs"
            ),
            entries: vec![],
        });
        match cfg.paging {
            PagingConfig::Sequential => m.push(ModuleInfo {
                name: "page control (sequential cascade)",
                ring: 0,
                category: Category::PageControl,
                weight: weigh!("../../vm/src/sequential.rs"),
                entries: vec![],
            }),
            PagingConfig::Parallel => m.push(ModuleInfo {
                name: "page control (dedicated processes)",
                ring: 0,
                category: Category::PageControl,
                weight: weigh!("../../vm/src/parallel.rs"),
                entries: vec![],
            }),
        }
        m.push(ModuleInfo {
            name: "replacement policy",
            ring: match cfg.policy {
                PolicyConfig::Monolithic => 0,
                PolicyConfig::Split => 1,
            },
            category: Category::PageControl,
            weight: weigh!("../../vm/src/policy.rs"),
            entries: vec![],
        });

        // --- processes & ipc ---
        m.push(ModuleInfo {
            name: "traffic controller",
            ring: 0,
            category: Category::Processes,
            weight: weigh!(
                "../../procs/src/tc.rs",
                "../../procs/src/vproc.rs",
                "../../procs/src/step.rs"
            ),
            entries: PROC_GATES.to_vec(),
        });
        m.push(ModuleInfo {
            name: "event channels",
            ring: 0,
            category: Category::Ipc,
            weight: weigh!("../../procs/src/ipc.rs"),
            entries: vec![],
        });

        // --- mandatory policy layer ---
        if cfg.mls {
            m.push(ModuleInfo {
                name: "MLS layer (Mitre model)",
                ring: 0,
                category: Category::Mls,
                weight: weigh!("../../mls/src/label.rs", "../../mls/src/policy.rs"),
                entries: vec![],
            });
        }

        // --- I/O ---
        match cfg.io {
            IoConfig::DeviceZoo => {
                for d in mks_io::devices::legacy_zoo() {
                    m.push(d.module_info());
                }
            }
            IoConfig::NetworkOnly => {
                m.push(mks_io::network::NetworkAttachment::module_info());
                // The former DIM logic, re-hosted unprivileged.
                for d in mks_io::devices::legacy_zoo() {
                    let zoo = d.module_info();
                    m.push(ModuleInfo {
                        name: "net service (user ring)",
                        ring: 4,
                        category: Category::Io,
                        weight: zoo.weight,
                        entries: vec![],
                    });
                }
            }
        }
        m.push(ModuleInfo {
            name: "interrupt management",
            ring: 0,
            category: Category::Interrupts,
            weight: weigh!("../../io/src/interrupts.rs"),
            entries: vec![],
        });

        // --- the monitor and gates ---
        m.push(ModuleInfo {
            name: "reference monitor",
            ring: 0,
            category: Category::Gates,
            weight: weigh!("monitor.rs", "world.rs", "gatetable.rs"),
            entries: vec![],
        });

        // --- authentication / login ---
        m.push(ModuleInfo {
            name: "authentication & answering service",
            ring: match cfg.login {
                LoginConfig::InKernel => 0,
                LoginConfig::Unified => 4,
            },
            category: Category::Auth,
            weight: weigh!("auth.rs", "subsystem.rs"),
            entries: vec![],
        });

        // --- initialization ---
        match cfg.init {
            crate::config::InitConfig::Bootstrap => m.push(ModuleInfo {
                name: "bootstrap initializer",
                ring: 0,
                category: Category::Init,
                weight: weigh!("init.rs", "init/bootstrap.rs"),
                entries: vec![],
            }),
            crate::config::InitConfig::MemoryImage => {
                m.push(ModuleInfo {
                    name: "image loader",
                    ring: 0,
                    category: Category::Init,
                    weight: weigh!("init/image.rs"),
                    entries: vec![],
                });
                m.push(ModuleInfo {
                    name: "image factory (unprivileged)",
                    ring: 4,
                    category: Category::Init,
                    weight: weigh!("init.rs", "init/bootstrap.rs"),
                    entries: vec![],
                });
            }
        }

        SystemInventory {
            cfg,
            modules: m,
            gates: GateTable::build(&cfg),
        }
    }

    /// Total weight inside the protection boundary (rings 0–1).
    pub fn protected_weight(&self) -> u32 {
        self.modules
            .iter()
            .filter(|m| m.is_protected())
            .map(|m| m.weight)
            .sum()
    }

    /// Total weight outside the boundary.
    pub fn unprotected_weight(&self) -> u32 {
        self.modules
            .iter()
            .filter(|m| !m.is_protected())
            .map(|m| m.weight)
            .sum()
    }

    /// Protected weight in one category.
    pub fn protected_weight_of(&self, cat: Category) -> u32 {
        self.modules
            .iter()
            .filter(|m| m.is_protected() && m.category == cat)
            .map(|m| m.weight)
            .sum()
    }

    /// Renders the audit as a text table (for the experiment binaries).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("configuration: {}\n", self.cfg.name()));
        out.push_str(&format!(
            "{:<44} {:>4} {:>16} {:>7} {:>7}\n",
            "module", "ring", "category", "weight", "gates"
        ));
        for m in &self.modules {
            out.push_str(&format!(
                "{:<44} {:>4} {:>16} {:>7} {:>7}\n",
                m.name,
                m.ring,
                m.category.label(),
                m.weight,
                m.entries.len()
            ));
        }
        out.push_str(&format!(
            "protected weight {:>6}   unprotected weight {:>6}   user gates {:>4}\n",
            self.protected_weight(),
            self.unprotected_weight(),
            self.gates.user_available_entries()
        ));
        out
    }
}

/// A cross-configuration comparison (the E14 table).
pub struct AuditReport {
    /// Audits per configuration, in presentation order.
    pub rows: Vec<SystemInventory>,
}

impl AuditReport {
    /// Audits the standard configuration ladder.
    pub fn standard() -> AuditReport {
        AuditReport {
            rows: vec![
                SystemInventory::build(KernelConfig::legacy()),
                SystemInventory::build(KernelConfig::legacy_linker_removed()),
                SystemInventory::build(KernelConfig::legacy_both_removals()),
                SystemInventory::build(KernelConfig::kernel()),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_measured_not_zero() {
        let inv = SystemInventory::build(KernelConfig::kernel());
        for m in &inv.modules {
            assert!(
                m.weight > 10,
                "{} weight {} suspiciously small",
                m.name,
                m.weight
            );
        }
    }

    #[test]
    fn kernel_configuration_has_much_less_protected_code() {
        let legacy = SystemInventory::build(KernelConfig::legacy());
        let kernel = SystemInventory::build(KernelConfig::kernel());
        assert!(
            legacy.protected_weight() as f64 > 1.2 * kernel.protected_weight() as f64,
            "legacy {} vs kernel {}",
            legacy.protected_weight(),
            kernel.protected_weight()
        );
        // The function did not vanish — it moved outside the boundary.
        assert!(kernel.unprotected_weight() > legacy.unprotected_weight());
    }

    #[test]
    fn address_space_protected_code_shrinks_severalfold() {
        let legacy = SystemInventory::build(KernelConfig::legacy());
        let kernel = SystemInventory::build(KernelConfig::kernel());
        let l = legacy.protected_weight_of(Category::AddressSpace);
        let k = kernel.protected_weight_of(Category::AddressSpace);
        assert!(
            l as f64 / k as f64 >= 2.5,
            "expected severalfold shrink, got {l} / {k}"
        );
    }

    #[test]
    fn io_kernel_weight_collapses_with_the_network_attachment() {
        let zoo = SystemInventory::build(KernelConfig::legacy());
        let net = SystemInventory::build(KernelConfig::kernel());
        let zoo_w = zoo.protected_weight_of(Category::Io);
        let net_w = net.protected_weight_of(Category::Io);
        assert!(zoo_w as f64 / net_w as f64 >= 2.0, "{zoo_w} vs {net_w}");
    }

    #[test]
    fn render_produces_a_table() {
        let inv = SystemInventory::build(KernelConfig::legacy());
        let table = inv.render();
        assert!(table.contains("legacy supervisor"));
        assert!(table.contains("protected weight"));
    }

    #[test]
    fn standard_report_has_the_four_rungs() {
        let r = AuditReport::standard();
        assert_eq!(r.rows.len(), 4);
        // Monotone: each rung's user-gate surface is no larger.
        let gates: Vec<_> = r
            .rows
            .iter()
            .map(|x| x.gates.user_available_entries())
            .collect();
        assert!(gates.windows(2).all(|w| w[1] <= w[0]), "{gates:?}");
    }
}
