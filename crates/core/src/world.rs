//! Whole-system state: the kernel's view of everything.
//!
//! [`KernelWorld`] owns the machine, the memory hierarchy, the file system,
//! the gate table, the authentication database and the per-process state;
//! [`System`] couples it with the traffic controller (which cannot live
//! *inside* the world because scheduled jobs receive the world as their
//! mutable context). Per-process state ([`ProcState`]) is the kernel-side
//! record Multics kept for each process: principal, label, ring of
//! execution, descriptor segment, and KST — in whichever configuration the
//! system was assembled with.

use std::collections::HashMap;

use mks_fs::{FileSystem, KernelKst, LegacyKst, UserId};
use mks_hw::{AddrSpace, CpuModel, LockId, Machine, RingNo};
use mks_io::interrupts::ProcessInterrupts;
use mks_io::NetworkAttachment;
use mks_linker::kernel_cfg::LegacyLinker;
use mks_linker::user_cfg::UserLinker;
use mks_mls::Label;
use mks_procs::{HasMachine, SchedMode, TcConfig, TrafficController};
use mks_vm::{
    ClockPolicy, ParallelConfig, ParallelPageControl, SequentialPageControl, VmAccess, VmWorld,
};

use crate::auth::AuthDb;
use crate::config::KernelConfig;
use crate::flaws::FlawRegistry;
use crate::gatetable::GateTable;
use crate::pressure::AdmissionControl;
use crate::statemachine::CommitLog;
use crate::syslog::{AuditEvent, AuditLog};

/// Kernel process identifier (distinct from the traffic controller's
/// scheduling identifier; a kernel process may or may not be scheduled).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct KProcId(pub u32);

/// The per-process KST, per configuration.
#[derive(Debug)]
pub enum KstState {
    /// Post-removal: minimal kernel bindings.
    Kernel(KernelKst),
    /// Pre-removal: the monolithic supervisor object.
    Legacy(Box<LegacyKst>),
}

/// Kernel-side state of one process.
pub struct ProcState {
    /// The logged-in principal.
    pub user: UserId,
    /// The process's mandatory label (fixed at creation).
    pub label: Label,
    /// Current ring of execution.
    pub ring: RingNo,
    /// The descriptor segment.
    pub aspace: AddrSpace,
    /// The known segment table.
    pub kst: KstState,
    /// The user-ring linker (meaningful in the kernel configuration; it is
    /// per-process *private* mechanism).
    pub linker: UserLinker,
}

/// Everything the kernel knows.
pub struct KernelWorld {
    /// The assembled configuration.
    pub cfg: KernelConfig,
    /// Machine + memory hierarchy.
    pub vm: VmWorld,
    /// Parallel page-control channels (driven when `cfg.paging` says so).
    pub pc: ParallelPageControl,
    /// Synchronous pager for monitor-level fault service.
    pub pager: SequentialPageControl,
    /// The file-system hierarchy.
    pub fs: FileSystem,
    /// The gate census for this configuration.
    pub gates: GateTable,
    /// The password database.
    pub auth: AuthDb,
    /// The network attachment (the kernel configuration's only I/O).
    pub net: NetworkAttachment,
    /// The interrupt interceptor (process-per-handler design).
    pub interrupts: ProcessInterrupts,
    /// The shared, supervisor-resident linker (legacy configuration).
    pub legacy_linker: LegacyLinker,
    /// The review activity's flaw registry.
    pub flaws: FlawRegistry,
    /// The kernel audit log (append-only).
    pub log: AuditLog,
    /// Overload-resilience state: pressure tuning, per-process priority
    /// classes, and the admission decision log. Disabled by default —
    /// and then a strict no-op on every kernel path.
    pub admission: AdmissionControl,
    /// The sealed commit log (E20). Empty and rooted at 0 on a plain
    /// system; `statemachine::Genesis::build` re-roots it, and every
    /// `KernelStateMachine::apply` seals into it. Read-only here: the
    /// metering gate exports its head digest.
    pub commits: CommitLog,
    /// Replication status (E21): a replica's own view of its role, epoch
    /// and lag, published by `replicate::Cluster` each tick and exported
    /// read-only by the metering gate. `None` on an unreplicated kernel.
    /// Observational only — never folded into the state digest, so
    /// replicas with different vantage points still digest equal.
    pub repl_status: Option<mks_trace::ReplSnapshot>,
    procs: HashMap<KProcId, ProcState>,
    next_pid: u32,
}

impl HasMachine for KernelWorld {
    fn machine(&mut self) -> &mut Machine {
        &mut self.vm.machine
    }
}

impl VmAccess for KernelWorld {
    fn vm_parts(&mut self) -> (&mut VmWorld, &mut ParallelPageControl) {
        (&mut self.vm, &mut self.pc)
    }
}

/// The administrator principal the hierarchy is initialized with.
pub fn admin_user() -> UserId {
    UserId::new("Admin", "SysAdmin", "a")
}

/// A complete system: scheduler plus world.
pub struct System {
    /// The two-layer scheduler.
    pub tc: TrafficController<KernelWorld>,
    /// Everything else.
    pub world: KernelWorld,
}

/// Sizing for a newly built system.
#[derive(Clone, Copy, Debug)]
pub struct SystemSize {
    /// Primary memory frames.
    pub frames: usize,
    /// Bulk-store records.
    pub bulk_records: usize,
    /// Which CPU generation to build on.
    pub cpu: CpuModel,
    /// Trace-ring capacity; `None` defers to the `MKS_TRACE_CAP`
    /// environment override, then the `mks-trace` default.
    pub trace_capacity: Option<usize>,
}

impl Default for SystemSize {
    fn default() -> SystemSize {
        SystemSize {
            frames: 64,
            bulk_records: 256,
            cpu: CpuModel::H6180,
            trace_capacity: None,
        }
    }
}

impl System {
    /// Builds a system in configuration `cfg` with default sizing.
    pub fn new(cfg: KernelConfig) -> System {
        System::with_size(cfg, SystemSize::default())
    }

    /// Builds a system with explicit memory sizing.
    pub fn with_size(cfg: KernelConfig, size: SystemSize) -> System {
        let mut tc = TrafficController::new(TcConfig {
            nr_cpus: 2,
            nr_vprocs: 8,
            quantum: 8,
            sched: SchedMode::GlobalQueue,
        });
        let machine = Machine::with_trace_capacity(size.cpu, size.frames, size.trace_capacity);
        let vm = VmWorld::new(machine, size.bulk_records);
        let pc = ParallelPageControl::new(ParallelConfig::default(), &mut tc);
        let mut fs = FileSystem::new(&admin_user());
        fs.set_trace(vm.machine.trace.clone());
        fs.set_inject(vm.machine.inject.clone());
        let world = KernelWorld {
            cfg,
            vm,
            pc,
            pager: SequentialPageControl::new(Box::new(ClockPolicy::default())),
            fs,
            gates: GateTable::build(&cfg),
            auth: AuthDb::new(),
            net: NetworkAttachment::new(),
            interrupts: ProcessInterrupts::new(),
            legacy_linker: LegacyLinker::new(),
            flaws: FlawRegistry::new(),
            log: AuditLog::new(),
            admission: AdmissionControl::disabled(),
            commits: CommitLog::new(),
            repl_status: None,
            procs: HashMap::new(),
            next_pid: 1,
        };
        System { tc, world }
    }
}

impl KernelWorld {
    /// Creates a kernel process record for `user` at `label` in `ring`.
    pub fn create_process(&mut self, user: UserId, label: Label, ring: RingNo) -> KProcId {
        let pid = KProcId(self.next_pid);
        self.next_pid += 1;
        let kst = match self.cfg.naming {
            crate::config::NamingConfig::UserRing => {
                let mut k = KernelKst::new();
                k.set_trace(self.vm.machine.trace.clone());
                mks_fs::kst::bind_root(&mut k);
                KstState::Kernel(k)
            }
            crate::config::NamingConfig::InKernel => {
                let mut k = Box::new(LegacyKst::new());
                k.core.set_trace(self.vm.machine.trace.clone());
                KstState::Legacy(k)
            }
        };
        let mut aspace = AddrSpace::new();
        aspace.reserve_low(mks_fs::kst::FIRST_USER_SEGNO);
        self.procs.insert(
            pid,
            ProcState {
                user,
                label,
                ring,
                aspace,
                kst,
                linker: UserLinker::new(),
            },
        );
        pid
    }

    /// Borrows a process record.
    ///
    /// # Panics
    /// Panics on an unknown pid — process ids are kernel-internal and never
    /// accepted from user input, so a bad one is a kernel bug.
    pub fn proc(&self, pid: KProcId) -> &ProcState {
        self.procs.get(&pid).expect("unknown kernel process")
    }

    /// Mutably borrows a process record.
    pub fn proc_mut(&mut self, pid: KProcId) -> &mut ProcState {
        self.procs.get_mut(&pid).expect("unknown kernel process")
    }

    /// True when `pid` names a live process record. The replay
    /// dispatcher uses this to refuse (rather than panic on) commits
    /// whose acting process does not exist — a log under replay is
    /// external data, so a dangling pid must be a typed verdict.
    pub fn has_proc(&self, pid: KProcId) -> bool {
        self.procs.contains_key(&pid)
    }

    /// Destroys a process record, returning it.
    pub fn destroy_process(&mut self, pid: KProcId) -> Option<ProcState> {
        self.procs.remove(&pid)
    }

    /// Number of live processes.
    pub fn nr_processes(&self) -> usize {
        self.procs.len()
    }

    /// Appends a security-relevant record to the kernel audit log — the
    /// single choke point every kernel-side append goes through.
    ///
    /// Two fault-injection sites live here: `SkewClock` may warp the
    /// timestamp the log sees (never the clock itself), and `AuditFlood`
    /// stuffs the log with synthetic lifecycle noise *before* the real
    /// record, modeling a review log drowning under event storms. The real
    /// record is always appended — flooding delays review, it never erases
    /// evidence.
    pub fn audit(&mut self, who: Option<UserId>, event: AuditEvent) -> u64 {
        let _log = self.vm.machine.locks.hold(LockId::AuditLog);
        let at = self.vm.machine.clock.now();
        let at = self.vm.machine.inject.warp_time(at);
        if let Some(detail) = self.vm.machine.inject.fires(mks_hw::InjectKind::AuditFlood) {
            let noise = 1 + detail % 8;
            self.vm.machine.trace.counter_add("inject.audit_floods", 1);
            // Batched emission: one log growth for the whole storm.
            self.log.append_batch(
                at,
                (0..noise).map(|i| {
                    (
                        None,
                        AuditEvent::Lifecycle {
                            what: format!("flood noise {i}"),
                        },
                    )
                }),
            );
        }
        // Observatory tap: the analytics see the same stream the log
        // does, classified, at the same (possibly warped) timestamp.
        self.vm.machine.trace.ingest_audit(&mks_trace::AuditSample {
            at,
            principal: who.as_ref().map(|u| u.to_acl_string()),
            kind: Self::classify_audit(&event),
        });
        self.log.append(at, who, event)
    }

    /// How the observatory buckets an audit event.
    fn classify_audit(event: &AuditEvent) -> mks_trace::AuditKind {
        match event {
            AuditEvent::AccessDenied { .. } => mks_trace::AuditKind::Denial,
            AuditEvent::Overload { .. } => mks_trace::AuditKind::Overload,
            AuditEvent::ProtectionFault { .. } | AuditEvent::GateRefused { .. } => {
                mks_trace::AuditKind::Fault
            }
            _ => mks_trace::AuditKind::Other,
        }
    }

    /// Batched audit emission for high-rate paths (login churn, the E18
    /// traffic driver): every record is classified and tapped into the
    /// observatory exactly as [`KernelWorld::audit`] does, at one shared
    /// timestamp, and the log grows once for the whole batch. On an
    /// uninjected world a batch of N is byte-identical to N single
    /// `audit` calls at the same instant — a machine-checked E18 claim.
    /// (The `SkewClock`/`AuditFlood` injection sites are consulted once
    /// per *batch* rather than once per record.)
    pub fn audit_batch(&mut self, batch: Vec<(Option<UserId>, AuditEvent)>) -> u64 {
        let _log = self.vm.machine.locks.hold(LockId::AuditLog);
        let at = self.vm.machine.clock.now();
        let at = self.vm.machine.inject.warp_time(at);
        if let Some(detail) = self.vm.machine.inject.fires(mks_hw::InjectKind::AuditFlood) {
            let noise = 1 + detail % 8;
            self.vm.machine.trace.counter_add("inject.audit_floods", 1);
            self.log.append_batch(
                at,
                (0..noise).map(|i| {
                    (
                        None,
                        AuditEvent::Lifecycle {
                            what: format!("flood noise {i}"),
                        },
                    )
                }),
            );
        }
        for (who, event) in &batch {
            self.vm.machine.trace.ingest_audit(&mks_trace::AuditSample {
                at,
                principal: who.as_ref().map(|u| u.to_acl_string()),
                kind: Self::classify_audit(event),
            });
        }
        self.log.append_batch(at, batch)
    }

    /// Binds the root directory into `pid`'s KST and returns its segment
    /// number (done implicitly at process creation in real Multics; an
    /// explicit call here so tests and examples read naturally).
    pub fn bind_root(&mut self, pid: KProcId) -> mks_hw::SegNo {
        let proc = self.proc_mut(pid);
        match &mut proc.kst {
            KstState::Kernel(k) => mks_fs::kst::bind_root(k),
            KstState::Legacy(k) => k.core.bind(FileSystem::ROOT, true),
        }
    }

    /// Applies `f` to every live process record (kernel-internal; used by
    /// revocation to retract descriptors system-wide).
    pub(crate) fn for_each_proc_mut(&mut self, mut f: impl FnMut(&mut ProcState)) {
        let mut pids: Vec<KProcId> = self.procs.keys().copied().collect();
        pids.sort_unstable();
        for pid in pids {
            if let Some(p) = self.procs.get_mut(&pid) {
                f(p);
            }
        }
    }

    /// Split borrow: the file system (shared) plus one process (mutable).
    /// Used by the monitor to run user-ring path resolution, which reads
    /// the hierarchy while binding KST entries.
    pub(crate) fn fs_and_proc_mut(&mut self, pid: KProcId) -> (&FileSystem, &mut ProcState) {
        let fs = &self.fs;
        let p = self.procs.get_mut(&pid).expect("unknown kernel process");
        (fs, p)
    }

    /// Split borrow: the memory world (mutable) plus one process (mutable).
    pub(crate) fn vm_and_proc_mut(&mut self, pid: KProcId) -> (&mut VmWorld, &mut ProcState) {
        let vm = &mut self.vm;
        let p = self.procs.get_mut(&pid).expect("unknown kernel process");
        (vm, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_builds_in_both_configurations() {
        for cfg in [KernelConfig::legacy(), KernelConfig::kernel()] {
            let sys = System::new(cfg);
            assert_eq!(sys.world.nr_processes(), 0);
            assert!(sys.world.gates.total_entries() > 0);
        }
    }

    #[test]
    fn process_kst_matches_configuration() {
        let mut sys = System::new(KernelConfig::kernel());
        let pid = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
        assert!(matches!(sys.world.proc(pid).kst, KstState::Kernel(_)));

        let mut sys = System::new(KernelConfig::legacy());
        let pid = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
        assert!(matches!(sys.world.proc(pid).kst, KstState::Legacy(_)));
    }

    #[test]
    fn destroy_removes_the_record() {
        let mut sys = System::new(KernelConfig::kernel());
        let pid = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
        assert!(sys.world.destroy_process(pid).is_some());
        assert!(sys.world.destroy_process(pid).is_none());
        assert_eq!(sys.world.nr_processes(), 0);
    }

    #[test]
    fn pids_are_never_reused() {
        let mut sys = System::new(KernelConfig::kernel());
        let a = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
        sys.world.destroy_process(a);
        let b = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
        assert_ne!(a, b);
    }
}
