//! The review activity: the security-flaw registry.
//!
//! "A list of all known Multics security flaws is maintained. Each flaw
//! reported is analyzed to determine how it happened, how it can be fixed,
//! and how similar flaws can be avoided in the security kernel being
//! developed. So far, all of the flaws uncovered by the review activities
//! are isolated and easily repaired. No major design flaws have been
//! found."
//!
//! The registry seeds itself with the flaw *classes* Linde's penetration
//! catalog (reference \[2\] of the paper) identified; the penetration suite
//! (experiment E12) exercises an attack per class.

/// The classes of flaw the era's penetration exercises kept finding.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FlawClass {
    /// The supervisor trusted a user-supplied argument (counts, pointers,
    /// offsets) without validation — the linker's class.
    InsufficientArgumentValidation,
    /// Time-of-check to time-of-use races on shared state.
    TocTou,
    /// Residue: released storage readable by its next holder.
    StorageResidue,
    /// A reference path that bypasses the monitor (unmediated access).
    UnmediatedPath,
    /// Misused hardware features (rings, gates, faults).
    HardwareMisuse,
    /// Authentication weaknesses (guessing, existence oracles).
    Authentication,
    /// Information leaks through error messages / naming.
    ExistenceOracle,
    /// Denial of service through resource exhaustion.
    DenialOfService,
}

/// Lifecycle of a reported flaw.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FlawStatus {
    /// Reported, not yet analyzed.
    Reported,
    /// Analyzed: cause understood.
    Analyzed {
        /// How it happened.
        cause: String,
    },
    /// Repaired, with the design rule that prevents recurrence.
    Repaired {
        /// How it was fixed.
        fix: String,
        /// The kernel design rule that excludes the class.
        design_rule: String,
    },
}

/// One registry entry.
#[derive(Clone, Debug)]
pub struct Flaw {
    /// Registry number.
    pub id: u32,
    /// Short title.
    pub title: String,
    /// Classification.
    pub class: FlawClass,
    /// Current status.
    pub status: FlawStatus,
}

/// The flaw registry.
#[derive(Debug, Default)]
pub struct FlawRegistry {
    flaws: Vec<Flaw>,
}

impl FlawRegistry {
    /// An empty registry.
    pub fn new() -> FlawRegistry {
        FlawRegistry::default()
    }

    /// The registry pre-seeded with the historical flaw classes, each
    /// analyzed and repaired with its kernel design rule — the state the
    /// paper reports ("isolated and easily repaired").
    pub fn seeded() -> FlawRegistry {
        let mut r = FlawRegistry::new();
        let seed: &[(&str, FlawClass, &str, &str, &str)] = &[
            (
                "linker mis-parses malstructured object segment in ring 0",
                FlawClass::InsufficientArgumentValidation,
                "supervisor code indexed tables using counts taken from a user segment",
                "validate all counts/offsets before use",
                "remove the linker from the kernel; complex user input is parsed unprivileged",
            ),
            (
                "directory entry checked then used after user rename",
                FlawClass::TocTou,
                "branch looked up twice across a lock release",
                "re-resolve under one lock / bind by uid not name",
                "kernel interfaces traffic in uids; names resolve exactly once",
            ),
            (
                "freed page frame handed out unscrubbed",
                FlawClass::StorageResidue,
                "free list reused frames without clearing",
                "zero frames on release",
                "release_frame scrubs unconditionally; deletion scrubs every level",
            ),
            (
                "I/O controller channel program reads arbitrary core",
                FlawClass::UnmediatedPath,
                "device DMA addresses not checked against descriptors",
                "kernel validates channel programs",
                "single network attachment; all device logic unprivileged",
            ),
            (
                "gate entered at non-entry offset",
                FlawClass::HardwareMisuse,
                "call bracket honored without entry-point bound",
                "hardware call limiter on gate SDWs",
                "gates declare entry counts; hardware enforces them",
            ),
            (
                "login reveals which personids exist",
                FlawClass::ExistenceOracle,
                "distinct errors for bad user vs bad password",
                "one error for both; constant-time hashing",
                "no kernel answer may depend on data the caller cannot read",
            ),
            (
                "unthrottled password guessing",
                FlawClass::Authentication,
                "no failure counter",
                "lockout after repeated failures",
                "authentication state kept per principal with lockout",
            ),
            (
                "user exhausts directory quota of a shared project",
                FlawClass::DenialOfService,
                "no per-subtree storage bound",
                "quota cells with movequota",
                "denial bounded to the subtree whose quota the user holds",
            ),
            // Found by this reproduction's own review activity: the
            // benchmark harness drove a process through ~65k
            // initiate/terminate cycles and wedged its address space.
            (
                "KST exhausts segment numbers under initiate/terminate cycling",
                FlawClass::DenialOfService,
                "terminate freed the binding but never recycled the number",
                "freed segment numbers are reused before the counter advances",
                "per-process resources are bounded by live use, not lifetime use",
            ),
            // Also found here: the model/mechanism cross-validation
            // (tests/cross_validation.rs) caught movequota underflowing
            // its source cell when asked for more limit than it had.
            (
                "movequota underflows the source cell's limit",
                FlawClass::InsufficientArgumentValidation,
                "the guard compared through a saturating subtraction",
                "refuse any move larger than the available limit",
                "kernel arithmetic is checked; models are cross-validated",
            ),
        ];
        for (i, (title, class, cause, fix, rule)) in seed.iter().enumerate() {
            r.flaws.push(Flaw {
                id: i as u32 + 1,
                title: (*title).to_string(),
                class: *class,
                status: FlawStatus::Repaired {
                    fix: (*fix).to_string(),
                    design_rule: (*rule).to_string(),
                },
            });
            let _ = cause; // cause folded into the repaired record above
        }
        r
    }

    /// Reports a new flaw; returns its id.
    pub fn report(&mut self, title: &str, class: FlawClass) -> u32 {
        let id = self.flaws.len() as u32 + 1;
        self.flaws.push(Flaw {
            id,
            title: title.to_string(),
            class,
            status: FlawStatus::Reported,
        });
        id
    }

    /// Records the analysis of a flaw.
    pub fn analyze(&mut self, id: u32, cause: &str) -> bool {
        match self.flaws.iter_mut().find(|f| f.id == id) {
            Some(f) => {
                f.status = FlawStatus::Analyzed {
                    cause: cause.to_string(),
                };
                true
            }
            None => false,
        }
    }

    /// Records the repair of a flaw.
    pub fn repair(&mut self, id: u32, fix: &str, design_rule: &str) -> bool {
        match self.flaws.iter_mut().find(|f| f.id == id) {
            Some(f) => {
                f.status = FlawStatus::Repaired {
                    fix: fix.to_string(),
                    design_rule: design_rule.to_string(),
                };
                true
            }
            None => false,
        }
    }

    /// All flaws.
    pub fn all(&self) -> &[Flaw] {
        &self.flaws
    }

    /// True when every flaw is repaired — the paper's reported state.
    pub fn all_repaired(&self) -> bool {
        self.flaws
            .iter()
            .all(|f| matches!(f.status, FlawStatus::Repaired { .. }))
    }

    /// Count by class (for reports).
    pub fn count_class(&self, class: FlawClass) -> usize {
        self.flaws.iter().filter(|f| f.class == class).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_registry_matches_the_papers_claim() {
        let r = FlawRegistry::seeded();
        assert!(r.all().len() >= 8);
        assert!(
            r.all_repaired(),
            "all known flaws are isolated and easily repaired"
        );
    }

    #[test]
    fn lifecycle_report_analyze_repair() {
        let mut r = FlawRegistry::new();
        let id = r.report("stack readable across gate call", FlawClass::StorageResidue);
        assert!(!r.all_repaired());
        assert!(r.analyze(id, "ring-0 stack segment shared with ring 4"));
        assert!(r.repair(
            id,
            "separate per-ring stacks",
            "no kernel data in user-writable segments"
        ));
        assert!(r.all_repaired());
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let mut r = FlawRegistry::new();
        assert!(!r.analyze(99, "x"));
        assert!(!r.repair(99, "x", "y"));
    }

    #[test]
    fn class_counting() {
        let r = FlawRegistry::seeded();
        assert_eq!(r.count_class(FlawClass::InsufficientArgumentValidation), 2);
        assert_eq!(r.count_class(FlawClass::TocTou), 1);
        assert_eq!(r.count_class(FlawClass::DenialOfService), 2);
    }
}
