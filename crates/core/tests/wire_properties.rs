//! Property tests on the byte-level wire codec (E21 satellite): the
//! sealed commit log and machine snapshots round-trip through
//! `encode`/`decode` for arbitrary commit mixes, truncation at *every*
//! cut point is refused with a typed error, and no single-byte
//! corruption is ever silently accepted as the original artifact.

use mks_fs::{Acl, AclMode};
use mks_hw::SegNo;
use mks_kernel::statemachine::{
    decode_commit_log, decode_snapshot, encode_commit_log, encode_snapshot, snapshot_at, Commit,
    CommitLog, Genesis, WireError,
};
use mks_kernel::world::KProcId;
use mks_kernel::AuditEvent;
use proptest::prelude::*;

/// Commits spanning every codec feature class: scalar-only, strings,
/// options, ACL patterns and nested audit events.
fn arb_commit() -> impl Strategy<Value = Commit> {
    prop_oneof![
        (0u32..4).prop_map(|times| Commit::Tick { times }),
        Just(Commit::CrashPoll),
        Just(Commit::Disarm),
        Just(Commit::Salvage),
        Just(Commit::BootCheck),
        (0u32..3).prop_map(|daemon| Commit::Wakeup { daemon }),
        (0u32..9, 0u16..9, "[a-z]{1,12}").prop_map(|(pid, dir, name)| Commit::Initiate {
            pid: KProcId(pid),
            dir: SegNo(dir),
            name,
        }),
        (0u32..9, "[a-z_$]{1,10}", "[a-z_]{1,10}").prop_map(|(pid, gate, entry)| {
            Commit::CallGate {
                pid: KProcId(pid),
                gate,
                entry,
            }
        }),
        (0u32..9, 0u16..9, 0u64..1 << 20).prop_map(|(pid, dir, limit_pages)| Commit::SetQuota {
            pid: KProcId(pid),
            dir: SegNo(dir),
            limit_pages,
        }),
        (0u32..9, 0u16..9, 0u64..64, any::<u64>()).prop_map(|(pid, seg, offset, value)| {
            Commit::Write {
                pid: KProcId(pid),
                seg: SegNo(seg),
                offset,
                value,
            }
        }),
        (0u32..9, 0u16..9, "[a-z]{1,8}", any::<bool>()).prop_map(|(pid, dir, name, open)| {
            Commit::SetSegmentAcl {
                pid: KProcId(pid),
                dir: SegNo(dir),
                name,
                acl: if open {
                    Acl::of("*.*.*", AclMode::RW)
                } else {
                    Acl::of("Admin.SysAdmin.a", AclMode::REW)
                },
            }
        }),
        (any::<bool>(), "[a-z ]{0,20}").prop_map(|(success, what)| Commit::Audit {
            who: None,
            event: if success {
                AuditEvent::Login { success }
            } else {
                AuditEvent::AccessDenied { what }
            },
        }),
    ]
}

fn sealed_log(base: u64, commits: &[Commit]) -> CommitLog {
    let mut log = CommitLog::new();
    log.seed(base);
    for c in commits {
        log.append(c.clone());
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The byte codec is the identity on honest logs: base, length,
    /// head and every sealed entry survive, and the decoded log still
    /// chain-verifies.
    #[test]
    fn commit_logs_round_trip_through_the_wire(
        base in any::<u64>(),
        commits in prop::collection::vec(arb_commit(), 0..20),
    ) {
        let log = sealed_log(base, &commits);
        let bytes = encode_commit_log(&log);
        let back = decode_commit_log(&bytes).expect("honest bytes decode");
        prop_assert_eq!(back.base(), log.base());
        prop_assert_eq!(back.len(), log.len());
        prop_assert_eq!(back.head(), log.head());
        prop_assert_eq!(back.entries(), log.entries());
        prop_assert!(back.verify().is_ok());
    }

    /// Truncating the encoding at ANY cut point is refused with a
    /// typed error — never a panic, never a silently shorter log.
    #[test]
    fn truncation_at_every_cut_point_is_refused(
        base in any::<u64>(),
        commits in prop::collection::vec(arb_commit(), 1..8),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = encode_commit_log(&sealed_log(base, &commits));
        let at = cut.index(bytes.len());
        prop_assert!(decode_commit_log(&bytes[..at]).is_err());
    }

    /// Tamper evidence: flipping any single byte either fails to
    /// decode (typed), fails chain verification, or yields a log that
    /// is visibly not the original. A corrupted artifact is never
    /// accepted as the honest one.
    #[test]
    fn single_byte_corruption_is_never_silently_accepted(
        base in any::<u64>(),
        commits in prop::collection::vec(arb_commit(), 1..8),
        at in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let log = sealed_log(base, &commits);
        let mut bytes = encode_commit_log(&log);
        let i = at.index(bytes.len());
        bytes[i] ^= flip;
        if let Ok(back) = decode_commit_log(&bytes) {
            let same = back.verify().is_ok()
                && back.base() == log.base()
                && back.entries() == log.entries();
            prop_assert!(!same, "corrupt byte {i} decoded to the original log");
        }
    }

    /// Snapshots round-trip at arbitrary prefixes of a real kernel
    /// run, and a snapshot never decodes against a foreign genesis.
    #[test]
    fn snapshots_round_trip_and_refuse_foreign_genesis(
        ticks in 1u32..6,
        cut in any::<u64>(),
    ) {
        let genesis = Genesis::kernel_small();
        let mut sm = genesis.build();
        sm.apply(&Commit::Tick { times: ticks });
        sm.apply(&Commit::Salvage);
        let log = &sm.world().commits;
        let upto = cut % (log.len() + 1);
        let snap = snapshot_at(&genesis, log, upto).expect("prefix snapshots");
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes, &genesis).expect("snapshot decodes");
        prop_assert_eq!(&back, &snap);
        let mut foreign = genesis;
        foreign.frames += 1;
        prop_assert!(matches!(
            decode_snapshot(&bytes, &foreign),
            Err(WireError::ForeignGenesis { .. })
        ));
    }
}
