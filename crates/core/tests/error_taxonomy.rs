//! The error taxonomy (E21 satellite): every error the durable-state
//! stack can produce — replay ([`ReplayError`]), wire ([`WireError`]),
//! replication ([`ReplError`]) and tape backup ([`BackupError`]) — is a
//! real `std::error::Error` with a distinct, human-readable rendering.
//! The renderings must stay pairwise distinct *within* each taxonomy
//! so an operator reading a log line can tell the failure classes
//! apart, and the wrapping errors must chain their `source()`.

use std::error::Error;

use mks_kernel::backup::BackupError;
use mks_kernel::replicate::ReplError;
use mks_kernel::statemachine::{ReplayError, WireError};

fn assert_taxonomy(name: &str, errors: &[&dyn Error]) {
    let mut seen: Vec<String> = Vec::new();
    for e in errors {
        let msg = e.to_string();
        assert!(!msg.is_empty(), "{name}: empty rendering");
        assert!(
            !msg.contains("{"),
            "{name}: unformatted placeholder in {msg:?}"
        );
        assert!(
            !seen.contains(&msg),
            "{name}: duplicate rendering {msg:?} — variants must be tellable apart"
        );
        seen.push(msg);
    }
}

#[test]
fn replay_errors_render_distinctly() {
    let errors: Vec<ReplayError> = vec![
        ReplayError::Truncated {
            expected: 9,
            found: 3,
        },
        ReplayError::NonMonotonic { at: 4, seq: 7 },
        ReplayError::ChainMismatch {
            seq: 2,
            expected: 0xaaaa,
            found: 0xbbbb,
        },
        ReplayError::BaseMismatch {
            expected: 0x1111,
            found: 0x2222,
        },
        ReplayError::ChainDivergence {
            seq: 5,
            expected: 0x3333,
            found: 0x4444,
        },
        ReplayError::SnapshotStale {
            upto: 6,
            expected: 0x5555,
            found: 0x6666,
        },
    ];
    let refs: Vec<&dyn Error> = errors.iter().map(|e| e as &dyn Error).collect();
    assert_taxonomy("ReplayError", &refs);
}

#[test]
fn wire_errors_render_distinctly() {
    let errors: Vec<WireError> = vec![
        WireError::Truncated { need: 8, have: 3 },
        WireError::BadMagic { found: *b"XXXX" },
        WireError::BadVersion { found: 255 },
        WireError::BadTag {
            what: "Commit",
            tag: 200,
        },
        WireError::BadUtf8 { what: "name" },
        WireError::Oversize {
            what: "entries",
            len: 1 << 40,
        },
        WireError::Trailing { extra: 17 },
        WireError::ForeignGenesis {
            expected: 0x7777,
            found: 0x8888,
        },
    ];
    let refs: Vec<&dyn Error> = errors.iter().map(|e| e as &dyn Error).collect();
    assert_taxonomy("WireError", &refs);
}

#[test]
fn repl_errors_render_distinctly_and_chain_sources() {
    let errors: Vec<ReplError> = vec![
        ReplError::NoPrimary { epoch: 3 },
        ReplError::NotPrimary { id: 1 },
        ReplError::Deposed {
            id: 0,
            epoch: 2,
            current: 4,
        },
        ReplError::Down { id: 2 },
        ReplError::Wire(WireError::Trailing { extra: 4 }),
        ReplError::Replay(ReplayError::Truncated {
            expected: 5,
            found: 1,
        }),
    ];
    let refs: Vec<&dyn Error> = errors.iter().map(|e| e as &dyn Error).collect();
    assert_taxonomy("ReplError", &refs);
    // The wrapping variants expose their cause; the leaf variants
    // have none.
    assert!(errors[4].source().is_some(), "Wire wraps its cause");
    assert!(errors[5].source().is_some(), "Replay wraps its cause");
    for leaf in &errors[..4] {
        assert!(leaf.source().is_none(), "{leaf} has no inner cause");
    }
    // From-conversions exist so `?` can hop layers.
    let via: ReplError = WireError::Trailing { extra: 1 }.into();
    assert!(matches!(via, ReplError::Wire(_)));
    let via: ReplError = ReplayError::NonMonotonic { at: 0, seq: 1 }.into();
    assert!(matches!(via, ReplError::Replay(_)));
}

#[test]
fn backup_errors_render_distinctly() {
    let errors: Vec<BackupError> = vec![
        BackupError::Tape("write ring out"),
        BackupError::BadRecord("Q nonsense".into()),
        BackupError::Conflict(">udd>CSR".into()),
    ];
    let refs: Vec<&dyn Error> = errors.iter().map(|e| e as &dyn Error).collect();
    assert_taxonomy("BackupError", &refs);
}
