//! Property tests on the E20 commit layer: the sealed log is
//! append-only and densely sequenced no matter what is appended,
//! `reduce` is a pure fold (replaying the same log twice is
//! byte-identical, and identical to the live run), and
//! snapshot/restore round-trips at *arbitrary* prefixes — not just the
//! midpoints the integration gate picks.

use mks_hw::FaultPlan;
use mks_kernel::statemachine::workload::{record_fault_run, WorkloadSpec};
use mks_kernel::statemachine::{
    reduce, replay_differential, restore, snapshot_at, Commit, CommitLog, Genesis,
};
use mks_kernel::AuditEvent;
use proptest::prelude::*;

/// Cheap data-only commits for log-level properties: sealing is about
/// the chain, not the kernel, so scheduler and audit noise suffice.
fn arb_commit() -> impl Strategy<Value = Commit> {
    prop_oneof![
        (0u32..4).prop_map(|times| Commit::Tick { times }),
        Just(Commit::CrashPoll),
        Just(Commit::Disarm),
        Just(Commit::Salvage),
        (0u32..3).prop_map(|daemon| Commit::Wakeup { daemon }),
        any::<bool>().prop_map(|success| Commit::Audit {
            who: None,
            event: AuditEvent::Login { success },
        }),
    ]
}

fn recorded(seed: u64, ops: u64) -> (Genesis, mks_kernel::statemachine::workload::RecordedRun) {
    let genesis = Genesis::kernel_small();
    let spec = WorkloadSpec {
        seed,
        ops,
        plan: FaultPlan::generate(seed),
        overload: false,
    };
    (genesis, record_fault_run(&genesis, &spec))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Appending never rewrites history: every earlier seal is
    /// byte-identical after any further appends, sequences stay dense
    /// from 0, and the grown log still verifies.
    #[test]
    fn commits_are_append_only_and_densely_sequenced(
        base in any::<u64>(),
        commits in prop::collection::vec(arb_commit(), 0..24),
        more in prop::collection::vec(arb_commit(), 1..8),
    ) {
        let mut log = CommitLog::new();
        log.seed(base);
        for c in &commits {
            let seq = log.append(c.clone());
            prop_assert_eq!(seq + 1, log.len());
        }
        let frozen = log.entries().to_vec();
        let head_before = log.head();
        for c in &more {
            log.append(c.clone());
        }
        prop_assert_eq!(&log.entries()[..frozen.len()], frozen.as_slice());
        prop_assert_eq!(log.prefix(frozen.len() as u64).head(), head_before);
        for (i, s) in log.entries().iter().enumerate() {
            prop_assert_eq!(s.seq, i as u64);
        }
        prop_assert!(log.verify().is_ok());
        prop_assert!(log.verify_head(log.len(), log.head()).is_ok());
        prop_assert_eq!(log.head(), log.entries().last().expect("nonempty").chain);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `reduce` is a pure fold over the log: replaying the same log
    /// twice produces byte-identical machines, and both equal the live
    /// machine at every commit boundary.
    #[test]
    fn reduce_is_a_pure_fold(seed in any::<u64>(), ops in 2u64..10) {
        let (genesis, run) = recorded(seed, ops);
        let log = &run.sm.world().commits;
        let once = reduce(&genesis, log).expect("honest log reduces");
        let twice = reduce(&genesis, log).expect("and reduces again");
        prop_assert_eq!(once.digest(), twice.digest());
        prop_assert_eq!(once.digest(), run.sm.digest());
        prop_assert_eq!(once.world().commits.head(), log.head());
        let mismatches = replay_differential(&genesis, log, &run.boundaries)
            .expect("boundary list covers the log");
        prop_assert_eq!(mismatches, Vec::new());
    }

    /// Snapshot/restore round-trips at an arbitrary prefix: restoring
    /// reproduces the digest the snapshot claims, and re-snapshotting
    /// the restored machine is the identical snapshot.
    #[test]
    fn snapshot_restore_round_trips_at_arbitrary_prefixes(
        seed in any::<u64>(),
        ops in 2u64..8,
        cut in any::<u64>(),
    ) {
        let (genesis, run) = recorded(seed, ops);
        let log = &run.sm.world().commits;
        let upto = cut % (log.len() + 1);
        let snap = snapshot_at(&genesis, log, upto).expect("in-range prefix snapshots");
        prop_assert_eq!(snap.upto, upto);
        prop_assert_eq!(&snap.digest, &run.boundaries[upto as usize]);
        let sm = restore(&snap).expect("snapshot restores");
        prop_assert_eq!(sm.digest(), snap.digest);
        prop_assert_eq!(mks_kernel::statemachine::replay::resnapshot(&sm), snap);
    }
}
