//! Model/mechanism cross-validation.
//!
//! "the match between the model and the enforcement mechanisms of the
//! system must be exact, for the model is expressed in terms of the
//! objects and operations implemented by the system, and any difference
//! represents a failure of the system to implement the claimed access
//! constraints."
//!
//! The KPL kernel modules (`mks-cert::kernel_modules`) are *models* of
//! decision procedures this kernel actually runs in Rust. These tests pin
//! the two together exhaustively over their small input domains: the KPL
//! object code (already certified against its own source by the
//! translation validator) must agree with the Rust mechanism on every
//! input.

use mks_cert::kernel_modules::KERNEL_SOURCES;
use mks_cert::{compile_module, parse_program, run_module, Module, NoExterns};
use mks_hw::ring::RingBrackets;
use mks_hw::{AstIndex, RingBrackets as RB, Sdw};
use mks_mls::{Compartments, Label, Level};

fn module(name: &str) -> Module {
    let (_, src) = KERNEL_SOURCES
        .iter()
        .find(|(n, _)| *n == name)
        .expect("module exists");
    let procs = parse_program(src).unwrap();
    compile_module(name, &procs).unwrap()
}

fn call(m: &Module, entry: &str, args: &[i64]) -> i64 {
    let idx = m.proc_named(entry).expect("entry exists");
    let mut fuel = 1_000_000;
    run_module(m, idx, args, &mut fuel, &mut NoExterns).expect("model runs")
}

#[test]
fn ring_access_model_matches_the_hardware_exhaustively() {
    let m = module("ring_check");
    for ring in 0u8..8 {
        for r1 in 0u8..8 {
            for r2 in r1..8 {
                let b = RingBrackets::new(r1, r2, 7);
                let want = i64::from(b.read_allowed(ring)) + 2 * i64::from(b.write_allowed(ring));
                let got = call(
                    &m,
                    "ring_access",
                    &[i64::from(ring), i64::from(r1), i64::from(r2)],
                );
                assert_eq!(got, want, "ring {ring} brackets ({r1},{r2})");
            }
        }
    }
}

#[test]
fn ring_call_model_matches_the_hardware_exhaustively() {
    use mks_hw::ring::CallEffect;
    let m = module("ring_check");
    for ring in 0u8..8 {
        for r2 in 0u8..8 {
            for r3 in r2..8 {
                let b = RingBrackets::new(r2, r2, r3);
                let want = match b.classify_call(mks_hw::SegNo(1), ring) {
                    Ok(CallEffect::SameRing) => 0,
                    Ok(CallEffect::InwardTo(t)) => 10 + i64::from(t),
                    Err(_) => -1,
                };
                let got = call(
                    &m,
                    "ring_call",
                    &[i64::from(ring), i64::from(r2), i64::from(r3)],
                );
                assert_eq!(got, want, "ring {ring} brackets ({r2},{r2},{r3})");
            }
        }
    }
}

#[test]
fn quota_model_matches_the_mechanism_exhaustively() {
    let m = module("quota_charge");
    for limit in 0u64..12 {
        for used in 0..=limit {
            for req in 0u64..14 {
                let mut cell = mks_fs::QuotaCell {
                    limit_pages: limit,
                    used_pages: used,
                };
                let want = match cell.charge(req) {
                    Ok(()) => cell.used_pages as i64,
                    Err(_) => -1,
                };
                let got = call(&m, "quota_charge", &[used as i64, limit as i64, req as i64]);
                assert_eq!(got, want, "limit {limit} used {used} req {req}");
            }
        }
    }
}

#[test]
fn quota_move_model_matches_the_mechanism() {
    let m = module("quota_charge");
    for parent_limit in 0u64..10 {
        for parent_used in 0..=parent_limit {
            for amount in 0u64..12 {
                let mut parent = mks_fs::QuotaCell {
                    limit_pages: parent_limit,
                    used_pages: parent_used,
                };
                let mut child = mks_fs::QuotaCell::with_limit(3);
                let want = match parent.move_to(&mut child, amount) {
                    Ok(()) => child.limit_pages as i64,
                    Err(_) => -1,
                };
                let got = call(
                    &m,
                    "quota_move",
                    &[parent_limit as i64, parent_used as i64, 3, amount as i64],
                );
                assert_eq!(got, want, "pl {parent_limit} pu {parent_used} amt {amount}");
            }
        }
    }
}

#[test]
fn dominance_model_matches_the_lattice_exhaustively() {
    let m = module("mls_dominates");
    for la in 0u8..4 {
        for ca in 0u8..4 {
            for lb in 0u8..4 {
                for cb in 0u8..4 {
                    let a = Label::new(Level(la), Compartments(u64::from(ca)));
                    let b = Label::new(Level(lb), Compartments(u64::from(cb)));
                    let want = i64::from(a.dominates(&b));
                    let got = call(
                        &m,
                        "dominates",
                        &[
                            i64::from(la),
                            i64::from(ca & 1),
                            i64::from((ca >> 1) & 1),
                            i64::from(lb),
                            i64::from(cb & 1),
                            i64::from((cb >> 1) & 1),
                        ],
                    );
                    assert_eq!(got, want, "a=({la},{ca:02b}) b=({lb},{cb:02b})");
                }
            }
        }
    }
}

#[test]
fn gate_entry_model_matches_the_sdw_check() {
    let m = module("call_limiter");
    for limiter in 0u32..6 {
        let sdw = Sdw::gate(AstIndex(0), RB::gate(0, 5), limiter);
        for offset in 0usize..8 {
            let want = i64::from(sdw.is_gate_entry(offset));
            let got = call(&m, "gate_entry_ok", &[offset as i64, i64::from(limiter)]);
            assert_eq!(got, want, "offset {offset} limiter {limiter}");
        }
    }
}

#[test]
fn page_fault_path_model_matches_the_parallel_design() {
    let m = module("page_wait");
    // The decision the model captures: load when a frame is free, wait
    // otherwise — compare against the real try_resolve_fault outcomes.
    use mks_hw::{CpuModel, Machine, SegUid, PAGE_WORDS};
    use mks_procs::{TcConfig, TrafficController};
    use mks_vm::{ParallelConfig, ParallelPageControl, VmWorld};
    for free in 0usize..4 {
        let mut tc: TrafficController<mks_vm::parallel::VmSystem> =
            TrafficController::new(TcConfig::default());
        let world = VmWorld::new(Machine::new(CpuModel::H6180, 4), 8);
        let pc = ParallelPageControl::new(ParallelConfig::default(), &mut tc);
        let mut sys = mks_vm::parallel::VmSystem { world, pc };
        let filler = SegUid(1);
        let target = SegUid(2);
        sys.world.machine.ast.activate(filler, 4 * PAGE_WORDS);
        sys.world.machine.ast.activate(target, PAGE_WORDS);
        // Consume frames until `free` remain.
        for p in 0..(4 - free) {
            mks_vm::mechanism::load_page(&mut sys.world, filler, p).unwrap();
        }
        assert_eq!(sys.world.nr_free_frames(), free);
        let pc_copy = sys.pc;
        let outcome =
            mks_vm::parallel::try_resolve_fault(&mut sys.world, &pc_copy, target, 0, 0).unwrap();
        let want = match outcome {
            mks_vm::parallel::ParallelFault::Loaded { .. } => 1,
            mks_vm::parallel::ParallelFault::MustWait => 0,
        };
        // (With free == 0 the load itself cannot happen, so the model's
        //  "free_frames" argument is the pre-fault count.)
        let got = call(&m, "page_fault_path", &[free as i64]);
        assert_eq!(got, want, "free {free}");
    }
}
