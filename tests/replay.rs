//! The replayable-kernel integration gate (E20): the live-vs-replayed
//! boundary differential across seeded fault and overload workloads,
//! snapshot/restore at arbitrary prefixes, typed rejection of tampered
//! logs, and the mutation arms that prove the differential has teeth.
//!
//! Everything here folds *recorded* logs — the driver never re-runs, so
//! any input a workload smuggled past the commit stream shows up as a
//! boundary mismatch. `MKS_SWEEP_SEEDS` widens the seed sweep for soak
//! runs (CI caps it to bound wall time).

use mks_kernel::statemachine::workload::{
    record_fault_run, record_overload_ladder, RecordedRun, WorkloadSpec,
};
use mks_kernel::statemachine::{
    reduce, replay_differential, restore, snapshot_at, Commit, CommitLog, Genesis, ReplayError,
    ReplayMutation, TimeTravel,
};

fn sweep_seeds() -> u64 {
    std::env::var("MKS_SWEEP_SEEDS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(60)
        .max(2)
}

fn fault_run(seed: u64) -> (Genesis, RecordedRun) {
    let genesis = Genesis::kernel_small();
    let run = record_fault_run(&genesis, &WorkloadSpec::faults(seed));
    (genesis, run)
}

/// Zero boundary mismatches, or a named field and boundary on failure.
fn assert_clean(genesis: &Genesis, run: &RecordedRun, what: &str, seed: u64) {
    let log = &run.sm.world().commits;
    log.verify().expect("a recorded log verifies");
    assert_eq!(
        log.head(),
        run.boundaries.last().expect("nonempty").log_digest,
        "the final boundary must export the chain head"
    );
    let mismatches = replay_differential(genesis, log, &run.boundaries)
        .expect("recorded boundaries cover the log");
    assert_eq!(
        mismatches,
        Vec::new(),
        "{what} seed {seed:#x} replayed with boundary mismatches"
    );
}

#[test]
fn fault_sweep_replays_with_zero_mismatches() {
    for seed in 0..sweep_seeds() {
        let (genesis, run) = fault_run(seed);
        assert_clean(&genesis, &run, "fault run", seed);
        assert!(!run.boot_divergence, "boot check diverged at seed {seed}");
    }
}

#[test]
fn overload_runs_replay_with_zero_mismatches() {
    let genesis = Genesis::kernel_small();
    for seed in 0..sweep_seeds() / 2 {
        let run = record_fault_run(&genesis, &WorkloadSpec::overload(seed));
        assert_clean(&genesis, &run, "overload fault run", seed);
    }
}

#[test]
fn overload_ladder_replays_with_zero_mismatches() {
    let genesis = Genesis::kernel_small();
    for seed in 0..(sweep_seeds() / 8).max(2) {
        let run = record_overload_ladder(&genesis, seed);
        assert_clean(&genesis, &run, "overload ladder", seed);
        assert!(!run.crashed, "the ladder strips Crash events");
    }
}

#[test]
fn snapshots_restore_at_arbitrary_prefixes() {
    let (genesis, run) = fault_run(0x5eed);
    let log = &run.sm.world().commits;
    // Genesis, first commit, a mid-log spread, and the full log.
    let mut cuts = vec![0, 1, log.len() - 1, log.len()];
    for k in 1..8 {
        cuts.push(k * log.len() / 8);
    }
    for upto in cuts {
        let snap = snapshot_at(&genesis, log, upto).expect("in-range prefix snapshots");
        assert_eq!(snap.digest, run.boundaries[upto as usize]);
        let sm = restore(&snap).expect("snapshot restores");
        assert_eq!(
            sm.digest(),
            snap.digest,
            "restore diverged at prefix {upto}"
        );
        // Resume: the restored machine keeps sealing on the same chain.
        let resumed = {
            let mut sm = sm;
            sm.apply(&Commit::Tick { times: 1 });
            sm
        };
        assert_eq!(resumed.world().commits.len(), upto + 1);
    }
}

#[test]
fn truncated_logs_are_rejected_with_typed_errors() {
    let (genesis, run) = fault_run(7);
    let log = &run.sm.world().commits;
    let cut = log.prefix(log.len() - 2);
    // Internally consistent — only the head check catches it.
    cut.verify().expect("a prefix verifies");
    assert_eq!(
        cut.verify_head(log.len(), log.head()),
        Err(ReplayError::Truncated {
            expected: log.len(),
            found: log.len() - 2,
        })
    );
    // A boundary list that outruns the log is the same defect.
    assert!(matches!(
        replay_differential(&genesis, &cut, &run.boundaries),
        Err(ReplayError::Truncated { .. })
    ));
}

#[test]
fn raw_tampering_is_rejected_with_typed_errors() {
    let (genesis, run) = fault_run(11);
    let log = &run.sm.world().commits;

    // Reorder without re-sealing: the seals no longer sit at their
    // positions.
    let mut entries = log.entries().to_vec();
    entries.swap(3, 4);
    let reordered = CommitLog::from_parts(log.base(), entries);
    assert!(matches!(
        reordered.verify(),
        Err(ReplayError::NonMonotonic { at: 3, .. })
    ));

    // Rewrite a payload in place: the chain no longer recomputes.
    let mut entries = log.entries().to_vec();
    entries[5].commit = Commit::Tick { times: 99 };
    let rewritten = CommitLog::from_parts(log.base(), entries);
    assert!(matches!(
        rewritten.verify(),
        Err(ReplayError::ChainMismatch { seq: 5, .. })
    ));

    // Root the log at a foreign genesis: reduce refuses before touching
    // a single commit.
    let foreign = CommitLog::from_parts(log.base() ^ 0xdead, log.entries().to_vec());
    assert!(matches!(
        reduce(&genesis, &foreign),
        Err(ReplayError::BaseMismatch { .. })
    ));
}

/// Each log mutation arm re-seals covertly — `verify` passes — and the
/// boundary differential must still catch it on every swept seed.
#[test]
fn covert_mutation_arms_are_detected_across_the_sweep() {
    for seed in 0..(sweep_seeds() / 4).max(4) {
        let (genesis, run) = fault_run(seed);
        let log = &run.sm.world().commits;

        let (skipped, applied) = ReplayMutation::SkipCommit { nth: log.len() / 2 }.mutate_log(log);
        assert!(applied);
        skipped.verify().expect("the arm re-seals covertly");
        let caught = match replay_differential(&genesis, &skipped, &run.boundaries) {
            Err(ReplayError::Truncated { .. }) => true,
            Ok(mismatches) => !mismatches.is_empty(),
            Err(e) => panic!("unexpected rejection {e:?}"),
        };
        assert!(caught, "SkipCommit went undetected at seed {seed:#x}");

        let first = (0..log.len() - 1)
            .find(|&i| ReplayMutation::ReorderPair { first: i }.mutate_log(log).1)
            .expect("some adjacent pair is distinct");
        let (reordered, _) = ReplayMutation::ReorderPair { first }.mutate_log(log);
        reordered.verify().expect("the arm re-seals covertly");
        let mismatches = replay_differential(&genesis, &reordered, &run.boundaries)
            .expect("same length, so the differential runs");
        assert!(
            !mismatches.is_empty(),
            "ReorderPair went undetected at seed {seed:#x}"
        );

        let forged = ReplayMutation::StaleSnapshot {
            upto: log.len() / 2,
        }
        .forge_snapshot(&genesis, log)
        .expect("forgery builds")
        .expect("midpoint is in range");
        assert!(
            matches!(restore(&forged), Err(ReplayError::SnapshotStale { .. })),
            "StaleSnapshot went undetected at seed {seed:#x}"
        );
    }
}

#[test]
fn time_travel_joins_are_total_over_a_recorded_run() {
    let (_, run) = fault_run(0x1a);
    let log = &run.sm.world().commits;
    let tt = TimeTravel::new(log, &run.boundaries).expect("artifacts match");
    for (seq, commit) in tt.blame_denials(&run.sm.world().log) {
        let c = commit.unwrap_or_else(|| panic!("denial {seq} has no provenance commit"));
        assert!(c < log.len());
        // The window around the blamed commit contains it.
        assert!(tt.window(c, 2).iter().any(|s| s.seq == c));
    }
    let last = run.boundaries.last().expect("nonempty");
    assert_eq!(tt.commit_at_clock(last.clock + 1), log.len());
}

/// The digest's census field rides the same read-only path the
/// metering gate exports: the kernel census stays pinned while the
/// commit log's head tracks every seal.
#[test]
fn boundary_digests_pin_census_and_export_the_log_head() {
    let (genesis, run) = fault_run(2);
    let log = &run.sm.world().commits;
    for (k, b) in run.boundaries.iter().enumerate() {
        assert_eq!(b.census, 54, "census moved at boundary {k}");
        assert_eq!(b.seq, k as u64);
        assert_eq!(b.boot_hash, genesis.boot_hash());
        assert_eq!(b.log_digest, log.prefix(k as u64).head());
    }
}
