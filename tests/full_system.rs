//! Whole-system integration: boot, login, file system, linking, paging,
//! MLS, IPC and the audit — one scenario across every crate.

use mks_fs::{Acl, AclMode, DirMode, UserId};
use mks_hw::{RingBrackets, SegNo, Word};
use mks_kernel::init::bootstrap::bootstrap;
use mks_kernel::init::image::{build_image, load_image};
use mks_kernel::monitor::{AccessError, Monitor};
use mks_kernel::penetration::{breaches, run_catalog};
use mks_kernel::subsystem::login;
use mks_kernel::world::{admin_user, System};
use mks_kernel::{KProcId, KernelConfig, SystemInventory};
use mks_mls::{Compartments, Label, Level};

fn root_of(sys: &mut System, pid: KProcId) -> SegNo {
    sys.world.bind_root(pid)
}

/// Boots a kernel-configuration system with an open >udd.
fn boot() -> (System, KProcId) {
    let mut sys = System::new(KernelConfig::kernel());
    let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
    let root = root_of(&mut sys, admin);
    Monitor::create_directory(&mut sys.world, admin, root, "udd", Label::BOTTOM).unwrap();
    sys.world
        .fs
        .set_dir_acl_entry(
            mks_fs::FileSystem::ROOT,
            "udd",
            &admin_user(),
            "*.*.*",
            DirMode::SA,
        )
        .unwrap();
    (sys, admin)
}

#[test]
fn boot_login_work_logout_cycle() {
    let (mut sys, _admin) = boot();
    let jones = UserId::new("Jones", "CSR", "a");
    sys.world.auth.register(&jones, "tsrif eht", Label::BOTTOM);

    let session = login(&mut sys.world, &jones, "tsrif eht", Label::BOTTOM, 4).unwrap();
    assert_eq!(session.privileged_ops, 1, "unified login uses one gate");
    let pid = session.pid;

    // Create, fill, and read back a multi-page segment through the monitor
    // (this exercises faults + zero-fill + the pager).
    let root = root_of(&mut sys, pid);
    let udd = Monitor::initiate_dir(&mut sys.world, pid, root, "udd");
    let seg = Monitor::create_segment(
        &mut sys.world,
        pid,
        udd,
        "journal",
        Acl::of("Jones.CSR.a", AclMode::RW),
        RingBrackets::new(4, 4, 4),
        Label::BOTTOM,
    )
    .unwrap();
    for i in 0..64usize {
        Monitor::write(&mut sys.world, pid, seg, i * 16, Word::new(i as u64)).unwrap();
    }
    for i in 0..64usize {
        assert_eq!(
            Monitor::read(&mut sys.world, pid, seg, i * 16).unwrap(),
            Word::new(i as u64)
        );
    }
    assert!(sys.world.vm.stats().faults >= 1);

    Monitor::terminate(&mut sys.world, pid, seg).unwrap();
    assert!(sys.world.destroy_process(pid).is_some());
}

#[test]
fn pathname_resolution_end_to_end_with_lies() {
    let (mut sys, admin) = boot();
    // Build >udd>CSR>Jones.
    let root = root_of(&mut sys, admin);
    let udd = Monitor::initiate_dir(&mut sys.world, admin, root, "udd");
    let csr = Monitor::create_directory(&mut sys.world, admin, udd, "CSR", Label::BOTTOM).unwrap();
    Monitor::create_segment(
        &mut sys.world,
        admin,
        csr,
        "prog",
        Acl::of("*.*.*", AclMode::RE),
        RingBrackets::new(4, 4, 4),
        Label::BOTTOM,
    )
    .unwrap();
    // Resolve by pathname from a completely separate process.
    let user = sys
        .world
        .create_process(UserId::new("U", "P", "a"), Label::BOTTOM, 4);
    let seg = Monitor::initiate_path(&mut sys.world, user, ">udd>CSR>prog").unwrap();
    assert!(Monitor::read(&mut sys.world, user, seg, 0).is_ok());
    // A probe of a fictitious path gets exactly the same error as a
    // forbidden one: the kernel lies consistently.
    let e1 = Monitor::initiate_path(&mut sys.world, user, ">udd>CSR>ghost").unwrap_err();
    let e2 = Monitor::initiate_path(&mut sys.world, user, ">udd>Nowhere>prog").unwrap_err();
    assert_eq!(e1, AccessError::NoInfo);
    assert_eq!(e2, AccessError::NoInfo);
}

#[test]
fn mls_and_acl_compose_end_to_end() {
    let (mut sys, admin) = boot();
    let s_crypto = Label::new(Level::SECRET, Compartments::of(&[1]));
    let root = root_of(&mut sys, admin);
    let udd = Monitor::initiate_dir(&mut sys.world, admin, root, "udd");
    Monitor::create_directory(&mut sys.world, admin, udd, "vault", s_crypto).unwrap();
    let udd_uid = sys
        .world
        .fs
        .peek_branch(mks_fs::FileSystem::ROOT, "udd")
        .unwrap()
        .uid;
    sys.world
        .fs
        .set_dir_acl_entry(udd_uid, "vault", &admin_user(), "*.*.*", DirMode::SA)
        .unwrap();

    let alice = sys
        .world
        .create_process(UserId::new("Alice", "X", "a"), s_crypto, 4);
    let root_a = root_of(&mut sys, alice);
    let udd_a = Monitor::initiate_dir(&mut sys.world, alice, root_a, "udd");
    let vault_a = Monitor::initiate_dir(&mut sys.world, alice, udd_a, "vault");
    let seg = Monitor::create_segment(
        &mut sys.world,
        alice,
        vault_a,
        "keys",
        Acl::of("Alice.X.a", AclMode::RW), // ACL restricts within the compartment too
        RingBrackets::new(4, 4, 4),
        s_crypto,
    )
    .unwrap();
    Monitor::write(&mut sys.world, alice, seg, 0, Word::new(3)).unwrap();

    // Same compartment, but not on the ACL: denied by the ACL.
    let carol = sys
        .world
        .create_process(UserId::new("Carol", "X", "a"), s_crypto, 4);
    let root_c = root_of(&mut sys, carol);
    let udd_c = Monitor::initiate_dir(&mut sys.world, carol, root_c, "udd");
    let vault_c = Monitor::initiate_dir(&mut sys.world, carol, udd_c, "vault");
    assert_eq!(
        Monitor::initiate(&mut sys.world, carol, vault_c, "keys"),
        Err(AccessError::NoInfo)
    );
    // On the ACL but in the wrong compartment: denied by the labels.
    let boris = sys.world.create_process(
        UserId::new("Alice", "X", "a"), // same principal name…
        Label::new(Level::SECRET, Compartments::of(&[2])), // …different compartment
        4,
    );
    let root_b = root_of(&mut sys, boris);
    let udd_b = Monitor::initiate_dir(&mut sys.world, boris, root_b, "udd");
    let vault_b = Monitor::initiate_dir(&mut sys.world, boris, udd_b, "vault");
    assert_eq!(
        Monitor::initiate(&mut sys.world, boris, vault_b, "keys"),
        Err(AccessError::NoInfo)
    );
}

#[test]
fn ipc_guard_follows_the_acl() {
    let (mut sys, _admin) = boot();
    let a = sys
        .world
        .create_process(UserId::new("A", "P", "a"), Label::BOTTOM, 4);
    let b = sys
        .world
        .create_process(UserId::new("B", "P", "a"), Label::BOTTOM, 4);
    let root_a = root_of(&mut sys, a);
    let udd_a = Monitor::initiate_dir(&mut sys.world, a, root_a, "udd");
    // A's mailbox allows B to write (and hence to notify).
    let mut acl = Acl::of("A.P.a", AclMode::RW);
    acl.add("B.P.a", AclMode::RW);
    let mbx = Monitor::create_segment(
        &mut sys.world,
        a,
        udd_a,
        "mailbox",
        acl,
        RingBrackets::new(4, 4, 4),
        Label::BOTTOM,
    )
    .unwrap();
    Monitor::write(&mut sys.world, a, mbx, 0, Word::ZERO).unwrap();
    assert!(Monitor::may_notify_channel(&mut sys.world, a, mbx, 0).is_ok());
    // B initiates the same mailbox by path and may notify too.
    let mbx_b = Monitor::initiate_path(&mut sys.world, b, ">udd>mailbox").unwrap();
    assert!(Monitor::may_notify_channel(&mut sys.world, b, mbx_b, 0).is_ok());
    // A third user with no ACL entry cannot even initiate it.
    let c = sys
        .world
        .create_process(UserId::new("C", "Q", "a"), Label::BOTTOM, 4);
    assert_eq!(
        Monitor::initiate_path(&mut sys.world, c, ">udd>mailbox"),
        Err(AccessError::NoInfo)
    );
}

#[test]
fn both_boot_patterns_and_the_catalog_agree_with_the_paper() {
    // Boot equivalence.
    for cfg in [KernelConfig::legacy(), KernelConfig::kernel()] {
        let clock = mks_hw::Clock::new();
        let (bs, _) = bootstrap(&cfg, &clock);
        let (is, _) = load_image(&build_image(&cfg), &clock).unwrap();
        assert_eq!(bs, is);
    }
    // The kernel configuration resists the full catalog; the legacy one
    // does not.
    assert_eq!(breaches(&run_catalog(KernelConfig::kernel())), 0);
    assert!(breaches(&run_catalog(KernelConfig::legacy())) >= 5);
    // And its protected surface is smaller on every axis.
    let l = SystemInventory::build(KernelConfig::legacy());
    let k = SystemInventory::build(KernelConfig::kernel());
    assert!(k.protected_weight() < l.protected_weight());
    assert!(k.gates.user_available_entries() < l.gates.user_available_entries());
}
