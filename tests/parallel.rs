//! The parallel-kernel integration gate (E19): the whole-kernel
//! sequential==parallel differential, the lane invariants, and the
//! work-stealing metrics' visibility through the read-only metering
//! gate.
//!
//! The differential is the load-bearing check: a lane (one complete,
//! independently seeded kernel world) must produce byte-identical
//! audit-visible state — boot hash, audit log, metrics snapshot, gate
//! census, clock — whatever host thread count carries it and at every
//! simulated CPU count. `MKS_SWEEP_SEEDS` widens the seed sweep for
//! soak runs (CI caps it to bound wall time).

use mks_hw::{SegUid, PAGE_WORDS};
use mks_kernel::monitor::Monitor;
use mks_kernel::par::{differential_mismatches, lane_reports, lane_world_run, LaneConfig};
use mks_kernel::world::{admin_user, System, SystemSize};
use mks_kernel::KernelConfig;
use mks_procs::{SchedMode, TcConfig, TrafficController};
use mks_vm::parallel::TraceJob;
use mks_vm::{BulkFreerJob, ClockPolicy, CoreFreerJob, ParallelConfig, ParallelPageControl};

fn sweep_seeds() -> u64 {
    std::env::var("MKS_SWEEP_SEEDS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(4)
        .max(1)
}

fn cfg(seed: u64, nr_cpus: usize) -> LaneConfig {
    LaneConfig {
        lanes: 3,
        threads: 1,
        nr_cpus,
        seed: 0xA11 + seed * 0x0101,
        procs: 2,
        refs_per_proc: 24,
    }
}

#[test]
fn whole_kernel_differential_is_clean_across_the_seed_sweep() {
    for seed in 0..sweep_seeds() {
        assert_eq!(
            differential_mismatches(&cfg(seed, 4), 4),
            0,
            "thread count changed a lane report at seed {seed}"
        );
    }
}

#[test]
fn every_simulated_cpu_count_keeps_the_lane_invariants() {
    for nr_cpus in 1..=8 {
        for r in lane_reports(&cfg(0, nr_cpus)) {
            assert_eq!(r.census, 54, "{nr_cpus} CPUs: gate census moved");
            assert_eq!(r.lock_violations, 0, "{nr_cpus} CPUs: lock order violated");
            assert!(r.steps > 0, "{nr_cpus} CPUs: lane {} ran nothing", r.lane);
            assert!(r.faults > 0, "{nr_cpus} CPUs: lane {} never paged", r.lane);
        }
    }
}

#[test]
fn lane_fleet_is_deterministic_at_full_thread_fanout() {
    let wide = LaneConfig {
        threads: 4,
        ..cfg(1, 4)
    };
    assert_eq!(lane_reports(&wide), lane_reports(&wide));
}

#[test]
fn single_lane_rerun_is_bit_stable() {
    let c = cfg(2, 4);
    assert_eq!(lane_world_run(&c, 0), lane_world_run(&c, 0));
}

/// The work-stealing scheduler's observability surface flows through
/// the same read-only gate as every other kernel metric: a user-ring
/// call to `hcs_$metering_get` sees the steal counter, the per-CPU
/// queue depths, and the lock-contention counter — and a global-queue
/// (baseline) world's registry carries none of the `par.*` family, so
/// the pinned baseline snapshots stay byte-identical.
#[test]
fn worksteal_metrics_are_visible_through_the_metering_gate() {
    let mut sys = System::with_size(
        KernelConfig::kernel(),
        SystemSize {
            frames: 16,
            bulk_records: 64,
            ..SystemSize::default()
        },
    );
    let mut tc: TrafficController<mks_kernel::KernelWorld> = TrafficController::new(TcConfig {
        nr_cpus: 4,
        nr_vprocs: 8,
        quantum: 2,
        sched: SchedMode::WorkStealing { seed: 0xE19 },
    });
    sys.world.pc = ParallelPageControl::new(
        ParallelConfig {
            core_low: 2,
            core_target: 4,
            bulk_low: 4,
            bulk_target: 8,
        },
        &mut tc,
    );
    tc.add_dedicated(Box::new(CoreFreerJob::new(
        Box::new(ClockPolicy::default()),
    )));
    tc.add_dedicated(Box::new(BulkFreerJob));
    for p in 0..3u64 {
        let uid = SegUid(0x900 + p);
        sys.world.vm.machine.ast.activate(uid, 8 * PAGE_WORDS);
        let refs: Vec<(SegUid, usize)> = (0..24).map(|i| (uid, (i * 3 + p as usize) % 8)).collect();
        tc.spawn(Box::new(TraceJob::new(refs, 4)));
    }
    let out = tc.run_until_quiet(&mut sys.world, 1_000_000);
    assert!(out.quiescent);

    let pid = sys
        .world
        .create_process(admin_user(), mks_mls::Label::BOTTOM, 4);
    let json = Monitor::metering_snapshot(&mut sys.world, pid).expect("gate call");
    assert!(json.contains("par.tc.queue_depth.0"), "depth gauge missing");
    assert!(json.contains("par.tc.queue_depth.3"), "depth gauge missing");
    if tc.stats().steals > 0 {
        assert!(json.contains("par.tc.steals"), "steal counter missing");
        assert!(
            json.contains("par.lock.contention"),
            "contention counter missing"
        );
    }

    // The baseline arm: a stock (global-queue) system run the same way
    // must not grow any `par.*` registry entries.
    let mut base = System::with_size(
        KernelConfig::kernel(),
        SystemSize {
            frames: 16,
            bulk_records: 64,
            ..SystemSize::default()
        },
    );
    let pid = base
        .world
        .create_process(admin_user(), mks_mls::Label::BOTTOM, 4);
    let json = Monitor::metering_snapshot(&mut base.world, pid).expect("gate call");
    assert!(
        !json.contains("par."),
        "baseline registry must stay free of the par.* family"
    );
}
