//! Model-based testing of the reference monitor.
//!
//! A tiny, obviously-correct reference model (HashMaps, no rings, no
//! paging, no KST) plays the same random command sequence as the real
//! kernel. Every observable — created/denied, written/denied, read values
//! — must agree. Divergence means either the monitor leaks authority or
//! refuses authority it should grant; both are certification bugs.

use std::collections::HashMap;

use mks_fs::{Acl, AclMode, DirMode, UserId};
use mks_hw::{RingBrackets, SegNo, Word};
use mks_kernel::monitor::Monitor;
use mks_kernel::world::{admin_user, System};
use mks_kernel::{KProcId, KernelConfig};
use mks_mls::{mls_check, AccessKind, Compartments, Label, Level};
use proptest::prelude::*;

const USERS: [&str; 3] = ["Jones", "Smith", "Mallory"];
const SEGS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

#[derive(Debug, Clone)]
enum Cmd {
    /// user creates SEGS[s] granting rw to grantee, at label level `lvl`.
    Create {
        user: usize,
        seg: usize,
        grantee: usize,
        lvl: u8,
    },
    /// user writes value into SEGS[s] at offset.
    Write {
        user: usize,
        seg: usize,
        off: usize,
        val: u64,
    },
    /// user reads SEGS[s] at offset.
    Read { user: usize, seg: usize, off: usize },
}

fn arb_cmd() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        (0..3usize, 0..4usize, 0..3usize, 0u8..3).prop_map(|(user, seg, grantee, lvl)| {
            Cmd::Create {
                user,
                seg,
                grantee,
                lvl,
            }
        }),
        (0..3usize, 0..4usize, 0..64usize, 1u64..1000).prop_map(|(user, seg, off, val)| {
            Cmd::Write {
                user,
                seg,
                off,
                val,
            }
        }),
        (0..3usize, 0..4usize, 0..64usize).prop_map(|(user, seg, off)| Cmd::Read {
            user,
            seg,
            off
        }),
    ]
}

/// The reference model.
#[derive(Default)]
struct Model {
    /// name -> (creator, grantee, label, contents)
    segs: HashMap<usize, (usize, usize, Label, HashMap<usize, u64>)>,
}

impl Model {
    fn create(&mut self, user: usize, seg: usize, grantee: usize, label: Label) -> bool {
        if self.segs.contains_key(&seg) {
            return false; // name taken
        }
        // Subject label: all processes run at their fixed level (see
        // below: user i runs at level i). Creating requires writing the
        // BOTTOM directory and a label dominating it.
        let subj = proc_label(user);
        if mls_check(&subj, &Label::BOTTOM, AccessKind::Write).is_err() {
            return false;
        }
        self.segs
            .insert(seg, (user, grantee, label, HashMap::new()));
        true
    }

    fn mode(&self, user: usize, seg: usize) -> Option<(bool, bool)> {
        let (creator, grantee, label, _) = self.segs.get(&seg)?;
        // ACL: creator and grantee get rw; everyone else nothing.
        if user != *creator && user != *grantee {
            return None;
        }
        let subj = proc_label(user);
        let read = mls_check(&subj, label, AccessKind::Read).is_ok();
        let write = mls_check(&subj, label, AccessKind::Write).is_ok();
        if !read && !write {
            None
        } else {
            Some((read, write))
        }
    }

    fn write(&mut self, user: usize, seg: usize, off: usize, val: u64) -> bool {
        match self.mode(user, seg) {
            Some((_, true)) => {
                self.segs.get_mut(&seg).unwrap().3.insert(off, val);
                true
            }
            _ => false,
        }
    }

    fn read(&self, user: usize, seg: usize, off: usize) -> Option<u64> {
        match self.mode(user, seg) {
            Some((true, _)) => Some(
                self.segs
                    .get(&seg)
                    .unwrap()
                    .3
                    .get(&off)
                    .copied()
                    .unwrap_or(0),
            ),
            _ => None,
        }
    }
}

/// Process labels: user 0 at UNCLASSIFIED, 1 at CONFIDENTIAL, 2 at SECRET.
fn proc_label(user: usize) -> Label {
    Label::new(Level(user as u8), Compartments::NONE)
}

struct Real {
    sys: System,
    pids: Vec<KProcId>,
    udd: Vec<SegNo>,
    segnos: HashMap<(usize, usize), SegNo>,
}

impl Real {
    fn new() -> Real {
        let mut sys = System::new(KernelConfig::kernel());
        let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
        let root = sys.world.bind_root(admin);
        Monitor::create_directory(&mut sys.world, admin, root, "udd", Label::BOTTOM).unwrap();
        sys.world
            .fs
            .set_dir_acl_entry(
                mks_fs::FileSystem::ROOT,
                "udd",
                &admin_user(),
                "*.*.*",
                DirMode::SA,
            )
            .unwrap();
        let mut pids = Vec::new();
        let mut udd = Vec::new();
        for (i, name) in USERS.iter().enumerate() {
            let pid = sys
                .world
                .create_process(UserId::new(name, "Proj", "a"), proc_label(i), 4);
            let root = sys.world.bind_root(pid);
            udd.push(Monitor::initiate_dir(&mut sys.world, pid, root, "udd"));
            pids.push(pid);
        }
        Real {
            sys,
            pids,
            udd,
            segnos: HashMap::new(),
        }
    }

    fn segno(&mut self, user: usize, seg: usize) -> Option<SegNo> {
        if let Some(s) = self.segnos.get(&(user, seg)) {
            return Some(*s);
        }
        let s = Monitor::initiate(
            &mut self.sys.world,
            self.pids[user],
            self.udd[user],
            SEGS[seg],
        )
        .ok()?;
        self.segnos.insert((user, seg), s);
        Some(s)
    }

    fn create(&mut self, user: usize, seg: usize, grantee: usize, label: Label) -> bool {
        let mut acl = Acl::of(&format!("{}.Proj.a", USERS[user]), AclMode::RW);
        acl.add(&format!("{}.Proj.a", USERS[grantee]), AclMode::RW);
        let out = Monitor::create_segment(
            &mut self.sys.world,
            self.pids[user],
            self.udd[user],
            SEGS[seg],
            acl,
            RingBrackets::new(4, 4, 4),
            label,
        );
        if let Ok(s) = out {
            self.segnos.insert((user, seg), s);
            true
        } else {
            false
        }
    }

    fn write(&mut self, user: usize, seg: usize, off: usize, val: u64) -> bool {
        let Some(s) = self.segno(user, seg) else {
            return false;
        };
        Monitor::write(&mut self.sys.world, self.pids[user], s, off, Word::new(val)).is_ok()
    }

    fn read(&mut self, user: usize, seg: usize, off: usize) -> Option<u64> {
        let s = self.segno(user, seg)?;
        Monitor::read(&mut self.sys.world, self.pids[user], s, off)
            .ok()
            .map(|w| w.raw())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn monitor_agrees_with_the_reference_model(cmds in prop::collection::vec(arb_cmd(), 1..60)) {
        let mut model = Model::default();
        let mut real = Real::new();
        for (i, cmd) in cmds.iter().enumerate() {
            match *cmd {
                Cmd::Create { user, seg, grantee, lvl } => {
                    let label = Label::new(Level(lvl), Compartments::NONE);
                    let m = model.create(user, seg, grantee, label);
                    let r = real.create(user, seg, grantee, label);
                    prop_assert_eq!(m, r, "cmd {} create {:?}", i, cmd);
                }
                Cmd::Write { user, seg, off, val } => {
                    let m = model.write(user, seg, off, val);
                    let r = real.write(user, seg, off, val);
                    prop_assert_eq!(m, r, "cmd {} write {:?}", i, cmd);
                }
                Cmd::Read { user, seg, off } => {
                    let m = model.read(user, seg, off);
                    let r = real.read(user, seg, off);
                    prop_assert_eq!(m, r, "cmd {} read {:?}", i, cmd);
                }
            }
        }
    }
}
