//! Functional parity across the removals.
//!
//! The paper's whole bet is that the kernel can shrink "while supporting
//! the complete functionality of the present system": removal must change
//! *where* code runs, never *what legitimate programs can do*. These tests
//! run identical user-level scenarios on the legacy supervisor and the
//! security kernel and demand identical observable results.

use mks_fs::{Acl, AclMode, DirMode, UserId};
use mks_hw::{RingBrackets, SegNo, Word};
use mks_kernel::monitor::Monitor;
use mks_kernel::subsystem::login;
use mks_kernel::world::{admin_user, System};
use mks_kernel::{KProcId, KernelConfig};
use mks_mls::Label;

fn root_of(sys: &mut System, pid: KProcId) -> SegNo {
    sys.world.bind_root(pid)
}

fn boot(cfg: KernelConfig) -> (System, KProcId) {
    let mut sys = System::new(cfg);
    let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
    let root = root_of(&mut sys, admin);
    Monitor::create_directory(&mut sys.world, admin, root, "udd", Label::BOTTOM).unwrap();
    sys.world
        .fs
        .set_dir_acl_entry(
            mks_fs::FileSystem::ROOT,
            "udd",
            &admin_user(),
            "*.*.*",
            DirMode::SA,
        )
        .unwrap();
    (sys, admin)
}

/// A user-level scenario; returns its observable trace.
fn scenario(cfg: KernelConfig) -> Vec<String> {
    let mut out = Vec::new();
    let (mut sys, _admin) = boot(cfg);
    let jones = UserId::new("Jones", "CSR", "a");
    sys.world.auth.register(&jones, "pw", Label::BOTTOM);
    let pid = login(&mut sys.world, &jones, "pw", Label::BOTTOM, 4)
        .unwrap()
        .pid;

    // Create a tree and some segments by pathname.
    let root = root_of(&mut sys, pid);
    let udd = Monitor::initiate_dir(&mut sys.world, pid, root, "udd");
    let home = Monitor::create_directory(&mut sys.world, pid, udd, "Jones", Label::BOTTOM).unwrap();
    for name in ["alpha", "beta"] {
        Monitor::create_segment(
            &mut sys.world,
            pid,
            home,
            name,
            Acl::of("Jones.CSR.a", AclMode::RW),
            RingBrackets::new(4, 4, 4),
            Label::BOTTOM,
        )
        .unwrap();
    }
    // Write/read through pathname initiation.
    let alpha = Monitor::initiate_path(&mut sys.world, pid, ">udd>Jones>alpha").unwrap();
    for i in 0..10usize {
        Monitor::write(&mut sys.world, pid, alpha, i, Word::new((i * i) as u64)).unwrap();
    }
    for i in 0..10usize {
        let w = Monitor::read(&mut sys.world, pid, alpha, i).unwrap();
        out.push(format!("alpha[{i}]={}", w.raw()));
    }
    // Directory listing.
    let mut names = Monitor::list_dir(&mut sys.world, pid, home).unwrap();
    names.sort();
    out.push(format!("home={names:?}"));
    // Denials for a foreign user are also part of the observable contract.
    let smith = sys
        .world
        .create_process(UserId::new("Smith", "XYZ", "a"), Label::BOTTOM, 4);
    let denied = Monitor::initiate_path(&mut sys.world, smith, ">udd>Jones>alpha").is_err();
    out.push(format!("smith_denied={denied}"));
    // Terminate and re-initiate.
    Monitor::terminate(&mut sys.world, pid, alpha).unwrap();
    let again = Monitor::initiate_path(&mut sys.world, pid, ">udd>Jones>alpha").unwrap();
    let w = Monitor::read(&mut sys.world, pid, again, 3).unwrap();
    out.push(format!("after_reinitiate={}", w.raw()));
    out
}

#[test]
fn legitimate_programs_see_identical_behaviour() {
    let legacy = scenario(KernelConfig::legacy());
    let kernel = scenario(KernelConfig::kernel());
    assert_eq!(legacy, kernel);
}

#[test]
fn each_intermediate_rung_also_preserves_behaviour() {
    let base = scenario(KernelConfig::legacy());
    for cfg in [
        KernelConfig::legacy_linker_removed(),
        KernelConfig::legacy_both_removals(),
    ] {
        assert_eq!(base, scenario(cfg), "{}", cfg.name());
    }
}

#[test]
fn linking_resolves_identically_in_both_packagings() {
    use mks_linker::kernel_cfg::{LegacyLinkOutcome, LegacyLinker};
    use mks_linker::object::ObjectSegment;
    use mks_linker::snap::LinkEnv;
    use mks_linker::user_cfg::{UserLinkOutcome, UserLinker};
    use mks_linker::SearchRules;

    struct Env(std::collections::HashMap<SegNo, ObjectSegment>, u16);
    impl LinkEnv for Env {
        fn initiate_segment(&mut self, dir: SegNo, name: &str) -> Option<SegNo> {
            if dir != SegNo(10) || name != "lib_" {
                return None;
            }
            let segno = SegNo(self.1);
            self.1 += 1;
            self.0.insert(
                segno,
                ObjectSegment::new("lib_", 64, vec![("f".into(), 7), ("g".into(), 21)], vec![]),
            );
            Some(segno)
        }
        fn entry_offset(&mut self, segno: SegNo, entry: &str) -> Option<usize> {
            self.0.get(&segno)?.entry_offset(entry)
        }
    }

    let image = ObjectSegment::new(
        "app",
        16,
        vec![("main".into(), 0)],
        vec![("lib_".into(), "f".into()), ("lib_".into(), "g".into())],
    )
    .encode();
    let rules = SearchRules::new(vec![SegNo(10)]);
    for link in 0..2 {
        let mut legacy = LegacyLinker::new();
        let mut user = UserLinker::new();
        let a =
            legacy.handle_linkage_fault(&mut Env(Default::default(), 100), &rules, 4, &image, link);
        let b =
            user.handle_linkage_fault(&mut Env(Default::default(), 100), &rules, 4, &image, link);
        match (a, b) {
            (LegacyLinkOutcome::Snapped(x), UserLinkOutcome::Snapped(y)) => {
                assert_eq!(x.offset, y.offset);
                assert_eq!(x.segno, y.segno);
            }
            other => panic!("{other:?}"),
        }
    }
}
