//! Cross-layer observability acceptance tests: the kernel flight
//! recorder's span trees, the metrics registry, the metering gate, and
//! the JSON snapshot path the experiment binaries consume.

use mks_bench::drivers::run_sequential_metered;
use mks_bench::report::layer_breakdown_from_json;
use mks_fs::{Acl, AclMode};
use mks_hw::RingBrackets;
use mks_kernel::monitor::Monitor;
use mks_kernel::world::{admin_user, System};
use mks_kernel::KernelConfig;
use mks_mls::Label;
use mks_trace::{Clock, EventKind, Layer, Snapshot, TraceHandle};
use mks_vm::{RefTrace, TraceConfig};

/// A kernel system with one bound segment ready to initiate.
fn system_with_probe() -> (System, mks_kernel::world::KProcId, mks_hw::SegNo) {
    let mut sys = System::new(KernelConfig::kernel());
    let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
    let root = sys.world.bind_root(admin);
    let seg = Monitor::create_segment(
        &mut sys.world,
        admin,
        root,
        "probe",
        Acl::of("Admin.SysAdmin.a", AclMode::RW),
        RingBrackets::new(4, 4, 4),
        Label::BOTTOM,
    )
    .expect("admin owns the root");
    Monitor::terminate(&mut sys.world, admin, seg).expect("bound");
    (sys, admin, root)
}

#[test]
fn one_gate_call_produces_a_three_layer_span_tree() {
    let (mut sys, admin, root) = system_with_probe();
    // A single traced gate call…
    let seg = Monitor::initiate(&mut sys.world, admin, root, "probe").expect("own segment");
    assert!(seg.0 > 0);
    let tree = sys
        .world
        .vm
        .machine
        .trace
        .last_root_span()
        .expect("gate call closed a root span");
    // …spans the hardware gate, the reference monitor, and the vm layer.
    assert_eq!(tree.layer, Layer::Hw, "root is the ring crossing");
    let layers = tree.layers();
    assert!(layers.len() >= 3, "at least three layers, got {layers:?}");
    assert!(layers.contains(&Layer::Hw));
    assert!(layers.contains(&Layer::Monitor));
    assert!(layers.contains(&Layer::Vm));
    // Per-layer exclusive cycles partition the root's inclusive total.
    assert_eq!(tree.exclusive_sum(), tree.inclusive);
    assert!(tree.inclusive > 0, "a gate call costs cycles");
}

#[test]
fn snapshot_round_trips_through_the_bench_report() {
    let (mut sys, admin, root) = system_with_probe();
    for _ in 0..10 {
        let seg = Monitor::initiate(&mut sys.world, admin, root, "probe").unwrap();
        let _ = Monitor::read(&mut sys.world, admin, seg, 0).unwrap();
        Monitor::terminate(&mut sys.world, admin, seg).unwrap();
    }
    // The metering gate exports JSON; the bench report parses it back with
    // nothing lost on the way.
    let json = Monitor::metering_snapshot(&mut sys.world, admin).expect("user-callable gate");
    let parsed = Snapshot::from_json(&json).expect("valid JSON");
    assert_eq!(parsed.to_json(), json, "parse ∘ emit is the identity");
    // The gate decorates the trace snapshot with exactly one extra
    // section: the commit-log position (E20). Everything else is the
    // flight recorder's own snapshot, untouched.
    let replay = parsed
        .replay
        .expect("the gate exports the commit-log digest");
    assert_eq!(replay.commits, sys.world.commits.len());
    assert_eq!(replay.log_digest, sys.world.commits.head());
    let bare = Snapshot {
        replay: None,
        repl: None,
        ..parsed.clone()
    };
    assert_eq!(bare, sys.world.vm.machine.trace.snapshot());
    let table = layer_breakdown_from_json(&json).expect("report accepts the snapshot");
    let rendered = table.render();
    for layer in ["hw", "monitor", "vm"] {
        assert!(
            rendered.contains(layer),
            "breakdown lists {layer}: {rendered}"
        );
    }
}

#[test]
fn vmstats_view_and_registry_agree_on_fault_counts() {
    let trace = RefTrace::generate(&TraceConfig {
        length: 500,
        nr_segments: 3,
        pages_per_segment: 8,
        ..TraceConfig::default()
    });
    let (stats, _, snap) = run_sequential_metered(8, 64, &trace, 4);
    assert!(stats.faults > 0);
    assert_eq!(
        stats.faults,
        snap.counter("vm.faults"),
        "view and registry agree"
    );
    let latency = snap
        .histogram("vm.fault_latency")
        .expect("histogram present");
    assert_eq!(
        latency.count, stats.faults,
        "every fault observed exactly once"
    );
    assert_eq!(
        snap.histogram("vm.fault_steps").unwrap().count,
        stats.faults
    );
}

#[test]
fn trace_ring_stays_bounded_under_ten_thousand_events() {
    let clock = Clock::new();
    let capacity = 256;
    let t = TraceHandle::with_capacity(clock.clone(), capacity);
    for i in 0..10_000u64 {
        clock.advance(1);
        t.event(Layer::Io, EventKind::BufferOp, &format!("op {i}"));
    }
    let ring = t.ring_stats();
    assert_eq!(ring.capacity, capacity as u64);
    assert!(ring.len <= ring.capacity, "ring never exceeds its capacity");
    assert_eq!(
        ring.next_seq, 10_000,
        "sequence numbers stay monotone across wrap"
    );
    assert_eq!(
        ring.dropped,
        10_000 - capacity as u64,
        "oldest records were overwritten"
    );
    // The survivors are exactly the newest `capacity` records, in order.
    let seqs: Vec<u64> = t.records().iter().map(|r| r.seq).collect();
    assert_eq!(
        seqs,
        ((10_000 - capacity as u64)..10_000).collect::<Vec<_>>()
    );
}

#[test]
fn kernel_workload_ring_stays_bounded() {
    let (mut sys, admin, root) = system_with_probe();
    for _ in 0..2_000 {
        let seg = Monitor::initiate(&mut sys.world, admin, root, "probe").unwrap();
        Monitor::terminate(&mut sys.world, admin, seg).unwrap();
    }
    let ring = sys.world.vm.machine.trace.ring_stats();
    assert!(ring.len <= ring.capacity);
    assert!(
        ring.dropped > 0,
        "2000 gate calls emit far more records than the ring holds"
    );
}

#[test]
fn monitor_verdicts_reach_the_registry() {
    let (mut sys, admin, root) = system_with_probe();
    let granted_before = sys.world.vm.machine.trace.counter("monitor.granted");
    Monitor::initiate(&mut sys.world, admin, root, "probe").unwrap();
    assert!(sys.world.vm.machine.trace.counter("monitor.granted") > granted_before);
    // A stranger's denied probe lands on the denied counter — attributed.
    let smith =
        sys.world
            .create_process(mks_fs::UserId::new("Smith", "Guest", "a"), Label::BOTTOM, 4);
    let root_s = sys.world.bind_root(smith);
    let denied_before = sys.world.vm.machine.trace.counter("monitor.denied");
    let _ = Monitor::initiate(&mut sys.world, smith, root_s, "probe");
    assert!(sys.world.vm.machine.trace.counter("monitor.denied") > denied_before);
    let records = sys.world.vm.machine.trace.records();
    let verdict = records
        .iter()
        .rev()
        .find(|r| r.kind == EventKind::Verdict && r.principal.as_deref() == Some("Smith.Guest.a"))
        .expect("denial recorded against its principal");
    assert!(verdict.detail.contains("denied"), "{}", verdict.detail);
}

#[test]
fn skew_injected_at_the_first_audit_record_establishes_the_baseline() {
    use mks_hw::{FaultEvent, FaultPlan, InjectKind};

    let (mut sys, _admin, _root) = system_with_probe();
    let smith =
        sys.world
            .create_process(mks_fs::UserId::new("Smith", "Guest", "a"), Label::BOTTOM, 4);
    let root_s = sys.world.bind_root(smith);

    // The SkewClock site is consulted once per audit append: warp the
    // very first record a little, and the third one far backwards.
    let inject = sys.world.vm.machine.inject.clone();
    inject.arm(&FaultPlan::from_events(vec![
        FaultEvent {
            kind: InjectKind::SkewClock,
            nth: 0,
            detail: 0,
        },
        FaultEvent {
            kind: InjectKind::SkewClock,
            nth: 2,
            detail: 900,
        },
    ]));

    // First denial: its timestamp is warped, but an empty log has no
    // earlier time to contradict — it must establish the baseline, not
    // count as a skew (the old `last_at: Cycles = 0` default could never
    // express this).
    let _ = Monitor::initiate(&mut sys.world, smith, root_s, "probe");
    assert_eq!(sys.world.log.len(), 1);
    assert_eq!(
        sys.world.log.clock_skews(),
        0,
        "the first record can never flag a skew"
    );

    // Second denial: unwarped, later than the first — still no skew.
    let _ = Monitor::initiate(&mut sys.world, smith, root_s, "probe");
    assert_eq!(sys.world.log.clock_skews(), 0);

    // Third denial: warped 901 cycles backwards, clearly predating the
    // second record — kept, saturated, and flagged.
    let _ = Monitor::initiate(&mut sys.world, smith, root_s, "probe");
    inject.disarm();
    assert_eq!(inject.fired().len(), 2, "both scheduled warps fired");
    assert_eq!(sys.world.log.clock_skews(), 1);

    let times: Vec<_> = sys.world.log.records().iter().map(|r| r.at).collect();
    assert_eq!(times.len(), 3);
    assert!(times[0] <= times[1], "baseline then forward");
    assert_eq!(times[1], times[2], "the skewed record saturates to last");

    // The incremental reader sees the same saturated, ordered stream.
    let tail = sys.world.log.snapshot_range(1);
    assert_eq!(tail.len(), 2);
    assert_eq!(tail[0].seq, 1);
    assert!(tail.windows(2).all(|w| w[0].at <= w[1].at));
}
