//! The claims regression gate: every paper claim, machine-checked.
//!
//! `EXPERIMENTS.md` states the expected shape of each experiment's result;
//! `mks_bench::experiments` encodes those shapes as [`ClaimResult`]s. This
//! suite runs the whole registry once and asserts that every claim's
//! verdict passes — so a regression in any reproduced number (who wins, by
//! what factor, how many gates) fails `cargo test` and the CI `claims`
//! job, instead of waiting for a human to re-read the results.
//!
//! Two claims are **documented honest gaps** (`ReproducedWithGap`): the
//! measurement reproduces the claim's shape but falls short of the paper's
//! magnitude for an explained reason (see `docs/CLAIMS.md`). They pass —
//! but any further slide past their accept band, or a new undocumented
//! gap, fails here.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use mks_bench::claims::{claims_json, ClaimResult, ClaimShape, Tally, Verdict};
use mks_bench::experiments::{all_claims, default_workers, run_all, REGISTRY};
use mks_kernel::{GateTable, KernelConfig};

/// The suite's claims, computed once and shared across tests.
fn suite() -> &'static [ClaimResult] {
    static CLAIMS: OnceLock<Vec<ClaimResult>> = OnceLock::new();
    CLAIMS.get_or_init(|| all_claims(&run_all(default_workers())))
}

/// The exact set of documented honest gaps. Adding an entry here requires
/// documenting the gap in `docs/CLAIMS.md` and `EXPERIMENTS.md`.
const DOCUMENTED_GAPS: &[&str] = &["E2.protected-shrink", "E3.one-third-cut"];

#[test]
fn every_claim_is_reproduced() {
    let claims = suite();
    assert!(!claims.is_empty());
    let failed: Vec<String> = claims
        .iter()
        .filter(|c| !c.verdict.passed())
        .map(|c| {
            format!(
                "{}: expected {}, measured {:.4} ({})",
                c.id,
                c.expected_shape.describe(),
                c.measured,
                c.measured_desc
            )
        })
        .collect();
    assert!(
        failed.is_empty(),
        "claims no longer hold:\n{}",
        failed.join("\n")
    );
}

#[test]
fn documented_gaps_are_exactly_the_known_two() {
    let with_gap: BTreeSet<&str> = suite()
        .iter()
        .filter(|c| c.verdict == Verdict::ReproducedWithGap)
        .map(|c| c.id.as_str())
        .collect();
    let expected: BTreeSet<&str> = DOCUMENTED_GAPS.iter().copied().collect();
    assert_eq!(
        with_gap, expected,
        "the ReproducedWithGap set drifted — a gap closed (promote it to \
         Reproduced by tightening its shape) or a new one opened (document \
         it in docs/CLAIMS.md or fix the regression)"
    );
}

#[test]
fn gap_claims_carry_their_explanations() {
    for c in suite() {
        let widened = match c.expected_shape {
            ClaimShape::FactorAtLeast { paper, accept } => accept < paper,
            ClaimShape::FractionNear {
                tol, accept_tol, ..
            } => accept_tol > tol,
            _ => false,
        };
        assert_eq!(
            widened,
            c.gap_note.is_some(),
            "{}: a widened accept band and a gap note must come together",
            c.id
        );
        if c.verdict == Verdict::ReproducedWithGap {
            assert!(c.gap_note.is_some(), "{}: undocumented gap", c.id);
        }
    }
}

#[test]
fn suite_covers_every_experiment_with_unique_claim_ids() {
    assert_eq!(REGISTRY.len(), 24, "E1-E21 plus A1, A3, A4");
    let claims = suite();
    let mut ids = BTreeSet::new();
    for c in claims {
        assert!(ids.insert(c.id.as_str()), "duplicate claim id {}", c.id);
        assert!(
            c.id.starts_with(c.experiment) && c.id[c.experiment.len()..].starts_with('.'),
            "{}: id must be <experiment>.<slug>",
            c.id
        );
        assert!(!c.paper_quote.is_empty(), "{}: empty paper quote", c.id);
    }
    for e in REGISTRY {
        assert!(
            claims.iter().any(|c| c.experiment == e.id),
            "experiment {} produced no claims",
            e.id
        );
    }
    let t = Tally::of(claims);
    assert_eq!(t.total(), claims.len());
    assert_eq!(t.failed, 0);
}

#[test]
fn claims_json_is_complete_and_balanced() {
    let claims = suite();
    let json = claims_json(claims, REGISTRY.len());
    for c in claims {
        assert!(
            json.contains(&format!("\"id\":\"{}\"", c.id)),
            "claims.json is missing {}",
            c.id
        );
    }
    assert!(json.contains("\"schema\": \"mks-claims/1\""));
    assert!(json.contains("\"failed\": 0"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

/// The gate censuses are load-bearing constants across EXPERIMENTS.md,
/// README.md and four experiments — pin them independently of the
/// experiment library.
#[test]
fn gate_census_pins() {
    let legacy = GateTable::build(&KernelConfig::legacy());
    assert_eq!(legacy.user_available_entries(), 101);
    assert_eq!(legacy.total_entries(), 109);
    let kernel = GateTable::build(&KernelConfig::kernel());
    assert_eq!(kernel.user_available_entries(), 54);

    let ladder: Vec<usize> = [
        KernelConfig::legacy(),
        KernelConfig::legacy_linker_removed(),
        KernelConfig::legacy_both_removals(),
        KernelConfig::kernel(),
    ]
    .iter()
    .map(|cfg| GateTable::build(cfg).user_available_entries())
    .collect();
    assert_eq!(ladder, vec![101, 91, 72, 54]);
}

/// The pre-flight-recorder ladder (100/90/71/53) is recovered exactly by
/// excluding the `metering_get` gate the recorder added to every
/// configuration — the documented provenance of the census change.
#[test]
fn historical_ladder_is_current_minus_metering_gate() {
    let historical: Vec<usize> = [
        KernelConfig::legacy(),
        KernelConfig::legacy_linker_removed(),
        KernelConfig::legacy_both_removals(),
        KernelConfig::kernel(),
    ]
    .iter()
    .map(|cfg| {
        let t = GateTable::build(cfg);
        let metering = t.count_matching(&["metering_get"]);
        assert_eq!(metering, 1, "{}: metering gate present once", cfg.name());
        t.user_available_entries() - metering
    })
    .collect();
    assert_eq!(historical, vec![100, 90, 71, 53]);
}
