//! The replicated-kernel integration gate (E21): primary/backup
//! failover over the sealed commit log, swept under seeded hostile-link
//! plans.
//!
//! Each swept run drives the mixed workload through a three-replica
//! cluster while the link drops, duplicates, reorders, delays and
//! partitions frames and the primary crashes; after the faults are
//! disarmed the cluster must reconverge with every replica holding the
//! same chain head, the same live digest as `reduce(genesis, log)`, no
//! epoch with two sealers, and no majority-acknowledged commit lost.
//! `MKS_SWEEP_SEEDS` widens the sweep for soak runs (CI caps it to
//! bound wall time).

use mks_hw::{FaultEvent, FaultPlan, InjectKind};
use mks_kernel::replicate::{drive_mixed_workload, Cluster, ReplConfig, ReplError, Role};
use mks_kernel::statemachine::{reduce, Commit, Genesis};

fn sweep_seeds() -> u64 {
    std::env::var("MKS_SWEEP_SEEDS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(60)
        .max(2)
}

fn cluster(seed: u64) -> Cluster {
    Cluster::new(
        Genesis::kernel_small(),
        ReplConfig {
            seed,
            ..ReplConfig::default()
        },
    )
}

/// Every safety invariant a finished run must satisfy, or a named
/// violation with the seed on failure.
fn assert_sound(c: &Cluster, what: &str, seed: u64) {
    assert_eq!(
        c.sealer_violations(),
        Vec::<u64>::new(),
        "{what} seed {seed:#x}: an epoch had two sealers"
    );
    for chk in c.failover_checks() {
        assert!(
            chk.digest_equal,
            "{what} seed {seed:#x}: promoted digest diverged from reduce() at epoch {}",
            chk.epoch
        );
        assert!(
            chk.acked_covered,
            "{what} seed {seed:#x}: an acked commit was lost at epoch {}",
            chk.epoch
        );
    }
    let primary = c.primary().expect("a healed cluster has a primary");
    let plog = c.log_of(primary);
    plog.verify().expect("the primary's log verifies");
    let pdigest = c.digest_of(primary);
    assert_eq!(pdigest.census, 54, "{what} seed {seed:#x}: census drifted");
    for id in 0..c.replica_count() as u32 {
        assert_eq!(
            c.digest_of(id),
            pdigest,
            "{what} seed {seed:#x}: replica {id} diverged from the primary"
        );
    }
    // The replicated history is still a pure fold: reducing the
    // primary's log from genesis reproduces its live digest.
    let folded = reduce(c.genesis(), plog).expect("the primary's log reduces");
    assert_eq!(
        folded.digest(),
        pdigest,
        "{what} seed {seed:#x}: the live world is not the fold of its log"
    );
    // Every durability mark the cluster ever acknowledged is a prefix
    // of the surviving history.
    for &(len, head) in c.acked_marks() {
        assert!(len <= plog.len(), "{what} seed {seed:#x}: acked past end");
        assert_eq!(
            plog.prefix(len).head(),
            head,
            "{what} seed {seed:#x}: acked prefix {len} rewritten"
        );
    }
}

#[test]
fn hostile_link_sweep_reconverges_soundly() {
    for seed in 0..sweep_seeds() {
        let mut c = cluster(seed);
        c.arm(&FaultPlan::generate_replication(seed));
        let report = drive_mixed_workload(&mut c, seed, 40);
        c.disarm();
        assert!(
            c.run_quiet(6000),
            "hostile sweep seed {seed:#x} failed to reconverge"
        );
        assert_sound(&c, "hostile sweep", seed);
        assert_eq!(
            report.salvage_problems, 0,
            "salvager found damage at seed {seed:#x}"
        );
        assert!(!report.boot_divergence, "boot hash moved at seed {seed:#x}");
    }
}

#[test]
fn every_replication_fault_kind_fires_and_stays_sound() {
    for (i, &kind) in InjectKind::REPLICATION.iter().enumerate() {
        let seed = 0x3000 + i as u64;
        let plan = FaultPlan {
            seed,
            events: [2u64, 9, 17, 31]
                .iter()
                .map(|&nth| FaultEvent {
                    kind,
                    nth,
                    detail: seed.wrapping_mul(0x9e37_79b9).wrapping_add(nth),
                })
                .collect(),
        };
        let mut c = cluster(seed);
        c.arm(&plan);
        drive_mixed_workload(&mut c, seed, 30);
        c.disarm();
        assert!(
            c.fired().iter().any(|f| f.kind == kind),
            "{} never fired",
            kind.name()
        );
        assert!(
            c.run_quiet(6000),
            "{} run failed to reconverge",
            kind.name()
        );
        assert_sound(&c, kind.name(), seed);
    }
}

#[test]
fn a_quiet_cluster_replicates_everything_it_seals() {
    let mut c = cluster(0xc0a1);
    let report = drive_mixed_workload(&mut c, 0xc0a1, 30);
    assert!(c.run_quiet(2000));
    assert!(report.submitted > 0);
    assert_eq!(report.retries, 0, "no faults, so no client retries");
    assert_eq!(c.promotions(), 0, "no faults, so no elections");
    assert_sound(&c, "quiet", 0xc0a1);
}

#[test]
fn primary_crash_fails_over_and_fences_the_deposed_sealer() {
    let mut c = cluster(0xfe11);
    drive_mixed_workload(&mut c, 0xfe11, 15);
    c.arm(&FaultPlan {
        seed: 0xfe11,
        events: vec![FaultEvent {
            kind: InjectKind::ReplPrimaryCrash,
            nth: 0,
            detail: 16, // restart at +19 ticks, after the election
        }],
    });
    assert!(matches!(
        c.submit(&Commit::Tick { times: 1 }),
        Err(ReplError::Down { .. })
    ));
    c.disarm();
    let mut deposed_refused = false;
    for _ in 0..160 {
        c.tick();
        if c.primary().is_some() && c.role_of(0) == Role::Backup && c.epoch_of(0) < c.max_epoch() {
            deposed_refused |= matches!(
                c.seal_as(0, &Commit::Tick { times: 1 }),
                Err(ReplError::Deposed { .. })
            );
        }
        if c.promotions() > 0 && deposed_refused {
            break;
        }
    }
    assert!(c.promotions() >= 1, "the crash must force an election");
    assert!(deposed_refused, "the deposed sealer must be refused");
    assert!(c.run_quiet(6000));
    let primary = c.primary().expect("healed");
    assert!(
        c.log_of(primary).entries().iter().any(|s| match &s.commit {
            Commit::Audit { event, .. } => format!("{event:?}").contains("repl fence"),
            _ => false,
        }),
        "the fence must be audited into the replicated history"
    );
    assert_sound(&c, "crash failover", 0xfe11);
}

#[test]
fn divergent_tails_are_healed_by_snapshot_migration() {
    let mut c = cluster(0xd1f7);
    drive_mixed_workload(&mut c, 0xd1f7, 15);
    assert!(c.run_quiet(2000));
    // Orphan one seal (both append frames eaten), then crash the
    // primary; the new primary's history diverges at the orphan's seq.
    c.arm(&FaultPlan {
        seed: 0xd1f7,
        events: vec![
            FaultEvent {
                kind: InjectKind::ReplDrop,
                nth: 0,
                detail: 0,
            },
            FaultEvent {
                kind: InjectKind::ReplDrop,
                nth: 1,
                detail: 0,
            },
            FaultEvent {
                kind: InjectKind::ReplPrimaryCrash,
                nth: 1,
                detail: 16,
            },
        ],
    });
    assert!(c.submit(&Commit::Tick { times: 3 }).is_ok());
    assert!(matches!(
        c.submit(&Commit::Tick { times: 1 }),
        Err(ReplError::Down { .. })
    ));
    c.disarm();
    for _ in 0..80 {
        let _ = c.submit(&Commit::Tick { times: 1 });
        c.tick();
    }
    assert!(c.run_quiet(6000));
    let catchups: u64 = (0..c.replica_count() as u32)
        .map(|id| c.stats_of(id).catchups)
        .sum();
    assert!(
        catchups >= 1,
        "the orphaned tail must be healed by snapshot migration"
    );
    assert_sound(&c, "divergence", 0xd1f7);
}

#[test]
fn metering_status_tracks_the_published_primary() {
    let mut c = cluster(0xbeef);
    drive_mixed_workload(&mut c, 0xbeef, 10);
    assert!(c.run_quiet(2000));
    let primary = c.primary().expect("quiet cluster has a primary");
    let status = c.status_of(primary).expect("the primary publishes");
    assert_eq!(status.role, "primary");
    assert_eq!(status.commits, c.log_of(primary).len());
    assert_eq!(status.epoch, c.epoch_of(primary));
    for id in 0..c.replica_count() as u32 {
        if id != primary {
            let s = c.status_of(id).expect("backups publish too");
            assert_eq!(s.role, "backup");
        }
    }
}
