//! Overload resilience: the admission/backpressure layer under seeded
//! resource-exhaustion plans, plus the differential proof that the whole
//! layer is a strict no-op when disarmed.
//!
//! Three families of checks:
//!
//! * **the exhaustion sweep** — hundreds of `FaultPlan::generate_overload`
//!   plans (frame famine, AST exhaustion, quota storms, audit floods, a
//!   mid-workload crash) through the crash-recovery harness with admission
//!   control armed: no panic, no hang, and every E15 integrity invariant
//!   intact even when the crash lands while the kernel is shedding;
//! * **shed-order and audit discipline** — a saturated many-principal
//!   world sheds strictly lowest-priority-first, and every refusal leaves
//!   a typed `Overload` record in the audit log;
//! * **backoff and no-op discipline** — retry schedules are a pure
//!   function of their seed with a bounded total delay, retried page
//!   faults never corrupt data (famine-retried runs read back exactly
//!   what famine-free runs wrote), and a disabled admission layer is
//!   behavior-identical to not having one: same op results, same audit
//!   log, same boot hash, same gate census.

use mks_fs::{Acl, AclMode, DirMode, FileSystem, QuotaCell, UserId};
use mks_hw::{
    Backoff, BackoffPolicy, FaultEvent, FaultPlan, InjectKind, RingBrackets, SplitMix64, Word,
};
use mks_kernel::init::{state_hash, target_state};
use mks_kernel::pressure::{PressureConfig, Priority};
use mks_kernel::recovery::{run_plan, RecoveryOpts};
use mks_kernel::world::{admin_user, KernelWorld, System, SystemSize};
use mks_kernel::{AuditEvent, GateTable, KernelConfig, Monitor};
use mks_mls::Label;
use proptest::prelude::*;

/// Seeds in the exhaustion sweep (`MKS_SWEEP_SEEDS` caps it in
/// wall-time-bounded CI jobs; any failing seed fails at any cap that
/// includes it).
fn sweep_seeds() -> u64 {
    std::env::var("MKS_SWEEP_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500)
}

#[test]
fn exhaustion_plans_never_break_recovery_invariants() {
    let opts = RecoveryOpts {
        overload: true,
        ..RecoveryOpts::default()
    };
    let sweep = sweep_seeds();
    let mut crashes = 0u64;
    let mut exhaustion = 0u64;
    for seed in 0..sweep {
        let plan = FaultPlan::generate_overload(seed);
        let out = run_plan(&plan, opts);
        assert!(
            out.ok(),
            "overload seed {seed:#x} violated recovery invariants: {:?}\n\
             ready-to-paste regression plan:\n{}",
            out.violations,
            plan.to_regression_snippet()
        );
        crashes += u64::from(out.crashed);
        exhaustion += out
            .fired
            .iter()
            .filter(|f| {
                matches!(
                    f.kind,
                    InjectKind::FrameFamine
                        | InjectKind::AstExhaust
                        | InjectKind::QuotaStorm
                        | InjectKind::AuditFlood
                )
            })
            .count() as u64;
    }
    // The sweep must exercise the overload machinery, not idle.
    assert!(crashes > sweep / 4, "only {crashes} mid-workload crashes");
    assert!(exhaustion > 0, "no exhaustion fault ever fired");
}

fn load_user(i: usize) -> UserId {
    UserId::new(&format!("Load{i}"), "Traffic", "a")
}

/// A saturated world: many principals, tight quota, small memory,
/// admission armed. Returns the world after the workload.
fn saturated_world(principals: usize) -> KernelWorld {
    let mut sys = System::with_size(
        KernelConfig::kernel(),
        SystemSize {
            frames: 32,
            bulk_records: 64,
            cpu: mks_hw::CpuModel::H6180,
            ..SystemSize::default()
        },
    );
    let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
    let aroot = sys.world.bind_root(admin);
    let prios = [
        Priority::System,
        Priority::Interactive,
        Priority::Normal,
        Priority::Background,
    ];
    let mut pids = Vec::new();
    let mut homes = Vec::new();
    for i in 0..principals {
        let name = format!("h{i}");
        Monitor::create_directory(&mut sys.world, admin, aroot, &name, Label::BOTTOM)
            .expect("home creates");
        sys.world
            .fs
            .set_dir_acl_entry(
                FileSystem::ROOT,
                &name,
                &admin_user(),
                &load_user(i).to_acl_string(),
                DirMode::SMA,
            )
            .expect("home ACL grant");
        let pid = sys.world.create_process(load_user(i), Label::BOTTOM, 4);
        sys.world
            .admission
            .set_priority(pid, prios[i % prios.len()]);
        let root = sys.world.bind_root(pid);
        homes.push(Monitor::initiate_dir(&mut sys.world, pid, root, &name));
        pids.push(pid);
    }
    *sys.world
        .fs
        .quota_cell_mut(FileSystem::ROOT)
        .expect("root exists") = Some(QuotaCell::with_limit(64));
    sys.world.admission.enable(PressureConfig::default());

    let mut rng = SplitMix64::new(0x0eed);
    for op in 0..32u64 {
        for (i, &pid) in pids.iter().enumerate() {
            let _ = Monitor::create_segment(
                &mut sys.world,
                pid,
                homes[i],
                &format!("s{i}x{op}"),
                Acl::of("*.*.*", AclMode::RW),
                RingBrackets::new(4, 4, 4),
                Label::BOTTOM,
            );
            if rng.below(2) == 0 {
                let _ = Monitor::list_dir(&mut sys.world, pid, homes[i]);
            }
        }
    }
    sys.world
}

#[test]
fn saturation_sheds_lowest_priority_first_and_audits_every_refusal() {
    let world = saturated_world(16);
    let shed = world.admission.shed_by_class();
    let total: u64 = shed.iter().sum();
    assert!(total > 0, "the saturated workload never shed: {shed:?}");
    assert_eq!(
        world.admission.priority_inversions(),
        0,
        "a lower-priority request was admitted at a pressure where a \
         higher-priority one was shed"
    );
    assert_eq!(
        shed[Priority::System.index()],
        0,
        "System-class requests must never be shed"
    );
    // Every shed decision leaves a typed Overload record (retry give-ups
    // append more, so audited >= shed).
    let audited = world
        .log
        .matching(|e| matches!(e, AuditEvent::Overload { .. }))
        .count() as u64;
    assert!(
        audited >= total,
        "{total} sheds but only {audited} Overload audit records"
    );
    // And the refusals are visible in the metrics registry.
    let trace = &world.vm.machine.trace;
    assert_eq!(trace.counter("admission.shed"), total);
    assert!(trace.counter("admission.admitted") > 0);
}

/// Famine-retried paging never double-applies or corrupts a transfer:
/// the same workload, with and without injected frame famine, reads back
/// the same words.
#[test]
fn famine_retries_never_corrupt_transfers() {
    let run = |famine: bool| -> Vec<Option<u64>> {
        let mut sys = System::with_size(
            KernelConfig::kernel(),
            SystemSize {
                frames: 16,
                bulk_records: 64,
                cpu: mks_hw::CpuModel::H6180,
                ..SystemSize::default()
            },
        );
        if famine {
            // Spaced single-shot famines: each retried page fault succeeds
            // on the next attempt.
            let events = (0..12)
                .map(|k| FaultEvent {
                    kind: InjectKind::FrameFamine,
                    nth: k * 5,
                    detail: 0,
                })
                .collect();
            sys.world
                .vm
                .machine
                .inject
                .arm(&FaultPlan::from_events(events));
        }
        let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
        let root = sys.world.bind_root(admin);
        let seg = Monitor::create_segment(
            &mut sys.world,
            admin,
            root,
            "probe",
            Acl::of("*.*.*", AclMode::RW),
            RingBrackets::new(4, 4, 4),
            Label::BOTTOM,
        )
        .expect("probe creates");
        let mut rng = SplitMix64::new(0xfa);
        for i in 0..96u64 {
            let off = (rng.below(4) * mks_hw::PAGE_WORDS as u64 + rng.below(64)) as usize;
            let _ = Monitor::write(&mut sys.world, admin, seg, off, Word::new(i + 1));
        }
        // Read back a fixed probe set across all four pages.
        (0..4 * mks_hw::PAGE_WORDS)
            .step_by(17)
            .map(|off| {
                Monitor::read(&mut sys.world, admin, seg, off)
                    .ok()
                    .map(|w| w.raw())
            })
            .collect()
    };
    assert_eq!(
        run(false),
        run(true),
        "famine-retried run read back different data"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A backoff schedule is a pure function of its seed.
    #[test]
    fn backoff_schedules_are_deterministic(seed in any::<u64>()) {
        let policy = BackoffPolicy::default();
        prop_assert_eq!(
            Backoff::schedule(seed, policy),
            Backoff::schedule(seed, policy)
        );
    }

    /// Schedules respect the policy's retry count and total delay bound,
    /// and every delay is at least one cycle (time always advances).
    #[test]
    fn backoff_delay_is_bounded(seed in any::<u64>(), retries in 0u32..8) {
        let policy = BackoffPolicy {
            max_retries: retries,
            ..BackoffPolicy::default()
        };
        let schedule = Backoff::schedule(seed, policy);
        prop_assert_eq!(schedule.len(), retries as usize);
        prop_assert!(schedule.iter().all(|&d| d >= 1));
        prop_assert!(schedule.iter().sum::<u64>() <= policy.total_delay_bound());
    }
}

/// The differential no-op proof: with the injector disarmed and admission
/// never enabled (the default), the new layer writes nothing — same op
/// results, same audit log, and with shed thresholds no load can reach,
/// enabled admission changes no outcome either.
#[test]
fn disarmed_and_unpressured_layers_are_strict_noops() {
    let run = |no_pressure_admission: bool| -> (Vec<bool>, usize, u64) {
        let mut sys = System::with_size(
            KernelConfig::kernel(),
            SystemSize {
                frames: 32,
                bulk_records: 64,
                cpu: mks_hw::CpuModel::H6180,
                ..SystemSize::default()
            },
        );
        if no_pressure_admission {
            // Thresholds above the gauge ceiling (1000): admission runs on
            // every call but can never shed.
            sys.world.admission.enable(PressureConfig {
                shed_permille: [1001; 4],
                ..PressureConfig::default()
            });
        }
        let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
        let root = sys.world.bind_root(admin);
        let mut results = Vec::new();
        let mut rng = SplitMix64::new(0xd1ff);
        let seg = Monitor::create_segment(
            &mut sys.world,
            admin,
            root,
            "probe",
            Acl::of("*.*.*", AclMode::RW),
            RingBrackets::new(4, 4, 4),
            Label::BOTTOM,
        )
        .expect("probe creates");
        for i in 0..64u64 {
            let ok = match rng.below(4) {
                0 => Monitor::write(
                    &mut sys.world,
                    admin,
                    seg,
                    rng.below(256) as usize,
                    Word::new(i),
                )
                .is_ok(),
                1 => Monitor::read(&mut sys.world, admin, seg, rng.below(256) as usize).is_ok(),
                2 => Monitor::list_dir(&mut sys.world, admin, root).is_ok(),
                _ => Monitor::call_gate(&mut sys.world, admin, "hcs_", "metering_get").is_ok(),
            };
            results.push(ok);
        }
        let denials = sys.world.log.nr_denials();
        let shed = sys.world.vm.machine.trace.counter("admission.shed");
        (results, denials, shed)
    };

    let (plain_results, plain_denials, plain_shed) = run(false);
    let (np_results, np_denials, np_shed) = run(true);
    assert_eq!(plain_results, np_results, "op outcomes diverged");
    assert_eq!(plain_denials, np_denials, "audit denial counts diverged");
    assert_eq!(plain_shed, 0, "disabled admission shed something");
    assert_eq!(np_shed, 0, "unreachable thresholds shed something");

    // The default path leaves zero admission footprint in the registry.
    let sys = System::new(KernelConfig::kernel());
    assert_eq!(sys.world.vm.machine.trace.counter("admission.admitted"), 0);
    assert_eq!(sys.world.vm.machine.trace.counter("admission.shed"), 0);
    assert!(sys.world.admission.decisions().is_empty());

    // Boot determinism and the gate census are untouched by this PR.
    let cfg = KernelConfig::kernel();
    assert_eq!(
        state_hash(&target_state(&cfg)),
        state_hash(&target_state(&cfg))
    );
    let ladder: Vec<usize> = [
        KernelConfig::legacy(),
        KernelConfig::legacy_linker_removed(),
        KernelConfig::legacy_both_removals(),
        KernelConfig::kernel(),
    ]
    .iter()
    .map(|c| GateTable::build(c).user_available_entries())
    .collect();
    assert_eq!(ladder, vec![101, 91, 72, 54]);
}
