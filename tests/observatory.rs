//! Observatory integration tests: quantile accuracy under property
//! streams, JSON round-trips of every observability snapshot section,
//! and end-to-end surveillance through the kernel and its metering gate.
//!
//! The bench-side experiment (`exp_e17_observatory`) checks the same
//! contract on one curated workload; these tests attack the pieces with
//! randomized streams and pin the integration seams: storm → alert →
//! gate export, quiet traffic → silence, sampling → thinner ring at an
//! identical clock.

use mks_fs::{Acl, AclMode, DirMode, FileSystem, UserId};
use mks_hw::RingBrackets;
use mks_kernel::world::{admin_user, System};
use mks_kernel::{KernelConfig, Monitor};
use mks_mls::Label;
use mks_trace::quantile::SUBBUCKETS;
use mks_trace::{AlertKind, QuantileSketch, SamplePolicy, Snapshot, TopK};
use proptest::prelude::*;

fn user(name: &str) -> UserId {
    UserId::new(name, "Test", "a")
}

/// A system with one home directory, its owner process, and a vault
/// segment the owner may not touch — the standard surveillance stage.
fn stage() -> (System, mks_kernel::KProcId, mks_hw::SegNo, mks_hw::SegNo) {
    let mut sys = System::new(KernelConfig::kernel());
    let admin = sys.world.create_process(admin_user(), Label::BOTTOM, 4);
    let aroot = sys.world.bind_root(admin);
    Monitor::create_directory(&mut sys.world, admin, aroot, "home", Label::BOTTOM).unwrap();
    sys.world
        .fs
        .set_dir_acl_entry(
            FileSystem::ROOT,
            "home",
            &admin_user(),
            &user("Smith").to_acl_string(),
            DirMode::SMA,
        )
        .unwrap();
    Monitor::create_directory(&mut sys.world, admin, aroot, "vault", Label::BOTTOM).unwrap();
    let avault = Monitor::initiate_dir(&mut sys.world, admin, aroot, "vault");
    Monitor::create_segment(
        &mut sys.world,
        admin,
        avault,
        "secret",
        Acl::of(&admin_user().to_acl_string(), AclMode::RW),
        RingBrackets::new(4, 4, 4),
        Label::BOTTOM,
    )
    .unwrap();
    let smith = sys.world.create_process(user("Smith"), Label::BOTTOM, 4);
    let sroot = sys.world.bind_root(smith);
    let home = Monitor::initiate_dir(&mut sys.world, smith, sroot, "home");
    let vault = Monitor::initiate_dir(&mut sys.world, smith, sroot, "vault");
    (sys, smith, home, vault)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every quantile estimate sits at or below the exact order
    /// statistic, within the documented `1/SUBBUCKETS` relative bound —
    /// on arbitrary streams, not just the curated bench workload.
    #[test]
    fn quantile_estimates_stay_within_the_rank_error_bound(
        values in prop::collection::vec(0u64..4_000_000, 1..600),
    ) {
        let mut sketch = QuantileSketch::new(1);
        let mut exact = values.clone();
        for (i, &v) in values.iter().enumerate() {
            sketch.observe(v, i as u64, None, "prop");
        }
        exact.sort_unstable();
        let n = exact.len() as u64;
        for permille in [500u64, 950, 990] {
            let rank = ((permille * n).div_ceil(1000)).clamp(1, n) as usize - 1;
            let v = exact[rank];
            let est = sketch.quantile(permille);
            prop_assert!(est <= v, "p{} overestimates: {} > {}", permille, est, v);
            prop_assert!(
                v - est <= v / SUBBUCKETS,
                "p{}: {} misses {} beyond 1/{}",
                permille, est, v, SUBBUCKETS
            );
        }
    }

    /// Space-saving invariants on arbitrary small-alphabet streams:
    /// true count ≤ sketch count ≤ true count + error, error ≤ N/k.
    #[test]
    fn topk_counts_always_bound_the_truth(
        keys in prop::collection::vec(0u8..24, 1..500),
    ) {
        let capacity = 8usize;
        let mut sketch = TopK::new(capacity);
        let mut truth = std::collections::BTreeMap::new();
        for k in &keys {
            let key = format!("k{k}");
            sketch.record(&key, 1);
            *truth.entry(key).or_insert(0u64) += 1;
        }
        let n = keys.len() as u64;
        for h in sketch.ranked() {
            let t = truth[&h.key];
            prop_assert!(h.count >= t, "{}: {} < true {}", h.key, h.count, t);
            prop_assert!(h.count - h.error <= t, "{}: guaranteed floor above truth", h.key);
            prop_assert!(h.error <= n / capacity as u64, "{}: error beyond N/k", h.key);
        }
    }
}

/// Every new snapshot section — quantiles with exemplars, sampler,
/// observatory (rates, heavy hitters, alerts) — survives the JSON
/// round-trip byte- and value-identically, with real content in it.
#[test]
fn populated_observability_sections_round_trip_losslessly() {
    let (mut sys, smith, home, vault) = stage();
    sys.world.vm.machine.trace.set_sampling(SamplePolicy {
        keep_one_in: 4,
        seed: 7,
    });
    Monitor::create_segment(
        &mut sys.world,
        smith,
        home,
        "notes",
        Acl::of("*.*.*", AclMode::RW),
        RingBrackets::new(4, 4, 4),
        Label::BOTTOM,
    )
    .unwrap();
    for _ in 0..12 {
        let _ = Monitor::initiate(&mut sys.world, smith, vault, "secret");
    }
    let snap = sys.world.vm.machine.trace.snapshot();
    assert!(
        snap.quantiles
            .iter()
            .any(|q| q.name.starts_with("q.monitor.")),
        "monitor ops populate quantile sketches"
    );
    assert!(
        snap.quantiles
            .iter()
            .any(|q| q.exemplars.iter().any(|e| e.principal.is_some())),
        "tail exemplars carry principals"
    );
    assert_eq!(snap.sampler.keep_one_in, 4);
    assert!(snap.sampler.forced > 0, "denials are force-kept");
    assert!(!snap.observatory.alerts.is_empty(), "the storm alerted");
    assert!(!snap.observatory.rates.is_empty(), "windows exist");
    assert!(
        !snap.observatory.noisy_principals.entries.is_empty(),
        "heavy hitters exist"
    );
    let json = snap.to_json();
    let parsed = Snapshot::from_json(&json).expect("snapshot parses");
    assert_eq!(parsed, snap, "value-identical after parse");
    assert_eq!(parsed.to_json(), json, "byte-identical after re-emit");
}

/// A storm of denied probes raises a `denial_burst` alert naming the
/// prober, and the alert is readable through the metering gate.
#[test]
fn a_denial_storm_alerts_and_exports_through_the_gate() {
    let (mut sys, smith, _home, vault) = stage();
    for _ in 0..12 {
        let _ = Monitor::initiate(&mut sys.world, smith, vault, "secret");
    }
    let alerts = sys.world.vm.machine.trace.alerts();
    let burst = alerts
        .iter()
        .find(|a| a.kind == AlertKind::DenialBurst)
        .expect("the storm trips the burst detector");
    assert_eq!(burst.principal.as_deref(), Some("Smith.Test.a"));
    let json = Monitor::metering_snapshot(&mut sys.world, smith).unwrap();
    let parsed = Snapshot::from_json(&json).unwrap();
    assert_eq!(
        parsed.observatory.alerts,
        sys.world.vm.machine.trace.alerts(),
        "the gate exports the same registry, as a copy"
    );
}

/// Permitted traffic with no denials raises nothing.
#[test]
fn quiet_traffic_raises_no_alerts() {
    let (mut sys, smith, home, _vault) = stage();
    let seg = Monitor::create_segment(
        &mut sys.world,
        smith,
        home,
        "notes",
        Acl::of("*.*.*", AclMode::RW),
        RingBrackets::new(4, 4, 4),
        Label::BOTTOM,
    )
    .unwrap();
    for i in 0..40 {
        let _ = Monitor::write(
            &mut sys.world,
            smith,
            seg,
            i % 64,
            mks_hw::Word::new(i as u64),
        );
        let _ = Monitor::read(&mut sys.world, smith, seg, i % 64);
        let _ = Monitor::list_dir(&mut sys.world, smith, home);
    }
    assert!(sys.world.vm.machine.trace.alerts().is_empty());
}

/// Sampling thins the ring without touching the clock or the analytics
/// — the whole observability stack costs zero simulated cycles.
#[test]
fn sampling_is_free_on_the_simulated_clock() {
    let run = |keep_one_in: u64| {
        let (mut sys, smith, _home, vault) = stage();
        sys.world.vm.machine.trace.set_sampling(SamplePolicy {
            keep_one_in,
            seed: 3,
        });
        for _ in 0..12 {
            let _ = Monitor::initiate(&mut sys.world, smith, vault, "secret");
        }
        let trace = &sys.world.vm.machine.trace;
        let stats = trace.sampler_stats();
        (
            sys.world.vm.machine.clock.now(),
            stats.kept + stats.forced,
            trace.read_observatory(|o| o.totals().denials),
            trace.alerts().len(),
        )
    };
    let (full_cycles, full_records, full_denials, full_alerts) = run(1);
    let (thin_cycles, thin_records, thin_denials, thin_alerts) = run(16);
    assert_eq!(full_cycles, thin_cycles, "sampling costs zero cycles");
    assert_eq!(full_denials, thin_denials, "analytics precede sampling");
    assert_eq!(full_alerts, thin_alerts, "alerts survive sampling");
    assert!(thin_records < full_records, "the ring actually thinned");
}
