//! E18 scale integration tests: world generation is byte-deterministic
//! for a pinned seed, and the indexed hot paths agree with their
//! retained linear-scan specifications on arbitrary inputs — not just
//! the curated rungs the experiment samples.
//!
//! The sweep honors `MKS_SWEEP_SEEDS` like the experiment does, so the
//! CI `perf` job can cap it and a soak run can widen it without
//! touching the source.

use mks_bench::scale::{
    acl_differential, audit_batch_parity, build_world, lookup_differential, run_traffic,
    world_digest, PopulationModel, MAX_SESSIONS,
};
use mks_fs::UserId;
use proptest::prelude::*;

/// Sweep width: `MKS_SWEEP_SEEDS` or a CI-friendly default.
fn sweep_seeds() -> u64 {
    std::env::var("MKS_SWEEP_SEEDS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

/// The same pinned seed must produce the same world, op for op and
/// audit record for audit record — `world_digest` folds the clock, the
/// hierarchy, the registry ACL, and the audit log, so any divergence
/// anywhere in the kernel's state shows up here.
#[test]
fn pinned_seed_rebuilds_a_byte_identical_world() {
    for seed in 0..sweep_seeds() {
        let digests: Vec<u64> = (0..2)
            .map(|_| {
                let model = PopulationModel::new(2_000, seed);
                let mut sw = build_world(&model);
                run_traffic(&mut sw, 5_000, seed);
                world_digest(&sw)
            })
            .collect();
        assert_eq!(
            digests[0], digests[1],
            "seed {seed}: world generation must be deterministic"
        );
    }
}

/// Different seeds must actually produce different worlds — a digest
/// that never moves would make the determinism test vacuous.
#[test]
fn the_digest_separates_seeds() {
    let d: Vec<u64> = (0..2)
        .map(|seed| {
            let model = PopulationModel::new(1_000, seed);
            let mut sw = build_world(&model);
            run_traffic(&mut sw, 2_000, seed);
            world_digest(&sw)
        })
        .collect();
    assert_ne!(d[0], d[1]);
}

/// The experiment's own differentials, across the sweep seeds: indexed
/// ACL checks and directory lookups give the same verdicts as the
/// linear specs after arbitrary traffic has churned the structures.
#[test]
fn indexed_paths_match_linear_specs_across_the_sweep() {
    for seed in 0..sweep_seeds() {
        let model = PopulationModel::new(3_000, seed);
        let mut sw = build_world(&model);
        run_traffic(&mut sw, 8_000, seed);
        let (acl_mismatches, evals, _, _) = acl_differential(&sw, 200);
        assert_eq!(acl_mismatches, 0, "seed {seed}: ACL index diverged");
        assert!(evals > 0);
        assert_eq!(
            lookup_differential(&sw, 100),
            0,
            "seed {seed}: hierarchy index diverged"
        );
        assert!(sw.nr_sessions() <= MAX_SESSIONS);
    }
}

/// Batched audit emission stays byte-identical to one-at-a-time
/// emission (the experiment checks this once; keep it pinned here too
/// so a batching change fails fast in `cargo test`).
#[test]
fn audit_batching_stays_byte_identical() {
    assert!(audit_batch_parity());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On a fixed built world, the indexed ACL check agrees with the
    /// linear spec for *arbitrary* principals — population members,
    /// strangers in real projects, and principals from projects that
    /// do not exist.
    #[test]
    fn acl_index_agrees_with_linear_spec_on_arbitrary_principals(
        idxs in prop::collection::vec(0u64..20_000, 1..24),
        stranger_tags in prop::collection::vec("[a-z]{1,6}", 1..8),
    ) {
        let model = PopulationModel::new(20_000, 0xE18);
        let sw = build_world(&model);
        let acl = sw.registry_acl();
        for &i in &idxs {
            let u = model.principal(i);
            let (indexed, _) = acl.effective_counted(&u);
            prop_assert_eq!(indexed, acl.effective_linear(&u));
        }
        for t in &stranger_tags {
            let u = UserId::new("Ghost", t, "a");
            let (indexed, _) = acl.effective_counted(&u);
            prop_assert_eq!(indexed, acl.effective_linear(&u));
        }
    }

    /// Directory lookups through the name index agree with the linear
    /// scan for arbitrary project names, present or absent.
    #[test]
    fn dir_lookup_index_agrees_with_linear_spec(
        ks in prop::collection::vec(0usize..64, 1..24),
        misses in prop::collection::vec("[A-Za-z]{1,8}", 1..8),
    ) {
        let model = PopulationModel::new(10_000, 0xE18);
        let sw = build_world(&model);
        let fs = &sw.sys.world.fs;
        let udd = sw.udd_uid;
        for &k in &ks {
            let name = format!("P{}", k % model.nr_projects());
            prop_assert_eq!(
                fs.peek_branch(udd, &name).is_some(),
                fs.peek_branch_linear(udd, &name).is_some()
            );
        }
        for name in &misses {
            prop_assert_eq!(
                fs.peek_branch(udd, name).is_some(),
                fs.peek_branch_linear(udd, name).is_some()
            );
        }
    }
}
