//! Data integrity under heavy paging, for both page-control designs.
//!
//! Whatever the cascade or the daemons do, every word a process wrote must
//! read back exactly, across any number of trips through the bulk store
//! and disk — and a *fresh* page must always read as zeros (no residue).

use mks_hw::{CpuModel, Machine, SegUid, Word, PAGE_WORDS};
use mks_procs::{SchedMode, TcConfig, TrafficController};
use mks_vm::{
    mechanism, BulkFreerJob, ClockPolicy, CoreFreerJob, FifoPolicy, ParallelConfig,
    ParallelPageControl, SegControl, SequentialPageControl, VmAccess, VmWorld,
};

fn value(uid: u64, page: usize, off: usize) -> Word {
    Word::new(uid.wrapping_mul(31) ^ ((page as u64) << 9) ^ off as u64)
}

#[test]
fn sequential_design_preserves_every_word() {
    let mut w = VmWorld::new(Machine::new(CpuModel::H6180, 4), 6);
    let mut pc = SequentialPageControl::new(Box::new(ClockPolicy::default()));
    let segs: Vec<SegUid> = (1..=3).map(SegUid).collect();
    for s in &segs {
        SegControl::activate(&mut w, *s, 4 * PAGE_WORDS);
    }
    // Write a pattern everywhere (4 frames for 12 pages: constant churn).
    for s in &segs {
        for p in 0..4 {
            let frame = match pc.handle_fault(&mut w, *s, p) {
                Ok(r) => r.frame,
                Err(e) => panic!("{e}"),
            };
            for off in (0..PAGE_WORDS).step_by(97) {
                w.machine.mem.write(frame, off, value(s.0, p, off));
            }
            let astx = w.machine.ast.find(*s).unwrap();
            w.machine.ast.entry_mut(astx).pt.ptw_mut(p).modified = true;
        }
    }
    // Read everything back (more churn), verifying.
    for round in 0..3 {
        for s in &segs {
            for p in 0..4 {
                pc.touch(&mut w, *s, p).unwrap();
                let astx = w.machine.ast.find(*s).unwrap();
                let mks_hw::ast::PageState::InCore(frame) =
                    w.machine.ast.entry(astx).pt.ptw(p).state
                else {
                    panic!("touch must leave the page resident")
                };
                for off in (0..PAGE_WORDS).step_by(97) {
                    assert_eq!(
                        w.machine.mem.read(frame, off),
                        value(s.0, p, off),
                        "round {round}, seg {s:?}, page {p}, off {off}"
                    );
                }
            }
        }
    }
    assert!(w.stats().evictions_core > 0, "the test must actually churn");
    assert!(w.stats().evictions_bulk > 0, "…through the bulk store too");
}

#[test]
fn parallel_design_preserves_every_word() {
    // Writer jobs fill segments with patterns; when the system quiesces we
    // verify every word, reloading as needed.
    struct WriterJob {
        uid: SegUid,
        page: usize,
        off: usize,
        t0: Option<u64>,
    }
    impl mks_procs::Job<mks_vm::parallel::VmSystem> for WriterJob {
        fn step(
            &mut self,
            eff: &mut mks_procs::Effects<'_, mks_vm::parallel::VmSystem>,
        ) -> mks_procs::Step {
            if self.page >= 4 {
                return mks_procs::Step::Done;
            }
            let mut notify = None;
            let ret = {
                let (w, pc) = eff.ctx.vm_parts();
                let pc = *pc;
                let astx = w.machine.ast.find(self.uid).unwrap();
                let state = w.machine.ast.entry(astx).pt.ptw(self.page).state;
                match state {
                    mks_hw::ast::PageState::InCore(frame) => {
                        while self.off < PAGE_WORDS {
                            w.machine.mem.write(
                                frame,
                                self.off,
                                value(self.uid.0, self.page, self.off),
                            );
                            self.off += 97;
                        }
                        let astx = w.machine.ast.find(self.uid).unwrap();
                        let ptw = w.machine.ast.entry_mut(astx).pt.ptw_mut(self.page);
                        ptw.modified = true;
                        ptw.used = true;
                        self.page += 1;
                        self.off = 0;
                        self.t0 = None;
                        mks_procs::Step::Continue
                    }
                    mks_hw::ast::PageState::NotInCore => {
                        let t0 = *self.t0.get_or_insert_with(|| w.machine.clock.now());
                        match mks_vm::parallel::try_resolve_fault(w, &pc, self.uid, self.page, t0)
                            .unwrap()
                        {
                            mks_vm::parallel::ParallelFault::Loaded { .. } => {
                                mks_procs::Step::Continue
                            }
                            mks_vm::parallel::ParallelFault::MustWait => {
                                notify = Some(pc.core_needed);
                                mks_procs::Step::Block(pc.core_avail)
                            }
                        }
                    }
                }
            };
            if let Some(e) = notify {
                eff.notify(e);
            }
            ret
        }
    }

    let mut tc: TrafficController<mks_vm::parallel::VmSystem> = TrafficController::new(TcConfig {
        nr_cpus: 2,
        nr_vprocs: 8,
        quantum: 6,
        sched: SchedMode::GlobalQueue,
    });
    let world = VmWorld::new(Machine::new(CpuModel::H6180, 4), 6);
    let pc = ParallelPageControl::new(
        ParallelConfig {
            core_low: 1,
            core_target: 2,
            bulk_low: 2,
            bulk_target: 3,
        },
        &mut tc,
    );
    let mut sys = mks_vm::parallel::VmSystem { world, pc };
    let segs: Vec<SegUid> = (1..=3).map(SegUid).collect();
    for s in &segs {
        SegControl::activate(&mut sys.world, *s, 4 * PAGE_WORDS);
    }
    tc.add_dedicated(Box::new(CoreFreerJob::new(Box::new(FifoPolicy))));
    tc.add_dedicated(Box::new(BulkFreerJob));
    let pids: Vec<_> = segs
        .iter()
        .map(|s| {
            tc.spawn(Box::new(WriterJob {
                uid: *s,
                page: 0,
                off: 0,
                t0: None,
            }))
        })
        .collect();
    let out = tc.run_until_quiet(&mut sys, 1_000_000);
    assert!(out.quiescent);
    for pid in pids {
        assert!(tc.process_done(pid), "writer wedged");
    }

    // Verify every word survives, pulling pages back as needed.
    let w = &mut sys.world;
    for s in &segs {
        for p in 0..4 {
            let astx = w.machine.ast.find(*s).unwrap();
            if !matches!(
                w.machine.ast.entry(astx).pt.ptw(p).state,
                mks_hw::ast::PageState::InCore(_)
            ) {
                while w.nr_free_frames() == 0 {
                    let usage = mechanism::usage_stats(w);
                    let v = usage[0];
                    if mechanism::evict_to_bulk(w, v.uid, v.page).is_err() {
                        let oldest = w.bulk.oldest().unwrap();
                        mechanism::evict_bulk_to_disk(w, oldest).unwrap();
                    }
                }
                mechanism::load_page(w, *s, p).unwrap();
            }
            let astx = w.machine.ast.find(*s).unwrap();
            let mks_hw::ast::PageState::InCore(frame) = w.machine.ast.entry(astx).pt.ptw(p).state
            else {
                unreachable!()
            };
            for off in (0..PAGE_WORDS).step_by(97) {
                assert_eq!(w.machine.mem.read(frame, off), value(s.0, p, off));
            }
        }
    }
    assert!(w.stats().evictions_core > 0);
}

#[test]
fn freshly_created_pages_never_carry_residue() {
    let mut w = VmWorld::new(Machine::new(CpuModel::H6180, 2), 4);
    let mut pc = SequentialPageControl::new(Box::new(ClockPolicy::default()));
    // Fill a secret segment, then delete it.
    let secret = SegUid(7);
    SegControl::activate(&mut w, secret, PAGE_WORDS);
    let f = pc.handle_fault(&mut w, secret, 0).unwrap().frame;
    for off in 0..PAGE_WORDS {
        w.machine.mem.write(f, off, Word::new(0o616161616161));
    }
    SegControl::delete(&mut w, secret).unwrap();
    // A new segment's first touch must see zeros.
    let fresh = SegUid(8);
    SegControl::activate(&mut w, fresh, PAGE_WORDS);
    let f2 = pc.handle_fault(&mut w, fresh, 0).unwrap().frame;
    for off in 0..PAGE_WORDS {
        assert_eq!(w.machine.mem.read(f2, off), Word::ZERO, "residue at {off}");
    }
}

/// Loads every page of `segs` back into core (evicting as needed) and
/// folds all their words into one FNV digest of the *logical* image.
fn logical_image_digest(w: &mut VmWorld, segs: &[SegUid]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for s in segs {
        for p in 0..4 {
            let astx = w.machine.ast.find(*s).unwrap();
            if !matches!(
                w.machine.ast.entry(astx).pt.ptw(p).state,
                mks_hw::ast::PageState::InCore(_)
            ) {
                while w.nr_free_frames() == 0 {
                    let usage = mechanism::usage_stats(w);
                    let v = usage[0];
                    if mechanism::evict_to_bulk(w, v.uid, v.page).is_err() {
                        let oldest = w.bulk.oldest().unwrap();
                        mechanism::evict_bulk_to_disk(w, oldest).unwrap();
                    }
                }
                mechanism::load_page(w, *s, p).unwrap();
            }
            let astx = w.machine.ast.find(*s).unwrap();
            let mks_hw::ast::PageState::InCore(frame) = w.machine.ast.entry(astx).pt.ptw(p).state
            else {
                unreachable!()
            };
            for off in 0..PAGE_WORDS {
                h ^= w.machine.mem.read(frame, off).raw();
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    h
}

/// A deterministic slow/failing-disk schedule touching many transfers.
fn slow_disk_plan() -> mks_hw::FaultPlan {
    let mut events = Vec::new();
    for i in 0..16u64 {
        events.push(mks_hw::FaultEvent {
            kind: if i % 3 == 0 {
                mks_hw::InjectKind::FailDisk
            } else {
                mks_hw::InjectKind::SlowDisk
            },
            nth: i * 3,
            detail: i.wrapping_mul(0x9e37_79b9),
        });
    }
    mks_hw::FaultPlan::from_events(events)
}

/// Runs the sequential design's write/read workload, optionally under an
/// injected disk plan, and returns the final logical image digest.
fn sequential_final_digest(plan: Option<&mks_hw::FaultPlan>) -> u64 {
    let mut w = VmWorld::new(Machine::new(CpuModel::H6180, 4), 6);
    if let Some(p) = plan {
        w.machine.inject.arm(p);
    }
    let mut pc = SequentialPageControl::new(Box::new(ClockPolicy::default()));
    let segs: Vec<SegUid> = (1..=3).map(SegUid).collect();
    for s in &segs {
        SegControl::activate(&mut w, *s, 4 * PAGE_WORDS);
    }
    for s in &segs {
        for p in 0..4 {
            let frame = pc.handle_fault(&mut w, *s, p).unwrap().frame;
            for off in (0..PAGE_WORDS).step_by(97) {
                w.machine.mem.write(frame, off, value(s.0, p, off));
            }
            let astx = w.machine.ast.find(*s).unwrap();
            w.machine.ast.entry_mut(astx).pt.ptw_mut(p).modified = true;
        }
    }
    for s in &segs {
        for p in 0..4 {
            pc.touch(&mut w, *s, p).unwrap();
        }
    }
    let fired = w.machine.inject.fired().len();
    if plan.is_some() {
        assert!(fired > 0, "the plan must actually reach the disk sites");
        w.machine.inject.disarm();
    }
    logical_image_digest(&mut w, &segs)
}

/// **Differential recovery invariant (E15 satellite).** Injected disk
/// faults are latency, never corruption — so the sequential and parallel
/// page-control designs must resolve identical fault sequences to
/// *identical* final core images, and both must match an undisturbed run.
#[test]
fn designs_agree_on_final_image_under_injected_slow_disk() {
    let plan = slow_disk_plan();
    let clean = sequential_final_digest(None);
    let seq = sequential_final_digest(Some(&plan));
    assert_eq!(seq, clean, "sequential: injected latency altered data");

    // The parallel design, same workload shape, same plan.
    struct WriterJob {
        uid: SegUid,
        page: usize,
        off: usize,
        t0: Option<u64>,
    }
    impl mks_procs::Job<mks_vm::parallel::VmSystem> for WriterJob {
        fn step(
            &mut self,
            eff: &mut mks_procs::Effects<'_, mks_vm::parallel::VmSystem>,
        ) -> mks_procs::Step {
            if self.page >= 4 {
                return mks_procs::Step::Done;
            }
            let mut notify = None;
            let ret = {
                let (w, pc) = eff.ctx.vm_parts();
                let pc = *pc;
                let astx = w.machine.ast.find(self.uid).unwrap();
                let state = w.machine.ast.entry(astx).pt.ptw(self.page).state;
                match state {
                    mks_hw::ast::PageState::InCore(frame) => {
                        while self.off < PAGE_WORDS {
                            w.machine.mem.write(
                                frame,
                                self.off,
                                value(self.uid.0, self.page, self.off),
                            );
                            self.off += 97;
                        }
                        let astx = w.machine.ast.find(self.uid).unwrap();
                        let ptw = w.machine.ast.entry_mut(astx).pt.ptw_mut(self.page);
                        ptw.modified = true;
                        ptw.used = true;
                        self.page += 1;
                        self.off = 0;
                        self.t0 = None;
                        mks_procs::Step::Continue
                    }
                    mks_hw::ast::PageState::NotInCore => {
                        let t0 = *self.t0.get_or_insert_with(|| w.machine.clock.now());
                        match mks_vm::parallel::try_resolve_fault(w, &pc, self.uid, self.page, t0)
                            .unwrap()
                        {
                            mks_vm::parallel::ParallelFault::Loaded { .. } => {
                                mks_procs::Step::Continue
                            }
                            mks_vm::parallel::ParallelFault::MustWait => {
                                notify = Some(pc.core_needed);
                                mks_procs::Step::Block(pc.core_avail)
                            }
                        }
                    }
                }
            };
            if let Some(e) = notify {
                eff.notify(e);
            }
            ret
        }
    }

    let mut tc: TrafficController<mks_vm::parallel::VmSystem> = TrafficController::new(TcConfig {
        nr_cpus: 2,
        nr_vprocs: 8,
        quantum: 6,
        sched: SchedMode::GlobalQueue,
    });
    let world = VmWorld::new(Machine::new(CpuModel::H6180, 4), 6);
    world.machine.inject.arm(&plan);
    let pc = ParallelPageControl::new(
        ParallelConfig {
            core_low: 1,
            core_target: 2,
            bulk_low: 2,
            bulk_target: 3,
        },
        &mut tc,
    );
    let mut sys = mks_vm::parallel::VmSystem { world, pc };
    let segs: Vec<SegUid> = (1..=3).map(SegUid).collect();
    for s in &segs {
        SegControl::activate(&mut sys.world, *s, 4 * PAGE_WORDS);
    }
    tc.add_dedicated(Box::new(CoreFreerJob::new(Box::new(FifoPolicy))));
    tc.add_dedicated(Box::new(BulkFreerJob));
    let pids: Vec<_> = segs
        .iter()
        .map(|s| {
            tc.spawn(Box::new(WriterJob {
                uid: *s,
                page: 0,
                off: 0,
                t0: None,
            }))
        })
        .collect();
    let out = tc.run_until_quiet(&mut sys, 1_000_000);
    assert!(out.quiescent);
    for pid in pids {
        assert!(tc.process_done(pid), "writer wedged under injected faults");
    }
    let w = &mut sys.world;
    assert!(
        !w.machine.inject.fired().is_empty(),
        "the parallel run must hit injected transfers too"
    );
    w.machine.inject.disarm();
    let par = logical_image_digest(w, &segs);
    assert_eq!(
        par, clean,
        "parallel and sequential designs diverged under the same disk plan"
    );
}
