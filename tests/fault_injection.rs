//! The fault-injection property sweep: thousands of seeded fault plans
//! through the crash-recovery harness, every integrity invariant checked
//! on every one.
//!
//! A [`FaultPlan`] is a pure function of its seed, and a recovery run is
//! a pure function of its plan — so the sweep is exhaustive bookkeeping,
//! not luck: any seed that ever fails here fails forever, and the
//! minimal reproducing schedule (via [`shrink_plan`]) is a one-line
//! regression test. The randomized `proptest` block on top draws seeds
//! the pinned range never visits.

use mks_hw::{shrink_plan, FaultEvent, FaultPlan, InjectKind};
use mks_kernel::recovery::{run_plan, run_seed, RecoveryOpts, SalvageMutation};
use proptest::prelude::*;

/// The pinned sweep: this many seeds on every `cargo test`, unless the
/// `MKS_SWEEP_SEEDS` environment variable caps it (CI uses a smaller
/// sweep in wall-time-bounded jobs; any seed that fails at 1200 also
/// fails at whatever prefix includes it).
fn sweep_seeds() -> u64 {
    std::env::var("MKS_SWEEP_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1200)
}

/// On a violation, shrink to the minimal reproducing schedule before
/// failing — the report names the exact events that matter.
fn check_seed(seed: u64, opts: RecoveryOpts) -> mks_kernel::recovery::RecoveryOutcome {
    let plan = FaultPlan::generate(seed);
    let out = run_plan(&plan, opts);
    if out.ok() {
        return out;
    }
    let minimal = shrink_plan(&plan, |p| !run_plan(p, opts).ok());
    panic!(
        "seed {seed:#x} violated recovery invariants: {:?}\n\
         minimal reproducing schedule:\n{}\n\
         ready-to-paste regression plan:\n{}",
        out.violations,
        minimal.render(),
        minimal.to_regression_snippet()
    );
}

#[test]
fn a_thousand_seeded_plans_hold_every_invariant() {
    let sweep = sweep_seeds();
    let opts = RecoveryOpts::default();
    let mut crashes = 0u64;
    let mut faults = 0usize;
    let mut problems = 0usize;
    let mut kinds = std::collections::BTreeSet::new();
    for seed in 0..sweep {
        let out = check_seed(seed, opts);
        crashes += u64::from(out.crashed);
        faults += out.fired.len();
        problems += out.problems_found;
        kinds.extend(out.problem_kinds.iter().copied());
    }
    // The sweep must be exercising the machinery, not idling: plenty of
    // mid-workload kills, plenty of delivered faults, real damage, and a
    // spread of repair arms.
    assert!(crashes > sweep / 4, "only {crashes} crashes");
    assert!(faults as u64 > sweep / 2, "only {faults} faults fired");
    assert!(
        problems as u64 > sweep / 60,
        "only {problems} hierarchy problems produced"
    );
    assert!(kinds.len() >= 6, "only {kinds:?} repair arms reached");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Seeds far outside the pinned range behave identically.
    #[test]
    fn random_seeds_hold_every_invariant(seed in any::<u64>()) {
        check_seed(seed, RecoveryOpts::default());
    }

    /// Recovery is a pure function of the plan: same seed, same outcome.
    #[test]
    fn recovery_replays_exactly(seed in any::<u64>()) {
        let opts = RecoveryOpts::default();
        prop_assert_eq!(run_seed(seed, opts), run_seed(seed, opts));
    }
}

/// The sweep has teeth: run the same seeds against a deliberately-broken
/// salvager and it must object. A sweep that cannot catch a salvager
/// that skips repair (or one that lowers labels) proves nothing.
#[test]
fn a_broken_salvager_is_caught_by_the_sweep() {
    let honest = RecoveryOpts::default();
    // Find seeds whose faults actually damage the hierarchy; the broken
    // recovery path must fail on them.
    let mut damaging = 0;
    let mut caught = 0;
    for seed in 0..200u64 {
        if run_seed(seed, honest).problems_found == 0 {
            continue;
        }
        damaging += 1;
        let broken = run_seed(
            seed,
            RecoveryOpts {
                mutation: SalvageMutation::SkipSalvage,
                ..honest
            },
        );
        if !broken.ok() {
            caught += 1;
        }
    }
    assert!(damaging > 0, "no damaging seed in range");
    assert_eq!(
        caught, damaging,
        "every damaging seed must expose the skipped salvage"
    );

    // The second mutation: labels lowered after an otherwise-honest
    // repair. Needs no injected damage at all.
    let lowered = run_plan(
        &FaultPlan::from_events(vec![]),
        RecoveryOpts {
            mutation: SalvageMutation::LowerAfterRepair,
            ..honest
        },
    );
    assert!(lowered.mutation_applied);
    assert!(lowered.labels_lowered > 0, "{lowered:?}");
}

/// Shrinking really minimizes: for a failure that needs exactly one
/// event, the shrinker strips every bystander from a noisy plan.
#[test]
fn failures_shrink_to_minimal_reproducing_schedules() {
    // "Fails" when the plan tears branch creation 0 with mode 1 — the
    // stand-in for a real invariant violation, chosen so the expected
    // minimal schedule is known exactly.
    let needle = FaultEvent {
        kind: InjectKind::TearBranch,
        nth: 0,
        detail: 1,
    };
    let mut events = vec![needle];
    events.extend(FaultPlan::generate(0xBEEF).events);
    let noisy = FaultPlan::from_events(events);
    let reproduces = |p: &FaultPlan| {
        run_plan(p, RecoveryOpts::default())
            .problem_kinds
            .contains(&"missing-node")
    };
    assert!(reproduces(&noisy), "the noisy plan must reproduce");
    let minimal = shrink_plan(&noisy, reproduces);
    assert_eq!(
        minimal.events,
        vec![needle],
        "every bystander event is stripped:\n{}",
        minimal.render()
    );
}
