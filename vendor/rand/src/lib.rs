//! Offline, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range`, and `gen_bool`. The generator is a
//! SplitMix64 — deterministic for a given seed, which is all the
//! simulation's seeded workloads require. It is **not** the real
//! ChaCha-based `StdRng` and must never be used for cryptography.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Deterministic.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value stream
/// (the stub's analogue of sampling from the `Standard` distribution).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high-quality bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable with `gen_range`, mirroring
/// `rand::distributions::uniform::SampleUniform`. A single blanket
/// `SampleRange` impl over this trait (rather than one impl per
/// integer type) is what lets inference flow *outward* from context,
/// as in `SegUid(95 + rng.gen_range(0..12))`.
pub trait SampleUniform: Copy {
    /// Widening conversion; every supported integer fits in `i128`.
    fn to_i128(self) -> i128;
    /// Narrowing conversion; callers guarantee the value is in range.
    fn from_i128(v: i128) -> Self;
}

macro_rules! sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}
sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (self.start.to_i128(), self.end.to_i128());
        assert!(start < end, "cannot sample empty range");
        let width = (end - start) as u128;
        let v = (rng.next_u64() as u128) % width;
        T::from_i128(start + v as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (self.start().to_i128(), self.end().to_i128());
        assert!(start <= end, "cannot sample empty range");
        let width = (end - start) as u128 + 1;
        let v = (rng.next_u64() as u128) % width;
        T::from_i128(start + v as i128)
    }
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of an inferred type.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`. Same seed, same stream, on every platform.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-1_000..1_000);
            assert!((-1_000..1_000).contains(&v));
            let w: u64 = r.gen_range(0..12);
            assert!(w < 12);
            let x = r.gen_range(1..=4u32);
            assert!((1..=4).contains(&x));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
