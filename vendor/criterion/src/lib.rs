//! Offline, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the `criterion 0.5` API its benches use. This
//! stub does **no statistics**: each benchmark body is executed a small
//! fixed number of times and wall-clock totals are printed. The point
//! is that `cargo test` / `cargo bench` compile and smoke-run the bench
//! targets; real measurement in this repo flows through the simulated
//! cycle clock and the `exp_*` binaries instead.

use std::time::Instant;

/// Prevents the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Iteration driver handed to each benchmark body.
pub struct Bencher {
    iters: u32,
}

impl Bencher {
    /// Runs `f` for the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            black_box(f());
        }
    }
}

/// Top-level benchmark registry, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Adjusts the sample count (accepted and ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark name with a parameter attached.
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher { iters: 3 };
    let t0 = Instant::now();
    f(&mut b);
    println!(
        "bench {name}: {} iters in {:?} (stub, no stats)",
        b.iters,
        t0.elapsed()
    );
}

/// Declares a group function invoking each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
