//! Offline, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of the `proptest 1.x` API its tests actually
//! use: the [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros, the [`strategy::Strategy`] combinators
//! (`prop_map`, `prop_flat_map`, `prop_recursive`, `boxed`), integer
//! ranges and regex-literal strategies, `prop::collection::vec`,
//! `prop::sample::Index`, and `any::<T>()`.
//!
//! Semantics differ from real proptest in one deliberate way: there is
//! **no shrinking**. Cases are generated from a deterministic per-test
//! seed, and a failing case reports its index and message only. That is
//! enough for the simulation's property suites, whose value is breadth
//! of coverage rather than counter-example minimization.

pub mod test_runner {
    //! Deterministic case generation and failure plumbing.

    /// Error carried out of a failing property body by the
    /// `prop_assert!` family.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a), so every test
        /// gets a distinct but reproducible stream.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// Overrides the case count.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 32 }
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and its combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// derives from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Builds a recursive strategy: `self` is the leaf; `f` lifts a
        /// strategy for depth *n* to one for depth *n + 1*. The `_size`
        /// and `_items` tuning knobs of real proptest are accepted and
        /// ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _size: u32,
            _items: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut level = self.boxed();
            for _ in 0..depth {
                // Each level mixes leaves back in so generated trees
                // vary in depth, not only in breadth.
                let deeper = f(level.clone()).boxed();
                level = Union::new(vec![(1, level), (2, deeper)]).boxed();
            }
            level
        }

        /// Type-erases the strategy. The result is cheaply clonable.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, reference-counted strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, R, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        R: Strategy,
        F: Fn(S::Value) -> R,
    {
        type Value = R::Value;
        fn generate(&self, rng: &mut TestRng) -> R::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice between boxed alternatives; the expansion target
    /// of `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; arms with weight zero are never selected.
        ///
        /// # Panics
        /// Panics if no arm has positive weight.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(
                total > 0,
                "prop_oneof! needs at least one arm with positive weight"
            );
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut roll = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if roll < w {
                    return s.generate(rng);
                }
                roll -= w;
            }
            unreachable!("weights covered the roll")
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + i128::from(rng.below(width))) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let width = (end as i128 - start as i128) as u64 + 1;
                    (start as i128 + i128::from(rng.below(width))) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Regex-literal strategies: a string literal is a generator for
    /// strings matching it. Only the subset the workspace uses is
    /// understood — concatenations of `[...]` character classes (with
    /// ranges and literal characters) each followed by an optional
    /// `{m,n}` repetition.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let class: Vec<char>;
            if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == ']')
                    .expect("unterminated character class")
                    + i;
                class = expand_class(&chars[i + 1..close]);
                i = close + 1;
            } else {
                class = vec![chars[i]];
                i += 1;
            }
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == '}')
                    .expect("unterminated repetition")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse::<u64>().expect("bad repetition bound"),
                        hi.parse::<u64>().expect("bad repetition bound"),
                    ),
                    None => {
                        let n = body.parse::<u64>().expect("bad repetition bound");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let n = lo + rng.below(hi - lo + 1);
            for _ in 0..n {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }

    fn expand_class(body: &[char]) -> Vec<char> {
        let mut set = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (a, b) = (body[i], body[i + 2]);
                assert!(a <= b, "inverted class range");
                for c in a..=b {
                    set.push(c);
                }
                i += 3;
            } else {
                set.push(body[i]);
                i += 1;
            }
        }
        assert!(!set.is_empty(), "empty character class");
        set
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the `Arbitrary` trait behind it.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Generates one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index::from_raw(rng.next_u64())
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct AnyStrategy<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification: a half-open or inclusive range of lengths.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for vectors of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Index sampling (`prop::sample::Index`).

    /// An abstract index into a collection of as-yet-unknown size,
    /// resolved with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Wraps a raw draw.
        pub fn from_raw(raw: u64) -> Index {
            Index(raw)
        }

        /// Resolves to a concrete index in `[0, len)`.
        ///
        /// # Panics
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// `prop::collection`, `prop::sample`, … via the crate itself.
    pub use crate as prop;
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg (<$crate::test_runner::Config as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident
        ($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Weighted (or unweighted) choice between strategies with a common
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((($weight) as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        if !($a == $b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}", stringify!($a), stringify!($b)),
            ));
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        if !($a == $b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the operands are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        if $a == $b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}",
                stringify!($a),
                stringify!($b)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_literals_match_their_class() {
        let mut rng = crate::test_runner::TestRng::from_name("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,10}", &mut rng);
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_lowercase());
            assert!(s.len() <= 11);
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn oneof_respects_zero_weight() {
        let mut rng = crate::test_runner::TestRng::from_name("zero");
        let s = prop_oneof![4 => Just(1u8), 0 => Just(2u8)];
        for _ in 0..100 {
            assert_eq!(Strategy::generate(&s, &mut rng), 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0u8..8, 1..6)) {
            prop_assert!((1..6).contains(&v.len()));
            for x in v {
                prop_assert!(x < 8);
            }
        }

        #[test]
        fn index_resolves_in_bounds(i in any::<prop::sample::Index>()) {
            prop_assert!(i.index(7) < 7);
        }
    }
}
